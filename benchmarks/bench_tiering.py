#!/usr/bin/env python
"""Tiering-v2 + CodingSets benchmark and CI gate.

Two measurements against the committed baseline
``benchmarks/BENCH_tiering.json``:

1. **Transcode throughput** — a tiering-enabled CoREC service stages a
   working set, lets it cool, and the cost model demotes it in the
   background; measured as entities transcoded per wall-second (host
   speed, informational) with an exact count of demotions scheduled
   (deterministic, gated).
2. **Correlated-failure data loss** — the seed-reproducible cabinet-kill
   campaign from :mod:`repro.chaos.dataloss`: spread vs CodingSets
   stripe-kill events are exact per seed, so the gate compares them
   verbatim and enforces the >= 2x loss-ratio floor.

Usage:
    PYTHONPATH=src python benchmarks/bench_tiering.py --smoke           # gate
    PYTHONPATH=src python benchmarks/bench_tiering.py --write-baseline  # record
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), os.pardir, "src"))

from repro import CoRECConfig, CoRECPolicy, StagingConfig, StagingService, TieringConfig
from repro.chaos import DataLossConfig, run_dataloss_campaign

BASELINE_PATH = os.path.join(os.path.dirname(__file__), "BENCH_tiering.json")

MIN_LOSS_RATIO = 2.0
CAMPAIGN_SEEDS = (0, 1, 2)


def measure_transcode(idle_steps: int = 10) -> dict:
    """Stage a working set, let it cool, count cost-model demotions."""
    cfg = CoRECConfig(
        storage_bound=0.4,  # classic enforcement quiet: tiering does the work
        tiering=TieringConfig(cooldown_steps=0, max_transcodes_per_step=8),
    )
    svc = StagingService(
        StagingConfig(n_servers=16, domain_shape=(32, 128, 64), object_max_bytes=4096),
        CoRECPolicy(cfg),
    )

    def flow():
        for v in range(2):
            for b in range(svc.domain.n_blocks):
                yield from svc.put("w", f"v{v}", svc.domain.block_bbox(b))
        yield from svc.end_step()
        for _ in range(idle_steps):
            yield from svc.end_step()
        yield from svc.flush()

    t0 = time.perf_counter()
    svc.run_workflow(flow())
    svc.run()
    wall = time.perf_counter() - t0
    mgr = svc.policy.tiering
    audit = svc.verify_all()
    return {
        "entities": 2 * svc.domain.n_blocks,
        "demotes_scheduled": mgr.demotes_scheduled,
        "promotes_scheduled": mgr.promotes_scheduled,
        "decisions_evaluated": mgr.decisions_evaluated,
        "unrecoverable": len(audit["unrecoverable"]),
        "wall_s": round(wall, 3),
        "transcodes_per_s": round(mgr.demotes_scheduled / wall, 1) if wall else 0.0,
    }


def measure_campaigns() -> dict:
    out = {}
    for seed in CAMPAIGN_SEEDS:
        payload = run_dataloss_campaign(DataLossConfig(seed=seed, inject=True))
        cmp_ = payload["comparisons"]["spread_vs_coding_sets"]
        out[str(seed)] = {
            "spread_kill_events": cmp_["spread_kill_events"],
            "coding_sets_kill_events": cmp_["coding_sets_kill_events"],
            "loss_ratio": cmp_["loss_ratio"],
            "fingerprint": payload["fingerprint"],
        }
    return out


def run_all() -> dict:
    return {
        "note": "tiering-v2 baseline for benchmarks/bench_tiering.py",
        "transcode": measure_transcode(),
        "campaigns": measure_campaigns(),
    }


def gate(current: dict, baseline: dict) -> list[str]:
    problems: list[str] = []
    cur_t, base_t = current["transcode"], baseline["transcode"]
    for key in ("entities", "demotes_scheduled", "unrecoverable"):
        if cur_t[key] != base_t[key]:
            problems.append(
                f"transcode.{key}: {cur_t[key]} != baseline {base_t[key]}"
            )
    for seed, base_c in baseline["campaigns"].items():
        cur_c = current["campaigns"].get(seed)
        if cur_c is None:
            problems.append(f"campaign seed {seed} missing")
            continue
        for key in ("spread_kill_events", "coding_sets_kill_events", "fingerprint"):
            if cur_c[key] != base_c[key]:
                problems.append(
                    f"campaign[{seed}].{key}: {cur_c[key]!r} != baseline {base_c[key]!r}"
                )
        if cur_c["loss_ratio"] < MIN_LOSS_RATIO:
            problems.append(
                f"campaign[{seed}]: loss ratio {cur_c['loss_ratio']:.2f} "
                f"below the {MIN_LOSS_RATIO}x floor"
            )
    return problems


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--smoke", action="store_true",
                    help="gate against the committed baseline")
    ap.add_argument("--write-baseline", action="store_true",
                    help="record the current measurements as the baseline")
    args = ap.parse_args(argv)

    current = run_all()
    print(json.dumps(current, indent=2))

    if args.write_baseline:
        with open(BASELINE_PATH, "w") as fh:
            json.dump(current, fh, indent=2)
            fh.write("\n")
        print(f"baseline written to {BASELINE_PATH}")
        return 0

    if args.smoke:
        with open(BASELINE_PATH) as fh:
            baseline = json.load(fh)
        problems = gate(current, baseline)
        for p in problems:
            print(f"REGRESSION: {p}", file=sys.stderr)
        print("tiering smoke:", "FAIL" if problems else "ok")
        return 1 if problems else 0
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
