#!/usr/bin/env python
"""CI chaos smoke: fixed-seed fault campaigns across all three modes.

Runs one campaign per (mode, policy) pair with pinned seeds and the full
invariant suite enabled, and additionally asserts bit-identical
reproduction of one campaign (same seed, same fingerprint).  Any
invariant violation prints the shrunk minimal schedule and fails the job.

Usage:
    PYTHONPATH=src python benchmarks/chaos_smoke.py [--seeds 0 1] [--out DIR]
"""

from __future__ import annotations

import argparse
import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), os.pardir, "src"))

from repro.chaos import ChaosConfig, run_campaign

MODES = ("scheduled", "stochastic", "cabinet")
POLICIES = ("corec", "hybrid", "replicate", "erasure")


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--seeds", type=int, nargs="*", default=[0, 1],
                    help="campaign seeds per (mode, policy) pair")
    ap.add_argument("--out", default=None,
                    help="directory for failing-campaign trace dumps")
    args = ap.parse_args(argv)

    failures = 0
    fingerprints: dict[tuple, str] = {}
    for mode in MODES:
        for policy in POLICIES:
            for seed in args.seeds:
                out_dir = (
                    os.path.join(args.out, f"{mode}-{policy}-s{seed}")
                    if args.out
                    else None
                )
                cfg = ChaosConfig(mode=mode, policy=policy, seed=seed, out_dir=out_dir)
                res = run_campaign(cfg)
                fingerprints[(mode, policy, seed)] = res.fingerprint
                status = "ok  " if res.passed else "FAIL"
                print(
                    f"{status} {mode:<10} {policy:<9} seed={seed} "
                    f"units={len(res.units)} checks={res.checks_run} "
                    f"waived={res.waived_losses} fp={res.fingerprint[:12]}"
                )
                if not res.passed:
                    failures += 1
                    for v in res.violations:
                        print(f"     {v}")
                    if res.minimal_units is not None:
                        print(f"     minimal schedule ({res.shrink_runs} replays):")
                        for u in res.minimal_units:
                            print(f"       {u.as_dict()}")
                    if res.artifacts:
                        print(f"     artifacts: {res.artifacts}")

    # Reproducibility gate: replaying one pinned campaign must be
    # bit-identical (same state fingerprint, not just the same verdict).
    probe = ChaosConfig(mode="stochastic", policy="corec", seed=args.seeds[0])
    replay = run_campaign(probe)
    expected = fingerprints[("stochastic", "corec", args.seeds[0])]
    if replay.fingerprint != expected:
        print(
            f"FAIL reproducibility: fingerprint {replay.fingerprint} != {expected}"
        )
        failures += 1
    else:
        print(f"ok   reproducibility fingerprint {replay.fingerprint[:12]}")

    print(f"\n{failures} failing campaign(s)")
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
