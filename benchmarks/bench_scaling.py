#!/usr/bin/env python
"""Weak-scaling sweep of the failure paths: 4 -> 64 staging servers.

Extends the Table II shrink sweep beyond the paper's three columns while
holding the per-server share fixed, then injects one fail/replace cycle at
each scale and records how many directory records the failure handling
touched (``repro.scaling``).  The asserted bound is an *operation count* —
directory touches per failure stay proportional to the failed server's
share, not to the directory size — so the gate has no wall-clock
flakiness.

Usage:
    PYTHONPATH=src python benchmarks/bench_scaling.py [--servers 4 8 16] [--no-assert]
"""

from __future__ import annotations

import argparse
import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), os.pardir, "src"))
sys.path.insert(0, os.path.dirname(__file__))

from repro.scaling import SWEEP_SERVERS, ScalingConfig, check_bounds, run_scale

from common import print_table, save_results


def run(servers, seed: int = 1) -> tuple[list[dict], ScalingConfig]:
    cfg = ScalingConfig(servers=tuple(servers), seed=seed)
    rows = [run_scale(cfg, n) for n in cfg.servers]
    return rows, cfg


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--servers", type=int, nargs="*", default=list(SWEEP_SERVERS),
                    help="server counts to sweep (each divisible by 4)")
    ap.add_argument("--seed", type=int, default=1)
    ap.add_argument("--no-assert", action="store_true",
                    help="report only; do not enforce the complexity bounds")
    args = ap.parse_args(argv)

    rows, cfg = run(args.servers, seed=args.seed)
    print_table(
        "Weak scaling: directory touches per failure",
        rows,
        columns=[
            ("n_servers", "servers", "{:d}"),
            ("total_entities", "entities", "{:d}"),
            ("total_stripes", "stripes", "{:d}"),
            ("affected_total", "affected", "{:d}"),
            ("touches", "touches", "{:d}"),
            ("touch_ratio", "ratio", "{:.2f}"),
        ],
    )
    save_results("scaling_failure_touches", rows)

    if args.no_assert:
        return 0
    problems = check_bounds(rows, cfg)
    for p in problems:
        print(f"BOUND VIOLATED: {p}")
    if not problems:
        print(
            f"\nok: touches per failure stay O(objects-on-failed-server) "
            f"across {rows[0]['n_servers']} -> {rows[-1]['n_servers']} servers"
        )
    return 1 if problems else 0


if __name__ == "__main__":
    raise SystemExit(main())
