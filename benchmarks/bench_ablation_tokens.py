"""Ablation — the load-balancing, conflict-avoiding encoding token.

DESIGN.md design choice: demotions run through a per-replication-group
token that serializes encodes and routes them to the group's least-loaded
member (paper Section III-B).  The ablation disables the token (encodes
always run on the primary, unserialized) and compares write response and
encode-placement balance under the write-heavy case 1.
"""

from __future__ import annotations

import pytest

from common import print_table, run_synthetic, save_results


def ablation():
    with_tokens = run_synthetic("corec", "case1", tokens_enabled=True)
    without = run_synthetic("corec", "case1", tokens_enabled=False)
    return with_tokens, without


def test_ablation_encoding_tokens(benchmark):
    with_tokens, without = benchmark.pedantic(ablation, rounds=1, iterations=1)
    rows = [
        {"variant": "tokens on", **{k: with_tokens[k] for k in ("put_mean_ms", "put_steady_ms", "storage_efficiency")}},
        {"variant": "tokens off", **{k: without[k] for k in ("put_mean_ms", "put_steady_ms", "storage_efficiency")}},
    ]
    print_table("Ablation: conflict-avoiding encoding token", rows, [
        ("variant", "variant", ""),
        ("put_mean_ms", "write ms", "{:.3f}"),
        ("put_steady_ms", "steady ms", "{:.3f}"),
        ("storage_efficiency", "storage eff", "{:.3f}"),
    ])
    save_results("ablation_tokens", rows)
    # Both variants stay correct.
    assert with_tokens["read_errors"] == without["read_errors"] == 0
    # The token keeps encodes off the write path's critical servers; with
    # it disabled the write response must not get better.
    assert with_tokens["put_mean_ms"] <= without["put_mean_ms"] * 1.10
    benchmark.extra_info["delta_pct"] = 100 * (
        without["put_mean_ms"] / with_tokens["put_mean_ms"] - 1
    )
