"""Ablation — parity maintenance strategy: delta RMW vs full re-encode.

Section II-A motivates CoREC with the cost of the naive update ("updating
one data object requires 5 data object reads, re-computing 2 parity
objects and 2 parity object writes"); CoREC's implementation uses the
delta read-modify-write instead. This ablation runs the *same* CoREC
policy with both strategies on the update-heavy case 1 and quantifies the
difference — the mechanism behind the encode-time rows of Figure 9.
"""

from __future__ import annotations

import pytest

from common import print_table, run_synthetic, save_results


def experiment():
    delta = run_synthetic("corec", "case1", update_strategy="delta")
    reencode = run_synthetic("corec", "case1", update_strategy="reencode")
    return delta, reencode


def test_ablation_update_strategy(benchmark):
    delta, reencode = benchmark.pedantic(experiment, rounds=1, iterations=1)
    rows = [
        {"strategy": "delta RMW", **{k: delta[k] for k in ("put_mean_ms", "put_steady_ms")},
         "encode_s": delta["breakdown_s"]["encode"],
         "transport_s": delta["breakdown_s"]["transport"]},
        {"strategy": "full re-encode", **{k: reencode[k] for k in ("put_mean_ms", "put_steady_ms")},
         "encode_s": reencode["breakdown_s"]["encode"],
         "transport_s": reencode["breakdown_s"]["transport"]},
    ]
    print_table("Ablation: parity update strategy (case 1)", rows, [
        ("strategy", "strategy", ""),
        ("put_mean_ms", "write ms", "{:.3f}"),
        ("put_steady_ms", "steady ms", "{:.3f}"),
        ("encode_s", "encode s", "{:.4f}"),
        ("transport_s", "transport s", "{:.4f}"),
    ])
    save_results("ablation_update_strategy", rows)
    assert delta["read_errors"] == reencode["read_errors"] == 0
    # The delta path spends strictly less on encoding and transport
    # (no gather of the other k-1 objects per update).
    assert delta["breakdown_s"]["encode"] < reencode["breakdown_s"]["encode"]
    assert delta["breakdown_s"]["transport"] < reencode["breakdown_s"]["transport"]
    assert delta["put_mean_ms"] < reencode["put_mean_ms"]
    benchmark.extra_info["write_saving_pct"] = 100 * (
        1 - delta["put_mean_ms"] / reencode["put_mean_ms"]
    )
