"""Extension benchmark — multi-tier staging (the paper's future work).

Measures what utility-based tier placement buys: with redundancy routed
to capacity tiers, the DRAM working set shrinks by the redundancy factor,
at a bounded tier-access-time cost. Sweeps the DRAM budget to show the
pressure/migration behaviour.
"""

from __future__ import annotations

import pytest

from repro import CoRECConfig, CoRECPolicy, StagingConfig, StagingService
from repro.staging.tiers import StorageTier, TierPlacementRule, default_tiers
from repro.workloads.synthetic import SyntheticWorkload, SyntheticWorkloadConfig

from common import print_table, save_results


def run(dram_budget: int, redundancy_in_dram: bool) -> dict:
    tiers = default_tiers(dram_bytes=dram_budget, nvram_bytes=8 * dram_budget)
    cfg = StagingConfig(
        n_servers=8,
        domain_shape=(64, 64, 64),
        element_bytes=1,
        object_max_bytes=4096,
        tiers=tuple(tiers),
        seed=6,
    )
    svc = StagingService(cfg, CoRECPolicy(CoRECConfig(storage_bound=0.67)))
    if redundancy_in_dram:
        for srv in svc.servers:
            srv.tiered.rule = TierPlacementRule(replica_tier=0, parity_tier=0)
    wl = SyntheticWorkload(
        svc,
        SyntheticWorkloadConfig(case="case1", n_writers=64, n_readers=8, timesteps=10),
    )
    svc.run_workflow(wl.run())
    svc.run()
    dram = sum(s.tiered.occupancy[0] for s in svc.servers)
    lower = sum(sum(s.tiered.occupancy[1:]) for s in svc.servers)
    return {
        "dram_kb": dram_budget // 1024,
        "placement": "redundancy in DRAM" if redundancy_in_dram else "redundancy down-tier",
        "dram_used_kb": dram / 1024,
        "lower_used_kb": lower / 1024,
        "migrations": sum(
            s.tiered.migrations_down + s.tiered.migrations_up for s in svc.servers
        ),
        "tier_time_ms": sum(s.tier_busy_s for s in svc.servers) * 1e3,
        "read_errors": svc.read_errors,
    }


def experiment():
    rows = []
    for dram_kb in (64, 24):
        rows.append(run(dram_kb * 1024, redundancy_in_dram=False))
        rows.append(run(dram_kb * 1024, redundancy_in_dram=True))
    return rows


def test_ext_tiered_staging(benchmark):
    rows = benchmark.pedantic(experiment, rounds=1, iterations=1)
    print_table("Extension: multi-tier staging, DRAM-budget sweep", rows, [
        ("dram_kb", "DRAM KB/srv", "{}"),
        ("placement", "placement", ""),
        ("dram_used_kb", "DRAM used KB", "{:.0f}"),
        ("lower_used_kb", "lower tiers KB", "{:.0f}"),
        ("migrations", "migrations", "{}"),
        ("tier_time_ms", "tier time ms", "{:.2f}"),
    ])
    save_results("ext_tiering", rows)
    assert all(r["read_errors"] == 0 for r in rows)
    by = {(r["dram_kb"], r["placement"]): r for r in rows}
    # Routing redundancy down-tier uses strictly less DRAM than keeping it
    # in DRAM, at every budget.
    for dram_kb in (64, 24):
        down = by[(dram_kb, "redundancy down-tier")]
        up = by[(dram_kb, "redundancy in DRAM")]
        assert down["dram_used_kb"] < up["dram_used_kb"]
    # Tight budgets force migrations; ample ones do not (down-tier rule).
    assert by[(24, "redundancy down-tier")]["migrations"] >= by[(64, "redundancy down-tier")]["migrations"]
