"""Stdlib-only line-coverage measurement for the tier-1 suite.

CI measures coverage with pytest-cov (see ``.github/workflows/ci.yml``);
this script exists so the ``--cov-fail-under`` floor can be chosen and
re-validated on machines where coverage.py is not installed.  It traces
line events for ``src/repro`` only (every other frame opts out, so numpy
and pytest internals run untraced) and derives the executable-line
denominator from compiled code objects — the same universe coverage.py
uses, minus its branch/exclusion refinements, so expect this number to
read within a point or two of pytest-cov's.

Run: ``PYTHONPATH=src python benchmarks/measure_coverage.py [pytest args]``
"""

from __future__ import annotations

import dis
import glob
import os
import sys
import threading
import types

SRC_MARKER = os.sep + os.path.join("src", "repro") + os.sep
executed: dict[str, set[int]] = {}


def _tracer(frame, event, arg):
    fn = frame.f_code.co_filename
    if SRC_MARKER not in fn:
        return None  # opt this frame (and its lines) out entirely
    if event == "line":
        executed.setdefault(fn, set()).add(frame.f_lineno)
    return _tracer


def _code_lines(co: types.CodeType) -> set[int]:
    lines = {line for _, line in dis.findlinestarts(co) if line}
    for const in co.co_consts:
        if isinstance(const, types.CodeType):
            lines |= _code_lines(const)
    return lines


def main() -> int:
    import pytest

    threading.settrace(_tracer)
    sys.settrace(_tracer)
    rc = pytest.main(["-q", "-p", "no:cacheprovider", *sys.argv[1:]])
    sys.settrace(None)
    threading.settrace(None)  # type: ignore[arg-type]

    repo = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    rows = []
    total = hit = 0
    for path in sorted(glob.glob(os.path.join(repo, "src", "repro", "**", "*.py"), recursive=True)):
        with open(path, encoding="utf-8") as fh:
            co = compile(fh.read(), os.path.abspath(path), "exec")
        lines = _code_lines(co)
        got = executed.get(os.path.abspath(path), set())
        total += len(lines)
        hit += len(lines & got)
        rel = os.path.relpath(path, repo)
        pct = 100.0 * len(lines & got) / len(lines) if lines else 100.0
        rows.append((pct, rel, len(lines & got), len(lines)))
    for pct, rel, h, n in sorted(rows):
        print(f"{pct:6.1f}%  {h:5d}/{n:<5d}  {rel}")
    print(f"\nTOTAL: {hit}/{total} executable lines = {100.0 * hit / total:.1f}%")
    return rc


if __name__ == "__main__":
    sys.exit(main())
