"""Benchmark suite configuration.

The benchmarks live outside the ``tests`` package; make sure the directory
itself is importable so ``common`` can be shared between bench modules.
"""

import os
import sys

sys.path.insert(0, os.path.dirname(__file__))
