"""Shared infrastructure for the paper-reproduction benchmarks.

Each ``bench_*.py`` regenerates one table or figure of the paper.  The
simulated deployments reproduce the paper's configuration *ratios* (Table I
and Table II) at proportionally reduced payload sizes — see DESIGN.md for
the substitution argument.  Results are printed as paper-style rows and
recorded in ``benchmarks/results/*.json`` for EXPERIMENTS.md.
"""

from __future__ import annotations

import json
import os
from typing import Callable

import numpy as np

from repro import (
    CoRECConfig,
    CoRECPolicy,
    ErasurePolicy,
    NoResilience,
    ReplicationPolicy,
    SimpleHybridPolicy,
    StagingConfig,
    StagingService,
)
from repro.core.recovery import RecoveryConfig
from repro.workloads.synthetic import SyntheticWorkload, SyntheticWorkloadConfig

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")

# ---------------------------------------------------------------------------
# Paper configurations
# ---------------------------------------------------------------------------

# Table I, verbatim from the paper.
TABLE1_PAPER = {
    "total_cores": 104,
    "writers": 64,
    "staging": 8,
    "readers": 32,
    "volume": (256, 256, 256),
    "in_staging_20ts_mb": 320,
    "replicas": 1,
    "data_objects": 3,
    "parity_objects": 1,
    "coding": "Reed-Solomon",
    "hybrid_storage_efficiency": 0.67,
    "corec_storage_bound": 0.67,
}

# The reproduction keeps every Table I ratio but runs the domain at 64^3
# (1 B elements), i.e. each writer stages a 16^3 block per step.
TABLE1_SIM = {
    "writers": 64,
    "staging": 8,
    "readers": 32,
    "domain": (64, 64, 64),
    "element_bytes": 1,
    "object_max_bytes": 4096,
    "k": 3,
    "m": 1,
    "storage_bound": 0.67,
    "timesteps": 20,
}


def table1_config(seed: int = 1, tracing: bool = False) -> StagingConfig:
    return StagingConfig(
        n_servers=TABLE1_SIM["staging"],
        domain_shape=TABLE1_SIM["domain"],
        element_bytes=TABLE1_SIM["element_bytes"],
        object_max_bytes=TABLE1_SIM["object_max_bytes"],
        n_level=TABLE1_SIM["m"],
        k=TABLE1_SIM["k"],
        nodes_per_cabinet=2,
        tracing=tracing,
        seed=seed,
    )


def make_policy(name: str, seed: int = 11, **kw):
    """Policy factory used by every benchmark."""
    bound = TABLE1_SIM["storage_bound"]
    if name == "dataspaces":
        return NoResilience()
    if name == "replicate":
        return ReplicationPolicy(**kw)
    if name == "erasure":
        return ErasurePolicy(**kw)
    if name == "hybrid":
        return SimpleHybridPolicy(
            storage_bound=bound, rng=np.random.default_rng(seed), **kw
        )
    if name == "corec":
        return CoRECPolicy(CoRECConfig(storage_bound=bound, **kw))
    raise ValueError(f"unknown policy {name!r}")


POLICIES = ("dataspaces", "replicate", "erasure", "hybrid", "corec")


def build_service(
    policy_name: str, seed: int = 1, tracing: bool = False, **policy_kw
) -> StagingService:
    return StagingService(
        table1_config(seed=seed, tracing=tracing), make_policy(policy_name, **policy_kw)
    )


def export_trace(svc: StagingService, trace_dir: str, process_name: str = "repro-bench") -> dict:
    """Write a service's trace/metrics artifacts into ``trace_dir``.

    Returns the artifact paths.  Requires the service to have been built
    with ``tracing=True``.
    """
    from repro.obs.export import (
        write_chrome_trace,
        write_events_jsonl,
        write_metrics_json,
        write_spans_jsonl,
    )

    os.makedirs(trace_dir, exist_ok=True)
    return {
        "chrome_trace": write_chrome_trace(
            os.path.join(trace_dir, "trace.json"), svc.tracer, process_name=process_name
        ),
        "spans": write_spans_jsonl(os.path.join(trace_dir, "spans.jsonl"), svc.tracer),
        "events": write_events_jsonl(os.path.join(trace_dir, "events.jsonl"), svc.log),
        "metrics": write_metrics_json(os.path.join(trace_dir, "metrics.json"), svc.metrics),
    }


def run_synthetic(
    policy_name: str,
    case: str,
    timesteps: int = TABLE1_SIM["timesteps"],
    failure_plan: dict | None = None,
    seed: int = 1,
    read_in_write_cases: bool = False,
    trace_dir: str | None = None,
    **policy_kw,
) -> dict:
    """Run one Table I synthetic case; return a result row.

    ``trace_dir`` additionally runs the case with span tracing enabled and
    drops trace.json / spans.jsonl / events.jsonl / metrics.json there.
    Tracing adds no simulator events, so the result row is unaffected;
    golden results are regenerated with tracing off regardless.
    """
    svc = build_service(policy_name, seed=seed, tracing=trace_dir is not None, **policy_kw)
    cfg = SyntheticWorkloadConfig(
        case=case,
        n_writers=TABLE1_SIM["writers"],
        n_readers=TABLE1_SIM["readers"],
        timesteps=timesteps,
        read_in_write_cases=read_in_write_cases,
        failure_plan=failure_plan or {},
    )
    wl = SyntheticWorkload(svc, cfg)
    svc.run_workflow(wl.run())
    svc.run()  # drain background transitions / recovery
    if trace_dir is not None:
        export_trace(svc, trace_dir, process_name=f"repro-{case}-{policy_name}")
    m = svc.metrics
    steady_put = (
        float(np.mean(wl.step_put.values[-5:])) if len(wl.step_put) >= 5 else m.put_stat.mean
    )
    return {
        "policy": policy_name,
        "case": case,
        "put_mean_ms": m.put_stat.mean * 1e3,
        "put_steady_ms": steady_put * 1e3,
        "get_mean_ms": m.get_stat.mean * 1e3,
        "storage_efficiency": m.storage.efficiency(),
        "write_efficiency_ms": m.write_efficiency() * 1e3,
        "write_efficiency_steady_ms": (
            steady_put * 1e3 / m.storage.efficiency() if m.storage.efficiency() else float("inf")
        ),
        "breakdown_s": dict(m.breakdown),
        "counters": dict(m.counters),
        "read_errors": svc.read_errors,
        "sim_time_s": svc.sim.now,
        "step_put_ms": [v * 1e3 for v in wl.step_put.values],
        "step_get_ms": [v * 1e3 for v in wl.step_get.values],
        "steps": list(wl.step_get.times) if wl.step_get.times else list(wl.step_put.times),
    }


# ---------------------------------------------------------------------------
# Reporting
# ---------------------------------------------------------------------------

def print_table(title: str, rows: list[dict], columns: list[tuple[str, str, str]]) -> None:
    """Print a paper-style table.

    ``columns`` is a list of (key, header, format) triples.
    """
    print(f"\n== {title} ==")
    headers = [h for _, h, _ in columns]
    widths = [max(len(h), 12) for h in headers]
    print("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    for row in rows:
        cells = []
        for (key, _, fmt), w in zip(columns, widths):
            value = row.get(key)
            if value is None:
                cells.append("-".ljust(w))
            else:
                cells.append((fmt.format(value) if fmt else str(value)).ljust(w))
        print("  ".join(cells))


def save_results(name: str, payload) -> str:
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, f"{name}.json")
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2, default=float)
    return path


def relative(rows: list[dict], key: str, base_policy: str) -> dict[str, float]:
    """Per-policy ratio of ``key`` against ``base_policy``'s value."""
    base = next(r[key] for r in rows if r["policy"] == base_policy)
    return {r["policy"]: (r[key] / base if base else float("inf")) for r in rows}
