"""Figure 2 — Checkpoint/Restart overhead on staging-based workflows.

Paper setup: periodic (4 s) checkpointing of 8 DataSpaces servers to the
PFS while a workflow runs, staged data sizes 1-8 GB, 12-13 checkpoints.
Result: checkpointing adds ~40% to the failure-free execution time and the
overhead grows with staged size, while CoREC's overhead stays <= ~2.3%.

Reproduction: same 8-server deployment with the staged size swept across a
geometric range (scaled payloads); the workflow writes continuously, and we
compare: plain execution, execution + periodic checkpointing (plus one
restart), and execution under CoREC.
"""

from __future__ import annotations

import pytest

from repro import CoRECConfig, CoRECPolicy, NoResilience, StagingConfig, StagingService
from repro.staging.checkpoint import CheckpointConfig, CheckpointedStaging, PFSModel
from repro.workloads.synthetic import SyntheticWorkload, SyntheticWorkloadConfig

from common import print_table, save_results

# Staged sizes swept (domain extents). The paper's 1G..8G becomes
# 32KB..256KB of live staged data — the same 1:2:4:8 progression.
SIZES = [(32, 32, 32), (64, 32, 32), (64, 64, 32), (64, 64, 64)]
TIMESTEPS = 12
COMPUTE_S = 0.02       # per-step simulation compute (I/O is a fraction of it)
CKPT_INTERVAL = 0.02   # scaled analogue of the paper's 4 s period (12 ckpts)


def run_exec(domain_shape, policy_factory, with_checkpoint=False):
    svc = StagingService(
        StagingConfig(
            n_servers=8,
            domain_shape=domain_shape,
            element_bytes=1,
            object_max_bytes=4096,
            nodes_per_cabinet=2,
            seed=1,
        ),
        policy_factory(),
    )
    wl = SyntheticWorkload(
        svc,
        SyntheticWorkloadConfig(
            case="case1",
            n_writers=64,
            n_readers=8,
            timesteps=TIMESTEPS,
            compute_time_s=COMPUTE_S,
        ),
    )
    ckpt = None
    if with_checkpoint:
        ckpt = CheckpointedStaging(
            svc,
            CheckpointConfig(
                interval_s=CKPT_INTERVAL,
                pfs=PFSModel(aggregate_bandwidth_bps=3.0e7, latency_s=1e-4),
            ),
        )
        ckpt.start()
    svc.run_workflow(wl.run())
    if ckpt is not None:
        ckpt.stop()
        # One global restart (the recovery the checkpoints exist for).
        svc.run_workflow(ckpt.restart())
    svc.run()
    return svc, ckpt


def fig2_experiment():
    rows = []
    for shape in SIZES:
        staged_kb = shape[0] * shape[1] * shape[2] / 1024
        base_svc, _ = run_exec(shape, NoResilience)
        exec_s = base_svc.sim.now
        ck_svc, ckpt = run_exec(shape, NoResilience, with_checkpoint=True)
        corec_svc, _ = run_exec(shape, lambda: CoRECPolicy(CoRECConfig(storage_bound=0.67)))
        rows.append(
            {
                "staged_kb": staged_kb,
                "exec_s": exec_s,
                "exec_check_s": ck_svc.sim.now,
                "checkpoint_s": ckpt.total_checkpoint_time,
                "per_ckpt_ms": 1e3 * ckpt.total_checkpoint_time / max(1, ckpt.n_checkpoints),
                "restart_s": ckpt.total_restart_time,
                "n_checkpoints": ckpt.n_checkpoints,
                "exec_corec_s": corec_svc.sim.now,
                "check_overhead_pct": 100 * (ck_svc.sim.now - exec_s) / exec_s,
                "corec_overhead_pct": 100 * (corec_svc.sim.now - exec_s) / exec_s,
            }
        )
    return rows


def test_fig2_checkpoint_overhead(benchmark):
    rows = benchmark.pedantic(fig2_experiment, rounds=1, iterations=1)
    print_table(
        "Figure 2: Checkpoint/Restart vs CoREC overhead",
        rows,
        [
            ("staged_kb", "staged KB", "{:.0f}"),
            ("exec_s", "Exec (s)", "{:.4f}"),
            ("exec_check_s", "Exec-check", "{:.4f}"),
            ("checkpoint_s", "Checkpoint", "{:.4f}"),
            ("per_ckpt_ms", "per-ckpt ms", "{:.3f}"),
            ("restart_s", "Restart", "{:.4f}"),
            ("n_checkpoints", "#ckpts", "{}"),
            ("exec_corec_s", "Exec-CoREC", "{:.4f}"),
            ("check_overhead_pct", "ckpt +%", "{:.1f}"),
            ("corec_overhead_pct", "CoREC +%", "{:.1f}"),
        ],
    )
    save_results("fig2_checkpoint", rows)

    # Shape assertions (the paper's qualitative claims).
    # 1. Per-checkpoint cost grows with staged size (the workflow length,
    # and hence the checkpoint count, varies — normalize per checkpoint).
    per_ckpt = [r["per_ckpt_ms"] for r in rows]
    assert per_ckpt == sorted(per_ckpt)
    assert per_ckpt[-1] > 2 * per_ckpt[0]
    # 2. Checkpointing inflates execution substantially...
    assert all(r["check_overhead_pct"] > 10 for r in rows)
    # 3. ...while CoREC's overhead stays far smaller.
    assert all(r["corec_overhead_pct"] < r["check_overhead_pct"] / 2 for r in rows)
    benchmark.extra_info["rows"] = len(rows)
