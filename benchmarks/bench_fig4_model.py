"""Figure 4 — analytic relative write cost vs hot-data fraction.

Evaluates the Section II-D closed-form model with RS(4,3) (N_node=3,
N_level=1), storage constraint S=0.67, for miss ratios r_m in {0, 0.2, 0.4},
against the C_replica / C_erasure / C_hybrid baselines, and prints the
curve samples plus the constraint knee P_r*.
"""

from __future__ import annotations

import numpy as np

from repro.core.model import CoRECModel, ModelParams

from common import print_table, save_results

MISS_RATIOS = (0.0, 0.2, 0.4)
S = 0.67


def fig4_experiment():
    model = CoRECModel(ModelParams(n_level=1, n_node=3))
    series = model.fig4_series(miss_ratios=MISS_RATIOS, s=S, n_points=11)
    return model, series


def test_fig4_model_curves(benchmark):
    model, series = benchmark.pedantic(fig4_experiment, rounds=1, iterations=1)
    rows = []
    for i, p_h in enumerate(series["p_h"]):
        rows.append(
            {
                "p_h": p_h,
                "corec_0": series["corec_rm=0"][i],
                "corec_02": series["corec_rm=0.2"][i],
                "corec_04": series["corec_rm=0.4"][i],
                "hybrid": series["hybrid"][i],
                "replica": series["replica"][i],
                "erasure": series["erasure"][i],
            }
        )
    print_table(
        f"Figure 4: relative write cost (RS(4,3), S={S}, knee P_r*={series['p_r_star']:.3f})",
        rows,
        [
            ("p_h", "P_h", "{:.1f}"),
            ("corec_0", "CoREC r=0", "{:.3f}"),
            ("corec_02", "CoREC r=.2", "{:.3f}"),
            ("corec_04", "CoREC r=.4", "{:.3f}"),
            ("hybrid", "Hybrid", "{:.3f}"),
            ("replica", "Replica", "{:.3f}"),
            ("erasure", "Erasure", "{:.3f}"),
        ],
    )
    save_results("fig4_model", {k: (v.tolist() if isinstance(v, np.ndarray) else v) for k, v in series.items()})

    corec0 = series["corec_rm=0"]
    hybrid = series["hybrid"]
    erasure = series["erasure"]
    replica = series["replica"]
    p_h = series["p_h"]
    knee = series["p_r_star"]

    # Marker 1: all-cold endpoint — CoREC == hybrid == erasure.
    assert corec0[0] == hybrid[0] == erasure[0]
    # CoREC never worse than simple hybrid; gap maximal between the markers.
    assert (corec0 <= hybrid + 1e-12).all()
    # Higher miss ratio -> higher cost everywhere between the endpoints.
    mid = len(p_h) // 2
    assert series["corec_rm=0.2"][mid] > corec0[mid]
    assert series["corec_rm=0.4"][mid] > series["corec_rm=0.2"][mid]
    # Marker 2: beyond the knee the CoREC curve is parallel to erasure
    # (constant gap).
    beyond = p_h > knee + 0.05
    gaps = erasure[beyond] - corec0[beyond]
    assert gaps.max() - gaps.min() < 1e-9
    # Below the knee with perfect classification CoREC tracks replication
    # for the hot share: it stays below erasure everywhere.
    assert (corec0 <= erasure + 1e-12).all()
    # Replication is the latency floor.
    assert (replica <= corec0 + 1e-12).all()
    benchmark.extra_info["knee"] = knee
