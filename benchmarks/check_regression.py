#!/usr/bin/env python
"""Codec performance regression gate.

Measures the erasure-kernel data path (the only part of the reproduction
doing real host-side computation) and compares it against the committed
baseline ``benchmarks/BENCH_codec.json``:

- absolute throughputs (MB/s) may not drop more than ``--tolerance``
  (default 30%) below the baseline;
- the machine-relative speedup ratios — fused encode vs the seed per-cell
  kernel, and 32-stripe batched encode vs a per-stripe loop — must stay
  above their acceptance floors (3x and 1.5x) regardless of host speed;
- the stripe-parallel encode path (column splits over a worker pool, the
  configuration the live backend runs) must clear an *absolute* floor of
  2x the pre-native-kernel serial baseline (867.6 MB/s).

Usage:
    PYTHONPATH=src python benchmarks/check_regression.py                  # gate
    PYTHONPATH=src python benchmarks/check_regression.py --write-baseline # record
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from concurrent.futures import ThreadPoolExecutor

import numpy as np

sys.path.insert(0, os.path.join(os.path.dirname(__file__), os.pardir, "src"))

from repro.erasure import RSCode
from repro.erasure.gf256 import GF256

BASELINE_PATH = os.path.join(os.path.dirname(__file__), "BENCH_codec.json")

SHARD = 1 << 20  # single-stripe measurements: 1 MiB shards
BATCH_STRIPES = 32
# Batched measurements use staging-object-sized shards (config
# object_max_bytes is 4 KiB): per-call overhead dominates there, which is
# exactly the regime the batch API exists for.
BATCH_SHARD = 2048

MIN_ENCODE_SPEEDUP_VS_SEED = 3.0
MIN_BATCH_SPEEDUP_VS_LOOP = 1.5
# Absolute (host-independent) floor for the stripe-parallel encode path:
# 2x the serial rs_encode_6_3_mb_s baseline committed before the native
# kernel and the parallel splits landed (433.8 MB/s).
MIN_PARALLEL_ENCODE_MB_S = 867.6


def best_time(fn, reps: int) -> float:
    """Best-of-``reps`` wall time — robust to scheduler noise."""
    best = float("inf")
    for _ in range(reps):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def measure(reps: int) -> dict[str, float]:
    rng = np.random.default_rng(0)
    shards = [rng.integers(0, 256, SHARD, dtype=np.uint8) for _ in range(6)]
    metrics: dict[str, float] = {}

    acc = np.zeros(SHARD, dtype=np.uint8)
    t = best_time(lambda: GF256.addmul_bytes(acc, 0x57, shards[0]), reps)
    metrics["gf_addmul_mb_s"] = SHARD / t / 1e6

    code = RSCode(6, 3)
    code.encode(shards)  # warm pair-table / kernel caches
    t = best_time(lambda: code.encode(shards), reps)
    metrics["rs_encode_6_3_mb_s"] = 6 * SHARD / t / 1e6

    # Same product through the seed per-cell kernel: the speedup ratio is
    # machine-relative, so it gates vectorization quality, not host speed.
    # The native kernel must be masked too — encode() routes through it
    # whenever it is loaded, regardless of the selected numpy kernel.
    GF256.set_kernel("reference")
    native, GF256._NATIVE = GF256._NATIVE, None
    try:
        t = best_time(lambda: code.encode(shards), max(1, reps // 2))
    finally:
        GF256._NATIVE = native
        GF256.set_kernel(None)
    metrics["rs_encode_seed_kernel_mb_s"] = 6 * SHARD / t / 1e6
    metrics["encode_speedup_vs_seed"] = (
        metrics["rs_encode_6_3_mb_s"] / metrics["rs_encode_seed_kernel_mb_s"]
    )

    stripes = [
        [rng.integers(0, 256, BATCH_SHARD, dtype=np.uint8) for _ in range(6)]
        for _ in range(BATCH_STRIPES)
    ]
    batch_bytes = BATCH_STRIPES * 6 * BATCH_SHARD
    code.encode_batch(stripes)  # warm
    t = best_time(lambda: code.encode_batch(stripes), reps)
    metrics["rs_encode_batch32_mb_s"] = batch_bytes / t / 1e6

    def loop():
        for s in stripes:
            code.encode(s)

    t = best_time(loop, reps)
    metrics["rs_encode_loop32_mb_s"] = batch_bytes / t / 1e6
    metrics["batch_speedup_vs_loop"] = (
        metrics["rs_encode_batch32_mb_s"] / metrics["rs_encode_loop32_mb_s"]
    )

    dec = RSCode(4, 2)
    parity = dec.encode(shards[:4])
    present = {0: shards[0], 2: shards[2], 4: parity[0], 5: parity[1]}
    dec.decode(present)  # warm decode-matrix cache
    t = best_time(lambda: dec.decode(present), reps)
    metrics["rs_decode_4_2_mb_s"] = 4 * SHARD / t / 1e6

    rparity = code.encode(shards)
    full = {i: s for i, s in enumerate(shards + rparity)}
    rec_present = {i: s for i, s in full.items() if i != 3}
    code.reconstruct_shard(rec_present, 3)  # warm row cache
    t = best_time(lambda: code.reconstruct_shard(rec_present, 3), reps)
    metrics["rs_reconstruct_shard_mb_s"] = SHARD / t / 1e6

    # Stripe-parallel encode: the exact configuration the live backend
    # runs — column splits fanned over a small worker pool, first split
    # inline on the calling thread (LiveEngine.codec_map's discipline).
    workers = min(8, os.cpu_count() or 1)
    pool = ThreadPoolExecutor(max_workers=workers, thread_name_prefix="bench-codec")
    try:
        pcode = RSCode(6, 3)

        def pool_map(tasks):
            futs = [pool.submit(task) for task in tasks[1:]]
            tasks[0]()
            for fut in futs:
                fut.result()

        pcode.parallel_map = pool_map
        pcode.encode(shards)  # warm + verify the splits actually fan out
        t = best_time(lambda: pcode.encode(shards), reps)
    finally:
        pool.shutdown(wait=True)
    metrics["rs_encode_parallel_mb_s"] = 6 * SHARD / t / 1e6
    metrics["parallel_passes"] = float(pcode.parallel_stats["passes"])

    return metrics


def check_ratios(metrics: dict[str, float]) -> list[str]:
    failures = []
    if metrics["encode_speedup_vs_seed"] < MIN_ENCODE_SPEEDUP_VS_SEED:
        failures.append(
            f"fused encode is only {metrics['encode_speedup_vs_seed']:.2f}x the "
            f"seed kernel (floor {MIN_ENCODE_SPEEDUP_VS_SEED}x)"
        )
    if metrics["batch_speedup_vs_loop"] < MIN_BATCH_SPEEDUP_VS_LOOP:
        failures.append(
            f"batched encode is only {metrics['batch_speedup_vs_loop']:.2f}x the "
            f"per-stripe loop (floor {MIN_BATCH_SPEEDUP_VS_LOOP}x)"
        )
    if metrics["rs_encode_parallel_mb_s"] < MIN_PARALLEL_ENCODE_MB_S:
        failures.append(
            f"stripe-parallel encode at {metrics['rs_encode_parallel_mb_s']:.1f} "
            f"MB/s is below the absolute floor {MIN_PARALLEL_ENCODE_MB_S} MB/s"
        )
    if metrics["parallel_passes"] < 1:
        failures.append("parallel encode never fanned out (0 parallel passes)")
    return failures


def check_baseline(metrics: dict[str, float], baseline: dict, tolerance: float) -> list[str]:
    failures = []
    for key, base in baseline["metrics"].items():
        if not key.endswith("_mb_s"):
            continue  # ratios are gated by their own floors, not the baseline
        now = metrics.get(key)
        if now is None:
            failures.append(f"metric {key} missing from this run")
            continue
        if now < base * (1.0 - tolerance):
            failures.append(
                f"{key}: {now:.1f} MB/s is {(1 - now / base) * 100:.0f}% below "
                f"baseline {base:.1f} MB/s (tolerance {tolerance * 100:.0f}%)"
            )
    return failures


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--baseline", default=BASELINE_PATH)
    ap.add_argument("--tolerance", type=float, default=0.30)
    ap.add_argument("--reps", type=int, default=5)
    ap.add_argument(
        "--write-baseline",
        action="store_true",
        help="record this run as the new committed baseline instead of gating",
    )
    args = ap.parse_args()

    metrics = measure(args.reps)
    for key in sorted(metrics):
        unit = " MB/s" if key.endswith("_mb_s") else ""
        print(f"  {key:32s} {metrics[key]:10.2f}{unit}")

    failures = check_ratios(metrics)

    if args.write_baseline:
        if failures:
            print("\nrefusing to record a baseline that fails the ratio floors:")
            for f in failures:
                print(f"  FAIL: {f}")
            return 1
        payload = {
            "note": "codec throughput baseline for benchmarks/check_regression.py",
            "shard_bytes": SHARD,
            "batch_stripes": BATCH_STRIPES,
            "batch_shard_bytes": BATCH_SHARD,
            "kernels": GF256.selected_kernels(),
            "metrics": {k: round(v, 3) for k, v in metrics.items()},
        }
        with open(args.baseline, "w", encoding="utf-8") as fh:
            json.dump(payload, fh, indent=2)
            fh.write("\n")
        print(f"\nbaseline written to {args.baseline}")
        return 0

    if not os.path.exists(args.baseline):
        print(f"\nno baseline at {args.baseline}; run with --write-baseline first")
        return 1
    with open(args.baseline, encoding="utf-8") as fh:
        baseline = json.load(fh)
    failures += check_baseline(metrics, baseline, args.tolerance)

    if failures:
        print("\ncodec performance regression:")
        for f in failures:
            print(f"  FAIL: {f}")
        return 1
    print("\nok: no codec regression")
    return 0


if __name__ == "__main__":
    sys.exit(main())
