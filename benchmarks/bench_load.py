"""Workload capture/replay + open-loop load benchmark with SLO gate.

Three phases, mirroring how the harness is meant to be used:

1. **Capture** — a deterministic conformance-style workload (the
   ``hybrid`` differential spec with group-scoped enforcement) runs
   against a single-process live server with a
   :class:`~repro.workloads.capture.CaptureRecorder` tapping the client:
   every op's geometry, verify flag, wall-clock issue time and read
   digests land on a JSONL tape, finalized with the deployment's
   quiescent projection digest.
2. **Replay equivalence** — the tape replays against a 2-shard
   multi-process cluster.  Read digests must match the recording
   byte-for-byte and the merged cluster projection must hash to the
   recorded ``projection_sha256``.  This is a correctness gate, enforced
   unconditionally (it does not depend on host speed).  ``--check-tape``
   additionally replays a committed tape from a previous release — the
   format back-compat guarantee.
3. **Open-loop SLO burst** — seeded Poisson arrivals drive concurrent
   routed flow clients against the 2-shard cluster; put/get p99 and the
   error rate are gated against the committed ``BENCH_load.json``
   baseline with headroom (the same committed-baseline-with-tolerance
   style ``check_regression.py`` and ``bench_live.py`` use).  On hosts
   with fewer than ``MIN_CPUS_FOR_SLO_GATE`` CPUs the shard processes
   and flow threads time-slice one core, so wall-clock percentiles say
   nothing about the code; the gate drops to report-only and the emitted
   JSON records that decision honestly in ``slo_gate``.

``--smoke`` shrinks the burst for CI and never overwrites the committed
baseline.  ``--emit-tape PATH`` writes the freshly captured tape (how
``benchmarks/tapes/smoke.tape.jsonl`` was produced).

Run: ``PYTHONPATH=src python benchmarks/bench_load.py``
"""

from __future__ import annotations

import argparse
import json
import os
import sys

OUT_PATH = os.path.join(os.path.dirname(__file__), "BENCH_load.json")
DEFAULT_COMMITTED_TAPE = os.path.join(
    os.path.dirname(__file__), "tapes", "smoke.tape.jsonl"
)

N_SHARDS = 2

# Open-loop burst parameters.
LOAD_PROCESS = "poisson"
LOAD_RATE = 80.0
LOAD_DURATION = 5.0
LOAD_FLOWS = 4
SMOKE_RATE = 40.0
SMOKE_DURATION = 1.5
SMOKE_FLOWS = 2
LOAD_SEED = 7

# Absolute latency SLOs (time_scale=0: pure event-machinery cost).  The
# committed baseline tightens the effective ceiling to baseline x
# P99_HEADROOM (floored at MIN_P99_CEILING_MS for scheduler noise).
SLO_PUT_P99_MS = 150.0
SLO_GET_P99_MS = 150.0
P99_HEADROOM = 10.0
MIN_P99_CEILING_MS = 50.0
MAX_ERROR_RATE = 0.01
MIN_CPUS_FOR_SLO_GATE = 4


def available_cpus() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux fallback
        return os.cpu_count() or 1


def slo_ceilings_ms() -> tuple[float, float]:
    """Effective (put, get) p99 ceilings, committed-baseline-aware."""
    try:
        with open(OUT_PATH, encoding="utf-8") as fh:
            committed = json.load(fh)
        base_put = committed["load"]["put_percentiles_ms"]["p99"]
        base_get = committed["load"]["get_percentiles_ms"]["p99"]
    except (OSError, ValueError, KeyError):
        return SLO_PUT_P99_MS, SLO_GET_P99_MS
    return (
        min(SLO_PUT_P99_MS, max(base_put * P99_HEADROOM, MIN_P99_CEILING_MS)),
        min(SLO_GET_P99_MS, max(base_get * P99_HEADROOM, MIN_P99_CEILING_MS)),
    )


def capture_tape():
    """Phase 1: record the hybrid differential workload from a live client."""
    from repro.live.conformance import (
        WORKLOADS,
        build_config,
        build_ops,
        make_policy,
        policy_spec,
    )
    from repro.live.protocol import LiveClient
    from repro.live.server import serve_in_thread
    from repro.staging.service import build_geometry
    from repro.workloads.capture import CaptureRecorder

    spec = WORKLOADS["hybrid"].with_overrides(enforcement_scope="group")
    config = build_config(spec)
    _, domain, _, _ = build_geometry(config)
    handle = serve_in_thread(config, lambda: make_policy(spec))
    try:
        with LiveClient(handle.host, handle.port, name="w") as cli:
            recorder = CaptureRecorder(cli, flow="w")
            for op in build_ops(spec):
                kind = op[0]
                if kind == "put":
                    box = domain.block_bbox(op[2])
                    cli.put(op[1], box.lb, box.ub)
                elif kind == "get":
                    box = domain.block_bbox(op[2])
                    cli.get(op[1], box.lb, box.ub)
                elif kind == "step":
                    cli.step()
                elif kind == "flush":
                    cli.flush()
                else:  # pragma: no cover - spec has no failures
                    raise ValueError(f"unexpected conformance op {kind!r}")
                cli.quiesce()
            cli.quiesce()
            tape = recorder.finalize(
                config=config,
                policy_spec=policy_spec(spec),
                projection=cli.projection(),
            )
    finally:
        handle.stop()
        handle.join()
    return tape


def replay_against_cluster(tape) -> dict:
    """Phase 2: replay a tape on the sharded cluster; byte equivalence."""
    from repro.live.cluster import LiveCluster
    from repro.workloads.capture import config_from_meta
    from repro.workloads.load import replay_tape

    config = config_from_meta(tape.meta["config"])
    name, opts = tape.meta["policy"]
    with LiveCluster(config, (name, dict(opts)), N_SHARDS) as cluster:
        with cluster.client(name="replay") as client:
            report = replay_tape(tape, client)
    return report.to_json()


def run_burst(smoke: bool, enforce: bool, put_ceiling: float,
              get_ceiling: float) -> dict:
    """Phase 3: seeded open-loop burst against the sharded cluster."""
    from repro.live.cluster import LiveCluster
    from repro.live.conformance import WORKLOADS, build_config
    from repro.staging.service import build_geometry
    from repro.workloads.load import SLO, LoadSpec, run_load

    spec = WORKLOADS["hybrid"].with_overrides(enforcement_scope="group")
    config = build_config(spec)
    _, domain, _, _ = build_geometry(config)
    pspec = (
        "corec",
        {
            "promote_on_access": False,
            "max_promotions_per_step": 0,
            "enforcement_scope": "group",
        },
    )
    load_spec = LoadSpec(
        process=LOAD_PROCESS,
        rate=SMOKE_RATE if smoke else LOAD_RATE,
        duration=SMOKE_DURATION if smoke else LOAD_DURATION,
        flows=SMOKE_FLOWS if smoke else LOAD_FLOWS,
        seed=LOAD_SEED,
    )
    slo = SLO(
        put_p99_ms=put_ceiling,
        get_p99_ms=get_ceiling,
        max_error_rate=MAX_ERROR_RATE,
    )
    with LiveCluster(config, pspec, N_SHARDS) as cluster:
        report = run_load(
            lambda flow: cluster.client(name=flow),
            load_spec,
            domain=domain,
            slo=slo,
            enforce_slo=enforce,
        )
    out = report.to_json()
    out["spec"] = {
        "process": load_spec.process,
        "rate": load_spec.rate,
        "duration": load_spec.duration,
        "flows": load_spec.flows,
        "seed": load_spec.seed,
        "shards": N_SHARDS,
    }
    return out


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="short CI burst; committed baseline left untouched")
    parser.add_argument("--emit-tape", default="", metavar="PATH",
                        help="write the freshly captured tape here")
    parser.add_argument("--check-tape", default="", metavar="PATH",
                        help="also replay a committed tape (format back-compat; "
                             f"e.g. {os.path.relpath(DEFAULT_COMMITTED_TAPE)})")
    parser.add_argument("--out", default="",
                        help="directory for the smoke run's JSON payload")
    args = parser.parse_args(argv)

    cpus = available_cpus()
    put_ceiling, get_ceiling = slo_ceilings_ms()
    if cpus >= MIN_CPUS_FOR_SLO_GATE:
        slo_gate = f"enforced (put p99 <= {put_ceiling:.0f} ms, " \
                   f"get p99 <= {get_ceiling:.0f} ms)"
        enforce = True
    else:
        slo_gate = (
            f"report-only ({cpus} cpus < {MIN_CPUS_FOR_SLO_GATE}; shard "
            f"processes and flow threads time-slice one core, percentiles "
            f"measure the scheduler, not the code)"
        )
        enforce = False

    print("phase 1: capturing hybrid workload from single-process live ...")
    tape = capture_tape()
    print(f"  {len(tape)} ops on tape "
          f"({sum(1 for o in tape.ops if o.op == 'put')} puts, "
          f"{sum(1 for o in tape.ops if o.op == 'get')} gets)")
    if args.emit_tape:
        tape.save(args.emit_tape)
        print(f"  tape written to {args.emit_tape}")

    print(f"phase 2: replaying tape against the {N_SHARDS}-shard cluster ...")
    replay = replay_against_cluster(tape)
    print(f"  digest checks: {replay['digest_checks']}  "
          f"mismatches: {len(replay['mismatches'])}  "
          f"projection: {replay['projection_check']}")

    committed_replay = None
    if args.check_tape:
        from repro.workloads.capture import Tape

        print(f"phase 2b: replaying committed tape {args.check_tape} ...")
        committed_replay = replay_against_cluster(Tape.load(args.check_tape))
        print(f"  digest checks: {committed_replay['digest_checks']}  "
              f"mismatches: {len(committed_replay['mismatches'])}  "
              f"projection: {committed_replay['projection_check']}")

    print(f"phase 3: open-loop {LOAD_PROCESS} burst on {N_SHARDS} shards ...")
    load = run_burst(args.smoke, enforce, put_ceiling, get_ceiling)
    print(f"  {load['ops']} ops ({load['errors']} errors) in "
          f"{load['wall_s']:.2f} s -> {load['achieved_rate']:.1f} ops/s  "
          f"put p99 {load['put_percentiles_ms'].get('p99', 0):.2f} ms  "
          f"get p99 {load['get_percentiles_ms'].get('p99', 0):.2f} ms  "
          f"lateness p99 {load['lateness_p99_ms']:.2f} ms")

    payload = {
        "config": {
            "shards": N_SHARDS,
            "cpus": cpus,
            "smoke": args.smoke,
            "slo_put_p99_ms": SLO_PUT_P99_MS,
            "slo_get_p99_ms": SLO_GET_P99_MS,
            "effective_put_ceiling_ms": put_ceiling,
            "effective_get_ceiling_ms": get_ceiling,
            "max_error_rate": MAX_ERROR_RATE,
        },
        "tape_ops": len(tape),
        "replay": replay,
        "committed_tape_replay": committed_replay,
        "load": load,
        "slo_gate": slo_gate,
    }
    # A smoke run never overwrites the committed full baseline.
    if not args.smoke:
        out_path = OUT_PATH
    elif args.out:
        out_path = os.path.join(args.out, "bench_load_smoke.json")
    else:
        out_path = ""
    if out_path:
        os.makedirs(os.path.dirname(out_path) or ".", exist_ok=True)
        with open(out_path, "w", encoding="utf-8") as fh:
            json.dump(payload, fh, indent=2)
        print(f"payload -> {out_path}")
    print(f"slo_gate: {slo_gate}")

    if not replay["ok"]:
        print("FAIL: tape replay against the sharded cluster is not "
              "byte-equivalent:", file=sys.stderr)
        for m in replay["mismatches"][:5]:
            print(f"  {m}", file=sys.stderr)
        return 1
    if committed_replay is not None and not committed_replay["ok"]:
        print("FAIL: committed tape no longer replays byte-equivalently "
              "(format or behavior regression):", file=sys.stderr)
        for m in committed_replay["mismatches"][:5]:
            print(f"  {m}", file=sys.stderr)
        return 1
    if load["slo_gate"] == "fail":
        print("FAIL: open-loop SLO gate: " + "; ".join(load["slo_violations"]),
              file=sys.stderr)
        return 1
    if load["slo_violations"]:
        # report-only: recorded, printed, not gating.
        print("slo violations (report-only): "
              + "; ".join(load["slo_violations"]))
    return 0


if __name__ == "__main__":
    sys.exit(main())
