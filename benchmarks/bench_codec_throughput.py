"""Library performance — GF(2^8)/Reed-Solomon kernel throughput.

Not a paper figure: these benchmarks track the host-side performance of
the erasure substrate itself (the part that does real computation), so
regressions in the vectorized kernels are caught. Numbers are whatever
the host delivers; the assertions only guard against catastrophic
de-vectorization (e.g. a Python-loop fallback).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.erasure import RSCode
from repro.erasure.gf256 import GF256

SHARD = 1 << 20  # 1 MiB shards


@pytest.fixture(scope="module")
def shards():
    rng = np.random.default_rng(0)
    return [rng.integers(0, 256, SHARD, dtype=np.uint8) for _ in range(6)]


def test_gf_addmul_throughput(benchmark, shards):
    acc = np.zeros(SHARD, dtype=np.uint8)

    def run():
        GF256.addmul_bytes(acc, 0x57, shards[0])

    benchmark(run)
    mbps = SHARD / benchmark.stats["mean"] / 1e6
    benchmark.extra_info["MB_per_s"] = mbps
    assert mbps > 50, f"GF addmul de-vectorized? {mbps:.1f} MB/s"


@pytest.mark.parametrize("k,m", [(3, 1), (6, 3)])
def test_rs_encode_throughput(benchmark, shards, k, m):
    code = RSCode(k, m)

    def run():
        return code.encode(shards[:k])

    benchmark(run)
    data_mb = k * SHARD / 1e6
    mbps = data_mb / benchmark.stats["mean"]
    benchmark.extra_info["data_MB_per_s"] = mbps
    assert mbps > 20, f"RS({k},{m}) encode too slow: {mbps:.1f} MB/s"


def test_rs_decode_throughput(benchmark, shards):
    code = RSCode(4, 2)
    parity = code.encode(shards[:4])
    present = {0: shards[0], 2: shards[2], 4: parity[0], 5: parity[1]}

    def run():
        return code.decode(present)

    benchmark(run)
    mbps = 4 * SHARD / 1e6 / benchmark.stats["mean"]
    benchmark.extra_info["data_MB_per_s"] = mbps
    assert mbps > 10


def test_parity_delta_update_throughput(benchmark, shards):
    code = RSCode(4, 2)
    parity = code.encode(shards[:4])
    new = shards[4]

    def run():
        return code.update_parity(parity, 1, shards[1], new)

    benchmark(run)
    mbps = SHARD / 1e6 / benchmark.stats["mean"]
    benchmark.extra_info["MB_per_s"] = mbps
    # The delta update must beat a full stripe re-encode per byte.
    encode_time_est = benchmark.stats["mean"] * 2  # loose sanity bound
    assert mbps > 10
