"""Library performance — GF(2^8)/Reed-Solomon kernel throughput.

Not a paper figure: these benchmarks track the host-side performance of
the erasure substrate itself (the part that does real computation), so
regressions in the vectorized kernels are caught. Numbers are whatever
the host delivers; the assertions guard against de-vectorization — the
floors assume the fused table-gather kernels, so a fallback to either a
Python loop or the unfused per-coefficient path trips them.

``benchmarks/check_regression.py`` complements these floors with a
committed-baseline comparison (BENCH_codec.json) run in CI.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.erasure import RSCode
from repro.erasure.gf256 import GF256

SHARD = 1 << 20  # 1 MiB shards
BATCH_STRIPES = 32
BATCH_SHARD = 2048  # staging-object-sized shards: where batching pays most


@pytest.fixture(scope="module")
def shards():
    rng = np.random.default_rng(0)
    return [rng.integers(0, 256, SHARD, dtype=np.uint8) for _ in range(6)]


def test_gf_addmul_throughput(benchmark, shards):
    acc = np.zeros(SHARD, dtype=np.uint8)

    def run():
        GF256.addmul_bytes(acc, 0x57, shards[0])

    benchmark(run)
    mbps = SHARD / benchmark.stats["mean"] / 1e6
    benchmark.extra_info["MB_per_s"] = mbps
    assert mbps > 150, f"GF addmul de-vectorized? {mbps:.1f} MB/s"


@pytest.mark.parametrize("k,m", [(3, 1), (6, 3)])
def test_rs_encode_throughput(benchmark, shards, k, m):
    code = RSCode(k, m)

    def run():
        return code.encode(shards[:k])

    benchmark(run)
    data_mb = k * SHARD / 1e6
    mbps = data_mb / benchmark.stats["mean"]
    benchmark.extra_info["data_MB_per_s"] = mbps
    assert mbps > 100, f"RS({k},{m}) encode too slow: {mbps:.1f} MB/s"


def test_rs_encode_batch_throughput(benchmark):
    rng = np.random.default_rng(1)
    code = RSCode(6, 3)
    stripes = [
        [rng.integers(0, 256, BATCH_SHARD, dtype=np.uint8) for _ in range(6)]
        for _ in range(BATCH_STRIPES)
    ]

    def run():
        return code.encode_batch(stripes)

    benchmark(run)
    data_mb = BATCH_STRIPES * 6 * BATCH_SHARD / 1e6
    mbps = data_mb / benchmark.stats["mean"]
    benchmark.extra_info["data_MB_per_s"] = mbps
    assert mbps > 100, f"batched encode too slow: {mbps:.1f} MB/s"


def test_rs_encode_parallel_throughput(benchmark, shards):
    """Stripe-parallel encode: column splits over a worker pool.

    This is the configuration the live backend runs (RSCode.parallel_map
    wired to the engine's codec pool).  The absolute floor is 2x the
    serial encode baseline committed before the native kernel landed
    (433.8 MB/s) — the tentpole acceptance bar.
    """
    from concurrent.futures import ThreadPoolExecutor

    code = RSCode(6, 3)
    with ThreadPoolExecutor(max_workers=8) as pool:

        def pool_map(tasks):
            futs = [pool.submit(task) for task in tasks[1:]]
            tasks[0]()
            for fut in futs:
                fut.result()

        code.parallel_map = pool_map

        def run():
            return code.encode(shards[:6])

        benchmark(run)
    assert code.parallel_stats["passes"] >= 1, "encode never fanned out"
    mbps = 6 * SHARD / 1e6 / benchmark.stats["mean"]
    benchmark.extra_info["data_MB_per_s"] = mbps
    benchmark.extra_info["parallel_passes"] = code.parallel_stats["passes"]
    assert mbps > 867.6, f"parallel encode below 2x serial floor: {mbps:.1f} MB/s"


def test_rs_decode_throughput(benchmark, shards):
    code = RSCode(4, 2)
    parity = code.encode(shards[:4])
    present = {0: shards[0], 2: shards[2], 4: parity[0], 5: parity[1]}

    def run():
        return code.decode(present)

    benchmark(run)
    mbps = 4 * SHARD / 1e6 / benchmark.stats["mean"]
    benchmark.extra_info["data_MB_per_s"] = mbps
    assert mbps > 50


def test_rs_reconstruct_shard_throughput(benchmark, shards):
    # Single missing shard: one combination-row kernel pass, so this must
    # run ~k times faster (per stripe) than the full decode above.
    code = RSCode(6, 3)
    parity = code.encode(shards[:6])
    full = {i: s for i, s in enumerate(shards[:6] + parity)}
    present = {i: s for i, s in full.items() if i != 3}

    def run():
        return code.reconstruct_shard(present, 3)

    benchmark(run)
    mbps = SHARD / 1e6 / benchmark.stats["mean"]
    benchmark.extra_info["shard_MB_per_s"] = mbps
    assert mbps > 50, f"single-shard reconstruct too slow: {mbps:.1f} MB/s"


def test_parity_delta_update_throughput(benchmark, shards):
    code = RSCode(4, 2)
    parity = code.encode(shards[:4])
    new = shards[4]

    def run():
        return code.update_parity(parity, 1, shards[1], new)

    benchmark(run)
    mbps = SHARD / 1e6 / benchmark.stats["mean"]
    benchmark.extra_info["MB_per_s"] = mbps
    assert mbps > 30
