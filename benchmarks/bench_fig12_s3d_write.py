"""Figure 12 — cumulative S3D write response time, three weak-scaling points.

Paper claims at 4480/8960/17920 cores: CoREC writes 7.3%/14.8%/5.4% faster
than pure erasure coding and 4.2%/5.3%/17.2% slower than replication; PFS
(no staging) is the slowest; DataSpaces without resilience the fastest.
"""

from __future__ import annotations

import pytest

from repro.staging.checkpoint import PFSModel
from repro.workloads.s3d import S3DConfig

from common import print_table, save_results
from bench_fig11_s3d_read import FABRIC_SCALE, SHRINK, TIMESTEPS, SCALES, run_s3d


def pfs_cumulative_write(cfg: S3DConfig) -> float:
    pfs = PFSModel(aggregate_bandwidth_bps=2.0e8 / FABRIC_SCALE, latency_s=5e-3)
    return TIMESTEPS * pfs.write_time(cfg.per_step_bytes)


def fig12_experiment():
    table = {}
    for scale in SCALES:
        rows = []
        cfg_probe = S3DConfig(scale_index=scale, shrink=SHRINK, per_core_subdomain=16)
        rows.append({"policy": "pfs", "cum_write_s": pfs_cumulative_write(cfg_probe)})
        for policy in ("dataspaces", "replicate", "erasure", "corec"):
            svc, wl, cfg = run_s3d(scale, policy)
            rows.append(
                {
                    "policy": policy,
                    "cum_write_s": wl.cumulative_write_s,
                    "storage_efficiency": svc.metrics.storage.efficiency(),
                    "read_errors": svc.read_errors,
                }
            )
        table[scale] = rows
    return table


def test_fig12_s3d_cumulative_write(benchmark):
    table = benchmark.pedantic(fig12_experiment, rounds=1, iterations=1)
    for scale, rows in table.items():
        cores = [4480, 8960, 17920][scale]
        print_table(
            f"Figure 12: cumulative write response, {cores}-core scale (/8^3)",
            rows,
            [
                ("policy", "mechanism", ""),
                ("cum_write_s", "cum write (s)", "{:.4f}"),
                ("storage_efficiency", "storage eff", "{:.3f}"),
            ],
        )
    save_results("fig12_s3d_write", table)

    gaps = []
    for scale, rows in table.items():
        by = {r["policy"]: r for r in rows}
        # PFS is the slowest write path; plain staging the fastest.
        staging = [p for p in by if p != "pfs"]
        assert all(by["pfs"]["cum_write_s"] > by[p]["cum_write_s"] for p in staging)
        assert all(
            by["dataspaces"]["cum_write_s"] <= by[p]["cum_write_s"]
            for p in ("replicate", "erasure", "corec")
        )
        # CoREC sits in replication's band and beats erasure coding.  The
        # smallest scale runs a single 4-server coding group where every
        # scheme contends on the same NICs, so the erasure/CoREC ordering
        # is only asserted for the properly weak-scaled deployments.
        assert by["replicate"]["cum_write_s"] <= by["corec"]["cum_write_s"] * 1.15
        if scale > 0:
            assert by["corec"]["cum_write_s"] < by["erasure"]["cum_write_s"]
        gaps.append(
            {
                "scale": scale,
                "corec_vs_erasure_pct": 100
                * (1 - by["corec"]["cum_write_s"] / by["erasure"]["cum_write_s"]),
                "corec_vs_replicate_pct": 100
                * (by["corec"]["cum_write_s"] / by["replicate"]["cum_write_s"] - 1),
            }
        )
    print_table(
        "Figure 12 gaps (paper: -7.3/-14.8/-5.4% vs erasure; +4.2/+5.3/+17.2% vs replicate)",
        gaps,
        [
            ("scale", "scale", "{}"),
            ("corec_vs_erasure_pct", "faster than erasure %", "{:.1f}"),
            ("corec_vs_replicate_pct", "slower than replicate %", "{:.1f}"),
        ],
    )
    benchmark.extra_info["scales"] = len(table)
