"""Ablation — topology-aware ring placement vs naive placement.

Section III-A claims the topology-aware logical ring separates a stripe's
shards across cabinets, so a correlated cabinet failure costs at most one
shard per stripe.  The ablation measures *survivability*: on a cluster
where each cabinet holds 4 nodes, fail one whole cabinet and count how
many staged entities remain recoverable under each placement.
"""

from __future__ import annotations

import pytest

from repro import DataLossError, ErasurePolicy, StagingConfig, StagingService
from repro.core.recovery import RecoveryConfig

from common import print_table, save_results


def run_cabinet_failure(topology_aware: bool) -> dict:
    svc = StagingService(
        StagingConfig(
            # 16 servers over 8 cabinets of 2: enough cabinets for a 4-shard
            # coding group to span 4 distinct failure domains — the naive
            # identity ring instead packs a group into 2 cabinets.
            n_servers=16,
            nodes_per_cabinet=2,
            domain_shape=(64, 64, 64),
            element_bytes=1,
            object_max_bytes=4096,
            topology_aware=topology_aware,
            seed=3,
        ),
        ErasurePolicy(recovery=RecoveryConfig(mode="none", repair_on_access=False)),
    )

    def wf():
        yield from svc.put("w0", "v", svc.domain.bbox)
        yield from svc.end_step()
        yield from svc.flush()

    svc.run_workflow(wf())
    svc.run()
    separation_ok = svc.layout.validate_failure_separation()
    # Correlated failure: the whole of cabinet 0 goes down at once.
    for sid in svc.cluster.servers_in_cabinet(0):
        svc.fail_server(sid)

    recovered = 0
    lost = 0
    for key in list(svc.directory.entities):
        ent = svc.directory.entities[key]

        def read_one(e=ent):
            payload = yield from svc.runtime.read_entity(e, "probe", repair=False)
            return payload

        try:
            svc.run_workflow(read_one())
            recovered += 1
        except DataLossError:
            lost += 1
    return {
        "placement": "topology-aware" if topology_aware else "naive",
        "separation_ok": separation_ok,
        "entities": recovered + lost,
        "recovered": recovered,
        "lost": lost,
    }


def test_ablation_placement_survivability(benchmark):
    rows = benchmark.pedantic(
        lambda: [run_cabinet_failure(True), run_cabinet_failure(False)],
        rounds=1,
        iterations=1,
    )
    print_table("Ablation: placement vs correlated cabinet failure", rows, [
        ("placement", "placement", ""),
        ("separation_ok", "groups separated", "{}"),
        ("entities", "entities", "{}"),
        ("recovered", "recovered", "{}"),
        ("lost", "lost", "{}"),
    ])
    save_results("ablation_placement", rows)
    topo, naive = rows
    # Topology-aware placement keeps every group across distinct cabinets
    # and survives the cabinet loss without losing a single entity.
    assert topo["separation_ok"]
    assert topo["lost"] == 0
    # Naive placement collocates whole coding groups in one cabinet and
    # loses data to the same event.
    assert not naive["separation_ok"]
    assert naive["lost"] > 0
