"""Figure 8 — write/read response time and write efficiency, five cases.

Reproduces the paper's central comparison on the Table I setup: for each
synthetic access pattern, the average write (cases 1-4) or read (case 5)
response time of DataSpaces (no fault tolerance), Replication, Erasure,
Simple Hybrid and CoREC, plus the write-efficiency ratio (response time /
storage efficiency, lower = better balance).

Case 5 additionally covers the failure variants the paper plots:
CoREC+1d/2d (degraded mode) and CoREC+1f/2f (lazy recovery), and
Erasure+1f/2f (aggressive recovery).
"""

from __future__ import annotations

import pytest

from repro.core.recovery import RecoveryConfig

from common import POLICIES, print_table, run_synthetic, save_results

WRITE_CASES = ("case1", "case2", "case3", "case4")


def run_write_cases():
    results = {}
    for case in WRITE_CASES:
        results[case] = [run_synthetic(p, case) for p in POLICIES]
    return results


def run_case5_variants():
    rows = [run_synthetic(p, "case5") for p in POLICIES]

    def variant(policy, label, plan, **kw):
        r = run_synthetic(policy, "case5", failure_plan=plan, **kw)
        r["policy"] = label
        return r

    # Degraded mode: failures, no replacement (reconstruct per read).
    rows.append(
        variant(
            "corec",
            "corec+1d",
            {4: [("fail", 0)]},
            recovery=RecoveryConfig(mode="none", repair_on_access=False),
        )
    )
    rows.append(
        variant(
            "corec",
            "corec+2d",
            {4: [("fail", 0)], 6: [("fail", 5)]},
            recovery=RecoveryConfig(mode="none", repair_on_access=False),
        )
    )
    # Lazy recovery: replacements join, repair on access + deadline sweep.
    rows.append(
        variant("corec", "corec+1f", {4: [("fail", 0)], 8: [("replace", 0)]})
    )
    rows.append(
        variant(
            "corec",
            "corec+2f",
            {4: [("fail", 0)], 6: [("fail", 5)], 8: [("replace", 0)], 12: [("replace", 5)]},
        )
    )
    # Erasure with aggressive recovery under failures.
    rows.append(variant("erasure", "erasure+1f", {4: [("fail", 0)]}))
    rows.append(
        variant("erasure", "erasure+2f", {4: [("fail", 0)], 6: [("fail", 5)]})
    )
    return rows


COLUMNS = [
    ("policy", "mechanism", ""),
    ("put_mean_ms", "write ms", "{:.3f}"),
    ("put_steady_ms", "steady ms", "{:.3f}"),
    ("get_mean_ms", "read ms", "{:.3f}"),
    ("storage_efficiency", "storage eff", "{:.3f}"),
    ("write_efficiency_ms", "write-eff", "{:.3f}"),
    ("read_errors", "read errs", "{}"),
]


def test_fig8_write_cases(benchmark):
    results = benchmark.pedantic(run_write_cases, rounds=1, iterations=1)
    for case, rows in results.items():
        print_table(f"Figure 8 {case}: write response & write efficiency", rows, COLUMNS)
    save_results("fig8_write_cases", results)

    for case, rows in results.items():
        by = {r["policy"]: r for r in rows}
        # No data may be lost anywhere.
        assert all(r["read_errors"] == 0 for r in rows)
        # DataSpaces (no FT) is always the write-latency floor.
        assert by["dataspaces"]["put_mean_ms"] < by["replicate"]["put_mean_ms"]
        # Replication is the fastest resilient scheme; erasure the slowest.
        assert by["replicate"]["put_mean_ms"] <= by["corec"]["put_mean_ms"]
        assert by["corec"]["put_mean_ms"] < by["erasure"]["put_mean_ms"] * 1.05
        # CoREC beats simple hybrid in every write pattern (the headline).
        if case != "case3":
            assert by["corec"]["put_mean_ms"] < by["hybrid"]["put_mean_ms"]
        # Steady state: classification converged, CoREC near replication.
        assert by["corec"]["put_steady_ms"] < by["erasure"]["put_steady_ms"]
        # CoREC offers the best time/storage balance of the resilient set.
        # Case 3's 20-step mean is dominated by the one-off cold-start
        # transition churn (87% of the domain is write-once), so the
        # balance claim is checked on the converged steady state there.
        metric = "write_efficiency_steady_ms" if case == "case3" else "write_efficiency_ms"
        resilient = ("replicate", "erasure", "hybrid", "corec")
        best = min(resilient, key=lambda p: by[p][metric])
        assert best == "corec", f"{case}: best write-efficiency is {best}"
    benchmark.extra_info["cases"] = len(results)


def test_fig8_case5_reads(benchmark):
    rows = benchmark.pedantic(run_case5_variants, rounds=1, iterations=1)
    print_table("Figure 8 case 5: read response under failures", rows, COLUMNS)
    save_results("fig8_case5", rows)
    by = {r["policy"]: r for r in rows}
    assert all(r["read_errors"] == 0 for r in rows)
    base = by["corec"]["get_mean_ms"]
    # Degraded reads cost more than the failure-free case, and two failures
    # cost more than one.
    assert by["corec+1d"]["get_mean_ms"] > base
    assert by["corec+2d"]["get_mean_ms"] > by["corec+1d"]["get_mean_ms"]
    # Lazy recovery beats staying degraded.
    assert by["corec+1f"]["get_mean_ms"] < by["corec+1d"]["get_mean_ms"]
    assert by["corec+2f"]["get_mean_ms"] < by["corec+2d"]["get_mean_ms"]
    # More failures cost more for the erasure baseline too.
    assert by["erasure+1f"]["get_mean_ms"] > by["erasure"]["get_mean_ms"]
    assert by["erasure+2f"]["get_mean_ms"] > by["erasure+1f"]["get_mean_ms"]
    # With recovery enabled CoREC's failure reads stay in the same band as
    # aggressively-recovered erasure (at S3D scale the aggressive burst's
    # interference is what separates them — see bench_fig11/12).
    assert by["corec+1f"]["get_mean_ms"] < by["erasure+1f"]["get_mean_ms"] * 1.3
    benchmark.extra_info["variants"] = len(rows)
