"""Figure 9 — execution-time breakdown per mechanism per case.

The paper splits the total workflow execution time of cases 1-4 into
*transport* (data movement), *metadata* (distributed directory updates),
*encode* (parity computation) and *classify* (CoREC's data classification,
reported as a number because it is tiny).  The claims to reproduce:

- CoREC has less encode time than simple hybrid and pure erasure in every
  case (fewer erasure-coded objects incur updates, and delta updates beat
  re-encoding);
- CoREC has less transport time than both erasure-family baselines;
- classification cost is negligible.
"""

from __future__ import annotations

from common import POLICIES, print_table, run_synthetic, save_results

CASES = ("case1", "case2", "case3", "case4")


def fig9_experiment():
    results = {}
    for case in CASES:
        rows = []
        for policy in POLICIES:
            r = run_synthetic(policy, case)
            b = r["breakdown_s"]
            rows.append(
                {
                    "policy": policy,
                    "transport_s": b["transport"],
                    "metadata_s": b["metadata"],
                    "encode_s": b["encode"],
                    "classify_s": b["classify"],
                    "decode_s": b["decode"],
                    "store_s": b["store"],
                    "total_s": sum(b.values()),
                }
            )
        results[case] = rows
    return results


def test_fig9_breakdown(benchmark):
    results = benchmark.pedantic(fig9_experiment, rounds=1, iterations=1)
    cols = [
        ("policy", "mechanism", ""),
        ("transport_s", "transport", "{:.4f}"),
        ("metadata_s", "metadata", "{:.4f}"),
        ("encode_s", "encode", "{:.4f}"),
        ("classify_s", "classify", "{:.5f}"),
        ("store_s", "store", "{:.4f}"),
        ("total_s", "total", "{:.4f}"),
    ]
    for case, rows in results.items():
        print_table(f"Figure 9 {case}: execution-time breakdown", rows, cols)
    save_results("fig9_breakdown", results)

    for case, rows in results.items():
        by = {r["policy"]: r for r in rows}
        # CoREC encodes less than hybrid and erasure (delta updates,
        # fewer coded-object updates).
        assert by["corec"]["encode_s"] < by["hybrid"]["encode_s"], case
        assert by["corec"]["encode_s"] < by["erasure"]["encode_s"], case
        # CoREC transports less than the erasure-family baselines.
        assert by["corec"]["transport_s"] < by["erasure"]["transport_s"], case
        # Classification cost is negligible (<2% of CoREC's total).
        assert by["corec"]["classify_s"] < 0.02 * by["corec"]["total_s"], case
        # Non-encoding schemes spend nothing on encode.
        assert by["dataspaces"]["encode_s"] == 0
        assert by["replicate"]["encode_s"] == 0
    benchmark.extra_info["cases"] = len(results)
