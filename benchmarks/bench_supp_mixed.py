"""Supplementary — concurrent writers and readers (the coupled workflow).

The paper's Table I deployment runs 64 writers *and* 32 readers against
the same 8 staging servers; Figure 8's write cases isolate the write
path. This supplementary experiment runs the mixed workload (reads after
every write step, as the coupled analysis would) and checks that the
orderings survive read/write interference — the regime the staging
service actually operates in.
"""

from __future__ import annotations

import pytest

from common import POLICIES, print_table, run_synthetic, save_results


def experiment():
    rows = []
    for policy in POLICIES:
        r = run_synthetic(policy, "case1", read_in_write_cases=True)
        rows.append(r)
    return rows


def run_synthetic_mixed(policy, **kw):
    # run_synthetic builds the workload config; route the extra flag in.
    return run_synthetic(policy, "case1", **kw)


def test_supp_mixed_read_write(benchmark):
    rows = benchmark.pedantic(experiment, rounds=1, iterations=1)
    print_table("Supplementary: concurrent writers + readers (case 1)", rows, [
        ("policy", "mechanism", ""),
        ("put_mean_ms", "write ms", "{:.3f}"),
        ("get_mean_ms", "read ms", "{:.3f}"),
        ("storage_efficiency", "storage eff", "{:.3f}"),
        ("read_errors", "read errs", "{}"),
    ])
    save_results("supp_mixed", rows)
    by = {r["policy"]: r for r in rows}
    assert all(r["read_errors"] == 0 for r in rows)
    # The write ordering of Figure 8 survives reader interference.
    assert by["dataspaces"]["put_mean_ms"] < by["replicate"]["put_mean_ms"]
    assert by["replicate"]["put_mean_ms"] <= by["corec"]["put_mean_ms"]
    assert by["corec"]["put_mean_ms"] < by["erasure"]["put_mean_ms"]
    # Reads exist and stay in one band across schemes (no-failure case).
    reads = [r["get_mean_ms"] for r in rows]
    assert min(reads) > 0
    assert max(reads) < 3 * min(reads)
