#!/usr/bin/env python
"""Microbenchmark: protocol frame assembly — header encoding and copies.

Quantifies the two hot-path costs the zero-copy framing removed:

1. **Header re-encoding**: ``json.dumps`` of the full header dict per
   frame vs completing a cached :func:`header_preamble` (append decimal
   payload length + ``}``).  A put/get workload re-sends the same
   op/var/region metadata thousands of times; only ``payload_len``
   changes.
2. **Payload joins**: the legacy ``_encode_frame`` concatenation
   (header + payload into one bytes object) vs :func:`frame_parts`
   handing the payload buffer to the transport untouched.

Prints per-frame costs and the resulting frames/s; writes
``results/protocol_framing.json``.  The only hard assertion is the copy
count (framing must not join payload bytes) — timing ratios are
informational because they are host-dependent.

Run: ``PYTHONPATH=src python benchmarks/bench_protocol_framing.py``
(``--reps`` to change the measurement size; ``--smoke`` for CI).
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

import numpy as np

sys.path.insert(0, os.path.join(os.path.dirname(__file__), os.pardir, "src"))

from repro.live import protocol
from repro.live.protocol import PROTO_STATS, frame_parts, header_preamble

OUT_PATH = os.path.join(os.path.dirname(__file__), "results", "protocol_framing.json")

HEADER = {
    "op": "put",
    "client": "bench",
    "var": "bench0",
    "lb": [0, 0, 0],
    "ub": [64, 64, 16],
    "dtype": "uint8",
}
PAYLOAD_BYTES = 65536


def best_rate(fn, frames: int, reps: int) -> float:
    """Frames per second, best of ``reps`` batches."""
    best = float("inf")
    for _ in range(reps):
        t0 = time.perf_counter()
        fn(frames)
        best = min(best, time.perf_counter() - t0)
    return frames / best


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--frames", type=int, default=20000)
    ap.add_argument("--reps", type=int, default=5)
    ap.add_argument("--smoke", action="store_true", help="tiny sizes for CI")
    args = ap.parse_args()
    frames = 2000 if args.smoke else args.frames
    reps = 2 if args.smoke else args.reps

    payload = memoryview((np.arange(PAYLOAD_BYTES) % 256).astype(np.uint8)).cast("B")
    pre = header_preamble(HEADER)

    def per_frame_json(n: int) -> None:
        for i in range(n):
            HEADER["payload_len"] = PAYLOAD_BYTES  # what a naive path re-dumps
            json.dumps(HEADER, separators=(",", ":")).encode("utf-8")
        HEADER.pop("payload_len", None)

    def cached_preamble(n: int) -> None:
        for i in range(n):
            frame_parts(None, payload, preamble=pre)

    def legacy_join(n: int) -> None:
        for i in range(n):
            protocol._encode_frame(HEADER, payload)

    results: dict[str, float] = {}
    results["json_headers_per_s"] = best_rate(per_frame_json, frames, reps)
    results["preamble_frames_per_s"] = best_rate(cached_preamble, frames, reps)
    results["header_speedup"] = (
        results["preamble_frames_per_s"] / results["json_headers_per_s"]
    )

    # Copy audit around the join comparison.
    before = dict(PROTO_STATS)
    results["join_frames_per_s"] = best_rate(legacy_join, max(200, frames // 10), reps)
    joined = PROTO_STATS["payload_copies"] - before["payload_copies"]
    before = dict(PROTO_STATS)
    results["parts_frames_per_s"] = best_rate(cached_preamble, frames, reps)
    parts_copies = PROTO_STATS["payload_copies"] - before["payload_copies"]
    results["join_speedup"] = (
        results["parts_frames_per_s"] / results["join_frames_per_s"]
    )
    results["join_MB_per_s"] = results["join_frames_per_s"] * PAYLOAD_BYTES / 1e6
    results["parts_MB_per_s"] = results["parts_frames_per_s"] * PAYLOAD_BYTES / 1e6

    for key in sorted(results):
        print(f"  {key:24s} {results[key]:14.1f}")

    os.makedirs(os.path.dirname(OUT_PATH), exist_ok=True)
    with open(OUT_PATH, "w", encoding="utf-8") as fh:
        json.dump(
            {"payload_bytes": PAYLOAD_BYTES, "frames": frames, "results": results},
            fh,
            indent=2,
        )
        fh.write("\n")
    print(f"-> {OUT_PATH}")

    if parts_copies != 0:
        print("FAIL: frame_parts copied payload bytes", file=sys.stderr)
        return 1
    if joined == 0:
        print("FAIL: legacy join no longer counts copies (stats broken)", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
