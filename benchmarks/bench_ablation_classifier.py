"""Ablation — the hot/cold classifier's signals and accuracy.

Sweeps the classifier configuration on the hot-spot pattern (case 3, the
one classification is for):

- full classifier (recency + spatial + temporal lookahead);
- recency only;
- no lookahead;
- random protection (the SimpleHybrid strawman) as the no-classifier floor.

Reports the observed miss ratio and the steady-state write response —
the empirical counterpart of the model's r_m curves in Figure 4.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import CoRECConfig, CoRECPolicy, StagingService
from repro.core.classifier import ClassifierConfig

from common import make_policy, print_table, run_synthetic, save_results, table1_config
from repro.workloads.synthetic import SyntheticWorkload, SyntheticWorkloadConfig


def run_variant(name: str, clf: ClassifierConfig | None):
    if clf is None:
        row = run_synthetic("hybrid", "case3")
        row["variant"] = name
        row["miss_ratio"] = float("nan")
        return row
    svc = StagingService(
        table1_config(),
        CoRECPolicy(CoRECConfig(storage_bound=0.67, classifier=clf)),
    )
    wl = SyntheticWorkload(
        svc,
        SyntheticWorkloadConfig(case="case3", n_writers=64, n_readers=32, timesteps=20),
    )
    svc.run_workflow(wl.run())
    svc.run()
    steady = float(np.mean(wl.step_put.values[-5:]))
    return {
        "variant": name,
        "put_mean_ms": svc.metrics.put_stat.mean * 1e3,
        "put_steady_ms": steady * 1e3,
        "miss_ratio": svc.policy.miss_ratio(),
        "read_errors": svc.read_errors,
    }


def ablation():
    return [
        run_variant("full classifier", ClassifierConfig()),
        run_variant("recency only", ClassifierConfig(spatial_radius=0, temporal_lookahead=False)),
        run_variant("no lookahead", ClassifierConfig(temporal_lookahead=False)),
        run_variant("random (simple hybrid)", None),
    ]


def test_ablation_classifier(benchmark):
    rows = benchmark.pedantic(ablation, rounds=1, iterations=1)
    print_table("Ablation: classifier signals (case 3, hot spots)", rows, [
        ("variant", "variant", ""),
        ("put_mean_ms", "write ms", "{:.3f}"),
        ("put_steady_ms", "steady ms", "{:.3f}"),
        ("miss_ratio", "miss ratio", "{:.3f}"),
    ])
    save_results("ablation_classifier", rows)
    by = {r["variant"]: r for r in rows}
    # The classifier converges: once the hot set is identified, hot writes
    # are replica-fast, far below the random-selection strawman.
    assert by["full classifier"]["put_steady_ms"] < by["random (simple hybrid)"]["put_steady_ms"]
    # Miss ratio is a meaningful fraction, not degenerate.
    assert 0.0 <= by["full classifier"]["miss_ratio"] < 0.9
    benchmark.extra_info["miss_full"] = by["full classifier"]["miss_ratio"]
