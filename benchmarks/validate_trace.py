"""Validate exported trace artifacts against the checked-in schema.

Usage::

    python benchmarks/validate_trace.py --trace-dir trace-out \
        [--schema docs/schemas/trace_schema.json]

Checks ``trace.json`` (Chrome ``trace_event`` format), ``spans.jsonl`` and
``events.jsonl`` against ``docs/schemas/trace_schema.json``, then runs
structural cross-checks the schema language cannot express: span ids are
unique and in start order, parent links resolve to earlier spans, spans
close no earlier than they open, and every complete trace event nests
properly within its tid (the invariant that makes Perfetto render flame
charts).  Wall-clock rows (``clock: "wall"``, written by the live
backend) additionally must carry a trace id, agree with their parent's
trace id, and keep cross-process links (``attrs.remote_parent``) on
local *roots* only — sim-time traces pass unchanged.

The validator is deliberately dependency-free (the CI image has no
``jsonschema``): it implements the subset of JSON Schema the checked-in
schema uses — ``type`` (single or list), ``required``, ``properties``,
``items``, ``enum``, ``minimum``.
"""

from __future__ import annotations

import argparse
import json
import os
import sys

_TYPES = {
    "object": dict,
    "array": list,
    "string": str,
    "integer": int,
    "number": (int, float),
    "boolean": bool,
    "null": type(None),
}


def check(value, schema: dict, path: str, errors: list[str]) -> None:
    """Validate ``value`` against the supported JSON-Schema subset."""
    stype = schema.get("type")
    if stype is not None:
        allowed = stype if isinstance(stype, list) else [stype]
        ok = False
        for t in allowed:
            py = _TYPES[t]
            if isinstance(value, py) and not (t in ("integer", "number") and isinstance(value, bool)):
                ok = True
                break
        if not ok:
            errors.append(f"{path}: expected {stype}, got {type(value).__name__}")
            return
    if "enum" in schema and value not in schema["enum"]:
        errors.append(f"{path}: {value!r} not in {schema['enum']}")
    if "minimum" in schema and isinstance(value, (int, float)) and not isinstance(value, bool):
        if value < schema["minimum"]:
            errors.append(f"{path}: {value} < minimum {schema['minimum']}")
    if isinstance(value, dict):
        for req in schema.get("required", []):
            if req not in value:
                errors.append(f"{path}: missing required key {req!r}")
        for key, sub in schema.get("properties", {}).items():
            if key in value:
                check(value[key], sub, f"{path}.{key}", errors)
    if isinstance(value, list) and "items" in schema:
        for i, item in enumerate(value):
            check(item, schema["items"], f"{path}[{i}]", errors)


def _check_chrome_structure(trace: dict, errors: list[str]) -> None:
    """Cross-field invariants of the Chrome trace the schema cannot say."""
    open_by_tid: dict[int, list[float]] = {}
    for i, ev in enumerate(trace.get("traceEvents", [])):
        ph = ev.get("ph")
        if ph == "X" and "dur" not in ev:
            errors.append(f"traceEvents[{i}]: complete event without dur")
        if ph in ("X", "i") and "ts" not in ev:
            errors.append(f"traceEvents[{i}]: event without ts")
        if ph != "X":
            continue
        t0, t1 = ev["ts"], ev["ts"] + ev["dur"]
        stack = open_by_tid.setdefault(ev["tid"], [])
        while stack and stack[-1] <= t0 + 1e-6:
            stack.pop()
        if stack and stack[-1] < t1 - 1e-6:
            errors.append(
                f"traceEvents[{i}]: event [{t0}, {t1}] overlaps an open "
                f"interval ending at {stack[-1]} on tid {ev['tid']}"
            )
        stack.append(t1)


def _check_span_structure(spans: list[dict], errors: list[str]) -> None:
    seen: set[int] = set()
    trace_of: dict[int, str | None] = {}
    prev_id = 0
    for i, span in enumerate(spans):
        sid = span["span_id"]
        if sid in seen:
            errors.append(f"spans[{i}]: duplicate span_id {sid}")
        seen.add(sid)
        if sid <= prev_id:
            errors.append(f"spans[{i}]: span_id {sid} not in start order")
        prev_id = sid
        parent = span["parent_id"]
        if parent is not None and parent not in seen:
            errors.append(f"spans[{i}]: parent_id {parent} does not refer to an earlier span")
        if span["t1"] < span["t0"]:
            errors.append(f"spans[{i}]: t1 {span['t1']} < t0 {span['t0']}")
        # Wall-clock rows add distributed-trace invariants; sim rows
        # (no ``clock`` field) are untouched by all of this.
        if span.get("clock") == "wall":
            trace_id = span.get("trace_id")
            if not trace_id:
                errors.append(f"spans[{i}]: wall-clock span without a trace_id")
            if parent is not None and trace_of.get(parent) not in (None, trace_id):
                errors.append(
                    f"spans[{i}]: trace_id {trace_id!r} differs from parent "
                    f"span {parent}'s {trace_of[parent]!r}"
                )
            if (span.get("attrs") or {}).get("remote_parent") is not None and parent is not None:
                errors.append(
                    f"spans[{i}]: cross-process link (remote_parent) on a span "
                    f"with a local parent_id {parent}"
                )
        elif "trace_id" in span:
            errors.append(f"spans[{i}]: trace_id on a span not marked clock=wall")
        trace_of[sid] = span.get("trace_id")


def validate_dir(trace_dir: str, schema_path: str) -> list[str]:
    with open(schema_path, encoding="utf-8") as fh:
        schemas = json.load(fh)
    errors: list[str] = []

    trace_path = os.path.join(trace_dir, "trace.json")
    with open(trace_path, encoding="utf-8") as fh:
        trace = json.load(fh)
    check(trace, schemas["chrome_trace"], "trace", errors)
    _check_chrome_structure(trace, errors)

    spans_path = os.path.join(trace_dir, "spans.jsonl")
    spans = []
    with open(spans_path, encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, 1):
            line = line.strip()
            if not line:
                continue
            row = json.loads(line)
            check(row, schemas["span"], f"spans:{lineno}", errors)
            spans.append(row)
    _check_span_structure(spans, errors)

    events_path = os.path.join(trace_dir, "events.jsonl")
    if os.path.exists(events_path):
        with open(events_path, encoding="utf-8") as fh:
            for lineno, line in enumerate(fh, 1):
                line = line.strip()
                if line:
                    check(json.loads(line), schemas["event"], f"events:{lineno}", errors)

    if not spans:
        errors.append("spans.jsonl: no spans — traced run produced an empty trace")
    return errors


def main(argv: list[str] | None = None) -> int:
    here = os.path.dirname(os.path.abspath(__file__))
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--trace-dir", required=True)
    parser.add_argument(
        "--schema",
        default=os.path.join(here, "..", "docs", "schemas", "trace_schema.json"),
    )
    args = parser.parse_args(argv)
    errors = validate_dir(args.trace_dir, args.schema)
    if errors:
        for err in errors[:50]:
            print(f"FAIL {err}", file=sys.stderr)
        print(f"{len(errors)} schema violation(s)", file=sys.stderr)
        return 1
    print(f"ok: {args.trace_dir} conforms to {os.path.relpath(args.schema)}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
