"""Figure 11 — cumulative S3D read response time, three weak-scaling points.

Paper setup (Table II): the S3D lifted-hydrogen workflow coupled with an
analysis application at 4480 / 8960 / 17920 cores, cumulative read time
over 20 timesteps, for: PFS (no staging), DataSpaces (staging, no
resilience), Replication, Erasure and CoREC; plus failure variants where
CoREC cuts read response by up to ~40.8% (1 failure) and ~37.4% (2
failures) versus pure erasure coding.

Reproduction: each Table II column is shrunk by 8 in every writer-grid
dimension (ratios preserved, see S3DConfig); PFS is modelled by its
aggregate bandwidth.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import CoRECConfig, CoRECPolicy, ErasurePolicy, NoResilience, ReplicationPolicy, StagingConfig, StagingService
from repro.sim.network import NetworkConfig
from repro.staging.checkpoint import PFSModel
from repro.staging.server import CostModel
from repro.workloads.s3d import S3DConfig, S3DWorkload

from common import print_table, save_results

# /4 per writer-grid dimension keeps the paper's 16:1 simulation:staging
# core ratio un-clamped (64/128/256 writers on 4/8/16 staging servers), so
# the weak scaling of Table II is preserved.
SHRINK = 4
TIMESTEPS = 20
SCALES = (0, 1, 2)

# The paper stages 160-640 GB against a ~5 GB/s fabric; our reduced domains
# are ~10^4x smaller, so the byte-rate knobs are scaled down by FABRIC_SCALE
# to preserve the data:bandwidth ratio — this is what keeps recovery windows
# spanning multiple timesteps, as they do on the real machine.  The GF
# throughput is scaled less (GF_SCALE): on the testbed, encoding runs at a
# few GB/s against a 5 GB/s network, i.e. comparable per byte, and keeping
# that ratio is what puts erasure's write penalty in the paper's ~25% band
# instead of blowing it past the PFS.
FABRIC_SCALE = 32
GF_SCALE = 8


def make_policy(name):
    if name == "dataspaces":
        return NoResilience()
    if name == "replicate":
        return ReplicationPolicy()
    if name == "erasure":
        return ErasurePolicy()
    if name == "corec":
        return CoRECPolicy(CoRECConfig(storage_bound=0.67))
    raise ValueError(name)


def run_s3d(scale_index: int, policy_name: str, failure_plan=None):
    cfg = S3DConfig(
        scale_index=scale_index,
        shrink=SHRINK,
        per_core_subdomain=16,
        element_bytes=8,  # double-precision fields, as staged by S3D
        timesteps=TIMESTEPS,
        analysis_every=2,
        failure_plan=failure_plan or {},
    )
    svc = StagingService(
        StagingConfig(
            n_servers=max(4, cfg.n_staging),
            domain_shape=cfg.domain_shape,
            element_bytes=8,
            object_max_bytes=16384,
            async_protection=True,  # large-scale deployments protect off the ACK path
            nodes_per_cabinet=1,
            network=NetworkConfig(
                bandwidth_bps=5.0e9 / FABRIC_SCALE,
                local_copy_bandwidth_bps=40.0e9 / FABRIC_SCALE,
            ),
            costs=CostModel(
                memcpy_bps=20.0e9 / FABRIC_SCALE,
                gf_bps=1.0e9 / GF_SCALE,
            ),
            seed=2,
        ),
        make_policy(policy_name),
    )
    wl = S3DWorkload(svc, cfg)
    svc.run_workflow(wl.run())
    svc.run()
    return svc, wl, cfg


def pfs_cumulative_read(cfg: S3DConfig) -> float:
    """S3D without staging: analyses read the whole domain from the PFS."""
    pfs = PFSModel(aggregate_bandwidth_bps=2.0e8 / FABRIC_SCALE, latency_s=5e-3)
    reads = TIMESTEPS // 2  # analysis frequency
    return reads * pfs.read_time(cfg.per_step_bytes)


def fig11_experiment():
    table = {}
    for scale in SCALES:
        rows = []
        cfg_probe = S3DConfig(scale_index=scale, shrink=SHRINK, per_core_subdomain=16)
        rows.append({"policy": "pfs", "cum_read_s": pfs_cumulative_read(cfg_probe), "read_errors": 0})
        for policy in ("dataspaces", "replicate", "erasure", "corec"):
            svc, wl, cfg = run_s3d(scale, policy)
            rows.append(
                {
                    "policy": policy,
                    "cum_read_s": wl.cumulative_read_s,
                    "read_errors": svc.read_errors,
                }
            )
        # Failure variants: one and two failures during the run.  The two
        # failures are sequential (the first server is replaced and repaired
        # before the second fails): with RS(k,1) and a single coding group
        # at the smallest scale, two *concurrent* failures would exceed the
        # configured resilience level.
        for label, plan in (
            ("corec+1f", {4: [("fail", 0)], 8: [("replace", 0)]}),
            ("corec+2f", {4: [("fail", 0)], 6: [("replace", 0)], 8: [("fail", 2)], 12: [("replace", 2)]}),
            ("erasure+1f", {4: [("fail", 0)], 8: [("replace", 0)]}),
            ("erasure+2f", {4: [("fail", 0)], 6: [("replace", 0)], 8: [("fail", 2)], 12: [("replace", 2)]}),
        ):
            policy = label.split("+")[0]
            svc, wl, cfg = run_s3d(scale, policy, failure_plan=plan)
            rows.append(
                {"policy": label, "cum_read_s": wl.cumulative_read_s, "read_errors": svc.read_errors}
            )
        table[scale] = rows
    return table


def test_fig11_s3d_cumulative_read(benchmark):
    table = benchmark.pedantic(fig11_experiment, rounds=1, iterations=1)
    for scale, rows in table.items():
        cores = [4480, 8960, 17920][scale]
        print_table(
            f"Figure 11: cumulative read response, {cores}-core scale (/8^3)",
            rows,
            [
                ("policy", "mechanism", ""),
                ("cum_read_s", "cum read (s)", "{:.4f}"),
                ("read_errors", "read errs", "{}"),
            ],
        )
    save_results("fig11_s3d_read", table)

    for scale, rows in table.items():
        by = {r["policy"]: r for r in rows}
        assert all(r["read_errors"] == 0 for r in rows)
        # PFS-based S3D has by far the longest read time.
        staging = [p for p in by if p != "pfs"]
        assert all(by["pfs"]["cum_read_s"] > 2 * by[p]["cum_read_s"] for p in staging)
        # Failure-free staging reads are broadly similar across schemes;
        # failures make reads slower.
        assert by["corec+1f"]["cum_read_s"] > by["corec"]["cum_read_s"]
        assert by["erasure+1f"]["cum_read_s"] > by["erasure"]["cum_read_s"]
        # Under failures CoREC (replica fallbacks + lazy recovery) reads
        # faster than pure erasure coding (decode + aggressive storm).
        assert by["corec+1f"]["cum_read_s"] < by["erasure+1f"]["cum_read_s"]
        assert by["corec+2f"]["cum_read_s"] < by["erasure+2f"]["cum_read_s"]
    benchmark.extra_info["scales"] = len(table)
