"""Ablation — object fitting size (Algorithm 1's size band).

Section III-C: small objects suffer metadata overhead, large objects
inflate encode/transport latency.  Sweeping the fitting size across two
orders of magnitude on case 1 exposes the U-shape: per-object fixed costs
dominate at small sizes, per-byte costs at large sizes.
"""

from __future__ import annotations

import pytest

from repro import CoRECConfig, CoRECPolicy, StagingConfig, StagingService
from repro.workloads.synthetic import SyntheticWorkload, SyntheticWorkloadConfig

from common import print_table, save_results

SIZES = [512, 2048, 8192, 32768]


def run_size(object_max_bytes: int) -> dict:
    svc = StagingService(
        StagingConfig(
            n_servers=8,
            domain_shape=(64, 64, 64),
            element_bytes=1,
            object_max_bytes=object_max_bytes,
            seed=4,
        ),
        CoRECPolicy(CoRECConfig(storage_bound=0.67)),
    )
    wl = SyntheticWorkload(
        svc,
        SyntheticWorkloadConfig(case="case1", n_writers=64, n_readers=8, timesteps=10),
    )
    svc.run_workflow(wl.run())
    svc.run()
    return {
        "object_bytes": object_max_bytes,
        "n_blocks": svc.domain.n_blocks,
        "put_mean_ms": svc.metrics.put_stat.mean * 1e3,
        "metadata_s": svc.metrics.breakdown["metadata"],
        "transport_s": svc.metrics.breakdown["transport"],
        "read_errors": svc.read_errors,
    }


def test_ablation_object_size(benchmark):
    rows = benchmark.pedantic(lambda: [run_size(s) for s in SIZES], rounds=1, iterations=1)
    print_table("Ablation: Algorithm 1 fitting size (case 1)", rows, [
        ("object_bytes", "object B", "{}"),
        ("n_blocks", "#objects", "{}"),
        ("put_mean_ms", "write ms", "{:.3f}"),
        ("metadata_s", "metadata s", "{:.4f}"),
        ("transport_s", "transport s", "{:.4f}"),
    ])
    save_results("ablation_partition", rows)
    assert all(r["read_errors"] == 0 for r in rows)
    # More objects -> more metadata operations (per-object overhead).
    metadata = [r["metadata_s"] for r in rows]
    assert metadata == sorted(metadata, reverse=True)
    # The write response is not monotonic in object size: the best size is
    # interior (the balance Algorithm 1 targets), or at least the smallest
    # size is strictly worse than the best.
    puts = [r["put_mean_ms"] for r in rows]
    assert min(puts) < puts[0]
    benchmark.extra_info["best_bytes"] = rows[puts.index(min(puts))]["object_bytes"]
