"""Tables I and II — configuration reproduction.

Validates that the simulated deployments preserve every ratio of the
paper's experimental setups: core-count ratios, code geometry RS(3+1),
replica count, storage-efficiency targets and weak-scaling progression.
"""

from __future__ import annotations

import pytest

from repro import CoRECPolicy, StagingService
from repro.core.model import CoRECModel, ModelParams
from repro.workloads.s3d import S3DConfig, TABLE_II

from common import TABLE1_PAPER, TABLE1_SIM, make_policy, print_table, save_results, table1_config


def test_table1_configuration(benchmark):
    def build():
        return StagingService(table1_config(), make_policy("corec"))

    svc = benchmark.pedantic(build, rounds=1, iterations=1)
    rows = [
        {"param": "writers", "paper": TABLE1_PAPER["writers"], "sim": TABLE1_SIM["writers"]},
        {"param": "staging servers", "paper": TABLE1_PAPER["staging"], "sim": svc.config.n_servers},
        {"param": "readers", "paper": TABLE1_PAPER["readers"], "sim": TABLE1_SIM["readers"]},
        {"param": "data objects / stripe (k)", "paper": TABLE1_PAPER["data_objects"], "sim": svc.layout.k},
        {"param": "parity objects (m)", "paper": TABLE1_PAPER["parity_objects"], "sim": svc.layout.m},
        {"param": "replicas", "paper": TABLE1_PAPER["replicas"], "sim": svc.layout.n_level},
        {"param": "storage bound", "paper": TABLE1_PAPER["corec_storage_bound"], "sim": svc.policy.config.storage_bound},
    ]
    print_table("Table I: synthetic setup reproduction", rows, [
        ("param", "parameter", ""),
        ("paper", "paper", "{}"),
        ("sim", "reproduction", "{}"),
    ])
    save_results("table1", rows)
    for r in rows:
        assert r["paper"] == r["sim"], r["param"]
    # The erasure geometry yields the paper's 67% hybrid efficiency bound.
    model = CoRECModel(ModelParams(n_level=svc.layout.m, n_node=svc.layout.k))
    assert model.E_hybrid(model.p_r_at_constraint(0.67)) == pytest.approx(0.67, rel=1e-6)
    # Writers decompose the 256^3 domain as 4x4x4 blocks of 64^3 in the
    # paper; the reproduction keeps one block per writer at reduced size.
    assert svc.domain.n_blocks == TABLE1_SIM["writers"]


def test_table2_configuration(benchmark):
    def build():
        return [S3DConfig(scale_index=i, shrink=4) for i in range(3)]

    cfgs = benchmark.pedantic(build, rounds=1, iterations=1)
    rows = []
    for cfg, paper in zip(cfgs, TABLE_II):
        rows.append(
            {
                "cores_paper": paper["total_cores"],
                "sim_grid_paper": str(paper["sim_grid"]),
                "writers_sim": cfg.n_writers,
                "staging_sim": cfg.n_staging,
                "analysis_sim": cfg.n_analysis,
                "ratio_sim_staging": cfg.n_writers / cfg.n_staging,
                "domain_sim": str(cfg.domain_shape),
            }
        )
    print_table("Table II: S3D weak-scaling reproduction (shrink=4)", rows, [
        ("cores_paper", "paper cores", "{}"),
        ("sim_grid_paper", "paper grid", ""),
        ("writers_sim", "writers", "{}"),
        ("staging_sim", "staging", "{}"),
        ("analysis_sim", "analysis", "{}"),
        ("ratio_sim_staging", "sim:staging", "{:.0f}"),
        ("domain_sim", "domain", ""),
    ])
    save_results("table2", rows)
    # Paper ratios preserved at every scale.
    for row, paper in zip(rows, TABLE_II):
        assert row["ratio_sim_staging"] == pytest.approx(
            paper["sim_cores"] / paper["staging_cores"], rel=0.1
        )
    # Weak scaling: writers double with each column.
    assert rows[1]["writers_sim"] == 2 * rows[0]["writers_sim"]
    assert rows[2]["writers_sim"] == 2 * rows[1]["writers_sim"]
