"""Figure 10 — per-timestep read response through failures and lazy recovery.

Paper schedule over 20 read-all timesteps:

- single-failure run: server fails at step 4, recovery (replacement +
  lazy repair) begins at step 8 and completes by step 9;
- double-failure run: failures at steps 4 and 6, recoveries starting at
  steps 8 and 12 (done by 9 and 13); after step 14 the read response is
  back to the pre-failure level.

The expected shape: a jump to a degraded plateau after each failure, a
bump while lazy recovery repairs on access, then a return to baseline —
and *no* aggressive all-at-once repair storm.

The aggressive-recovery contrast is included as an ablation series.
"""

from __future__ import annotations

import numpy as np

from repro.core.recovery import RecoveryConfig

from common import print_table, run_synthetic, save_results

TIMESTEPS = 20


def fig10_experiment():
    runs = {}
    runs["corec_1f"] = run_synthetic(
        "corec",
        "case5",
        timesteps=TIMESTEPS,
        failure_plan={4: [("fail", 0)], 8: [("replace", 0)]},
    )
    runs["corec_2f"] = run_synthetic(
        "corec",
        "case5",
        timesteps=TIMESTEPS,
        failure_plan={
            4: [("fail", 0)],
            6: [("fail", 5)],
            8: [("replace", 0)],
            12: [("replace", 5)],
        },
    )
    runs["erasure_aggressive_1f"] = run_synthetic(
        "erasure",
        "case5",
        timesteps=TIMESTEPS,
        failure_plan={4: [("fail", 0)], 8: [("replace", 0)]},
    )
    runs["baseline"] = run_synthetic("corec", "case5", timesteps=TIMESTEPS)
    return runs


def test_fig10_lazy_recovery_timeline(benchmark):
    runs = benchmark.pedantic(fig10_experiment, rounds=1, iterations=1)
    rows = []
    for ts in range(1, TIMESTEPS + 1):  # read steps are 1..20 (0 = populate)
        row = {"step": ts}
        for name, r in runs.items():
            series = dict(zip([int(s) for s in r["steps"]], r["step_get_ms"]))
            row[name] = series.get(ts, float("nan"))
        rows.append(row)
    print_table(
        "Figure 10: read response per timestep (ms)",
        rows,
        [
            ("step", "TS", "{}"),
            ("baseline", "no failure", "{:.3f}"),
            ("corec_1f", "CoREC 1f", "{:.3f}"),
            ("corec_2f", "CoREC 2f", "{:.3f}"),
            ("erasure_aggressive_1f", "Erasure aggr 1f", "{:.3f}"),
        ],
    )
    save_results("fig10_recovery", {k: r["step_get_ms"] for k, r in runs.items()})

    # List index i holds read timestep i+1; failure at TS4 (index 3).
    for name in ("corec_1f", "corec_2f"):
        series = runs[name]["step_get_ms"]
        assert runs[name]["read_errors"] == 0
        pre = float(np.mean(series[0:3]))          # TS1-3, before the failure
        degraded = float(np.mean(series[4:7]))     # TS5-7, degraded window
        tail = float(np.mean(series[14:]))         # TS15+, recovered
        # Degraded reads are visibly slower than the pre-failure baseline.
        assert degraded > 1.05 * pre, f"{name}: no degraded plateau"
        # After recovery the response returns to (near) baseline.
        assert tail < 1.10 * pre, f"{name}: did not return to baseline"
    # Two failures degrade further than one (TS7-11 window, after the
    # second failure and before its recovery).
    one = float(np.mean(runs["corec_1f"]["step_get_ms"][8:11]))
    two = float(np.mean(runs["corec_2f"]["step_get_ms"][8:11]))
    assert two >= one
    benchmark.extra_info["timesteps"] = TIMESTEPS
