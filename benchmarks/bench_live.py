"""Live backend scaling benchmark: real clients against the TCP server.

Measures put/get throughput and latency percentiles as a function of
client count.  Clients are *subprocesses* (spawn), not threads — each
client serializes, frames and parses on its own core, so the measured
scaling reflects the server's event-loop concurrency rather than the
clients fighting over one GIL.

Methodology: one fresh server per client count; every client connects,
warms up, reports ready, then all clients are released together and the
measured window is ``max(client end) - min(client begin)`` (epoch
timestamps taken inside the clients) — interpreter spawn time never
pollutes the throughput.  Each put streams 64 KiB over the socket.

The server runs with ``time_scale=1.0``: the paper's cost model paces
every storage/transfer action in real time (a 64 KiB put costs ~6 ms of
modeled service latency), exactly like a staging service reached over a
real fabric.  A single client is therefore latency-bound, and the
scaling measured here is the event loop genuinely overlapping in-flight
operations from concurrent clients across that latency — the concurrency
the live backend exists to provide.  (At ``time_scale=0`` every op
collapses to pure Python event-machinery CPU on the loop thread, which
on a single-core container cannot scale with client count by
construction; that mode measures the request path's CPU floor, not
concurrency.)

Every run also audits the zero-copy payload discipline: protocol-level
copy counters (``PROTO_STATS``) are collected from each client process
and from the server process, and the bench fails if any frame assembly
joined payload bytes — the put/get data plane must be scatter/gather
sends and ``recv_into`` receives end to end.

Emits ``benchmarks/BENCH_live.json`` and enforces the scaling floor:
8-client aggregate put throughput at least 2x a single client's.

Run: ``PYTHONPATH=src python benchmarks/bench_live.py``
"""

from __future__ import annotations

import json
import multiprocessing as mp
import os
import sys
import time

import numpy as np

CLIENT_COUNTS = [1, 2, 4, 8]
OPS_PER_CLIENT = 250
WARMUP_OPS = 10
PAYLOAD_SHAPE = (64, 64, 16)  # 64 KiB per put at 1-byte elements
GET_EVERY = 4  # one read-back per this many puts
TIME_SCALE = 1.0  # modeled pacing in real time (see module docstring)
OUT_PATH = os.path.join(os.path.dirname(__file__), "BENCH_live.json")
MIN_SCALING_8C = 2.0


def server_config():
    from repro import StagingConfig

    return StagingConfig(
        n_servers=8,
        domain_shape=(64, 64, 16),
        element_bytes=1,
        object_max_bytes=65536,
        seed=1,
    )


def client_proc(host: str, port: int, idx: int, ops: int, ready_q, go, out_q) -> None:
    """One load-generating client (runs in its own process)."""
    from repro.live import LiveClient

    rng = np.random.default_rng(900 + idx)
    var = f"bench{idx}"
    # Pre-generate payloads so data synthesis never sits in the timed loop.
    payloads = [
        rng.integers(0, 256, size=PAYLOAD_SHAPE, dtype=np.uint8).ravel()
        for _ in range(8)
    ]
    put_lat: list[float] = []
    get_lat: list[float] = []
    with LiveClient(host, port, name=f"bench{idx}", timeout=300.0) as cli:
        for op in range(WARMUP_OPS):
            cli.put(var, (0, 0, 0), PAYLOAD_SHAPE, payloads[op % len(payloads)])
        ready_q.put(idx)
        go.wait()
        t_begin = time.time()
        for op in range(ops):
            t0 = time.perf_counter()
            cli.put(var, (0, 0, 0), PAYLOAD_SHAPE, payloads[op % len(payloads)])
            put_lat.append(time.perf_counter() - t0)
            if op % GET_EVERY == GET_EVERY - 1:
                t0 = time.perf_counter()
                cli.get(var, (0, 0, 0), PAYLOAD_SHAPE)
                get_lat.append(time.perf_counter() - t0)
        t_end = time.time()
    from repro.live.protocol import PROTO_STATS

    out_q.put((idx, t_begin, t_end, put_lat, get_lat, dict(PROTO_STATS)))


def percentiles(lat: list[float]) -> dict:
    if not lat:
        return {"n": 0}
    arr = np.asarray(lat)
    return {
        "n": int(arr.size),
        "mean_ms": float(arr.mean() * 1e3),
        "p50_ms": float(np.percentile(arr, 50) * 1e3),
        "p95_ms": float(np.percentile(arr, 95) * 1e3),
        "p99_ms": float(np.percentile(arr, 99) * 1e3),
        "max_ms": float(arr.max() * 1e3),
    }


def run_point(n_clients: int) -> dict:
    from repro.core.corec import CoRECPolicy
    from repro.live import serve_in_thread
    from repro.live.protocol import PROTO_STATS

    server_stats_before = dict(PROTO_STATS)
    handle = serve_in_thread(server_config(), CoRECPolicy, time_scale=TIME_SCALE)
    ctx = mp.get_context("spawn")
    ready_q = ctx.Queue()
    out_q = ctx.Queue()
    go = ctx.Event()
    try:
        procs = [
            ctx.Process(
                target=client_proc,
                args=(handle.host, handle.port, i, OPS_PER_CLIENT, ready_q, go, out_q),
            )
            for i in range(n_clients)
        ]
        for p in procs:
            p.start()
        for _ in procs:
            ready_q.get(timeout=300)  # every client connected and warm
        go.set()
        results = [out_q.get(timeout=600) for _ in procs]
        for p in procs:
            p.join(timeout=60)
            if p.is_alive():  # pragma: no cover - watchdog
                p.terminate()
                raise RuntimeError("bench client hung")
    finally:
        handle.stop()
    window = max(r[2] for r in results) - min(r[1] for r in results)
    put_lat = [x for r in results for x in r[3]]
    get_lat = [x for r in results for x in r[4]]
    payload_bytes = int(np.prod(PAYLOAD_SHAPE))
    total_puts = len(put_lat)
    # Copy audit: client-side counters summed across processes, server-side
    # as the delta of this process's counters across the run (the server
    # thread lives in the bench process).
    client_copies = sum(r[5]["payload_copies"] for r in results)
    client_bytes = sum(r[5]["bytes_copied"] for r in results)
    server_copies = PROTO_STATS["payload_copies"] - server_stats_before["payload_copies"]
    server_bytes = PROTO_STATS["bytes_copied"] - server_stats_before["bytes_copied"]
    return {
        "clients": n_clients,
        "window_s": window,
        "put_ops_per_s": total_puts / window,
        "put_MB_per_s": total_puts * payload_bytes / 1e6 / window,
        "put": percentiles(put_lat),
        "get": percentiles(get_lat),
        "zero_copy": {
            "client_payload_copies": client_copies,
            "client_bytes_copied": client_bytes,
            "server_payload_copies": server_copies,
            "server_bytes_copied": server_bytes,
        },
    }


def main() -> int:
    rows = []
    for n in CLIENT_COUNTS:
        row = run_point(n)
        rows.append(row)
        print(
            f"{row['clients']:>2} clients: {row['put_ops_per_s']:8.1f} puts/s "
            f"({row['put_MB_per_s']:7.1f} MB/s)  "
            f"put p95 {row['put']['p95_ms']:7.2f} ms  "
            f"p99 {row['put']['p99_ms']:7.2f} ms  "
            f"get p95 {row['get'].get('p95_ms', float('nan')):7.2f} ms"
        )
    base = rows[0]["put_ops_per_s"]
    top = next(r for r in rows if r["clients"] == max(CLIENT_COUNTS))
    scaling = top["put_ops_per_s"] / base
    total_copies = sum(
        r["zero_copy"]["client_payload_copies"] + r["zero_copy"]["server_payload_copies"]
        for r in rows
    )
    payload = {
        "config": {
            "payload_bytes": int(np.prod(PAYLOAD_SHAPE)),
            "ops_per_client": OPS_PER_CLIENT,
            "warmup_ops": WARMUP_OPS,
            "client_counts": CLIENT_COUNTS,
            "time_scale": TIME_SCALE,
            "policy": "corec",
        },
        "rows": rows,
        "scaling_8c_over_1c": scaling,
        "payload_copies_total": total_copies,
    }
    with open(OUT_PATH, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2)
    print(f"\n{max(CLIENT_COUNTS)}-client/1-client put scaling: {scaling:.2f}x "
          f"(floor {MIN_SCALING_8C}x)  payload copies: {total_copies} -> {OUT_PATH}")
    if scaling < MIN_SCALING_8C:
        print("FAIL: live backend does not scale with client count", file=sys.stderr)
        return 1
    if total_copies != 0:
        print(
            f"FAIL: {total_copies} payload copies on the put/get data plane "
            "(zero-copy framing regressed)",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
