"""Live backend scaling benchmark: real clients against the TCP server.

Measures put/get throughput and latency percentiles as a function of
client count.  Clients are *subprocesses* (spawn), not threads — each
client serializes, frames and parses on its own core, so the measured
scaling reflects the server's event-loop concurrency rather than the
clients fighting over one GIL.

Methodology: one fresh server per client count; every client connects,
warms up, reports ready, then all clients are released together and the
measured window is ``max(client end) - min(client begin)`` (epoch
timestamps taken inside the clients) — interpreter spawn time never
pollutes the throughput.  Each put streams 64 KiB over the socket.

The server runs with ``time_scale=1.0``: the paper's cost model paces
every storage/transfer action in real time (a 64 KiB put costs ~6 ms of
modeled service latency), exactly like a staging service reached over a
real fabric.  A single client is therefore latency-bound, and the
scaling measured here is the event loop genuinely overlapping in-flight
operations from concurrent clients across that latency — the concurrency
the live backend exists to provide.  (At ``time_scale=0`` every op
collapses to pure Python event-machinery CPU on the loop thread, which
on a single-core container cannot scale with client count by
construction; that mode measures the request path's CPU floor, not
concurrency.)

Every run also audits the zero-copy payload discipline: protocol-level
copy counters (``PROTO_STATS``) are collected from each client process
and from the server process, and the bench fails if any frame assembly
joined payload bytes — the put/get data plane must be scatter/gather
sends and ``recv_into`` receives end to end.

``--trace-dir DIR`` turns on wall-clock tracing: each client subprocess
carries its own tracer (so requests propagate trace context over the
wire), the per-put latency attribution the server returns is folded into
per-category percentiles in the emitted rows, and the last point's span
tree / metrics land in ``DIR``.  The copy audit must stay at zero with
tracing on — trace headers ride the length-prefixed JSON header, never
the payload.

Shard scaling
-------------
A second sweep measures the sharded multi-process cluster: the same
routed put workload against 1, 2 and 4 shard processes of a 16-server
deployment (``time_scale=0``, so each shard's cost is real CPU — event
machinery, digests, codec — which is exactly what extra processes can
parallelize).  Rows record the aggregate put throughput, the shard count
and the CPUs actually available; the 4-shard >= 2x single-process floor
is enforced only when the host grants at least ``MIN_CPUS_FOR_SHARD_GATE``
CPUs (on a single-CPU container the processes time-slice one core and
the honest curve is flat — the row says so instead of faking it), with
the decision recorded in the emitted JSON under ``shard_gate``.

Emits ``benchmarks/BENCH_live.json`` and enforces three gates: the
client-scaling floor (8-client aggregate put throughput at least 2x a
single client's), the latency SLO (single-client put p99 under
``SLO_PUT_P99_MS``), and the CPU-conditional shard-scaling floor above.
``--smoke`` runs a small sweep for CI (two client points plus one
2-shard cluster point): same copy audit and SLO gate, no scaling floors,
and the committed baseline file is left alone.

Run: ``PYTHONPATH=src python benchmarks/bench_live.py``
"""

from __future__ import annotations

import argparse
import json
import multiprocessing as mp
import os
import sys
import time

import numpy as np

CLIENT_COUNTS = [1, 2, 4, 8]
OPS_PER_CLIENT = 250
SMOKE_CLIENT_COUNTS = [1, 2]
SMOKE_OPS_PER_CLIENT = 30
WARMUP_OPS = 10
PAYLOAD_SHAPE = (64, 64, 16)  # 64 KiB per put at 1-byte elements
GET_EVERY = 4  # one read-back per this many puts
TIME_SCALE = 1.0  # modeled pacing in real time (see module docstring)
OUT_PATH = os.path.join(os.path.dirname(__file__), "BENCH_live.json")
MIN_SCALING_8C = 2.0
# Latency SLO at time_scale=1.0: the committed baseline's single-client
# put p99 is ~10 ms (modeled pacing dominates), so 250 ms is a pure
# regression tripwire with headroom for slow shared CI machines.  When a
# committed baseline exists the effective ceiling tightens to 10x its
# p99 (floored at MIN_P99_CEILING_MS for CI noise) — the same
# committed-baseline-with-tolerance style check_regression.py uses.
SLO_PUT_P99_MS = 250.0
P99_HEADROOM = 10.0
MIN_P99_CEILING_MS = 100.0

# Shard-scaling sweep: routed puts against the multi-process cluster.
SHARD_COUNTS = [1, 2, 4]
SMOKE_SHARD_COUNTS = [2]
SHARD_CLIENTS = 4
SHARD_OPS_PER_CLIENT = 120
SMOKE_SHARD_OPS_PER_CLIENT = 20
SHARD_SERVERS = 16  # 4 coding groups -> divisible into 1, 2 or 4 shards
SHARD_DOMAIN = (64, 64, 256)  # 16 x 64 KiB blocks, hash-spread over groups
MIN_SHARD_SCALING_4S = 2.0
MIN_CPUS_FOR_SHARD_GATE = 4


def available_cpus() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux fallback
        return os.cpu_count() or 1


def p99_ceiling_ms() -> float:
    """Effective single-client put-p99 gate, baseline-aware."""
    try:
        with open(OUT_PATH, encoding="utf-8") as fh:
            committed = json.load(fh).get("put_p99_1c_ms")
    except (OSError, ValueError):
        committed = None
    if not committed:
        return SLO_PUT_P99_MS
    return min(SLO_PUT_P99_MS, max(committed * P99_HEADROOM, MIN_P99_CEILING_MS))


def server_config():
    from repro import StagingConfig

    return StagingConfig(
        n_servers=8,
        domain_shape=(64, 64, 16),
        element_bytes=1,
        object_max_bytes=65536,
        seed=1,
    )


def client_proc(
    host: str, port: int, idx: int, ops: int, tracing: bool, ready_q, go, out_q
) -> None:
    """One load-generating client (runs in its own process)."""
    from repro.live import LiveClient

    tracer = None
    if tracing:
        from repro.obs.wallclock import WallClockTracer

        # Each client process gets its own tracer: trace ids are
        # pid-prefixed (no cross-process collisions) and every request
        # carries its trace context to the server in the frame header.
        tracer = WallClockTracer()

    rng = np.random.default_rng(900 + idx)
    var = f"bench{idx}"
    # Pre-generate payloads so data synthesis never sits in the timed loop.
    payloads = [
        rng.integers(0, 256, size=PAYLOAD_SHAPE, dtype=np.uint8).ravel()
        for _ in range(8)
    ]
    put_lat: list[float] = []
    get_lat: list[float] = []
    put_attrs: list[dict] = []
    with LiveClient(host, port, name=f"bench{idx}", timeout=300.0, tracer=tracer) as cli:
        for op in range(WARMUP_OPS):
            cli.put(var, (0, 0, 0), PAYLOAD_SHAPE, payloads[op % len(payloads)])
        ready_q.put(idx)
        go.wait()
        t_begin = time.time()
        for op in range(ops):
            t0 = time.perf_counter()
            cli.put(var, (0, 0, 0), PAYLOAD_SHAPE, payloads[op % len(payloads)])
            put_lat.append(time.perf_counter() - t0)
            if cli.last_attr is not None:
                put_attrs.append(cli.last_attr)
            if op % GET_EVERY == GET_EVERY - 1:
                t0 = time.perf_counter()
                cli.get(var, (0, 0, 0), PAYLOAD_SHAPE)
                get_lat.append(time.perf_counter() - t0)
        t_end = time.time()
    from repro.live.protocol import PROTO_STATS

    out_q.put((idx, t_begin, t_end, put_lat, get_lat, dict(PROTO_STATS), put_attrs))


def percentiles(lat: list[float]) -> dict:
    if not lat:
        return {"n": 0}
    arr = np.asarray(lat)
    return {
        "n": int(arr.size),
        "mean_ms": float(arr.mean() * 1e3),
        "p50_ms": float(np.percentile(arr, 50) * 1e3),
        "p95_ms": float(np.percentile(arr, 95) * 1e3),
        "p99_ms": float(np.percentile(arr, 99) * 1e3),
        "max_ms": float(arr.max() * 1e3),
    }


def attribution_summary(put_attrs: list[dict]) -> dict:
    """Per-category latency percentiles from server-returned attributions."""
    by_cat: dict[str, list[float]] = {}
    for attr in put_attrs:
        for cat, dt in attr.items():
            by_cat.setdefault(cat, []).append(float(dt))
    return {cat: percentiles(vals) for cat, vals in sorted(by_cat.items())}


def run_point(
    n_clients: int, ops_per_client: int, tracing: bool, export_dir: str | None
) -> dict:
    from repro.core.corec import CoRECPolicy
    from repro.live import serve_in_thread
    from repro.live.protocol import PROTO_STATS

    server_stats_before = dict(PROTO_STATS)
    handle = serve_in_thread(
        server_config(), CoRECPolicy, time_scale=TIME_SCALE, tracing=tracing
    )
    ctx = mp.get_context("spawn")
    ready_q = ctx.Queue()
    out_q = ctx.Queue()
    go = ctx.Event()
    try:
        procs = [
            ctx.Process(
                target=client_proc,
                args=(handle.host, handle.port, i, ops_per_client, tracing,
                      ready_q, go, out_q),
            )
            for i in range(n_clients)
        ]
        for p in procs:
            p.start()
        for _ in procs:
            ready_q.get(timeout=300)  # every client connected and warm
        go.set()
        results = [out_q.get(timeout=600) for _ in procs]
        for p in procs:
            p.join(timeout=60)
            if p.is_alive():  # pragma: no cover - watchdog
                p.terminate()
                raise RuntimeError("bench client hung")
    finally:
        handle.stop()
    if tracing and export_dir:
        from repro.cli import _export_live_trace

        _export_live_trace(export_dir, handle.live)
    window = max(r[2] for r in results) - min(r[1] for r in results)
    put_lat = [x for r in results for x in r[3]]
    get_lat = [x for r in results for x in r[4]]
    put_attrs = [a for r in results for a in r[6]]
    payload_bytes = int(np.prod(PAYLOAD_SHAPE))
    total_puts = len(put_lat)
    # Copy audit: client-side counters summed across processes, server-side
    # as the delta of this process's counters across the run (the server
    # thread lives in the bench process).
    client_copies = sum(r[5]["payload_copies"] for r in results)
    client_bytes = sum(r[5]["bytes_copied"] for r in results)
    server_copies = PROTO_STATS["payload_copies"] - server_stats_before["payload_copies"]
    server_bytes = PROTO_STATS["bytes_copied"] - server_stats_before["bytes_copied"]
    row = {
        "clients": n_clients,
        "window_s": window,
        "put_ops_per_s": total_puts / window,
        "put_MB_per_s": total_puts * payload_bytes / 1e6 / window,
        "put": percentiles(put_lat),
        "get": percentiles(get_lat),
        "zero_copy": {
            "client_payload_copies": client_copies,
            "client_bytes_copied": client_bytes,
            "server_payload_copies": server_copies,
            "server_bytes_copied": server_bytes,
        },
    }
    if put_attrs:
        row["attribution"] = attribution_summary(put_attrs)
    return row


def shard_config():
    from repro import StagingConfig

    return StagingConfig(
        n_servers=SHARD_SERVERS,
        domain_shape=SHARD_DOMAIN,
        element_bytes=1,
        object_max_bytes=65536,
        seed=1,
    )


def shard_client_proc(endpoints, n_shards, idx, ops, ready_q, go, out_q) -> None:
    """One routed load-generating client against the sharded cluster.

    The plan is a pure function of (config, n_shards), so the child
    rebuilds it instead of unpickling router state; each op is one
    block-aligned 64 KiB put, cycling over all blocks so the load spreads
    across every shard's group range.
    """
    from repro.live.cluster import ShardPlan
    from repro.live.router import ClusterClient

    plan = ShardPlan.build(shard_config(), n_shards)
    client = ClusterClient(plan, endpoints, name=f"shard-bench{idx}", timeout=300.0)
    domain = client.domain
    n_blocks = domain.n_blocks
    boxes = [domain.block_bbox(bid) for bid in range(n_blocks)]
    shape = tuple(u - l for l, u in zip(boxes[0].lb, boxes[0].ub))
    rng = np.random.default_rng(1700 + idx)
    payloads = [rng.integers(0, 256, size=shape, dtype=np.uint8) for _ in range(8)]
    var = f"shard-bench{idx}"
    put_lat: list[float] = []
    try:
        for op in range(WARMUP_OPS):
            box = boxes[(idx * 3 + op) % n_blocks]
            client.put(var, box.lb, box.ub, payloads[op % len(payloads)])
        ready_q.put(idx)
        go.wait()
        t_begin = time.time()
        for op in range(ops):
            box = boxes[(idx * 3 + op) % n_blocks]
            t0 = time.perf_counter()
            client.put(var, box.lb, box.ub, payloads[op % len(payloads)])
            put_lat.append(time.perf_counter() - t0)
        t_end = time.time()
    finally:
        client.close()
    from repro.live.protocol import PROTO_STATS

    out_q.put((idx, t_begin, t_end, put_lat, dict(PROTO_STATS)))


def run_shard_point(n_shards: int, ops_per_client: int) -> dict:
    """Aggregate put throughput of ``SHARD_CLIENTS`` routed clients."""
    from repro.live.cluster import LiveCluster

    pspec = ("corec", {"enforcement_scope": "group"})
    ctx = mp.get_context("spawn")
    ready_q = ctx.Queue()
    out_q = ctx.Queue()
    go = ctx.Event()
    with LiveCluster(shard_config(), pspec, n_shards, time_scale=0.0) as cluster:
        endpoints = list(cluster.endpoints)
        procs = [
            ctx.Process(
                target=shard_client_proc,
                args=(endpoints, n_shards, i, ops_per_client, ready_q, go, out_q),
            )
            for i in range(SHARD_CLIENTS)
        ]
        for p in procs:
            p.start()
        for _ in procs:
            ready_q.get(timeout=300)
        go.set()
        results = [out_q.get(timeout=600) for _ in procs]
        for p in procs:
            p.join(timeout=60)
            if p.is_alive():  # pragma: no cover - watchdog
                p.terminate()
                raise RuntimeError("shard bench client hung")
    window = max(r[2] for r in results) - min(r[1] for r in results)
    put_lat = [x for r in results for x in r[3]]
    total_puts = len(put_lat)
    payload_bytes = 65536
    return {
        "shards": n_shards,
        "clients": SHARD_CLIENTS,
        "cpus": available_cpus(),
        "window_s": window,
        "put_ops_per_s": total_puts / window,
        "put_MB_per_s": total_puts * payload_bytes / 1e6 / window,
        "put": percentiles(put_lat),
        "zero_copy": {
            "client_payload_copies": sum(r[4]["payload_copies"] for r in results),
            "client_bytes_copied": sum(r[4]["bytes_copied"] for r in results),
        },
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="small CI sweep: fewer clients/ops, no scaling "
                             "floor, committed baseline left untouched")
    parser.add_argument("--trace-dir", default="",
                        help="enable wall-clock tracing and export the last "
                             "point's trace/metrics artifacts here")
    args = parser.parse_args(argv)

    counts = SMOKE_CLIENT_COUNTS if args.smoke else CLIENT_COUNTS
    ops = SMOKE_OPS_PER_CLIENT if args.smoke else OPS_PER_CLIENT
    tracing = bool(args.trace_dir)

    rows = []
    for n in counts:
        export_dir = args.trace_dir if (tracing and n == counts[-1]) else None
        row = run_point(n, ops, tracing, export_dir)
        rows.append(row)
        print(
            f"{row['clients']:>2} clients: {row['put_ops_per_s']:8.1f} puts/s "
            f"({row['put_MB_per_s']:7.1f} MB/s)  "
            f"put p95 {row['put']['p95_ms']:7.2f} ms  "
            f"p99 {row['put']['p99_ms']:7.2f} ms  "
            f"get p95 {row['get'].get('p95_ms', float('nan')):7.2f} ms"
        )
        if "attribution" in row:
            top = sorted(
                row["attribution"].items(),
                key=lambda kv: -kv[1].get("p50_ms", 0.0),
            )[:4]
            print("    attribution p50: " + "  ".join(
                f"{cat} {p['p50_ms']:.2f} ms" for cat, p in top
            ))
    shard_counts = SMOKE_SHARD_COUNTS if args.smoke else SHARD_COUNTS
    shard_ops = SMOKE_SHARD_OPS_PER_CLIENT if args.smoke else SHARD_OPS_PER_CLIENT
    cpus = available_cpus()
    shard_rows = []
    for n in shard_counts:
        srow = run_shard_point(n, shard_ops)
        shard_rows.append(srow)
        print(
            f"{srow['shards']:>2} shards:  {srow['put_ops_per_s']:8.1f} puts/s "
            f"({srow['put_MB_per_s']:7.1f} MB/s)  "
            f"put p95 {srow['put']['p95_ms']:7.2f} ms  "
            f"[{srow['clients']} clients, {srow['cpus']} cpus]"
        )
    shard_scaling = None
    if len(shard_counts) > 1:
        s_base = next(r for r in shard_rows if r["shards"] == min(shard_counts))
        s_top = next(r for r in shard_rows if r["shards"] == max(shard_counts))
        shard_scaling = s_top["put_ops_per_s"] / s_base["put_ops_per_s"]
    if args.smoke:
        shard_gate = "skipped-smoke"
    elif cpus < MIN_CPUS_FOR_SHARD_GATE:
        shard_gate = (
            f"skipped-single-cpu ({cpus} cpus < {MIN_CPUS_FOR_SHARD_GATE}; "
            f"shard processes time-slice one core, honest curve is flat)"
        )
    else:
        shard_gate = f"enforced (floor {MIN_SHARD_SCALING_4S}x)"

    base = rows[0]["put_ops_per_s"]
    top_row = next(r for r in rows if r["clients"] == max(counts))
    scaling = top_row["put_ops_per_s"] / base
    total_copies = sum(
        r["zero_copy"]["client_payload_copies"] + r["zero_copy"]["server_payload_copies"]
        for r in rows
    ) + sum(r["zero_copy"]["client_payload_copies"] for r in shard_rows)
    p99_1c = rows[0]["put"]["p99_ms"]
    ceiling_ms = p99_ceiling_ms()  # read the committed baseline pre-overwrite
    payload = {
        "config": {
            "payload_bytes": int(np.prod(PAYLOAD_SHAPE)),
            "ops_per_client": ops,
            "warmup_ops": WARMUP_OPS,
            "client_counts": counts,
            "time_scale": TIME_SCALE,
            "policy": "corec",
            "tracing": tracing,
            "slo_put_p99_ms": SLO_PUT_P99_MS,
            "p99_ceiling_ms": ceiling_ms,
            "shard_counts": shard_counts,
            "shard_clients": SHARD_CLIENTS,
            "shard_ops_per_client": shard_ops,
            "shard_servers": SHARD_SERVERS,
            "cpus": cpus,
        },
        "rows": rows,
        "shard_rows": shard_rows,
        "scaling_8c_over_1c": scaling,
        "shard_scaling_4s_over_1s": shard_scaling,
        "shard_gate": shard_gate,
        "payload_copies_total": total_copies,
        "put_p99_1c_ms": p99_1c,
    }
    # A smoke run never overwrites the committed full-sweep baseline; with
    # a trace dir its results land next to the trace artifacts instead.
    if not args.smoke:
        out_path = OUT_PATH
    elif args.trace_dir:
        out_path = os.path.join(args.trace_dir, "bench_live_smoke.json")
    else:
        out_path = ""
    if out_path:
        os.makedirs(os.path.dirname(out_path) or ".", exist_ok=True)
        with open(out_path, "w", encoding="utf-8") as fh:
            json.dump(payload, fh, indent=2)
    print(f"\n{max(counts)}-client/1-client put scaling: {scaling:.2f}x"
          + ("" if args.smoke else f" (floor {MIN_SCALING_8C}x)")
          + f"  1-client put p99 {p99_1c:.2f} ms (ceiling {ceiling_ms:.0f} ms)"
          + f"  payload copies: {total_copies}"
          + (f" -> {out_path}" if out_path else ""))
    if shard_scaling is not None:
        print(f"{max(shard_counts)}-shard/{min(shard_counts)}-shard put scaling: "
              f"{shard_scaling:.2f}x  gate: {shard_gate}")
    else:
        print(f"shard sweep: {shard_counts}  gate: {shard_gate}")
    if not args.smoke and scaling < MIN_SCALING_8C:
        print("FAIL: live backend does not scale with client count", file=sys.stderr)
        return 1
    if shard_gate.startswith("enforced") and (
        shard_scaling is None or shard_scaling < MIN_SHARD_SCALING_4S
    ):
        print(
            f"FAIL: {max(shard_counts)}-shard cluster put throughput is "
            f"{shard_scaling:.2f}x single-process (floor {MIN_SHARD_SCALING_4S}x "
            f"on a {cpus}-cpu host)",
            file=sys.stderr,
        )
        return 1
    if total_copies != 0:
        print(
            f"FAIL: {total_copies} payload copies on the put/get data plane "
            "(zero-copy framing regressed)",
            file=sys.stderr,
        )
        return 1
    if p99_1c > ceiling_ms:
        print(
            f"FAIL: single-client put p99 {p99_1c:.2f} ms exceeds the "
            f"{ceiling_ms:.0f} ms ceiling (SLO {SLO_PUT_P99_MS:.0f} ms, "
            f"baseline headroom {P99_HEADROOM:.0f}x)",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
