"""Shared utilities: seeded RNG streams, statistics, configs, event logs.

These helpers are deliberately dependency-light (numpy only) so every other
subpackage — the erasure-coding substrate, the discrete-event simulator, the
staging service and the CoREC runtime — can build on them without cycles.
"""

from repro.util.rng import RngStreams
from repro.util.stats import RunningStat, TimeSeries, percentile, summarize
from repro.util.eventlog import Event, EventLog
from repro.util.units import KB, MB, GB, fmt_bytes, fmt_time

__all__ = [
    "RngStreams",
    "RunningStat",
    "TimeSeries",
    "percentile",
    "summarize",
    "Event",
    "EventLog",
    "KB",
    "MB",
    "GB",
    "fmt_bytes",
    "fmt_time",
]
