"""Byte/time unit constants and human-readable formatting."""

from __future__ import annotations

__all__ = ["KB", "MB", "GB", "fmt_bytes", "fmt_time"]

KB = 1024
MB = 1024 * KB
GB = 1024 * MB


def fmt_bytes(n: float) -> str:
    """Format a byte count, e.g. ``fmt_bytes(320*MB) == '320.0 MB'``."""
    n = float(n)
    for unit, label in ((GB, "GB"), (MB, "MB"), (KB, "KB")):
        if abs(n) >= unit:
            return f"{n / unit:.1f} {label}"
    return f"{n:.0f} B"


def fmt_time(seconds: float) -> str:
    """Format a duration in the most natural unit."""
    s = float(seconds)
    if abs(s) >= 60.0:
        return f"{s / 60.0:.2f} min"
    if abs(s) >= 1.0:
        return f"{s:.3f} s"
    if abs(s) >= 1e-3:
        return f"{s * 1e3:.3f} ms"
    return f"{s * 1e6:.1f} us"
