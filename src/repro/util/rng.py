"""Deterministic, named random-number streams.

Simulation reproducibility requires that independent sources of randomness
(failure injection, workload generation, random placement, ...) draw from
*independent* streams derived from a single root seed.  Otherwise adding one
more draw in one component silently perturbs every other component, which
makes A/B comparisons between resilience policies meaningless.

``RngStreams`` hands out :class:`numpy.random.Generator` instances keyed by a
string name.  The same ``(root_seed, name)`` pair always produces the same
stream, regardless of the order in which streams are requested.
"""

from __future__ import annotations

import hashlib

import numpy as np

__all__ = ["RngStreams", "stable_hash"]


def stable_hash(text: str) -> int:
    """Return a stable 64-bit hash of ``text``.

    Python's built-in ``hash`` is salted per process, so it cannot be used to
    derive reproducible seeds.  We use blake2b instead.
    """
    digest = hashlib.blake2b(text.encode("utf-8"), digest_size=8).digest()
    return int.from_bytes(digest, "little")


class RngStreams:
    """A registry of independent named RNG streams under one root seed.

    Examples
    --------
    >>> streams = RngStreams(seed=42)
    >>> a = streams.get("failures")
    >>> b = streams.get("workload")
    >>> a is streams.get("failures")
    True
    """

    def __init__(self, seed: int = 0):
        self.seed = int(seed)
        self._streams: dict[str, np.random.Generator] = {}

    def get(self, name: str) -> np.random.Generator:
        """Return the stream for ``name``, creating it deterministically."""
        gen = self._streams.get(name)
        if gen is None:
            child_seed = np.random.SeedSequence([self.seed, stable_hash(name)])
            gen = np.random.Generator(np.random.PCG64(child_seed))
            self._streams[name] = gen
        return gen

    def spawn(self, name: str) -> "RngStreams":
        """Derive a child registry with an independent seed space."""
        return RngStreams(seed=(self.seed * 0x9E3779B1 + stable_hash(name)) % (2**63))

    def reset(self) -> None:
        """Drop all streams so the next ``get`` starts each one afresh."""
        self._streams.clear()
