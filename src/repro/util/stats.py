"""Streaming statistics used by the metrics layer and the bench harness.

The simulator produces many per-request samples (write/read response times,
queue waits, encode durations).  ``RunningStat`` accumulates them in O(1)
memory with Welford's algorithm; ``TimeSeries`` keeps (time, value) pairs for
per-timestep plots such as the paper's Figure 10.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

__all__ = ["RunningStat", "TimeSeries", "percentile", "summarize"]


class RunningStat:
    """Welford one-pass mean/variance with min/max tracking."""

    __slots__ = ("n", "_mean", "_m2", "min", "max", "total")

    def __init__(self) -> None:
        self.n = 0
        self._mean = 0.0
        self._m2 = 0.0
        self.min = math.inf
        self.max = -math.inf
        self.total = 0.0

    def add(self, x: float) -> None:
        x = float(x)
        self.n += 1
        self.total += x
        delta = x - self._mean
        self._mean += delta / self.n
        self._m2 += delta * (x - self._mean)
        if x < self.min:
            self.min = x
        if x > self.max:
            self.max = x

    def extend(self, xs) -> None:
        for x in xs:
            self.add(x)

    @property
    def mean(self) -> float:
        return self._mean if self.n else 0.0

    @property
    def variance(self) -> float:
        return self._m2 / (self.n - 1) if self.n > 1 else 0.0

    @property
    def std(self) -> float:
        return math.sqrt(self.variance)

    def merge(self, other: "RunningStat") -> "RunningStat":
        """Combine two independent accumulators (parallel reduction)."""
        out = RunningStat()
        out.n = self.n + other.n
        if out.n == 0:
            return out
        delta = other._mean - self._mean
        out._mean = self._mean + delta * other.n / out.n
        out._m2 = self._m2 + other._m2 + delta * delta * self.n * other.n / out.n
        out.min = min(self.min, other.min)
        out.max = max(self.max, other.max)
        out.total = self.total + other.total
        return out

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"RunningStat(n={self.n}, mean={self.mean:.6g}, std={self.std:.3g})"


@dataclass
class TimeSeries:
    """Append-only (t, value) series with numpy export."""

    name: str = ""
    times: list[float] = field(default_factory=list)
    values: list[float] = field(default_factory=list)

    def add(self, t: float, v: float) -> None:
        self.times.append(float(t))
        self.values.append(float(v))

    def __len__(self) -> int:
        return len(self.times)

    def as_arrays(self) -> tuple[np.ndarray, np.ndarray]:
        return np.asarray(self.times), np.asarray(self.values)

    def mean(self) -> float:
        return float(np.mean(self.values)) if self.values else 0.0

    def bucket_mean(self, edges) -> np.ndarray:
        """Mean value per bucket, where ``edges`` are bucket boundaries.

        Used to aggregate per-request samples into per-timestep means for
        Figure 10-style plots.  Empty buckets yield NaN.
        """
        t, v = self.as_arrays()
        edges = np.asarray(edges, dtype=float)
        out = np.full(len(edges) - 1, np.nan)
        if len(t) == 0:
            return out
        idx = np.searchsorted(edges, t, side="right") - 1
        if len(edges) > 1:
            # Buckets are half-open [e_i, e_i+1) except the last, which is
            # closed: a sample landing exactly on the final edge belongs to
            # the last bucket instead of silently falling out of range.
            idx[t == edges[-1]] = len(edges) - 2
        for b in range(len(edges) - 1):
            sel = idx == b
            if sel.any():
                out[b] = float(v[sel].mean())
        return out


def percentile(xs, q: float) -> float:
    """Percentile of a sample list (q in [0, 100]); 0.0 for empty input."""
    if len(xs) == 0:
        return 0.0
    return float(np.percentile(np.asarray(xs, dtype=float), q))


def summarize(xs) -> dict[str, float]:
    """Summary dict (n, mean, std, min, p50, p95, max, total) of a sample."""
    arr = np.asarray(list(xs), dtype=float)
    if arr.size == 0:
        return {"n": 0, "mean": 0.0, "std": 0.0, "min": 0.0, "p50": 0.0, "p95": 0.0, "max": 0.0, "total": 0.0}
    return {
        "n": int(arr.size),
        "mean": float(arr.mean()),
        "std": float(arr.std(ddof=1)) if arr.size > 1 else 0.0,
        "min": float(arr.min()),
        "p50": float(np.percentile(arr, 50)),
        "p95": float(np.percentile(arr, 95)),
        "max": float(arr.max()),
        "total": float(arr.sum()),
    }
