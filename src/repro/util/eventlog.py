"""Structured event log shared by the simulator and the metrics layer.

Every notable simulator occurrence (request served, object encoded, server
failed, recovery completed, ...) is appended as an :class:`Event`.  Benchmarks
and tests query the log instead of scraping printed output, which keeps the
whole pipeline machine-checkable.

Capacity semantics
------------------
An unbounded log (``capacity=None``, the default) keeps everything.  A
bounded log is a **ring buffer**: once ``capacity`` events are held, each
new event evicts the *oldest* one, so the log always contains the most
recent ``capacity`` events.  Evictions are counted in :attr:`EventLog.dropped`
(so monitoring can tell a quiet run from a truncated one), and listeners
are notified of every event regardless of capacity.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Iterator

__all__ = ["Event", "EventLog"]


@dataclass(frozen=True, slots=True)
class Event:
    """One timestamped simulator event.

    Attributes
    ----------
    t:
        Simulation time (seconds).
    kind:
        Event category, e.g. ``"put"``, ``"get"``, ``"encode"``,
        ``"server_failed"``, ``"object_recovered"``.
    source:
        Name of the emitting component (server id, client id, ...).
    data:
        Free-form payload for the event.
    """

    t: float
    kind: str
    source: str = ""
    data: dict[str, Any] = field(default_factory=dict)


class EventLog:
    """Append-only event log with filtered iteration helpers.

    With a ``capacity``, the log is a ring buffer that drops the oldest
    events (see module docstring); :attr:`dropped` counts the evictions.
    """

    def __init__(self, capacity: int | None = None):
        if capacity is not None and capacity < 1:
            raise ValueError("capacity must be >= 1 (or None for unbounded)")
        self._events: deque[Event] = deque(maxlen=capacity)
        self._capacity = capacity
        self._listeners: list[Callable[[Event], None]] = []
        self.dropped = 0

    @property
    def capacity(self) -> int | None:
        return self._capacity

    def emit(self, t: float, kind: str, source: str = "", **data: Any) -> Event:
        ev = Event(t=float(t), kind=kind, source=source, data=data)
        if self._capacity is not None and len(self._events) == self._capacity:
            self.dropped += 1  # deque(maxlen=...) evicts the oldest entry
        self._events.append(ev)
        for listener in self._listeners:
            listener(ev)
        return ev

    def subscribe(self, listener: Callable[[Event], None]) -> None:
        """Register a callback invoked synchronously for every event."""
        self._listeners.append(listener)

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[Event]:
        return iter(self._events)

    def of_kind(self, *kinds: str) -> list[Event]:
        wanted = set(kinds)
        return [e for e in self._events if e.kind in wanted]

    def between(self, t0: float, t1: float, kinds: Iterable[str] | None = None) -> list[Event]:
        wanted = set(kinds) if kinds is not None else None
        return [
            e
            for e in self._events
            if t0 <= e.t < t1 and (wanted is None or e.kind in wanted)
        ]

    def count(self, kind: str) -> int:
        return sum(1 for e in self._events if e.kind == kind)

    def clear(self) -> None:
        self._events.clear()
