"""Resilience-policy interface and the paper's three baselines.

A policy decides *when* the runtime's flows run:

- :class:`NoResilience` — plain DataSpaces staging ("DataSpaces" bars in
  Figure 8): fastest, loses data on failure;
- :class:`ReplicationPolicy` — every entity keeps ``n_level`` full copies
  ("Replicate"): fast writes, 1/(N_level+1) storage efficiency;
- :class:`ErasurePolicy` — every entity is erasure coded ("Erasure"):
  best storage efficiency, expensive updates (the paper's Section II-A
  naive read-modify-write re-encode), aggressive recovery by default.

:mod:`repro.core.hybrid` and :mod:`repro.core.corec` build on the same
base class.
"""

from __future__ import annotations

from typing import Generator

import numpy as np

from repro.core.recovery import RecoveryConfig, RecoveryManager
from repro.core.runtime import DataLossError, StagingRuntime, primary_key, replica_key
from repro.staging.objects import BlockEntity, ResilienceState

__all__ = [
    "ResiliencePolicy",
    "NoResilience",
    "ReplicationPolicy",
    "ErasurePolicy",
    "DataLossError",
]


def _noop() -> Generator:
    """An empty generator (for default hooks)."""
    return
    yield  # pragma: no cover


class ResiliencePolicy:
    """Base class: lifecycle hooks invoked by the staging service.

    Subclasses implement :meth:`on_write`; the other hooks have sensible
    defaults.  All generator hooks are driven inside simulator processes.
    """

    name = "base"

    def __init__(self, recovery: RecoveryConfig | None = None):
        self.recovery_config = recovery or RecoveryConfig()
        self.rt: StagingRuntime | None = None
        self.recovery: RecoveryManager | None = None

    # ------------------------------------------------------------------
    def attach(self, runtime: StagingRuntime) -> None:
        """Bind to a runtime; called once by the service at assembly."""
        self.rt = runtime
        self.recovery = RecoveryManager(runtime, self.recovery_config)

    def on_write(
        self,
        ent: BlockEntity,
        client_name: str,
        payload: np.ndarray,
        step: int,
        is_new: bool,
    ) -> Generator:
        """Stage ``payload`` as the entity's new version, with protection."""
        raise NotImplementedError

    def on_read(self, ent: BlockEntity, step: int) -> None:
        """Notification (not a flow) that a read of ``ent`` succeeded.

        Called synchronously from the service's get path after the payload
        is assembled — policies use it to feed access statistics; it must
        not yield, block or mutate entity protection state.
        """

    def on_step_end(self, step: int) -> Generator:
        """Barrier hook after all writers of a timestep complete."""
        return _noop()

    def on_flush(self) -> Generator:
        """Ensure every staged entity is fully protected (workflow barrier)."""
        return _noop()

    def on_server_failed(self, sid: int) -> None:
        self.recovery.on_server_failed(sid)

    def on_server_replaced(self, sid: int) -> None:
        self.recovery.on_server_replaced(sid)

    @property
    def repair_on_access(self) -> bool:
        return self.recovery.repair_on_access

    # ------------------------------------------------------------------
    # shared transition flows (used by hybrid and CoREC)
    # ------------------------------------------------------------------
    def _refresh_replicated(self, ent: BlockEntity, client_name: str, payload: np.ndarray) -> Generator:
        """Update path for a replicated entity: primary + all replicas."""
        yield from self.rt.ingest_primary(ent, client_name, payload)
        yield from self.rt.replicate_entity(ent, payload)

    def _demote_to_encoded(self, ent: BlockEntity, executor: int | None = None) -> Generator:
        """Replicated -> erasure coded: join/refill a stripe.

        The replica copies are *kept* while the entity waits in the pending
        pool (it stays protected through the whole transition) and are
        reclaimed by the encode itself.  Caller must hold the entity lock.
        """
        if ent.state != ResilienceState.REPLICATED:
            return
        self.rt.enqueue_for_encoding(ent)
        yield from self.rt.metadata_update(ent, ent.primary)
        gid = self.rt.layout.coding_group_id(ent.primary)
        if self.rt.stripe_ready(gid):
            yield from self.rt.encode_pending(gid, executor=executor)

    def _promote_to_replicated(self, ent: BlockEntity) -> Generator:
        """Erasure coded -> replicated: vacate the stripe slot, replicate.

        Caller must hold the entity lock.
        """
        if ent.state != ResilienceState.ENCODED or ent.stripe is None:
            return
        if not self.rt.alive(ent.primary):
            raise DataLossError(f"cannot promote {ent.key}: primary down")
        payload = yield from self.rt.extract_from_stripe(ent)
        if payload is None:  # primary died between extract and here
            raise DataLossError(f"promotion of {ent.key} lost its payload")
        yield from self.rt.replicate_entity(ent, payload)


class NoResilience(ResiliencePolicy):
    """Plain staging: primary copy only (the paper's "DataSpaces" bars)."""

    name = "none"

    def __init__(self):
        super().__init__(recovery=RecoveryConfig(mode="none", repair_on_access=False))

    def on_write(self, ent, client_name, payload, step, is_new) -> Generator:
        yield from self.rt.ingest_primary(ent, client_name, payload)


class ReplicationPolicy(ResiliencePolicy):
    """Full replication of every entity (the paper's "Replicate" bars)."""

    name = "replication"

    def __init__(self, recovery: RecoveryConfig | None = None):
        super().__init__(recovery=recovery or RecoveryConfig(mode="lazy"))

    def on_write(self, ent, client_name, payload, step, is_new) -> Generator:
        yield from self._refresh_replicated(ent, client_name, payload)


class ErasurePolicy(ResiliencePolicy):
    """Erasure coding of every entity (the paper's "Erasure" bars).

    Updates use the naive re-encode read-modify-write of Section II-A, and
    recovery is aggressive — both choices match the baseline the paper
    measures against.
    """

    name = "erasure"

    def __init__(self, recovery: RecoveryConfig | None = None, update_strategy: str = "reencode"):
        super().__init__(recovery=recovery or RecoveryConfig(mode="aggressive"))
        self.update_strategy = update_strategy

    def on_write(self, ent, client_name, payload, step, is_new) -> Generator:
        if ent.state == ResilienceState.ENCODED:
            yield from self.rt.ingest_primary(ent, client_name, payload, store=False)
            yield from self.rt.update_encoded_entity(ent, payload, strategy=self.update_strategy)
            return
        # First write, or still pending: stage and (re)queue for encoding.
        yield from self.rt.ingest_primary(ent, client_name, payload)
        if ent.state == ResilienceState.ENCODED:
            # An encoder raced the ingest (the entity joined a stripe
            # mid-transfer); fold the landed bytes into the parity instead
            # of re-enqueueing a striped entity.
            yield from self.rt.reconcile_encoded_member(ent)
            return
        if ent.state != ResilienceState.PENDING_STRIPE:
            self.rt.enqueue_for_encoding(ent)
        gid = self.rt.layout.coding_group_id(ent.primary)
        if self.rt.stripe_ready(gid):
            yield from self.rt.encode_pending(gid)

    def on_step_end(self, step: int) -> Generator:
        # Close out stragglers each timestep so no entity stays unprotected.
        for gid in range(self.rt.layout.n_coding_groups()):
            yield from self.rt.flush_pending(gid)

    def on_flush(self) -> Generator:
        for gid in range(self.rt.layout.n_coding_groups()):
            yield from self.rt.flush_pending(gid)
