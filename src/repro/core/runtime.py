"""Shared staged-data flows executed on the simulator.

``StagingRuntime`` is the single place where the *mechanics* of resilience
live: replication, stripe formation, parity maintenance, degraded reads and
object recovery.  Policies (:mod:`repro.core.policies`,
:mod:`repro.core.hybrid`, :mod:`repro.core.corec`) differ only in *when*
they invoke these flows; the flows themselves — which transfers happen,
which server burns CPU, which bytes land where — are common, so the
baselines and CoREC are compared on identical mechanics.

Store-key layout on servers:

- ``P/<name>/<block>``    — the primary copy of an entity (also the data
  shard of its stripe, padded implicitly: systematic code);
- ``R/<name>/<block>``    — a replica copy;
- ``stripe<id>/shard<i>`` — a parity shard (only parities are materialized
  separately).

Concurrency discipline (the paper's "data/parity object consistency
mechanism", Section III-B):

- every write/read/transition of an entity holds that entity's **lock**;
- every stripe mutation or reconstruction holds the stripe's **lock**;
- lock order is always entity -> stripe -> simulator resources, so the
  wait-for graph is acyclic;
- within a stripe operation, costs (transfers, CPU) are charged first and
  all byte/state mutations are applied at a single simulation instant, so
  a stripe is never observed half-updated.

All flows are generator process-bodies: they ``yield`` simulator events and
must be driven with ``yield from`` inside a simulator process.
"""

from __future__ import annotations

from typing import Callable, Generator, Sequence

import numpy as np

from repro.core.backend import Clock, Transport
from repro.erasure.batch import CodingBatch
from repro.erasure.gf256 import GF256
from repro.erasure.reedsolomon import StripeCodec
from repro.obs.tracer import NULL_TRACER, Tracer
from repro.sim.resources import Resource
from repro.staging.metadata import MetadataDirectory
from repro.staging.objects import BlockEntity, ResilienceState, StripeInfo
from repro.staging.server import StagingServer
from repro.core.metrics import Metrics
from repro.core.placement import GroupLayout
from repro.util.eventlog import EventLog

__all__ = ["StagingRuntime", "DataLossError", "primary_key", "replica_key"]

EntityKey = tuple[str, int]


class DataLossError(RuntimeError):
    """Raised when staged data cannot be served or reconstructed."""


def primary_key(ent: BlockEntity) -> str:
    return f"P/{ent.name}/{ent.block_id}"


def replica_key(ent: BlockEntity) -> str:
    return f"R/{ent.name}/{ent.block_id}"


class StagingRuntime:
    """Mechanics shared by every resilience policy."""

    def __init__(
        self,
        sim: Clock,
        network: Transport,
        servers: Sequence[StagingServer],
        directory: MetadataDirectory,
        layout: GroupLayout,
        metrics: Metrics,
        codec: StripeCodec,
        log: EventLog | None = None,
        tracer: Tracer | None = None,
    ):
        self.sim = sim
        self.network = network
        self.servers = list(servers)
        self.directory = directory
        self.layout = layout
        self.metrics = metrics
        self.codec = codec
        self.log = log or EventLog()
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.costs = self.servers[0].costs
        # Batched coding data path: stripe encodes are submitted to the
        # batch and forced when their bytes are needed, so every numeric
        # pass runs through the fused batch kernels.  Purely host-side —
        # simulated costs are charged per stripe exactly as before, and
        # ``batch_coding = False`` (the stripe-at-a-time path) produces
        # bit-identical stripes and identical event traces.
        self.batch_coding = True
        self.coding_batch = CodingBatch(codec.code, tracer=self.tracer)
        # Host-compute offload hook.  ``None`` (the simulator default)
        # runs numeric work inline with zero extra events, so sim traces
        # and goldens are untouched.  The live backend installs a function
        # ``fn -> Event`` that runs ``fn`` on a worker thread off the
        # event loop and fires the event with its result.
        self.compute_offload: Callable[[Callable[[], object]], object] | None = None
        # Pending (not yet striped) entities per coding group, keyed by the
        # primary server each entity would contribute a data shard from.
        self.pending: dict[int, dict[int, list[EntityKey]]] = {}
        self._entity_locks: dict[EntityKey, Resource] = {}
        self._stripe_locks: dict[int, Resource] = {}

    # ------------------------------------------------------------------
    # small helpers
    # ------------------------------------------------------------------
    def server(self, sid: int) -> StagingServer:
        return self.servers[sid]

    def alive(self, sid: int) -> bool:
        return not self.servers[sid].failed

    # The three ``Metrics.add_time`` call sites below are the *leaf* spans
    # of the trace: each stamps a ``booked`` attribute with the exact
    # duration it charged to the breakdown, so summing leaf spans per
    # category (``repro.obs.export.spans_to_breakdown``) reproduces
    # ``Metrics.breakdown`` and the trace is provably reconciled with the
    # aggregate metrics.  All tracing is guarded on ``tracer.enabled`` so
    # the default (null-tracer) hot path does no extra work.

    def transfer(self, src: str, dst: str, nbytes: int, category: str = "transport") -> Generator:
        tracer = self.tracer
        span = (
            tracer.begin("transport", category=category, src=src, dst=dst, nbytes=int(nbytes))
            if tracer.enabled
            else None
        )
        dur = yield from self.network.transfer(src, dst, nbytes)
        self.metrics.add_time(category, dur)
        if span is not None:
            tracer.end(span, booked=dur)
        return dur

    def busy(self, sid: int, duration: float, category: str, charge_wait: bool = True) -> Generator:
        """Occupy a server CPU and attribute the time to ``category``.

        With ``charge_wait=False`` only the service time is attributed (the
        queueing delay still elapses, it is just not booked against the
        category) — used for micro-operations like classification whose
        reported cost should be the work itself.
        """
        tracer = self.tracer
        span = (
            tracer.begin("cpu", category=category, server=sid, service_s=duration)
            if tracer.enabled
            else None
        )
        dur = yield from self.server(sid).busy(duration)
        booked = dur if charge_wait else duration
        self.metrics.add_time(category, booked)
        if span is not None:
            tracer.end(span, booked=booked)
        return dur

    def metadata_update(self, ent: BlockEntity, from_sid: int) -> Generator:
        """Propagate one metadata mutation to the entity's directory owner."""
        owner = self.directory.owner_of(ent.key)
        if owner != from_sid and self.alive(owner):
            tracer = self.tracer
            span = (
                tracer.begin("metadata.send", category="metadata", src=from_sid, dst=owner)
                if tracer.enabled
                else None
            )
            dur = yield from self.network.send_metadata(
                self.server(from_sid).name, self.server(owner).name
            )
            self.metrics.add_time("metadata", dur)
            if span is not None:
                tracer.end(span, booked=dur)
        if self.alive(owner):
            yield from self.busy(owner, self.costs.metadata_op_s, "metadata")
        self.metrics.count("metadata_updates")

    def compute(
        self,
        fn: Callable[[], object],
        exclusive: bool = True,
        category: str = "codec",
    ) -> Generator:
        """Run host-side numeric work (``yield from`` this at a yield point).

        On the simulator this is a plain call — the generator completes
        without yielding, so the event sequence is identical to calling
        ``fn()`` inline and golden traces are unaffected.  On the live
        backend ``compute_offload`` is installed and the work runs on a
        worker thread, keeping GF(2^8) kernel passes off the event loop.
        Only legal where the calling flow may yield; atomic (no-yield)
        mutation sections must keep their numeric work inline.

        ``exclusive=True`` (the default) marks work that mutates shared
        state without its own locking and must be serialized across
        worker threads.  The codec layer (decode-matrix cache, coding
        batch, scratch pools) is thread-safe, so every coding path passes
        ``exclusive=False`` and runs fully in parallel; ``exclusive``
        remains the safe default for new call sites.

        ``category`` names the attribution bucket the live backend
        charges the offload wait to ("codec" for kernel passes, "digest"
        for payload hashing); the simulator ignores it.
        """
        if self.compute_offload is not None:
            result = yield self.compute_offload(fn, exclusive, category)
            return result
        return fn()

    def _encode_stripe(self, payloads: Sequence[np.ndarray]) -> list[np.ndarray]:
        """Compute one stripe's parities through the batched coding path.

        The job joins whatever encodes are already pending and the whole
        batch is computed in one fused kernel flush.  Within the simulator
        a stripe's bytes are stored before the next flow runs, so the
        flush is usually immediate — the point is that *every* encode goes
        through the batch kernels, so drains that can overlap submissions
        fuse automatically and cost nothing extra when they cannot.
        """
        if not self.batch_coding:
            return self.codec.code.encode(payloads)
        return self.coding_batch.submit_encode(payloads).result()

    @staticmethod
    def _pad(buf: np.ndarray, length: int) -> np.ndarray:
        buf = np.ascontiguousarray(buf, dtype=np.uint8).ravel()
        if buf.size == length:
            return buf
        if buf.size > length:
            raise ValueError("payload longer than shard length")
        out = np.zeros(length, dtype=np.uint8)
        out[: buf.size] = buf
        return out

    # ------------------------------------------------------------------
    # locks
    # ------------------------------------------------------------------
    def entity_lock(self, key: EntityKey) -> Resource:
        lock = self._entity_locks.get(key)
        if lock is None:
            lock = Resource(self.sim, capacity=1)
            self._entity_locks[key] = lock
        return lock

    def stripe_lock(self, stripe_id: int) -> Resource:
        lock = self._stripe_locks.get(stripe_id)
        if lock is None:
            lock = Resource(self.sim, capacity=1)
            self._stripe_locks[stripe_id] = lock
        return lock

    def with_entity_lock(self, key: EntityKey, body: Generator) -> Generator:
        """Run ``body`` while holding the entity's lock."""
        lock = self.entity_lock(key)
        req = lock.request()
        yield req
        try:
            result = yield from body
        finally:
            lock.release(req)
        return result

    def with_stripe_lock(self, stripe_id: int, body: Generator) -> Generator:
        lock = self.stripe_lock(stripe_id)
        req = lock.request()
        yield req
        try:
            result = yield from body
        finally:
            lock.release(req)
        return result

    # ------------------------------------------------------------------
    # ingest
    # ------------------------------------------------------------------
    def ingest_primary(
        self, ent: BlockEntity, client_name: str, payload: np.ndarray, store: bool = True
    ) -> Generator:
        """Move a client's written payload to the entity's primary server.

        With ``store=False`` only the transfer is performed — used when the
        subsequent flow (e.g. an encoded-entity update) must defer the
        actual store for stripe consistency and charges its own store cost.
        """
        psrv = self.server(ent.primary)
        yield from self.transfer(client_name, psrv.name, int(payload.size))
        if store:
            yield from self.busy(ent.primary, self.costs.store_cost(int(payload.size)), "store")
            if not psrv.failed:
                psrv.store_bytes(primary_key(ent), payload)
                ent.stored_version = ent.version

    # ------------------------------------------------------------------
    # replication flows
    # ------------------------------------------------------------------
    def refresh_replica_copies(self, ent: BlockEntity, payload: np.ndarray) -> Generator:
        """Rewrite the existing replica copies without touching the state.

        Used for entities that are pending demotion: they keep (and must
        keep current) their replicas until the stripe actually protects
        them.
        """
        src = self.server(ent.primary)
        for t in ent.replicas:
            dst = self.server(t)
            if dst.failed:
                continue
            yield from self.transfer(src.name, dst.name, ent.nbytes)
            yield from self.busy(t, self.costs.store_cost(ent.nbytes), "store")
            if not dst.failed:
                dst.store_bytes(replica_key(ent), payload)
            self.metrics.count("replica_writes")
        new_accounted = ent.nbytes * len(ent.replicas)
        self.metrics.storage.replica += new_accounted - ent.replica_bytes_accounted
        ent.replica_bytes_accounted = new_accounted
        ent.replica_version = ent.version

    def replicate_entity(self, ent: BlockEntity, payload: np.ndarray) -> Generator:
        """Place/refresh the entity's replicas (paper's C_r path).

        Targets are the remaining members of the primary's replication
        group, in ring order, limited to ``n_level`` copies.  Caller must
        hold the entity lock and the entity must not be in a stripe.
        """
        if ent.stripe is not None:
            raise RuntimeError(f"replicate_entity on striped entity {ent.key}")
        # Targets are *assigned* (ring order), not filtered by liveness: a
        # copy owed to a dead member stays in ent.replicas so the sweep at
        # replacement time refills it — otherwise an entity whose only
        # partner is down would silently stay unprotected forever.
        targets = self.layout.replica_targets(ent.primary)[: self.layout.n_level]
        src = self.server(ent.primary)
        for t in targets:
            dst = self.server(t)
            if dst.failed:
                self.metrics.count("replica_writes_deferred")
                continue
            yield from self.transfer(src.name, dst.name, ent.nbytes)
            yield from self.busy(t, self.costs.store_cost(ent.nbytes), "store")
            if not dst.failed:  # may have died mid-transfer
                dst.store_bytes(replica_key(ent), payload)
            self.metrics.count("replica_writes")
        was_replicated = ent.state == ResilienceState.REPLICATED
        placement_changed = not was_replicated or targets != ent.replicas
        ent.state = ResilienceState.REPLICATED
        ent.replicas = targets
        ent.replica_version = ent.version
        # Logical accounting: replica bytes promised by the protection state.
        new_accounted = ent.nbytes * len(targets)
        self.metrics.storage.replica += new_accounted - ent.replica_bytes_accounted
        ent.replica_bytes_accounted = new_accounted
        if placement_changed:
            # Replica refreshes reuse the existing placement; only placement
            # changes publish new location metadata.
            yield from self.metadata_update(ent, ent.primary)
        if not was_replicated:
            self.metrics.count("transitions_to_replicated")

    def _drop_replica_copies(self, ent: BlockEntity) -> None:
        """Delete the replica payloads and their accounting (state untouched)."""
        for t in ent.replicas:
            srv = self.server(t)
            if not srv.failed:
                srv.delete_bytes(replica_key(ent))
        ent.replicas = []
        ent.replica_version = -1
        self.metrics.storage.replica -= ent.replica_bytes_accounted
        ent.replica_bytes_accounted = 0

    def drop_replicas(self, ent: BlockEntity) -> Generator:
        """Delete the entity's replicas (demotion to erasure coding)."""
        self._drop_replica_copies(ent)
        ent.state = ResilienceState.NONE
        yield from self.metadata_update(ent, ent.primary)

    # ------------------------------------------------------------------
    # stripe formation (demotion / initial protection by erasure coding)
    # ------------------------------------------------------------------
    def enqueue_for_encoding(self, ent: BlockEntity) -> None:
        """Mark an entity pending; it joins a stripe when enough peers exist.

        The entity must not be in a stripe.  Replicas, if any, are *kept*
        while the entity waits — it stays protected through the transition
        and the copies are reclaimed the moment it is encoded.
        """
        if ent.stripe is not None:
            raise RuntimeError(f"enqueue_for_encoding: {ent.key} still in a stripe")
        if ent.state == ResilienceState.PENDING_STRIPE:
            raise RuntimeError(f"enqueue_for_encoding: {ent.key} already pending")
        gid = self.layout.coding_group_id(ent.primary)
        group_pending = self.pending.setdefault(gid, {})
        group_pending.setdefault(ent.primary, []).append(ent.key)
        ent.state = ResilienceState.PENDING_STRIPE

    def redirect_pending(self, ent: BlockEntity) -> None:
        """Move a pending entity whose primary died to an alive group member.

        Keeps the pending pool's server keying consistent so the stripe the
        entity eventually joins places its data shard on the right server.
        """
        gid = self.layout.coding_group_id(ent.primary)
        old = ent.primary
        alive = [s for s in self.layout.coding_group_members(gid) if self.alive(s)]
        if not alive:
            raise DataLossError(f"coding group of pending entity {ent.key} fully failed")
        new = min(alive, key=lambda s: (self.server(s).workload_level(), s))
        group_pending = self.pending.setdefault(gid, {})
        old_queue = group_pending.get(old, [])
        if ent.key in old_queue:
            old_queue.remove(ent.key)
            group_pending.setdefault(new, []).append(ent.key)
        ent.primary = new

    def dequeue_pending(self, ent: BlockEntity) -> None:
        """Remove an entity's key from the encode queues (state untouched).

        Used when a policy decision overtakes a pending demotion — e.g. a
        write switches the entity back to replication before it joined a
        stripe.  Without this the stale key stays queued and a later flush
        would encode an entity that is no longer pending.  No-op when the
        entity is not queued.
        """
        for group_pending in self.pending.values():
            for queue in group_pending.values():
                if ent.key in queue:
                    queue.remove(ent.key)
                    return

    def stripe_ready(self, gid: int) -> bool:
        """True when the group's pending pool can make progress."""
        group_pending = self.pending.get(gid, {})
        if sum(1 for v in group_pending.values() if v) >= self.layout.k:
            return True
        return any(
            self._find_vacant_slot(gid, srv) for srv, v in group_pending.items() if v
        )

    def _find_vacant_slot(self, gid: int, server: int) -> tuple[StripeInfo, int] | None:
        """A vacant data slot usable by an entity whose primary is ``server``.

        A slot is usable if its placeholder already is ``server``, or if it
        can be retargeted to ``server`` without placing two shards of the
        stripe on one server.
        """
        fallback: tuple[StripeInfo, int] | None = None
        for stripe in self.directory.vacant_stripes(gid):
            # Placeholders are soft preferences; what must stay unique per
            # server is the set of *real* shards (rehoming may have parked
            # a live shard on a vacant slot's placeholder server).
            occupied = stripe.occupied_servers()
            if server in occupied:
                continue
            for i in stripe.vacant_slots():
                if stripe.shard_servers[i] == server:
                    return stripe, i
                if fallback is None:
                    fallback = (stripe, i)
        return fallback

    def encode_pending(self, gid: int, executor: int | None = None) -> Generator:
        """Drain the group's pending pool: refill vacant slots, form stripes.

        ``executor`` forces where full-stripe encodes run (token workflow);
        None lets each stripe encode on its first member's primary.
        """
        group_pending = self.pending.setdefault(gid, {})
        # 1. Refill vacant slots with matching-server pending entities.
        progress = True
        while progress:
            progress = False
            for srv in sorted(group_pending):
                queue = group_pending[srv]
                if not queue or not self.alive(srv):
                    continue
                found = self._find_vacant_slot(gid, srv)
                if found is None:
                    continue
                stripe, slot = found
                ent = self.directory.entities[queue[0]]
                if ent.nbytes > stripe.shard_len:
                    continue  # does not fit; wait for a fresh stripe
                queue.pop(0)
                filled = yield from self.with_stripe_lock(
                    stripe.stripe_id, self._fill_slot(stripe, slot, ent)
                )
                if not filled:
                    # A concurrent encoder claimed the slot while we waited
                    # for the stripe lock; retry with the next free slot.
                    queue.insert(0, ent.key)
                progress = True
        # 2. Form complete stripes while k distinct *alive* servers have
        # entities.  Entities whose primary is down stay pending (they keep
        # their pre-demotion replicas, so they remain protected) until the
        # server is replaced or a write redirects them.
        while True:
            ready_servers = sorted(
                s for s, v in group_pending.items() if v and self.alive(s)
            )
            if len(ready_servers) < self.layout.k:
                break
            chosen = ready_servers[: self.layout.k]
            members = [self.directory.entities[group_pending[s].pop(0)] for s in chosen]
            yield from self.form_stripe(gid, members, executor=executor)

    def flush_pending(self, gid: int, executor: int | None = None) -> Generator:
        """Close out partial stripes with vacant (zero) slots.

        Used at workflow barriers so no entity stays unprotected.
        """
        yield from self.encode_pending(gid, executor=executor)
        group_pending = self.pending.setdefault(gid, {})
        while any(v for s, v in group_pending.items() if self.alive(s)):
            ready = sorted(
                s for s, v in group_pending.items() if v and self.alive(s)
            )[: self.layout.k]
            members: list[BlockEntity | None] = [
                self.directory.entities[group_pending[s].pop(0)] for s in ready
            ]
            members += [None] * (self.layout.k - len(members))
            yield from self.form_stripe(gid, members, executor=executor)

    def form_stripe(
        self,
        gid: int,
        members: Sequence[BlockEntity | None],
        executor: int | None = None,
    ) -> Generator:
        """Encode one stripe from <= k member entities (None -> vacant slot).

        Gathers member payloads at the executor, computes the parities
        (really — via the RS codec), distributes parity shards to the
        group's parity servers, and registers the stripe.  If a member is
        written concurrently with the gather, the stripe is reconciled with
        a parity delta-update right after registration.
        """
        body = self._form_stripe_body(gid, members, executor)
        if not self.tracer.enabled:
            result = yield from body
            return result
        result = yield from self.tracer.traced(
            "stripe.form",
            body,
            category="encode",
            gid=gid,
            members=sum(1 for e in members if e is not None),
        )
        return result

    def _form_stripe_body(
        self,
        gid: int,
        members: Sequence[BlockEntity | None],
        executor: int | None = None,
    ) -> Generator:
        k, m = self.layout.k, self.layout.m
        if len(members) != k:
            raise ValueError(f"a stripe needs exactly {k} member slots")
        real = [e for e in members if e is not None]
        if not real:
            raise ValueError("cannot form a stripe with no members")
        data_servers = [e.primary for e in real]
        if len(set(data_servers)) != len(data_servers):
            raise ValueError("stripe members must have distinct primary servers")
        group_members = self.layout.coding_group_members(gid)
        placeholders = [s for s in group_members if s not in data_servers]
        # Vacant slots get placeholder servers so they can be refilled later.
        all_data_servers = list(data_servers) + placeholders[: k - len(real)]
        shard_servers = self.layout.stripe_shard_servers(
            gid, all_data_servers, seq=self.directory.stripe_seq(gid)
        )

        exec_sid = executor if executor is not None else real[0].primary
        if not self.alive(exec_sid):
            exec_sid = next(s for s in group_members if self.alive(s))
        exec_name = self.server(exec_sid).name

        shard_len = max(e.nbytes for e in real)
        payloads: list[np.ndarray] = []
        lengths: list[int] = []
        slot_keys: list[EntityKey | None] = []
        versions: dict[EntityKey, int] = {}
        for e, srv in zip(list(members), all_data_servers[:k]):
            if e is None:
                payloads.append(np.zeros(shard_len, dtype=np.uint8))
                lengths.append(0)
                slot_keys.append(None)
                continue
            src = self.server(e.primary)
            if not src.has(primary_key(e)):
                # The member's primary was replaced while it waited in the
                # pending pool; restore its copy from a replica (pending
                # entities keep their pre-demotion copies for exactly this).
                yield from self._restore_primary_from_replica(e)
            # Snapshot payload and version together (no yield in between) so
            # the stripe is self-consistent even if the member is written
            # while other members are still being gathered.  The version of
            # record is ``stored_version`` — what the fetched bytes actually
            # are — NOT ``e.version``: a writer bumps the version under the
            # entity lock *before* its store lands, and this gather does not
            # hold that lock, so the two can disagree mid-write.  Pairing
            # the fetch with ``e.version`` would mark old bytes as the new
            # version, drop the member's replicas, and lose the new write
            # on the next primary failure.
            raw = src.fetch_bytes(primary_key(e))
            versions[e.key] = e.stored_version
            if e.primary != exec_sid:
                yield from self.transfer(src.name, exec_name, e.nbytes)
            payloads.append(self._pad(raw, shard_len))
            lengths.append(int(raw.size))
            slot_keys.append(e.key)

        yield from self.busy(exec_sid, self.costs.encode_cost(k, m, shard_len), "encode")
        if self.tracer.enabled:
            calls0 = GF256.KERNEL_STATS["matmul_calls"]
        parities = yield from self.compute(
            lambda: self._encode_stripe(payloads), exclusive=False
        )
        if self.tracer.enabled:
            self.tracer.annotate(
                executor=exec_sid,
                shard_len=shard_len,
                kernel_calls=GF256.KERNEL_STATS["matmul_calls"] - calls0,
            )
        self.metrics.count("stripe_encodes")

        parity_plan: list[tuple[int, int, np.ndarray]] = []
        for i, parity in enumerate(parities):
            psid = shard_servers[k + i]
            if self.alive(psid):
                if psid != exec_sid:
                    yield from self.transfer(exec_name, self.server(psid).name, shard_len)
                yield from self.busy(psid, self.costs.store_cost(shard_len), "store")
                parity_plan.append((k + i, psid, parity))

        # --- atomic registration ---
        stripe = StripeInfo(
            stripe_id=self.directory.new_stripe_id(gid),
            k=k,
            m=m,
            members=slot_keys,
            member_versions=dict(versions),
            shard_servers=shard_servers,
            lengths=lengths,
            shard_len=shard_len,
            group_id=gid,
            baseline=[p if mk is not None else None for p, mk in zip(payloads, slot_keys)],
        )
        for shard_idx, psid, parity in parity_plan:
            if not self.server(psid).failed:
                self.server(psid).store_bytes(stripe.shard_key(shard_idx), parity)
        self.metrics.storage.parity += m * shard_len
        self.directory.register_stripe(stripe)
        for e in real:
            e.state = ResilienceState.ENCODED
            e.stripe = stripe
            e.reset_ref_counter()
            if e.replicas and e.version == versions[e.key]:
                # The entity stayed replicated through the transition; the
                # copies are reclaimed now that the stripe protects it.
                # Members whose bytes drifted during the gather keep their
                # copies: the stripe protects the *snapshot*, not the live
                # version, and dropping now would leave the new bytes on the
                # primary alone until the reconcile below lands (a primary
                # failure in that window would lose them).  The reconcile
                # reclaims the copies once the parity is current.
                self._drop_replica_copies(e)
            self.metrics.count("transitions_to_encoded")
        for e in real:
            yield from self.metadata_update(e, exec_sid)

        # Reconcile members whose primary copy was overwritten during the
        # gather window (a pending-state write racing the encode).
        for e in real:
            if e.stripe is not stripe or e.key not in stripe.members:
                continue  # already promoted out again
            slot = stripe.member_shard_index(e.key)
            yield from self.with_stripe_lock(
                stripe.stripe_id, self._reconcile_member(stripe, slot, e)
            )
        return stripe

    def _restore_primary_from_replica(self, ent: BlockEntity) -> Generator:
        """Best-effort primary-copy restore from any live *fresh* replica.

        A stale replica (version drifted past the copies) must never be
        promoted to primary: that would silently resurrect old bytes.
        """
        psrv = self.server(ent.primary)
        for r in ent.replicas if ent.replica_version == ent.version else ():
            rsrv = self.server(r)
            if rsrv.has(replica_key(ent)):
                payload = rsrv.fetch_bytes(replica_key(ent))
                yield from self.transfer(rsrv.name, psrv.name, ent.nbytes, "recovery")
                yield from self.busy(ent.primary, self.costs.store_cost(ent.nbytes), "recovery")
                # A concurrent write may have landed a newer copy meanwhile;
                # never clobber it with the (older) replica bytes.
                if not psrv.failed and not psrv.has(primary_key(ent)):
                    psrv.store_bytes(primary_key(ent), payload)
                    ent.stored_version = ent.replica_version
                    self.metrics.count("recovered_objects")
                break
        if not psrv.has(primary_key(ent)):
            raise DataLossError(
                f"entity {ent.key}: primary copy unavailable and no replica to restore from"
            )

    def _reconcile_member(self, stripe: StripeInfo, slot: int, ent: BlockEntity) -> Generator:
        """Bring the stripe's baseline for ``slot`` up to the stored bytes.

        Caller holds the stripe lock; membership is re-validated because a
        promotion may have vacated the slot while the lock was awaited.
        """
        if stripe.members[slot] != ent.key or ent.stripe is not stripe:
            return
        psrv = self.server(ent.primary)
        if not psrv.has(primary_key(ent)):
            return  # primary down/empty: any leftover copies stay (protection)
        current = psrv.fetch_bytes(primary_key(ent))
        base = stripe.baseline[slot]
        if base is not None and current.size <= stripe.shard_len:
            cur_p = self._pad(current, stripe.shard_len)
            if (cur_p == base).all():
                # No byte drift; adopt the stored bytes' version and reclaim
                # any copies a deferred drop left behind (only when the
                # stored bytes ARE the current version — otherwise the
                # copies are still the only protection for the live write).
                stripe.member_versions[ent.key] = ent.stored_version
                if ent.replicas and ent.stored_version == ent.version:
                    self._drop_replica_copies(ent)
                return
            version = ent.stored_version  # what the fetched bytes actually are

            def apply_state() -> None:
                stripe.baseline[slot] = cur_p
                stripe.lengths[slot] = int(current.size)
                stripe.member_versions[ent.key] = version
                if ent.replicas and version == ent.version:
                    # The parity now protects the live bytes: the replica
                    # copies kept through the drifted transition (see
                    # _form_stripe_body) are reclaimed here — leaving them
                    # would let a later recovery restore stale bytes.
                    self._drop_replica_copies(ent)

            yield from self._apply_parity_delta(
                stripe, slot, old=base, new=cur_p, src_sid=ent.primary,
                apply_data=apply_state,
            )
            self.metrics.count("stripe_reconciles")

    def reconcile_encoded_member(self, ent: BlockEntity) -> Generator:
        """Fold a just-landed primary write into the entity's stripe parity.

        Closes the put/encode race: a write that found the entity pending
        yields mid-ingest while an encoder forms the stripe from the
        *previous* bytes; by the time the store lands the entity is ENCODED
        and its replica copies are gone, so neither the parity nor any
        replica carries the new version — a later primary failure would
        silently decode the stale bytes.  Policies call this after ingest
        whenever the state flipped to ENCODED under them.  Caller holds the
        entity lock.
        """
        stripe = ent.stripe
        if stripe is None or ent.key not in stripe.members:
            return
        psrv = self.server(ent.primary)
        if not psrv.has(primary_key(ent)):
            return
        current = psrv.fetch_bytes(primary_key(ent))
        if current.size > stripe.shard_len:
            # The racing write outgrew the stripe: vacate the slot (the
            # oversized bytes are already stored) and queue a re-encode,
            # mirroring update_encoded_entity's oversize path.
            yield from self.extract_from_stripe(ent)
            self.enqueue_for_encoding(ent)
            gid = self.layout.coding_group_id(ent.primary)
            yield from self.encode_pending(gid)
            return
        slot = stripe.member_shard_index(ent.key)
        yield from self.with_stripe_lock(
            stripe.stripe_id, self._reconcile_member(stripe, slot, ent)
        )

    def _fill_slot(self, stripe: StripeInfo, slot: int, ent: BlockEntity) -> Generator:
        """Refill a vacant slot: parity delta-update with the new payload.

        Caller holds the stripe lock.  Returns False (without touching the
        stripe) if the slot was claimed by a concurrent encoder while this
        process waited for the lock.
        """
        if stripe.members[slot] is not None or stripe.stripe_id not in self.directory.stripes:
            return False
        if stripe.shard_servers[slot] != ent.primary and ent.primary in stripe.shard_servers:
            return False  # would put two shards of the stripe on one server
        if not self.server(ent.primary).has(primary_key(ent)):
            # Same guard as stripe formation: the primary was replaced while
            # the entity waited in the pending pool.
            yield from self._restore_primary_from_replica(ent)
        payload = self.server(ent.primary).fetch_bytes(primary_key(ent))
        payload_p = self._pad(payload, stripe.shard_len)
        version = ent.stored_version  # the fetched bytes' version (see gather)

        def apply_state() -> None:
            stripe.fill_slot(slot, ent.key, ent.primary)  # retargets placeholder
            stripe.lengths[slot] = int(payload.size)
            stripe.member_versions[ent.key] = version
            stripe.baseline[slot] = payload_p
            ent.state = ResilienceState.ENCODED
            ent.stripe = stripe
            ent.reset_ref_counter()
            if ent.replicas and ent.version == version:
                # Drifted members keep their copies until the trailing
                # reconcile folds the new bytes into the parity (see
                # _form_stripe_body).
                self._drop_replica_copies(ent)

        yield from self._apply_parity_delta(
            stripe,
            slot,
            old=np.zeros(stripe.shard_len, dtype=np.uint8),
            new=payload_p,
            src_sid=ent.primary,
            apply_data=apply_state,
        )
        yield from self.metadata_update(ent, ent.primary)
        self.metrics.count("slot_refills")
        self.metrics.count("transitions_to_encoded")
        # A write may have landed between the snapshot and the application.
        yield from self._reconcile_member(stripe, slot, ent)
        return True

    # ------------------------------------------------------------------
    # parity maintenance on updates
    # ------------------------------------------------------------------
    def _apply_parity_delta(
        self,
        stripe: StripeInfo,
        slot: int,
        old: np.ndarray,
        new: np.ndarray,
        src_sid: int,
        apply_data: Callable[[], None] | None = None,
        precondition: Callable[[], bool] | None = None,
    ) -> Generator:
        """Delta-update every parity of ``stripe`` for a change in ``slot``.

        Two phases: first all transfer and compute *costs* are charged (the
        generator yields), then every state mutation — the parity buffers
        plus the optional ``apply_data`` callback — is applied at a single
        simulation instant.  Caller holds the stripe lock.

        ``precondition`` is evaluated at the application instant; if it
        returns False nothing is mutated and the call returns False (used
        to abort when e.g. a server died while costs were being charged).
        """
        old_p = self._pad(old, stripe.shard_len)
        new_p = self._pad(new, stripe.shard_len)
        delta = np.bitwise_xor(old_p, new_p)
        src_name = self.server(src_sid).name
        code = self.codec.code
        touched: list[tuple[StagingServer, str, int]] = []
        for i in range(stripe.m):
            psid = stripe.shard_servers[stripe.k + i]
            if not self.alive(psid):
                continue  # lost parity; recovery will re-materialize it
            pkey = stripe.shard_key(stripe.k + i)
            psrv = self.server(psid)
            if not psrv.has(pkey):
                # Repair-on-update (paper Section III-D: a lost object is
                # "recovered immediately after it is queried or updated"):
                # rebuild the missing parity before applying the delta.
                try:
                    padded, exec_sid = yield from self._reconstruct_unlocked(
                        stripe, stripe.k + i, category="recovery"
                    )
                except DataLossError:
                    continue  # stripe too degraded; nothing to update here
                if exec_sid != psid:
                    yield from self.transfer(
                        self.server(exec_sid).name, psrv.name, stripe.shard_len, "recovery"
                    )
                yield from self.busy(psid, self.costs.store_cost(stripe.shard_len), "recovery")
                if psrv.failed:
                    continue
                psrv.store_bytes(pkey, padded)
                self.metrics.count("recovered_parities")
            if psid != src_sid:
                yield from self.transfer(src_name, psrv.name, stripe.shard_len)
            yield from self.busy(
                psid, self.costs.parity_update_cost(1, stripe.shard_len), "encode"
            )
            touched.append((psrv, pkey, int(code.parity_rows[i, slot])))
        # --- atomic application: no yields below this line ---
        if precondition is not None and not precondition():
            return False
        for psrv, pkey, coeff in touched:
            if psrv.failed or not psrv.has(pkey):
                continue  # died while we were charging costs
            # P_i' = P_i + G[k+i, slot] * (old + new), applied in place.
            buf = psrv.fetch_bytes(pkey).copy()
            GF256.addmul_bytes(buf, coeff, delta)
            psrv.store_bytes(pkey, buf)
        if apply_data is not None:
            apply_data()
        self.metrics.count("parity_updates")
        return True

    def update_encoded_entity(
        self,
        ent: BlockEntity,
        new_payload: np.ndarray,
        strategy: str = "delta",
    ) -> Generator:
        """Write a new version of an erasure-coded entity.

        Handles the parity maintenance *and* the primary-copy store, applied
        atomically at the end so the stripe is never observed half-updated.
        Caller holds the entity lock.

        ``strategy="delta"`` is the optimized read-modify-write (CoREC);
        ``strategy="reencode"`` is the paper's Section II-A naive update —
        read the other k-1 data objects, recompute all parities, rewrite
        them — used by the Erasure and SimpleHybrid baselines.
        """
        stripe = ent.stripe
        if stripe is None:
            raise RuntimeError(f"entity {ent.key} is ENCODED but has no stripe")
        new_payload = np.ascontiguousarray(new_payload, dtype=np.uint8).ravel()

        if new_payload.size > stripe.shard_len:
            # Does not fit the stripe any more: vacate and re-enqueue.
            yield from self.extract_from_stripe(ent)
            yield from self.busy(ent.primary, self.costs.store_cost(new_payload.size), "store")
            self.server(ent.primary).store_bytes(primary_key(ent), new_payload)
            ent.stored_version = ent.version
            self.enqueue_for_encoding(ent)
            gid = self.layout.coding_group_id(ent.primary)
            yield from self.encode_pending(gid)
            return

        yield from self.with_stripe_lock(
            stripe.stripe_id, self._update_encoded_locked(ent, stripe, new_payload, strategy)
        )

    def _update_encoded_locked(
        self, ent: BlockEntity, stripe: StripeInfo, new_payload: np.ndarray, strategy: str
    ) -> Generator:
        slot = stripe.member_shard_index(ent.key)
        psrv = self.server(ent.primary)
        pkey = primary_key(ent)
        version = ent.version
        new_p = self._pad(new_payload, stripe.shard_len)

        def apply_data() -> None:
            if not psrv.failed:
                psrv.store_bytes(pkey, new_payload)
                ent.stored_version = version
            stripe.lengths[slot] = int(new_payload.size)
            stripe.member_versions[ent.key] = version
            stripe.baseline[slot] = new_p
            if ent.replicas:
                # Leftover copies kept through a drifted encode are now
                # both stale (they hold the pre-update bytes) and redundant
                # (the parity protects the new bytes): reclaim them.
                self._drop_replica_copies(ent)

        if strategy == "delta":
            old = stripe.baseline[slot]
            yield from self.busy(ent.primary, self.costs.store_cost(new_payload.size), "store")
            yield from self._apply_parity_delta(
                stripe, slot, old=old, new=new_p, src_sid=ent.primary,
                apply_data=apply_data,
            )
        elif strategy == "reencode":
            yield from self.busy(ent.primary, self.costs.store_cost(new_payload.size), "store")
            yield from self._reencode_update(stripe, slot, new_p, ent, apply_data)
        else:
            raise ValueError(f"unknown update strategy {strategy!r}")

    def _reencode_update(
        self,
        stripe: StripeInfo,
        slot: int,
        new_padded: np.ndarray,
        ent: BlockEntity,
        apply_data: Callable[[], None],
    ) -> Generator:
        """Naive update (paper Section II-A): read the other k-1 data
        objects, recompute every parity, rewrite them.

        Costs are charged for the remote reads of the other members'
        objects; the computation uses the stripe's baseline so the result
        is consistent with the other slots regardless of in-flight writes
        to them (their own updates will reconcile their slots).
        """
        exec_sid = ent.primary
        exec_name = self.server(exec_sid).name
        shards: list[np.ndarray] = []
        for i in range(stripe.k):
            if i == slot:
                shards.append(new_padded)
                continue
            mk = stripe.members[i]
            if mk is None or stripe.baseline[i] is None:
                shards.append(np.zeros(stripe.shard_len, dtype=np.uint8))
                continue
            other = self.directory.entities[mk]
            osrv = self.server(other.primary)
            if osrv.has(primary_key(other)) and other.primary != exec_sid:
                # Charge the old-data read the naive scheme requires.
                yield from self.transfer(osrv.name, exec_name, stripe.lengths[i])
            shards.append(stripe.baseline[i])
        yield from self.busy(
            exec_sid, self.costs.encode_cost(stripe.k, stripe.m, stripe.shard_len), "encode"
        )
        parities = yield from self.compute(
            lambda: self._encode_stripe(shards), exclusive=False
        )
        staged: list[tuple[StagingServer, str, np.ndarray]] = []
        for i, parity in enumerate(parities):
            psid = stripe.shard_servers[stripe.k + i]
            if not self.alive(psid):
                continue
            if psid != exec_sid:
                yield from self.transfer(exec_name, self.server(psid).name, stripe.shard_len)
            yield from self.busy(psid, self.costs.store_cost(stripe.shard_len), "store")
            staged.append((self.server(psid), stripe.shard_key(stripe.k + i), parity))
        # --- atomic application ---
        for psrv, pkey, parity in staged:
            if not psrv.failed:
                psrv.store_bytes(pkey, parity)
        apply_data()
        self.metrics.count("stripe_reencodes")

    # ------------------------------------------------------------------
    # leaving a stripe (promotion / restripe)
    # ------------------------------------------------------------------
    def extract_from_stripe(self, ent: BlockEntity) -> Generator:
        """Remove ``ent`` from its stripe: zero its slot, return its payload.

        Caller holds the entity lock.  On return the entity is in state
        NONE with its primary copy guaranteed present.
        """
        stripe = ent.stripe
        if stripe is None:
            raise RuntimeError(f"{ent.key} has no stripe to leave")
        payload = yield from self.with_stripe_lock(
            stripe.stripe_id, self._extract_locked(ent, stripe)
        )
        return payload

    def _extract_locked(self, ent: BlockEntity, stripe: StripeInfo) -> Generator:
        slot = stripe.member_shard_index(ent.key)
        old = stripe.baseline[slot]
        baseline_version = stripe.member_versions.get(ent.key, ent.version)
        psrv = self.server(ent.primary)
        if psrv.failed:
            raise DataLossError(f"cannot extract {ent.key}: its primary is down")
        if not psrv.has(primary_key(ent)):
            yield from self.busy(ent.primary, self.costs.store_cost(old.size), "recovery")

        def apply_state() -> None:
            if not psrv.has(primary_key(ent)):
                psrv.store_bytes(primary_key(ent), old[: stripe.lengths[slot]].copy())
                ent.stored_version = baseline_version
            stripe.vacate_slot(slot)
            stripe.lengths[slot] = 0
            stripe.baseline[slot] = None
            stripe.member_versions.pop(ent.key, None)
            ent.stripe = None
            ent.state = ResilienceState.NONE

        # Abort untouched if the primary died while costs were charging —
        # the entity must keep its stripe protection in that case.
        applied = yield from self._apply_parity_delta(
            stripe,
            slot,
            old=old,
            new=np.zeros(stripe.shard_len, dtype=np.uint8),
            src_sid=ent.primary,
            apply_data=apply_state,
            precondition=lambda: not psrv.failed,
        )
        if not applied:
            raise DataLossError(f"extraction of {ent.key} aborted: primary failed mid-flight")
        self.metrics.count("slot_vacated")
        if stripe.is_empty():
            for i in range(stripe.m):
                psid = stripe.shard_servers[stripe.k + i]
                srv = self.server(psid)
                if not srv.failed:
                    srv.delete_bytes(stripe.shard_key(stripe.k + i))
            self.metrics.storage.parity -= stripe.m * stripe.shard_len
            self.directory.drop_stripe(stripe.stripe_id)
        return self.server(ent.primary).store.get(primary_key(ent))

    # ------------------------------------------------------------------
    # stripe compaction
    # ------------------------------------------------------------------
    def compact_group(self, gid: int) -> Generator:
        """Merge sparse stripes so promoted-out slots stop costing parity.

        Promotions leave vacant (zeroed) slots behind; their parity bytes
        still count against the storage bound.  Compaction moves the
        members of the sparsest stripe into matching vacant slots of other
        stripes (two parity delta-updates per move) and reclaims stripes
        that empty out.  Runs off the write path (step barrier).
        """
        while True:
            stripes = self.directory.vacant_stripes(gid)
            total_vacant = sum(len(s.vacant_slots()) for s in stripes)
            if total_vacant < self.layout.k or len(stripes) < 2:
                return
            donor = max(stripes, key=lambda s: (len(s.vacant_slots()), s.stripe_id))
            moved = False
            for mk in [m for m in donor.members if m is not None]:
                ent = self.directory.entities[mk]
                target = None
                fallback = None
                for s in stripes:
                    if s is donor or s.shard_len < ent.nbytes:
                        continue
                    for slot in s.vacant_slots():
                        if s.shard_servers[slot] == ent.primary:
                            target = (s, slot)
                            break
                        if fallback is None and ent.primary not in s.shard_servers:
                            fallback = (s, slot)
                    if target:
                        break
                target = target or fallback
                if target is None:
                    continue
                yield from self.with_entity_lock(
                    ent.key, self._move_member(ent, target[0], target[1])
                )
                moved = True
            if not moved:
                return

    def _move_member(self, ent: BlockEntity, target: StripeInfo, slot: int) -> Generator:
        """Relocate one encoded entity into ``target``'s vacant ``slot``."""
        if ent.state != ResilienceState.ENCODED or ent.stripe is None:
            return
        yield from self.extract_from_stripe(ent)
        filled = yield from self.with_stripe_lock(
            target.stripe_id, self._fill_slot(target, slot, ent)
        )
        if not filled:
            # Slot was taken while we moved; fall back to the pending pool.
            self.enqueue_for_encoding(ent)
            gid = self.layout.coding_group_id(ent.primary)
            yield from self.encode_pending(gid)
        self.metrics.count("compaction_moves")

    # ------------------------------------------------------------------
    # reads, degraded reads, recovery
    # ------------------------------------------------------------------
    def read_entity(self, ent: BlockEntity, dst_name: str, repair: bool = True) -> Generator:
        """Serve the entity's current payload to ``dst_name``.

        Fast path: primary copy.  Fallbacks: replica, then degraded decode
        from the stripe.  With ``repair=True``, a successful fallback also
        restores the primary copy if a replacement server is available
        (repair-on-access of the lazy recovery scheme).
        """
        body = self._read_entity_locked(ent, dst_name, repair)
        if self.tracer.enabled:
            # The span starts when the body first runs, i.e. once the
            # entity lock is held — lock wait is the caller's time.
            body = self.tracer.traced(
                "get.fetch", body, category="get", entity=f"{ent.name}/{ent.block_id}"
            )
        result = yield from self.with_entity_lock(ent.key, body)
        return result

    def _read_entity_locked(self, ent: BlockEntity, dst_name: str, repair: bool) -> Generator:
        psrv = self.server(ent.primary)
        pkey = primary_key(ent)
        if psrv.has(pkey):
            # Multiple copies raise the available read bandwidth: serve from
            # the least-loaded holder (paper Section IV case 5 — replication
            # "can increase data access bandwidth for concurrent requests").
            # Only version-fresh replicas qualify — leftover copies kept
            # through a drifted encode hold older bytes.
            src_sid, src_key = ent.primary, pkey
            if ent.replica_version == ent.version:
                for r in ent.replicas:
                    rsrv = self.server(r)
                    if rsrv.has(replica_key(ent)) and rsrv.workload_level() < self.server(
                        src_sid
                    ).workload_level():
                        src_sid, src_key = r, replica_key(ent)
            src = self.server(src_sid)
            payload = src.fetch_bytes(src_key)
            yield from self.busy(src_sid, self.costs.lookup_cost(ent.nbytes), "store")
            yield from self.transfer(src.name, dst_name, ent.nbytes)
            return payload

        # Replica fallback (version-fresh copies only: a stale replica
        # would silently serve old bytes; the stripe path below decodes
        # whatever the parity actually protects instead).
        for r in ent.replicas if ent.replica_version == ent.version else ():
            rsrv = self.server(r)
            if rsrv.has(replica_key(ent)):
                payload = rsrv.fetch_bytes(replica_key(ent))
                yield from self.busy(r, self.costs.lookup_cost(ent.nbytes), "store")
                if repair and not psrv.failed:
                    yield from self.transfer(rsrv.name, psrv.name, ent.nbytes, "recovery")
                    yield from self.busy(ent.primary, self.costs.store_cost(ent.nbytes), "recovery")
                    if not psrv.failed and not psrv.has(pkey):
                        psrv.store_bytes(pkey, payload)
                        ent.stored_version = ent.replica_version
                        self.metrics.count("recovered_objects")
                yield from self.transfer(rsrv.name, dst_name, ent.nbytes)
                self.metrics.count("replica_reads")
                return payload

        # Degraded decode from the stripe.
        if ent.stripe is not None:
            decoded_version = ent.stripe.member_versions.get(ent.key, ent.version)
            payload = yield from self.degraded_read(ent, dst_name)
            if repair and not psrv.failed:
                yield from self.busy(ent.primary, self.costs.store_cost(ent.nbytes), "recovery")
                if not psrv.failed and not psrv.has(pkey):
                    psrv.store_bytes(pkey, payload)
                    ent.stored_version = decoded_version
                    self.metrics.count("recovered_objects")
            return payload

        raise DataLossError(
            f"entity {ent.key} unrecoverable: primary lost, no replica, no stripe"
        )

    def _available_shards(self, stripe: StripeInfo) -> dict[int, int | None]:
        """Map shard index -> holding server (None for free virtual zeros)."""
        avail: dict[int, int | None] = {}
        for i in range(stripe.k):
            mk = stripe.members[i]
            if mk is None:
                avail[i] = None  # vacant slot: zeros, free everywhere
                continue
            member = self.directory.entities[mk]
            srv = self.server(member.primary)
            if srv.has(primary_key(member)):
                avail[i] = member.primary
        for i in range(stripe.k, stripe.k + stripe.m):
            sid = stripe.shard_servers[i]
            if self.server(sid).has(stripe.shard_key(i)):
                avail[i] = sid
        return avail

    def stripe_survivor_pattern(self, stripe: StripeInfo) -> tuple[int, ...] | None:
        """The survivor set a reconstruction of ``stripe`` would decode from.

        Pure state inspection (no simulator events) — used by bulk recovery
        to pre-warm the decode-matrix cache before a repair burst.  Returns
        None when the stripe is unrecoverable right now.
        """
        avail = self._available_shards(stripe)
        if len(avail) < stripe.k:
            return None
        return tuple(sorted(avail.keys())[: stripe.k])

    def _shard_payload(self, stripe: StripeInfo, idx: int) -> np.ndarray:
        if idx < stripe.k:
            mk = stripe.members[idx]
            if mk is None:
                return np.zeros(stripe.shard_len, dtype=np.uint8)
            member = self.directory.entities[mk]
            if (
                member.version != stripe.member_versions.get(mk)
                and stripe.baseline[idx] is not None
            ):
                # The member holds a newer version whose parity update has
                # not landed yet (async-protection window).  The staging
                # store is versioned, so reconstruction reads the version
                # the parity actually encodes.
                return stripe.baseline[idx]
            return self._pad(
                self.server(member.primary).fetch_bytes(primary_key(member)),
                stripe.shard_len,
            )
        return self.server(stripe.shard_servers[idx]).fetch_bytes(stripe.shard_key(idx))

    def reconstruct_shard(
        self,
        stripe: StripeInfo,
        target_idx: int,
        exec_sid: int | None = None,
        category: str = "decode",
    ) -> Generator:
        """Stripe-locked reconstruction of one shard; see the unlocked core."""
        result = yield from self.with_stripe_lock(
            stripe.stripe_id,
            self._reconstruct_unlocked(stripe, target_idx, exec_sid, category),
        )
        return result

    def _reconstruct_unlocked(
        self,
        stripe: StripeInfo,
        target_idx: int,
        exec_sid: int | None = None,
        category: str = "decode",
    ) -> Generator:
        """Gather k shards at an executor and reconstruct ``target_idx``.

        Returns ``(payload, exec_sid)`` where payload is the *padded* shard.
        """
        body = self._reconstruct_body(stripe, target_idx, exec_sid, category)
        if not self.tracer.enabled:
            result = yield from body
            return result
        result = yield from self.tracer.traced(
            "reconstruct",
            body,
            category=category,
            stripe=stripe.stripe_id,
            shard=target_idx,
        )
        return result

    def _reconstruct_body(
        self,
        stripe: StripeInfo,
        target_idx: int,
        exec_sid: int | None = None,
        category: str = "decode",
    ) -> Generator:
        avail = self._available_shards(stripe)
        if target_idx in avail:
            holder = avail[target_idx]
            payload = self._shard_payload(stripe, target_idx)
            return payload, (holder if holder is not None else stripe.shard_servers[target_idx])
        # Prefer data shards (virtual zeros are free), then parities.
        chosen = sorted(avail.keys())[: stripe.k]
        if len(chosen) < stripe.k:
            raise DataLossError(
                f"stripe {stripe.stripe_id}: only {len(chosen)} of {stripe.k} shards available"
            )
        holders = [avail[i] for i in chosen if avail[i] is not None]
        if exec_sid is None or not self.alive(exec_sid):
            candidates = [s for s in set(holders) if self.alive(s)] or [
                s
                for s in self.layout.coding_group_members(
                    self.layout.coding_group_id(stripe.shard_servers[0])
                )
                if self.alive(s)
            ]
            if not candidates:
                raise DataLossError("no alive server to execute reconstruction")
            # Decode where the most chosen shards already live (fewest
            # gather transfers); load breaks ties.
            def gather_cost(s: int) -> tuple:
                remote = sum(1 for h in holders if h != s)
                return (remote, self.server(s).workload_level(), s)

            exec_sid = min(candidates, key=gather_cost)
        exec_name = self.server(exec_sid).name
        # Snapshot all shard payloads now (consistent under the stripe
        # lock), then charge the transfer costs.
        present: dict[int, np.ndarray] = {i: self._shard_payload(stripe, i) for i in chosen}
        for i in chosen:
            holder = avail[i]
            if holder is not None and holder != exec_sid:
                yield from self.transfer(self.server(holder).name, exec_name, stripe.shard_len)
        yield from self.busy(
            exec_sid, self.costs.decode_cost(stripe.k, 1, stripe.shard_len), category
        )
        code = self.codec.code
        if self.tracer.enabled:
            hits0, misses0 = code.decode_cache_hits, code.decode_cache_misses
            calls0 = GF256.KERNEL_STATS["matmul_calls"]
        payload = yield from self.compute(
            lambda: code.reconstruct_shard(present, target_idx), exclusive=False
        )
        if self.tracer.enabled:
            self.tracer.annotate(
                executor=exec_sid,
                gathered=len(chosen),
                decode_cache_hits=code.decode_cache_hits - hits0,
                decode_cache_misses=code.decode_cache_misses - misses0,
                kernel_calls=GF256.KERNEL_STATS["matmul_calls"] - calls0,
            )
        return payload, exec_sid

    def degraded_read(self, ent: BlockEntity, dst_name: str) -> Generator:
        """Decode the entity on demand and ship it to the client.

        The degraded-mode read path of Section III-D: the reconstruction
        happens in the read path and the result is *not* re-stored (the
        caller decides about repair).
        """
        body = self._degraded_read_body(ent, dst_name)
        if not self.tracer.enabled:
            result = yield from body
            return result
        result = yield from self.tracer.traced(
            "get.decode", body, category="get", entity=f"{ent.name}/{ent.block_id}"
        )
        return result

    def _degraded_read_body(self, ent: BlockEntity, dst_name: str) -> Generator:
        stripe = ent.stripe
        slot = stripe.member_shard_index(ent.key)
        padded, exec_sid = yield from self.reconstruct_shard(stripe, slot)
        payload = padded[: ent.nbytes].copy()
        yield from self.transfer(self.server(exec_sid).name, dst_name, ent.nbytes)
        self.metrics.count("degraded_reads")
        return payload

    # ------------------------------------------------------------------
    # per-object recovery (lazy sweep / aggressive)
    # ------------------------------------------------------------------
    def recover_primary(self, ent: BlockEntity, onto: int | None = None) -> Generator:
        """Re-materialize the entity's primary copy (entity-locked).

        ``onto`` overrides the destination server (aggressive recovery onto
        survivors reassigns the primary); default is the entity's primary
        (assumed replaced and empty).
        """
        yield from self.with_entity_lock(ent.key, self._recover_primary_locked(ent, onto))

    def _recover_primary_locked(self, ent: BlockEntity, onto: int | None) -> Generator:
        dst_sid = ent.primary if onto is None else onto
        dst = self.server(dst_sid)
        if dst.failed:
            raise DataLossError(f"cannot recover {ent.key} onto failed server {dst_sid}")
        if dst.has(primary_key(ent)) and onto is None:
            return  # already there (repaired on access)
        payload = None
        payload_version = ent.version
        # Version-fresh replicas first (cheap copy); a stale replica is
        # skipped in favor of the stripe, which decodes what the parity
        # actually protects.
        for r in ent.replicas if ent.replica_version == ent.version else ():
            rsrv = self.server(r)
            if rsrv.has(replica_key(ent)):
                payload = rsrv.fetch_bytes(replica_key(ent))
                payload_version = ent.replica_version
                yield from self.busy(r, self.costs.lookup_cost(ent.nbytes), "recovery")
                yield from self.transfer(rsrv.name, dst.name, ent.nbytes, "recovery")
                break
        if payload is None and ent.stripe is not None:
            slot = ent.stripe.member_shard_index(ent.key)
            payload_version = ent.stripe.member_versions.get(ent.key, ent.version)
            padded, exec_sid = yield from self.reconstruct_shard(
                ent.stripe, slot, category="recovery"
            )
            payload = padded[: ent.nbytes].copy()
            if exec_sid != dst_sid:
                yield from self.transfer(self.server(exec_sid).name, dst.name, ent.nbytes, "recovery")
        if payload is None:
            raise DataLossError(f"no source to recover entity {ent.key}")
        yield from self.busy(dst_sid, self.costs.store_cost(ent.nbytes), "recovery")
        if dst.failed:
            raise DataLossError(f"server {dst_sid} failed during recovery of {ent.key}")
        dst.store_bytes(primary_key(ent), payload)
        ent.stored_version = payload_version
        if onto is not None and onto != ent.primary:
            if ent.stripe is not None:
                slot = ent.stripe.member_shard_index(ent.key)
                ent.stripe.retarget_shard(slot, onto)
            ent.primary = onto
        self.metrics.count("recovered_objects")
        yield from self.metadata_update(ent, dst_sid)
        if (
            ent.stripe is not None
            and ent.key in ent.stripe.members
            and ent.stripe.member_versions.get(ent.key) != ent.version
        ):
            # The restored copy (from a replica kept through a drifted
            # encode) is newer than what the stripe protects: fold it into
            # the parity now, which also reclaims the leftover copies.
            slot = ent.stripe.member_shard_index(ent.key)
            yield from self.with_stripe_lock(
                ent.stripe.stripe_id, self._reconcile_member(ent.stripe, slot, ent)
            )

    def recover_replica(self, ent: BlockEntity, target: int) -> Generator:
        """Re-materialize one replica of a replicated entity on ``target``."""
        yield from self.with_entity_lock(ent.key, self._recover_replica_locked(ent, target))

    def _recover_replica_locked(self, ent: BlockEntity, target: int) -> Generator:
        if target not in ent.replicas:
            # The placement decision was made before we got the lock; the
            # entity may have been demoted to a stripe (replicas dropped) or
            # re-replicated elsewhere while we waited.  Writing the copy now
            # would leave orphan bytes no metadata tracks.
            self.metrics.count("replica_repairs_stale")
            return
        dst = self.server(target)
        if dst.failed or dst.has(replica_key(ent)):
            return
        src_sid = None
        key = None
        psrv = self.server(ent.primary)
        # Source discipline: replica copies all hold ``replica_version``
        # bytes.  The primary qualifies as a source only when its bytes
        # match that version (a stale restored primary would make this
        # copy diverge from its siblings under one version stamp).
        if psrv.has(primary_key(ent)) and ent.stored_version == ent.replica_version:
            src_sid, key = ent.primary, primary_key(ent)
        else:
            for r in ent.replicas:
                if r != target and self.server(r).has(replica_key(ent)):
                    src_sid, key = r, replica_key(ent)
                    break
        if src_sid is None:
            # Last resort: rebuild primary first, then copy.
            yield from self._recover_primary_locked(ent, onto=None)
            src_sid, key = ent.primary, primary_key(ent)
        payload = self.server(src_sid).fetch_bytes(key)
        yield from self.transfer(self.server(src_sid).name, dst.name, ent.nbytes, "recovery")
        yield from self.busy(target, self.costs.store_cost(ent.nbytes), "recovery")
        if target not in ent.replicas:
            # The stripe-formation path reclaims replicas without taking the
            # member's entity lock (it snapshots instead), so the entity may
            # have been demoted while our copy was in flight — storing it now
            # would orphan the bytes.
            self.metrics.count("replica_repairs_stale")
            return
        if not dst.failed:
            dst.store_bytes(replica_key(ent), payload)
        self.metrics.count("recovered_replicas")

    def recover_parity(self, stripe: StripeInfo, idx: int, onto: int | None = None) -> Generator:
        """Re-materialize a lost parity shard (stripe-locked)."""
        yield from self.with_stripe_lock(
            stripe.stripe_id, self._recover_parity_locked(stripe, idx, onto)
        )

    def _recover_parity_locked(self, stripe: StripeInfo, idx: int, onto: int | None) -> Generator:
        if stripe.stripe_id not in self.directory.stripes:
            return  # dissolved while we waited for the lock
        dst_sid = stripe.shard_servers[idx] if onto is None else onto
        dst = self.server(dst_sid)
        if dst.failed or dst.has(stripe.shard_key(idx)):
            return
        padded, exec_sid = yield from self._reconstruct_unlocked(stripe, idx, category="recovery")
        if exec_sid != dst_sid:
            yield from self.transfer(self.server(exec_sid).name, dst.name, stripe.shard_len, "recovery")
        yield from self.busy(dst_sid, self.costs.store_cost(stripe.shard_len), "recovery")
        if dst.failed:
            return
        dst.store_bytes(stripe.shard_key(idx), padded)
        if onto is not None:
            stripe.retarget_shard(idx, onto)
        self.metrics.count("recovered_parities")
