"""Algorithm 1: geometric partitioning and fitting of staged objects.

Very small objects suffer metadata overhead; very large ones inflate
encode/decode/transport latency (paper Section III-C).  Algorithm 1
repeatedly halves an object along its longest geometric dimension until
every piece falls inside a target byte-size band.

Two entry points:

- :func:`fit_object` — the literal Algorithm 1: partition one n-D box until
  all pieces are at most ``max_bytes``;
- :func:`choose_block_shape` — applies the same halving to the *global
  domain* to derive the regular block grid the spatial index distributes
  ("under perfect conditions, every object can be partitioned into regular
  and uniform n-dimensional objects").
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.staging.domain import BBox

__all__ = ["PartitionResult", "fit_object", "choose_block_shape"]


@dataclass
class PartitionResult:
    """Outcome of fitting one object: sub-boxes plus per-piece metadata."""

    pieces: list[BBox]
    metadata: list[dict] = field(default_factory=list)

    @property
    def n_pieces(self) -> int:
        return len(self.pieces)

    def total_volume(self) -> int:
        return sum(p.volume for p in self.pieces)


def fit_object(
    box: BBox,
    element_bytes: int,
    max_bytes: int,
    min_bytes: int = 0,
) -> PartitionResult:
    """Partition ``box`` until every piece is at most ``max_bytes``.

    Implements the paper's Algorithm 1: while any piece exceeds the fitting
    size, split it in half along its longest dimension.  ``min_bytes`` is
    advisory — the algorithm never splits a piece that would drop below it
    unless the piece still exceeds ``max_bytes`` (over-large objects always
    split, as in the paper; the band balances metadata overhead against
    access latency).

    Invariants (property-tested):
    - pieces are pairwise disjoint and exactly cover ``box``;
    - every piece with volume allowing it is <= ``max_bytes``;
    - no piece is split below one element per dimension.
    """
    if element_bytes < 1:
        raise ValueError("element_bytes must be >= 1")
    if max_bytes < 1:
        raise ValueError("max_bytes must be >= 1")
    if min_bytes > max_bytes:
        raise ValueError("min_bytes exceeds max_bytes")

    pieces: list[BBox] = []
    work = [box]
    while work:
        piece = work.pop()
        nbytes = piece.volume * element_bytes
        can_split = any(s >= 2 for s in piece.shape)
        if nbytes > max_bytes and can_split:
            a, b = piece.halve_longest()
            work.append(a)
            work.append(b)
        else:
            pieces.append(piece)
    # Deterministic ordering (row-major by lower bound).
    pieces.sort(key=lambda p: p.lb)
    metadata = [
        {"bbox": p, "nbytes": p.volume * element_bytes, "fits": p.volume * element_bytes <= max_bytes}
        for p in pieces
    ]
    return PartitionResult(pieces=pieces, metadata=metadata)


def choose_block_shape(
    shape: tuple[int, ...],
    element_bytes: int,
    max_bytes: int,
) -> tuple[int, ...]:
    """Derive a regular block shape by Algorithm-1 halving of the domain.

    Halves the longest dimension of the *block shape* (initially the whole
    domain) until one block is at most ``max_bytes``.  Because the same
    dimension order is always chosen, the resulting grid is regular, which
    is the uniform-object condition the paper aims for.
    """
    block = list(int(s) for s in shape)
    if any(b < 1 for b in block):
        raise ValueError("domain extents must be positive")

    def nbytes() -> int:
        v = 1
        for b in block:
            v *= b
        return v * element_bytes

    while nbytes() > max_bytes:
        dim = max(range(len(block)), key=lambda d: (block[d], -d))
        if block[dim] < 2:
            break  # cannot split further; single elements exceed the band
        block[dim] = -(-block[dim] // 2)  # ceil halving keeps coverage
    return tuple(block)
