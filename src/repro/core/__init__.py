"""CoREC core: the paper's primary contribution.

- :mod:`repro.core.model` — the Section II-D analytic cost/efficiency model
  (Figure 4);
- :mod:`repro.core.partition` — Algorithm 1 geometric object fitting;
- :mod:`repro.core.placement` — grouped replication & erasure-coding layout
  over the topology-aware ring (Section III-A);
- :mod:`repro.core.classifier` — online hot/cold data classification from
  spatial/temporal access locality (Section II-C);
- :mod:`repro.core.tokens` — the load-balancing, conflict-avoiding encoding
  token workflow (Section III-B);
- :mod:`repro.core.metrics` — response-time and execution-breakdown
  accounting (Figures 8 and 9);
- :mod:`repro.core.recovery` — degraded reads, lazy recovery and the
  aggressive-recovery baseline (Section III-D, Figure 10);
- :mod:`repro.core.policies` — the resilience-policy interface and the
  NoResilience / Replication / ErasureOnly baselines;
- :mod:`repro.core.hybrid` — simple hybrid erasure coding (random
  selection, no classification);
- :mod:`repro.core.corec` — the full CoREC policy;
- :mod:`repro.core.runtime` — shared write/read/encode/recover flows
  executed on the simulator.
"""

from repro.core.model import CoRECModel, ModelParams
from repro.core.partition import fit_object, choose_block_shape, PartitionResult
from repro.core.placement import GroupLayout
from repro.core.classifier import HotColdClassifier, ClassifierConfig
from repro.core.metrics import Metrics
from repro.core.policies import (
    ResiliencePolicy,
    NoResilience,
    ReplicationPolicy,
    ErasurePolicy,
    DataLossError,
)
from repro.core.hybrid import SimpleHybridPolicy
from repro.core.corec import CoRECPolicy, CoRECConfig
from repro.core.durability import DurabilityParams, group_mttdl, system_mttdl, annual_loss_probability

__all__ = [
    "CoRECModel",
    "ModelParams",
    "fit_object",
    "choose_block_shape",
    "PartitionResult",
    "GroupLayout",
    "HotColdClassifier",
    "ClassifierConfig",
    "Metrics",
    "ResiliencePolicy",
    "NoResilience",
    "ReplicationPolicy",
    "ErasurePolicy",
    "SimpleHybridPolicy",
    "CoRECPolicy",
    "CoRECConfig",
    "DataLossError",
    "DurabilityParams",
    "group_mttdl",
    "system_mttdl",
    "annual_loss_probability",
]
