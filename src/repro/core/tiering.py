"""Adaptive resilience tiering v2: cost-modelled online transcoding.

The paper's classifier picks replication vs erasure coding *once*, at
write time, and the storage bound forces demotions only when efficiency
drops.  This module makes the protection choice continuous and online
(ROADMAP item 3, grounded in the two-tier memory-protection analysis in
PAPERS.md): per-entity access statistics drive background transcoding in
both directions, gated by a cost model so a transcode only runs when it
pays for itself over a configurable horizon.

Cost model
----------
For an entity of ``B`` bytes with EWMA read rate ``r`` and write rate
``w`` (accesses per timestep), ``n`` replicas and an RS(k, m) code, the
per-step *operating cost* of each protection form is::

    replicated(B, r, w) = w * B * n * replica_write      (refresh n copies)
    encoded(B, r, w)    = w * B * delta_update           (parity delta RMW)
                        + r * B * degraded_read          (decode-risk weight)

and holding replicas costs storage, valued at ``storage`` per redundant
byte-step.  Over a horizon of ``H`` steps the net benefit of demoting
(replicated -> encoded) is therefore::

    demote_benefit = H * B * (n*storage + w*n*replica_write
                              - w*delta_update - r*degraded_read)
    demote_cost    = B * (transfer + encode * (1 + m/k))   (move + codec)

and the promote direction is the exact negation with its own move cost::

    promote_benefit = -demote_benefit
    promote_cost    = B * (transfer * (1 + n) + encode)    (extract + copy)

A transcode fires only when ``benefit > margin * cost`` with
``margin >= 1``.  Because the two benefits are negations of each other,
the margin opens a dead band between the thresholds — an entity whose
rates hover at the boundary satisfies *neither* direction — and the
per-entity ``cooldown_steps`` adds temporal hysteresis on top, so
oscillating access patterns cannot thrash transcodes.

Mechanism
---------
:class:`TranscodeManager` runs at the policy's step barrier and *only
schedules* transitions: the actual transcodes reuse the CoREC policy's
crash-safe primitives — demotion keeps the replica copies until the
stripe encode durably lands and atomically reclaims them; promotion
extracts from the stripe under the entity lock and replicates before the
slot is vacated — so the old protection form stays readable until the new
form is durably placed and swapped in the directory.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = [
    "TieringCosts",
    "TieringConfig",
    "AccessStats",
    "TranscodeCostModel",
    "TranscodeManager",
]

EntityKey = tuple[str, int]


@dataclass(frozen=True)
class TieringCosts:
    """Unitless work-per-byte weights of the cost model."""

    transfer: float = 1.0        # moving one byte between servers
    encode: float = 0.5          # codec work per byte erasure coded
    delta_update: float = 2.5    # parity delta read-modify-write per written byte
    replica_write: float = 1.0   # per byte per replica on a replicated write
    degraded_read: float = 1.0   # decode-risk weight per byte read while encoded
    storage: float = 0.3         # value per redundant byte-step freed


@dataclass
class TieringConfig:
    """Tunables of the online transcoding layer (off unless attached)."""

    horizon_steps: int = 8           # expected-savings lookahead window H
    ewma_alpha: float = 0.5          # access-rate smoothing factor
    margin: float = 1.25             # benefit must exceed margin * cost
    cooldown_steps: int = 4          # min steps between transcodes per entity
    max_transcodes_per_step: int = 4
    costs: TieringCosts = field(default_factory=TieringCosts)

    def __post_init__(self) -> None:
        if self.horizon_steps < 1:
            raise ValueError("horizon_steps must be >= 1")
        if not 0.0 < self.ewma_alpha <= 1.0:
            raise ValueError("ewma_alpha must be in (0, 1]")
        if self.margin < 1.0:
            raise ValueError("margin < 1 would let unprofitable transcodes run")
        if self.cooldown_steps < 0 or self.max_transcodes_per_step < 1:
            raise ValueError("cooldown/max_transcodes out of range")


class AccessStats:
    """Per-entity EWMA read/write rates, folded once per timestep."""

    def __init__(self, alpha: float = 0.5):
        self.alpha = alpha
        self._reads_now: dict[EntityKey, int] = {}
        self._writes_now: dict[EntityKey, int] = {}
        self._read_rate: dict[EntityKey, float] = {}
        self._write_rate: dict[EntityKey, float] = {}

    def record_read(self, key: EntityKey) -> None:
        self._reads_now[key] = self._reads_now.get(key, 0) + 1

    def record_write(self, key: EntityKey) -> None:
        self._writes_now[key] = self._writes_now.get(key, 0) + 1

    def advance(self) -> None:
        """Fold the step's raw counts into the EWMA rates (step barrier)."""
        a = self.alpha
        for rates, raw in (
            (self._read_rate, self._reads_now),
            (self._write_rate, self._writes_now),
        ):
            for key in set(rates) | set(raw):
                rates[key] = a * raw.get(key, 0) + (1 - a) * rates.get(key, 0.0)
            raw.clear()

    def read_rate(self, key: EntityKey) -> float:
        return self._read_rate.get(key, 0.0)

    def write_rate(self, key: EntityKey) -> float:
        return self._write_rate.get(key, 0.0)

    def forget(self, key: EntityKey) -> None:
        for d in (self._reads_now, self._writes_now, self._read_rate, self._write_rate):
            d.pop(key, None)


class TranscodeCostModel:
    """Pure pay-for-itself arithmetic over (bytes, rates, code geometry)."""

    def __init__(self, config: TieringConfig, k: int, m: int, n_level: int):
        self.config = config
        self.k = k
        self.m = m
        self.n_level = n_level

    # -- per-step operating-cost delta (positive favours encoding) -------
    def _step_gain_encoded(self, nbytes: int, read_rate: float, write_rate: float) -> float:
        c = self.config.costs
        n = self.n_level
        replicated = write_rate * nbytes * n * c.replica_write + n * nbytes * c.storage
        encoded = (
            write_rate * nbytes * c.delta_update
            + read_rate * nbytes * c.degraded_read
        )
        return replicated - encoded

    # -- one-shot transcode costs ----------------------------------------
    def demote_cost(self, nbytes: int) -> float:
        c = self.config.costs
        return nbytes * (c.transfer + c.encode * (1 + self.m / self.k))

    def promote_cost(self, nbytes: int) -> float:
        c = self.config.costs
        return nbytes * (c.transfer * (1 + self.n_level) + c.encode)

    # -- horizon-integrated benefits -------------------------------------
    def demote_benefit(self, nbytes: int, read_rate: float, write_rate: float) -> float:
        return self.config.horizon_steps * self._step_gain_encoded(
            nbytes, read_rate, write_rate
        )

    def promote_benefit(self, nbytes: int, read_rate: float, write_rate: float) -> float:
        return -self.demote_benefit(nbytes, read_rate, write_rate)

    # -- decisions --------------------------------------------------------
    def should_demote(self, nbytes: int, read_rate: float, write_rate: float) -> bool:
        return self.demote_benefit(nbytes, read_rate, write_rate) > (
            self.config.margin * self.demote_cost(nbytes)
        )

    def should_promote(self, nbytes: int, read_rate: float, write_rate: float) -> bool:
        return self.promote_benefit(nbytes, read_rate, write_rate) > (
            self.config.margin * self.promote_cost(nbytes)
        )

    def decide(
        self, state: str, nbytes: int, read_rate: float, write_rate: float
    ) -> str | None:
        """"demote" / "promote" / None for an entity in ``state``.

        ``state`` is the resilience-state value string ("replicated" /
        "encoded"); other states are not transcodable.
        """
        if state == "replicated" and self.should_demote(nbytes, read_rate, write_rate):
            return "demote"
        if state == "encoded" and self.should_promote(nbytes, read_rate, write_rate):
            return "promote"
        return None


class TranscodeManager:
    """Background transcode scheduling against a live CoREC policy.

    Owns the access statistics and the cost model; at every step barrier
    it scans the replicated/encoded membership sets (reverse indexes, so
    the scan is O(entities in those states)) and schedules at most
    ``max_transcodes_per_step`` profitable transitions through the
    policy's token-serialized, crash-safe transition machinery.
    """

    def __init__(self, policy, config: TieringConfig):
        self.policy = policy
        self.config = config
        self.stats = AccessStats(config.ewma_alpha)
        self.model: TranscodeCostModel | None = None
        self._last_transcode: dict[EntityKey, int] = {}
        self.demotes_scheduled = 0
        self.promotes_scheduled = 0
        self.decisions_evaluated = 0

    def attach(self, runtime) -> None:
        layout = runtime.layout
        self.model = TranscodeCostModel(self.config, layout.k, layout.m, layout.n_level)

    # -- access recording (called from the policy's read/write hooks) ----
    def record_read(self, key: EntityKey) -> None:
        self.stats.record_read(key)

    def record_write(self, key: EntityKey) -> None:
        self.stats.record_write(key)

    # -- step barrier -----------------------------------------------------
    def _in_cooldown(self, key: EntityKey, step: int) -> bool:
        last = self._last_transcode.get(key)
        return last is not None and step - last < self.config.cooldown_steps

    def on_step_end(self, step: int) -> None:
        """Fold rates, then schedule the profitable transcodes of the step."""
        from repro.staging.objects import ResilienceState

        self.stats.advance()
        rt = self.policy.rt
        budget = self.config.max_transcodes_per_step
        for ent in rt.directory.entities_in_state(ResilienceState.REPLICATED):
            if budget <= 0:
                break
            if ent.transition_in_flight or self._in_cooldown(ent.key, step):
                continue
            self.decisions_evaluated += 1
            if self.model.should_demote(
                ent.nbytes, self.stats.read_rate(ent.key), self.stats.write_rate(ent.key)
            ):
                self._last_transcode[ent.key] = step
                rt.metrics.count("tiering_demotes")
                self.policy._schedule_demotion(ent)
                self.demotes_scheduled += 1
                budget -= 1
        for ent in rt.directory.entities_in_state(ResilienceState.ENCODED):
            if budget <= 0:
                break
            if ent.transition_in_flight or self._in_cooldown(ent.key, step):
                continue
            self.decisions_evaluated += 1
            if self.model.should_promote(
                ent.nbytes, self.stats.read_rate(ent.key), self.stats.write_rate(ent.key)
            ):
                self._last_transcode[ent.key] = step
                rt.metrics.count("tiering_promotes")
                self.policy._maybe_schedule_promotion(ent)
                self.promotes_scheduled += 1
                budget -= 1
        # Access-rate decay also informs the multi-tier stores (the
        # future-work extension): keep their utility ordering fresh.
        for srv in rt.servers:
            tiered = getattr(srv, "tiered_store", None)
            if tiered is not None:
                tiered.decay_access(1 - self.config.ewma_alpha)
