"""The Section II-D analytic model of CoREC.

Implements every equation of the paper's modelling section:

- storage efficiencies ``E_r`` (replication), ``E_e`` (erasure coding) and
  the hybrid ``E_hybrid(P_r)`` (eq. 7);
- per-object time costs ``C_r`` (replication) and ``C_e`` (erasure);
- workload costs: ``C_hybrid`` (eq. 1), ``C_CoREC`` (eqs. 2/3), ``C_replica``
  (eq. 4), ``C_erasure`` (eq. 5);
- the CoREC advantage ``Gain`` (eq. 6);
- the miss-ratio variant (eq. 8) and the storage-constrained regime
  (eq. 9) with the constraint boundary ``P_r* = E_r (S - E_e) / (S (E_r -
  E_e))``.

:meth:`CoRECModel.fig4_series` evaluates the piecewise model across the
hot-data fraction axis, producing the curves of the paper's Figure 4.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["ModelParams", "CoRECModel"]


@dataclass
class ModelParams:
    """Model inputs.

    ``n_node`` is the paper's :math:`N_{node}` (data objects per stripe, the
    code's k) and ``n_level`` is :math:`N_{level}` (failures tolerated, the
    code's m and the replica count).  Figure 4 uses RS(4, 3):
    ``n_node = 3``, ``n_level = 1``.

    ``latency_s`` (:math:`l`) and ``transfer_s`` (:math:`c`) are the
    streaming-transfer latency and per-object transfer time; ``alpha``
    scales the :math:`O(N_{level} \\times N_{node})` encode-compute term
    into seconds.
    """

    n_level: int = 1
    n_node: int = 3
    latency_s: float = 1.0e-3
    transfer_s: float = 4.0e-3
    alpha: float = 2.0e-3
    f_hot: float = 10.0   # update frequency of hot objects
    f_cold: float = 1.0   # update frequency of cold objects
    n_objects: int = 1000

    def __post_init__(self) -> None:
        if self.n_level < 1 or self.n_node < 1:
            raise ValueError("n_level and n_node must be >= 1")
        if self.f_hot < self.f_cold:
            raise ValueError("model assumes f_hot >= f_cold")


class CoRECModel:
    """Closed-form evaluation of the Section II-D equations."""

    def __init__(self, params: ModelParams | None = None):
        self.p = params or ModelParams()

    # ------------------------------------------------------------------
    # storage efficiencies
    # ------------------------------------------------------------------
    @property
    def E_r(self) -> float:
        """Replication storage efficiency: 1 / (N_level + 1)."""
        return 1.0 / (self.p.n_level + 1)

    @property
    def E_e(self) -> float:
        """Erasure-coding storage efficiency: N_node / (N_level + N_node)."""
        return self.p.n_node / (self.p.n_level + self.p.n_node)

    def E_hybrid(self, p_r: float) -> float:
        """Eq. 7: hybrid storage efficiency for replicated fraction p_r."""
        self._check_prob(p_r, "p_r")
        p_e = 1.0 - p_r
        nn, nl = self.p.n_node, self.p.n_level
        return nn / (nn * (nl + 1) * p_r + (nl + nn) * p_e)

    def p_r_at_constraint(self, s: float) -> float:
        """The replicated fraction where ``E_hybrid == S`` (eq. after eq. 8).

        ``P_r* = E_r (S - E_e) / (S (E_r - E_e))``; clipped to [0, 1].
        """
        if not self.E_r <= s <= self.E_e:
            # Constraint looser than pure replication or tighter than pure
            # erasure: boundary saturates.
            return 1.0 if s <= self.E_r else 0.0
        p_r = self.E_r * (s - self.E_e) / (s * (self.E_r - self.E_e))
        return float(np.clip(p_r, 0.0, 1.0))

    # ------------------------------------------------------------------
    # per-object costs
    # ------------------------------------------------------------------
    @property
    def C_r(self) -> float:
        """Replication write cost: l * N_level + c."""
        return self.p.latency_s * self.p.n_level + self.p.transfer_s

    @property
    def C_e(self) -> float:
        """Erasure write cost: alpha*N_level*N_node + l(N_level+N_node)/N_node + c."""
        nl, nn = self.p.n_level, self.p.n_node
        return self.p.alpha * nl * nn + self.p.latency_s * (nl + nn) / nn + self.p.transfer_s

    # ------------------------------------------------------------------
    # workload costs
    # ------------------------------------------------------------------
    def _uniform_f(self, p_h: float) -> float:
        """The uniform update frequency implied by the hot/cold mix."""
        return p_h * self.p.f_hot + (1.0 - p_h) * self.p.f_cold

    def C_hybrid(self, p_h: float, p_r: float | None = None) -> float:
        """Eq. 1 with P_r matched to the hot fraction (or given explicitly)."""
        self._check_prob(p_h, "p_h")
        p_r = p_h if p_r is None else p_r
        self._check_prob(p_r, "p_r")
        f = self._uniform_f(p_h)
        return (p_r * self.C_r + (1.0 - p_r) * self.C_e) * f * self.p.n_objects

    def C_corec_ideal(self, p_h: float) -> float:
        """Eq. 2/3: perfect classification, no storage constraint."""
        self._check_prob(p_h, "p_h")
        p_c = 1.0 - p_h
        n = self.p.n_objects
        return p_h * self.C_r * self.p.f_hot * n + p_c * self.C_e * self.p.f_cold * n

    def C_replica(self, p_h: float) -> float:
        """Eq. 4: everything replicated."""
        self._check_prob(p_h, "p_h")
        return self.C_r * self._uniform_f(p_h) * self.p.n_objects

    def C_erasure(self, p_h: float) -> float:
        """Eq. 5: everything erasure coded."""
        self._check_prob(p_h, "p_h")
        return self.C_e * self._uniform_f(p_h) * self.p.n_objects

    def gain(self, p_h: float) -> float:
        """Eq. 6: C_hybrid - C_CoREC = (C_e-C_r) P_h P_c (f_h-f_c) n."""
        self._check_prob(p_h, "p_h")
        p_c = 1.0 - p_h
        return (self.C_e - self.C_r) * p_h * p_c * (self.p.f_hot - self.p.f_cold) * self.p.n_objects

    def C_corec(self, p_h: float, miss_ratio: float = 0.0, s: float | None = None) -> float:
        """The full piecewise CoREC cost (eqs. 8 and 9).

        Below the storage-constraint boundary (``P_h <= P_r*``) all hot
        objects can be replicated and eq. 8 applies; beyond it, only
        ``P_r*`` objects may be replicated and eq. 9 applies.
        """
        self._check_prob(p_h, "p_h")
        self._check_prob(miss_ratio, "miss_ratio")
        p_c = 1.0 - p_h
        n = self.p.n_objects
        fh, fc = self.p.f_hot, self.p.f_cold
        cr, ce = self.C_r, self.C_e

        p_r_star = 1.0 if s is None else self.p_r_at_constraint(s)
        if p_h <= p_r_star:
            # Eq. 8: hot objects replicated except the misclassified share.
            return (
                p_h * (1.0 - miss_ratio) * cr * fh * n
                + p_h * miss_ratio * ce * fh * n
                + p_c * ce * fc * n
            )
        # Eq. 9: constraint reached — only (1-r_m) P_r* hot objects remain
        # replicated; the rest are encoded irrespective of classification.
        return (
            p_r_star * (1.0 - miss_ratio) * cr * fh * n
            + (p_h - (1.0 - miss_ratio) * p_r_star) * ce * fh * n
            + p_c * ce * fc * n
        )

    # ------------------------------------------------------------------
    def fig4_series(
        self,
        miss_ratios: tuple[float, ...] = (0.0, 0.2, 0.4),
        s: float = 0.67,
        n_points: int = 101,
        normalize: bool = True,
    ) -> dict:
        """Evaluate the Figure 4 curves over the hot-fraction axis.

        Returns a dict with the ``p_h`` axis, one ``corec_rm=<r>`` series per
        miss ratio, the three baselines, and the constraint knee ``p_r_star``.
        When ``normalize`` is set, all costs are scaled by the erasure cost
        at ``P_h = 1`` (the paper plots *relative* cost).
        """
        p_h = np.linspace(0.0, 1.0, n_points)
        scale = self.C_erasure(1.0) if normalize else 1.0
        series: dict = {"p_h": p_h, "p_r_star": self.p_r_at_constraint(s), "s": s}
        for r_m in miss_ratios:
            series[f"corec_rm={r_m:g}"] = np.array(
                [self.C_corec(x, miss_ratio=r_m, s=s) for x in p_h]
            ) / scale
        p_r_cap = np.minimum(p_h, self.p_r_at_constraint(s))
        series["hybrid"] = np.array(
            [self.C_hybrid(x, p_r=pr) for x, pr in zip(p_h, p_r_cap)]
        ) / scale
        series["replica"] = np.array([self.C_replica(x) for x in p_h]) / scale
        series["erasure"] = np.array([self.C_erasure(x) for x in p_h]) / scale
        return series

    # ------------------------------------------------------------------
    @staticmethod
    def _check_prob(x: float, name: str) -> None:
        if not 0.0 <= x <= 1.0:
            raise ValueError(f"{name} must lie in [0, 1], got {x}")
