"""The CoREC policy: classification-driven hybrid resilience.

Ties together every mechanism of the paper:

- **online hot/cold classification** (Section II-C) via
  :class:`~repro.core.classifier.HotColdClassifier` — recency, spatial
  neighbourhood promotion and multi-timestep temporal lookahead;
- **hot data replicated, cold data erasure coded**, under the
  storage-efficiency lower bound ``S``: when replication overhead pushes
  efficiency below ``S``, the replicated entities with the lowest access
  frequency are demoted to erasure coding; encoded entities with the
  highest access frequency are promoted back when headroom exists
  (Section II-C, last paragraph);
- **asynchronous transitions through the encoding-token workflow**
  (Section III-B): demotions run in background processes, serialized per
  replication group by the token and executed on the group's least-loaded
  member, keeping encodes off the write path and away from busy servers;
- **delta parity updates** for writes that land on (still-)cold entities;
- **lazy recovery** with the MTBF/4 deadline (Section III-D).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Generator

import numpy as np

from repro.core.classifier import ClassifierConfig, HotColdClassifier
from repro.core.policies import ResiliencePolicy
from repro.core.recovery import RecoveryConfig
from repro.core.runtime import StagingRuntime
from repro.core.tiering import TieringConfig, TranscodeManager
from repro.core.tokens import EncodingTokenManager
from repro.staging.objects import BlockEntity, ResilienceState

__all__ = ["CoRECConfig", "CoRECPolicy"]


@dataclass
class CoRECConfig:
    """Tunables of the CoREC policy.

    ``storage_bound`` is the paper's storage-efficiency constraint S (a
    lower bound on original/(original+redundant); 0.67 in Table I).
    ``async_transitions=False`` forces demotions onto the write path (an
    ablation); ``tokens_enabled=False`` disables the load-balancing token
    (another ablation).
    """

    storage_bound: float = 0.67
    storage_bound_slack: float = 0.04  # hysteresis band below the bound
    classifier: ClassifierConfig = field(default_factory=ClassifierConfig)
    update_strategy: str = "delta"
    async_transitions: bool = True
    tokens_enabled: bool = True
    promote_on_access: bool = True
    max_promotions_per_step: int = 8
    max_demotions_per_enforcement: int = 2  # smooths transition bursts
    swap_ref_margin: int = 2  # min access-frequency gap to justify a swap
    # "global" (default) enforces S over the whole deployment's byte
    # counts; "group" enforces it per coding group, with demotion victims
    # drawn from the violating group only.  Group scope makes every
    # enforcement decision a pure function of one coding group's state,
    # which is what lets a sharded cluster (one process per group subset)
    # reproduce a single process byte-identically — each shard sees
    # exactly its groups' entities and reaches exactly the same verdicts.
    enforcement_scope: str = "global"
    recovery: RecoveryConfig = field(default_factory=lambda: RecoveryConfig(mode="lazy"))
    # Tiering v2: cost-modelled online transcoding between replication and
    # erasure coding (see repro.core.tiering).  None disables it entirely —
    # the default, so the paper's figures are untouched.
    tiering: TieringConfig | None = None


class CoRECPolicy(ResiliencePolicy):
    """Hot/cold-classified hybrid replication + erasure coding."""

    name = "corec"

    def __init__(self, config: CoRECConfig | None = None):
        cfg = config or CoRECConfig()
        super().__init__(recovery=cfg.recovery)
        self.config = cfg
        self.classifier: HotColdClassifier | None = None
        self.tokens: EncodingTokenManager | None = None
        self.tiering: TranscodeManager | None = (
            TranscodeManager(self, cfg.tiering) if cfg.tiering is not None else None
        )
        self._promotion_bytes_in_flight = 0

    def attach(self, runtime: StagingRuntime) -> None:
        super().attach(runtime)
        self.classifier = HotColdClassifier(runtime.directory.domain, self.config.classifier)
        self.tokens = EncodingTokenManager(
            runtime.sim,
            runtime.layout.n_replication_groups(),
            runtime.servers,
            enabled=self.config.tokens_enabled,
        )
        if self.tiering is not None:
            self.tiering.attach(runtime)

    # ------------------------------------------------------------------
    # write path
    # ------------------------------------------------------------------
    def on_write(self, ent: BlockEntity, client_name, payload, step, is_new) -> Generator:
        rt = self.rt
        # Classification decision (charged to the primary server; only the
        # decision itself is booked as classify time, per Figure 9).
        yield from rt.busy(ent.primary, rt.costs.classify_op_s, "classify", charge_wait=False)
        was_protected_hot = ent.state == ResilienceState.REPLICATED or is_new
        self.classifier.record_write(ent.key, step, was_hot=was_protected_hot)
        if self.tiering is not None:
            self.tiering.record_write(ent.key)

        if is_new or ent.state in (ResilienceState.NONE,):
            # Newly written objects are hot by definition: replicate.
            yield from rt.ingest_primary(ent, client_name, payload)
            yield from rt.replicate_entity(ent, payload)
        elif ent.state == ResilienceState.REPLICATED:
            yield from self._refresh_replicated(ent, client_name, payload)
        elif ent.state == ResilienceState.PENDING_STRIPE:
            yield from rt.ingest_primary(ent, client_name, payload)
            if ent.state == ResilienceState.ENCODED:
                # An encoder raced the ingest: the stripe snapshot predates
                # this write and the replica copies are gone — fold the new
                # bytes into the parity or they are protected nowhere.
                yield from rt.reconcile_encoded_member(ent)
            elif ent.replicas:
                # Still protected by its pre-demotion copies: keep them fresh.
                yield from rt.refresh_replica_copies(ent, payload)
        else:  # ENCODED: a classifier miss — cold data got written.
            self.rt.metrics.count("cold_writes")
            yield from rt.ingest_primary(ent, client_name, payload, store=False)
            yield from rt.update_encoded_entity(ent, payload, strategy=self.config.update_strategy)
            if self.config.promote_on_access and self.classifier.is_hot(ent.key, step):
                self._maybe_schedule_promotion(ent)

        self._enforce_storage_bound(step=step, ent=ent)

    def on_read(self, ent: BlockEntity, step: int) -> None:
        self.classifier.record_read(ent.key, step)
        if self.tiering is not None:
            self.tiering.record_read(ent.key)

    # ------------------------------------------------------------------
    # storage-bound enforcement: demote coldest replicated entities
    # ------------------------------------------------------------------
    def _enforce_storage_bound(
        self, step: int | None = None, ent: BlockEntity | None = None
    ) -> None:
        """Demote the coldest replicated entities until the bound holds.

        Hysteresis: within ``storage_bound_slack`` below the bound, only
        entities *not currently classified hot* are eligible — demoting hot
        data there would immediately bounce back as a promotion (thrash).
        Under a hard violation (below bound - slack), anything goes, which
        is the paper's "objects are erasure coded irrespective of their
        classification" regime.

        Group scope: ``ent`` names the entity whose write triggered the
        check (only its coding group is enforced); with no entity (the
        step barrier) every group is enforced in ascending id order.
        """
        if self.config.enforcement_scope == "group":
            if ent is not None:
                groups = [self._group_of(ent)]
            else:
                groups = list(range(self.rt.layout.n_coding_groups()))
            for gid in groups:
                self._enforce_group_bound(gid, step=step)
            return
        storage = self.rt.metrics.storage
        scheduled = 0
        projected_replica = 0
        while scheduled < self.config.max_demotions_per_enforcement:
            eff = storage.would_be_efficiency(d_replica=-projected_replica)
            if eff >= self.config.storage_bound:
                break
            soft = eff >= self.config.storage_bound - self.config.storage_bound_slack
            victim = self._coldest_replicated(exclude_hot=soft, step=step)
            if victim is None:
                break
            # Account the in-flight demotion so we don't over-demote.
            projected_replica += victim.nbytes * len(victim.replicas)
            self._schedule_demotion(victim)
            scheduled += 1

    # -- group-scoped enforcement --------------------------------------
    def _group_of(self, ent: BlockEntity) -> int:
        return self.rt.layout.coding_group_id(ent.primary)

    def _group_storage(self, gid: int) -> tuple[int, int, int]:
        """(original, replica, parity) bytes attributable to one group.

        Computed from the directory's reverse indexes, so a shard that
        holds only this group's records computes exactly what a full
        directory would: entities charge their coding group (redirects
        never cross groups), stripes carry their group id.
        """
        d = self.rt.directory
        original = replica = parity = 0
        for sid in self.rt.layout.coding_group_members(gid):
            for key in d.entities_by_primary.get(sid, ()):
                e = d.entities[key]
                if e.version >= 0:
                    original += e.nbytes
                replica += e.replica_bytes_accounted
        for stripe in d.stripes.values():
            if stripe.group_id == gid:
                parity += stripe.m * stripe.shard_len
        return original, replica, parity

    def _group_efficiency(self, gid: int, d_replica: int = 0) -> float:
        original, replica, parity = self._group_storage(gid)
        total = original + replica + d_replica + parity
        return original / total if total else 1.0

    def _enforce_group_bound(self, gid: int, step: int | None = None) -> None:
        scheduled = 0
        projected_replica = 0
        while scheduled < self.config.max_demotions_per_enforcement:
            eff = self._group_efficiency(gid, d_replica=-projected_replica)
            if eff >= self.config.storage_bound:
                break
            soft = eff >= self.config.storage_bound - self.config.storage_bound_slack
            victim = self._coldest_replicated(exclude_hot=soft, step=step, group=gid)
            if victim is None:
                break
            projected_replica += victim.nbytes * len(victim.replicas)
            self._schedule_demotion(victim)
            scheduled += 1

    def _coldest_replicated(
        self,
        exclude_hot: bool = False,
        step: int | None = None,
        group: int | None = None,
    ) -> BlockEntity | None:
        best: BlockEntity | None = None
        # The state set holds exactly the replicated entities, in directory
        # insertion order — the same candidates (and tie-breaks) the old
        # whole-directory walk produced, at O(replicated) cost.
        for ent in self.rt.directory.entities_in_state(ResilienceState.REPLICATED):
            if ent.transition_in_flight:
                continue
            if group is not None and self._group_of(ent) != group:
                continue
            if exclude_hot and step is not None and self.classifier.is_hot(ent.key, step):
                continue
            if best is None or (ent.ref_counter, ent.last_write_step, ent.block_id) < (
                best.ref_counter,
                best.last_write_step,
                best.block_id,
            ):
                best = ent
        return best

    def _hottest_encoded(self, exclude: set | None = None) -> BlockEntity | None:
        best: BlockEntity | None = None
        for ent in self.rt.directory.entities_in_state(ResilienceState.ENCODED):
            if ent.transition_in_flight:
                continue
            if exclude and ent.key in exclude:
                continue
            if best is None or (ent.ref_counter, ent.last_write_step) > (
                best.ref_counter,
                best.last_write_step,
            ):
                best = ent
        return best

    # ------------------------------------------------------------------
    # asynchronous transitions via the token workflow
    # ------------------------------------------------------------------
    def _schedule_demotion(self, ent: BlockEntity) -> None:
        ent.transition_in_flight = True
        self.rt.metrics.count("demotions_scheduled")
        if self.config.async_transitions:
            self.rt.sim.process(self._demotion_process(ent), name=f"demote-{ent.name}-{ent.block_id}")
        else:
            # Ablation: transitions run inline on whatever process triggered
            # them (the write path), exposing the interference CoREC avoids.
            self.rt.sim.process(self._demotion_process(ent))

    def _demotion_process(self, ent: BlockEntity) -> Generator:
        from repro.core.runtime import DataLossError

        rt = self.rt
        try:
            if ent.state != ResilienceState.REPLICATED:
                return
            group_id = rt.layout.replication_group_id(ent.primary)
            candidates = [ent.primary] + list(ent.replicas)

            def work(executor: int) -> Generator:
                # State is re-checked under the entity lock inside
                # _demote_to_encoded (a write may have raced us here).
                yield from rt.with_entity_lock(
                    ent.key, self._demote_to_encoded(ent, executor=executor)
                )

            yield from self.tokens.run_encode(group_id, candidates, ent.primary, work)
        except DataLossError:
            # A server died mid-demotion; the entity either kept its
            # replicas (still protected) or the loss will surface on read.
            rt.metrics.count("demotions_aborted")
        finally:
            ent.transition_in_flight = False

    def _has_headroom(self, ent: BlockEntity) -> bool:
        # Include promotions already in flight so concurrent promotions
        # don't all pass the same headroom check and overshoot the bound.
        extra = ent.nbytes * self.rt.layout.n_level + self._promotion_bytes_in_flight
        if self.config.enforcement_scope == "group":
            eff = self._group_efficiency(self._group_of(ent), d_replica=extra)
        else:
            eff = self.rt.metrics.storage.would_be_efficiency(d_replica=extra)
        return eff >= self.config.storage_bound

    def _maybe_schedule_promotion(self, ent: BlockEntity) -> None:
        """Queue a cold->hot transition.

        If the storage bound leaves no headroom, the promotion process first
        demotes a strictly colder replicated entity to make room (the
        paper's pool exchange: the hottest encoded object trades places with
        the coldest replicated one); if no colder victim exists the entity
        stays encoded despite being hot.
        """
        ent.transition_in_flight = True
        self._promotion_bytes_in_flight += ent.nbytes * self.rt.layout.n_level
        self.rt.metrics.count("promotions_scheduled")
        self.rt.sim.process(self._promotion_process(ent), name=f"promote-{ent.name}-{ent.block_id}")

    def _promotion_process(self, ent: BlockEntity) -> Generator:
        rt = self.rt
        # Own reservation moves from "queued" to "active": the headroom
        # check below re-adds this entity's bytes explicitly.
        self._promotion_bytes_in_flight -= ent.nbytes * rt.layout.n_level
        try:
            if ent.state != ResilienceState.ENCODED:
                return
            if not self._has_headroom(ent):
                scope_gid = (
                    self._group_of(ent)
                    if self.config.enforcement_scope == "group"
                    else None
                )
                victim = self._coldest_replicated(group=scope_gid)
                # A swap must be clearly profitable: demanding a minimum
                # access-frequency gap prevents ping-pong between equally
                # hot objects (the uniform-hotness regime of case 1).
                if victim is None or (
                    victim.ref_counter + self.config.swap_ref_margin > ent.ref_counter
                ):
                    return  # nothing clearly colder to displace: stay encoded
                self.rt.metrics.count("swap_demotions")
                victim.transition_in_flight = True
                try:
                    group_id = rt.layout.replication_group_id(victim.primary)
                    candidates = [victim.primary] + list(victim.replicas)

                    def work(executor: int) -> Generator:
                        yield from rt.with_entity_lock(
                            victim.key, self._demote_to_encoded(victim, executor=executor)
                        )

                    yield from self.tokens.run_encode(
                        group_id, candidates, victim.primary, work
                    )
                finally:
                    victim.transition_in_flight = False
                if not self._has_headroom(ent):
                    return
            # State is re-checked inside _promote_to_replicated once the
            # entity lock is held.
            from repro.core.runtime import DataLossError

            try:
                yield from rt.with_entity_lock(ent.key, self._promote_to_replicated(ent))
            except DataLossError:
                # Primary died mid-promotion; the entity kept its stripe
                # protection, so just abandon the transition.
                rt.metrics.count("promotions_aborted")
        finally:
            ent.transition_in_flight = False

    # ------------------------------------------------------------------
    # step barrier: lookahead promotions + flush stragglers
    # ------------------------------------------------------------------
    def on_step_end(self, step: int) -> Generator:
        self.classifier.advance(step)
        # Cost-modelled transcoding first: its scheduled transitions mark
        # entities in-flight, so bound enforcement below won't double-pick.
        if self.tiering is not None:
            self.tiering.on_step_end(step)
        # Settle the storage bound at the barrier (writes may have left
        # promotions/demotions imbalanced).
        self._enforce_storage_bound(step=step)
        # Proactive cold->hot conversions: encoded entities the temporal
        # lookahead predicts will be written in the next step(s).
        if self.config.promote_on_access:
            promoted = 0
            for ent in self.rt.directory.entities_in_state(ResilienceState.ENCODED):
                if promoted >= self.config.max_promotions_per_step:
                    break
                if ent.transition_in_flight:
                    continue
                if self.classifier.predicted_hot(ent.key, step + 1):
                    self._maybe_schedule_promotion(ent)
                    promoted += 1
        # Protect any entity still waiting for a stripe, then reclaim the
        # parity of promoted-out slots.
        for gid in range(self.rt.layout.n_coding_groups()):
            if self.rt.stripe_ready(gid):
                yield from self.rt.encode_pending(gid)
            yield from self.rt.compact_group(gid)

    def on_flush(self) -> Generator:
        for gid in range(self.rt.layout.n_coding_groups()):
            yield from self.rt.flush_pending(gid)

    # ------------------------------------------------------------------
    def miss_ratio(self) -> float:
        """Observed classifier miss ratio (the model's r_m)."""
        return self.classifier.miss_ratio() if self.classifier else 0.0
