"""The load-balancing, conflict-avoiding encoding workflow (Section III-B).

Each replication group shares **one encoding token**: only the holder may
perform an encoding operation, which (a) guarantees that at most one stripe
operation is in flight per group — "exactly one stripe is placed in the
coding grouped servers" — and (b) lets the group route the work to its
least-loaded member.  Because hot data is always replicated, every group
member holds the bytes locally, so whichever member executes the encode
reads the data without extra transfers.

With ``enabled=False`` the manager degrades to the naive behaviour (encode
always executes on the primary, no serialization), which is the ablation
baseline.
"""

from __future__ import annotations

from typing import Callable, Generator, Sequence

from repro.sim.engine import Simulator
from repro.sim.resources import Resource
from repro.staging.server import StagingServer

__all__ = ["EncodingTokenManager"]


class EncodingTokenManager:
    """One token (mutex) per replication group plus executor selection."""

    def __init__(
        self,
        sim: Simulator,
        n_groups: int,
        servers: Sequence[StagingServer],
        enabled: bool = True,
    ):
        self.sim = sim
        self.servers = servers
        self.enabled = enabled
        self._tokens = [Resource(sim, capacity=1) for _ in range(n_groups)]
        self.encodes_by_server: dict[int, int] = {}
        self.offloaded = 0   # encodes routed away from the busiest candidate
        self.executed = 0

    # ------------------------------------------------------------------
    def choose_executor(self, candidates: Sequence[int], preferred: int) -> int:
        """Least-loaded alive candidate; ``preferred`` breaks ties.

        ``candidates`` are the replication-group members that hold a copy of
        the data (primary + replicas).  Dead servers are skipped.
        """
        alive = [s for s in candidates if not self.servers[s].failed]
        if not alive:
            raise RuntimeError("no alive server available to execute encode")
        if not self.enabled:
            return preferred if preferred in alive else alive[0]
        best = min(
            alive,
            key=lambda s: (self.servers[s].workload_level(), s != preferred, s),
        )
        return best

    def run_encode(
        self,
        group_id: int,
        candidates: Sequence[int],
        preferred: int,
        work: Callable[[int], Generator],
    ) -> Generator:
        """Process body: acquire the group token, pick an executor, run work.

        ``work(executor)`` is a generator performing the actual gather /
        encode / distribute flow on the chosen server.  Returns whatever
        ``work`` returns.
        """
        if self.enabled:
            token = self._tokens[group_id]
            req = token.request()
            yield req
        try:
            executor = self.choose_executor(candidates, preferred)
            if executor != preferred:
                self.offloaded += 1
            self.executed += 1
            self.encodes_by_server[executor] = self.encodes_by_server.get(executor, 0) + 1
            result = yield from work(executor)
            return result
        finally:
            if self.enabled:
                token.release(req)

    # ------------------------------------------------------------------
    def balance_stats(self) -> dict:
        """Distribution of encode executions across servers."""
        counts = list(self.encodes_by_server.values())
        return {
            "executed": self.executed,
            "offloaded": self.offloaded,
            "max_per_server": max(counts) if counts else 0,
            "min_per_server": min(counts) if counts else 0,
            "servers_used": len(counts),
        }
