"""Durability analysis: expected data-loss rates under MTBF/MTTR.

The paper reasons qualitatively about resilience levels (tolerate
``N_level`` concurrent failures) and picks the lazy-recovery deadline as
MTBF/4. This module quantifies those choices with the standard Markov
birth-death approximation used for storage-system durability analysis:

- a group of ``n`` servers fails at rate ``n/MTBF``;
- a failed server is repaired at rate ``1/MTTR`` (for CoREC's lazy
  recovery, MTTR is dominated by the recovery deadline);
- data is lost when more than ``m`` members of one protection group are
  simultaneously down.

With exponential failure/repair times, the mean time to data loss (MTTDL)
of one group tolerating ``m`` failures is the classic

    MTTDL ≈ MTBF^(m+1) / (binom(n, m+1) * (m+1)! * MTTR^m)  [MTTR << MTBF]

computed here without the approximation via the absorbing-chain solve, so
the numbers stay meaningful even when repair is slow relative to failures
(the regime lazy recovery deliberately enters).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

__all__ = ["DurabilityParams", "group_mttdl", "system_mttdl", "annual_loss_probability", "recovery_deadline_tradeoff"]


@dataclass(frozen=True)
class DurabilityParams:
    """Inputs to the durability model.

    ``mtbf_s`` is the per-server mean time between failures, ``mttr_s``
    the mean time to repair one server's staged data (for lazy recovery,
    deadline + repair time), ``group_size`` the protection-group width
    (``k+m`` for a coding group, ``n_level+1`` for a replication group)
    and ``tolerance`` the failures the group survives (``m`` resp.
    ``n_level``).
    """

    mtbf_s: float
    mttr_s: float
    group_size: int
    tolerance: int

    def __post_init__(self) -> None:
        if self.mtbf_s <= 0 or self.mttr_s <= 0:
            raise ValueError("MTBF and MTTR must be positive")
        if self.group_size < 1:
            raise ValueError("group_size must be >= 1")
        if not 0 <= self.tolerance < self.group_size:
            raise ValueError("tolerance must lie in [0, group_size)")


def group_mttdl(p: DurabilityParams) -> float:
    """Mean time to data loss of one protection group (absorbing chain).

    States 0..tolerance count concurrently-failed members; state
    ``tolerance+1`` (one more failure) is absorbing data loss. Failure
    rate from state i is ``(group_size - i)/mtbf``; repair rate is
    ``i/mttr`` (failed members repair independently).
    """
    lam = 1.0 / p.mtbf_s
    mu = 1.0 / p.mttr_s
    t = p.tolerance
    # Expected absorption time from state 0 via first-step analysis:
    # E_i = 1/r_i + (fail_i * E_{i+1} + repair_i * E_{i-1}) / r_i
    # Solve the (t+1)-state linear system.
    size = t + 1
    a = np.zeros((size, size))
    b = np.ones(size)
    for i in range(size):
        fail_rate = (p.group_size - i) * lam
        repair_rate = i * mu
        total = fail_rate + repair_rate
        a[i, i] = total
        if i + 1 < size:
            a[i, i + 1] = -fail_rate
        # transition to absorbing state contributes no E term
        if i - 1 >= 0:
            a[i, i - 1] = -repair_rate
    expected = np.linalg.solve(a, b)
    return float(expected[0])


def system_mttdl(p: DurabilityParams, n_groups: int) -> float:
    """MTTDL of a system of independent groups (first loss anywhere)."""
    if n_groups < 1:
        raise ValueError("n_groups must be >= 1")
    return group_mttdl(p) / n_groups


def annual_loss_probability(p: DurabilityParams, n_groups: int = 1) -> float:
    """Probability of at least one data-loss event within a year."""
    year = 365.25 * 24 * 3600
    mttdl = system_mttdl(p, n_groups)
    return 1.0 - math.exp(-year / mttdl)


def recovery_deadline_tradeoff(
    mtbf_s: float,
    group_size: int,
    tolerance: int,
    deadline_fractions=(0.05, 0.1, 0.25, 0.5, 1.0),
    base_repair_s: float = 60.0,
) -> list[dict]:
    """Quantify the paper's MTBF/4 lazy-recovery deadline choice.

    For each candidate deadline (a fraction of MTBF), the effective MTTR
    is ``deadline + base_repair`` and the row reports the group MTTDL and
    annual loss probability. The paper's 1/4 sits where the durability
    penalty of waiting is still orders of magnitude from the failure
    horizon while deferring most recovery work.
    """
    rows = []
    for frac in deadline_fractions:
        p = DurabilityParams(
            mtbf_s=mtbf_s,
            mttr_s=frac * mtbf_s + base_repair_s,
            group_size=group_size,
            tolerance=tolerance,
        )
        rows.append(
            {
                "deadline_fraction": frac,
                "mttr_s": p.mttr_s,
                "group_mttdl_s": group_mttdl(p),
                "annual_loss_probability": annual_loss_probability(p),
            }
        )
    return rows
