"""Grouped replication & erasure-coding placement (paper Section III-A).

Staging servers are arranged on a topology-aware logical ring (consecutive
ring positions sit in different cabinets) and then partitioned into:

- **replication groups** of size ``n_level + 1`` — an entity's primary and
  the servers that hold its replicas; also the token domain of the
  conflict-avoiding encoding workflow;
- **coding groups** of size ``k + m`` — the servers across which one
  erasure-coded stripe's data and parity shards are spread.

Because groups are windows of the topology-aware ring, all members of any
group live in distinct cabinets (when the cluster has at least as many
cabinets as the group size), so a correlated cabinet failure costs at most
one shard per stripe — the paper's Figure 5 layout.

Placement modes (Hydra's CodingSets, PAPERS.md)
-----------------------------------------------
Data shards always sit on their entities' primaries (group members), but
*parity* placement is a free choice, and it decides how many distinct
server sets the stripes of one coding group span — the blast radius of a
correlated cabinet failure:

- ``grouped`` (default): parity lands on the group members holding no
  data shard of the stripe.  Every stripe spans (a subset of) its group's
  one server set — the paper's layout, byte-identical to the pre-mode
  behaviour.
- ``spread``: parity is drawn pseudo-randomly (deterministic per stripe)
  from the whole cluster, oblivious to cabinets — the unconstrained
  placement large deployments drift into, where almost every stripe spans
  a different server set and a correlated cabinet failure intersects many
  of them.
- ``coding_sets``: parity is drawn from a small fixed menu (at most
  ``max_coding_sets`` servers per group) chosen cabinet-disjoint from the
  group's members, so the stripes of one group span a bounded number of
  server sets *and* no single cabinet can take both a data shard and the
  parity of the same stripe.
"""

from __future__ import annotations

from repro.sim.cluster import Cluster, topology_aware_ring
from repro.util.rng import stable_hash

__all__ = ["GroupLayout", "PLACEMENT_MODES"]

PLACEMENT_MODES = ("grouped", "spread", "coding_sets")


class GroupLayout:
    """Ring + group geometry for a given cluster and code parameters.

    Parameters
    ----------
    cluster:
        Physical layout (provides the cabinet mapping).
    n_level:
        Resilience level: replicas per entity (replication-group size is
        ``n_level + 1``).
    k, m:
        Erasure-code parameters (coding-group size is ``k + m``).
    topology_aware:
        When False, the ring is the identity permutation — the naive
        placement the ablation benchmark compares against.
    placement_mode:
        Parity-placement regime: ``grouped`` (default), ``spread`` or
        ``coding_sets`` (see module docstring).
    max_coding_sets:
        Size of the per-group parity menu in ``coding_sets`` mode.
    placement_seed:
        Seeds the deterministic parity draws of the non-grouped modes.
    """

    def __init__(
        self,
        cluster: Cluster,
        n_level: int = 1,
        k: int = 3,
        m: int = 1,
        topology_aware: bool = True,
        placement_mode: str = "grouped",
        max_coding_sets: int = 2,
        placement_seed: int = 0,
    ):
        if n_level < 1:
            raise ValueError("n_level must be >= 1")
        if k < 1 or m < 1:
            raise ValueError("k and m must be >= 1")
        n = cluster.n_servers
        self.rep_size = n_level + 1
        self.code_size = k + m
        if n % self.rep_size != 0:
            raise ValueError(
                f"{n} servers not divisible into replication groups of {self.rep_size}"
            )
        if n % self.code_size != 0:
            raise ValueError(
                f"{n} servers not divisible into coding groups of {self.code_size}"
            )
        if placement_mode not in PLACEMENT_MODES:
            raise ValueError(
                f"unknown placement mode {placement_mode!r} (pick from {PLACEMENT_MODES})"
            )
        if max_coding_sets < 1:
            raise ValueError("max_coding_sets must be >= 1")
        self.cluster = cluster
        self.n_level = n_level
        self.k = k
        self.m = m
        self.placement_mode = placement_mode
        self.max_coding_sets = max_coding_sets
        self.placement_seed = placement_seed
        self.ring = topology_aware_ring(cluster) if topology_aware else list(range(n))
        self.pos = {server: i for i, server in enumerate(self.ring)}
        self._menu_cache: dict[int, list[int]] = {}

    @property
    def n_servers(self) -> int:
        return self.cluster.n_servers

    # ------------------------------------------------------------------
    # replication groups
    # ------------------------------------------------------------------
    def replication_group(self, server: int) -> list[int]:
        """Servers in ``server``'s replication group (aligned ring window)."""
        p = self.pos[server]
        start = p - (p % self.rep_size)
        return [self.ring[start + i] for i in range(self.rep_size)]

    def replica_targets(self, primary: int) -> list[int]:
        """Where ``primary``'s replicas go: the rest of its group, in ring order."""
        group = self.replication_group(primary)
        i = group.index(primary)
        return group[i + 1 :] + group[:i]

    def replication_group_id(self, server: int) -> int:
        return self.pos[server] // self.rep_size

    def n_replication_groups(self) -> int:
        return self.n_servers // self.rep_size

    # ------------------------------------------------------------------
    # coding groups
    # ------------------------------------------------------------------
    def coding_group(self, server: int) -> list[int]:
        """Servers in ``server``'s coding group (aligned ring window)."""
        p = self.pos[server]
        start = p - (p % self.code_size)
        return [self.ring[start + i] for i in range(self.code_size)]

    def coding_group_id(self, server: int) -> int:
        return self.pos[server] // self.code_size

    def n_coding_groups(self) -> int:
        return self.n_servers // self.code_size

    def coding_group_members(self, group_id: int) -> list[int]:
        start = group_id * self.code_size
        return [self.ring[start + i] for i in range(self.code_size)]

    # ------------------------------------------------------------------
    def validate_failure_separation(self) -> bool:
        """True if every group spans distinct cabinets (when possible)."""
        cabs = self.cluster.n_cabinets
        ok = True
        for gid in range(self.n_coding_groups()):
            members = self.coding_group_members(gid)
            seen = [self.cluster.cabinet_of(s) for s in members]
            if len(set(seen)) < min(len(members), cabs):
                ok = False
        for gid in range(self.n_replication_groups()):
            start = gid * self.rep_size
            members = [self.ring[start + i] for i in range(self.rep_size)]
            seen = [self.cluster.cabinet_of(s) for s in members]
            if len(set(seen)) < min(len(members), cabs):
                ok = False
        return ok

    # ------------------------------------------------------------------
    # parity placement (the dimension the placement modes control)
    # ------------------------------------------------------------------
    def coding_sets_menu(self, group_id: int) -> list[int]:
        """The bounded parity-server menu of one group (``coding_sets`` mode).

        Candidates are servers whose cabinet is disjoint from *every* group
        member's cabinet, so a single cabinet failure can never take a data
        shard and the parity of the same stripe.  The menu is a
        deterministic rotation of those candidates, truncated to
        ``max_coding_sets`` — the bound on distinct server sets per group.
        Empty when the cluster has no cabinet-disjoint server (small
        deployments), in which case placement falls back to ``grouped``.
        """
        cached = self._menu_cache.get(group_id)
        if cached is not None:
            return cached
        members = self.coding_group_members(group_id)
        member_cabs = {self.cluster.cabinet_of(s) for s in members}
        outside = [
            s for s in self.ring
            if s not in members and self.cluster.cabinet_of(s) not in member_cabs
        ]
        if outside:
            rot = stable_hash(f"codingsets/{self.placement_seed}/{group_id}") % len(outside)
            outside = outside[rot:] + outside[:rot]
        menu = outside[: self.max_coding_sets]
        self._menu_cache[group_id] = menu
        return menu

    def parity_servers(
        self, group_id: int, data_servers: list[int], seq: int = 0
    ) -> list[int]:
        """Where the ``m`` parity shards of one stripe go, per mode.

        ``seq`` is the stripe's formation ordinal within its group, which
        makes the non-grouped draws deterministic per stripe (replays and
        shrunk chaos schedules reproduce the exact same placement).
        """
        members = self.coding_group_members(group_id)
        in_group = [s for s in members if s not in data_servers]
        if self.placement_mode == "coding_sets":
            menu = self.coding_sets_menu(group_id)
            if len(menu) >= self.m:
                start = seq % len(menu)
                return [menu[(start + i) % len(menu)] for i in range(self.m)]
            return in_group[: self.m]
        if self.placement_mode == "spread":
            candidates = [s for s in range(self.n_servers) if s not in data_servers]
            h = stable_hash(f"spread/{self.placement_seed}/{group_id}/{seq}")
            n = len(candidates)
            start = h % n
            # A stride coprime to n walks every candidate exactly once, so
            # the draw is uniform-ish per stripe yet fully deterministic.
            stride = 1 + (h // max(1, n)) % max(1, n - 1)
            while n > 1 and self._gcd(stride, n) != 1:
                stride += 1
            return [candidates[(start + i * stride) % n] for i in range(self.m)]
        return in_group[: self.m]

    @staticmethod
    def _gcd(a: int, b: int) -> int:
        while b:
            a, b = b, a % b
        return a

    def parity_candidates(self, group_id: int) -> list[int]:
        """Preferred hosts for a *re-homed* parity shard, in priority order.

        Recovery uses this so repairs respect the placement mode's bound:
        ``coding_sets`` prefers the group's menu (staying inside the
        allowed sets), then the group members; the other modes prefer the
        group members as before.
        """
        members = self.coding_group_members(group_id)
        if self.placement_mode == "coding_sets":
            menu = self.coding_sets_menu(group_id)
            return menu + [s for s in members if s not in menu]
        return list(members)

    def allowed_stripe_servers(self, group_id: int) -> set[int]:
        """The server universe a stripe of ``group_id`` may legitimately span.

        The coding-sets invariant (``chaos.invariants.check_coding_sets``)
        verifies every stripe's shard servers against this set.  ``spread``
        mode is unconstrained by construction, so its universe is the whole
        cluster.
        """
        members = set(self.coding_group_members(group_id))
        if self.placement_mode == "spread":
            return set(range(self.n_servers))
        if self.placement_mode == "coding_sets":
            return members | set(self.coding_sets_menu(group_id))
        return members

    def stripe_shard_servers(
        self, group_id: int, data_servers: list[int], seq: int = 0
    ) -> list[int]:
        """Full shard-server list for a stripe: data first, then parity.

        ``data_servers`` are the (distinct) primaries of the k member
        entities; parity shards land where the placement mode dictates
        (group members in ``grouped`` mode), so each server carries at most
        one shard of the stripe.
        """
        members = self.coding_group_members(group_id)
        if len(data_servers) != self.k:
            raise ValueError(f"need {self.k} data servers, got {len(data_servers)}")
        if len(set(data_servers)) != len(data_servers):
            raise ValueError("data shards must sit on distinct servers")
        for s in data_servers:
            if s not in members:
                raise ValueError(f"server {s} not in coding group {group_id}")
        return list(data_servers) + self.parity_servers(group_id, data_servers, seq)
