"""Grouped replication & erasure-coding placement (paper Section III-A).

Staging servers are arranged on a topology-aware logical ring (consecutive
ring positions sit in different cabinets) and then partitioned into:

- **replication groups** of size ``n_level + 1`` — an entity's primary and
  the servers that hold its replicas; also the token domain of the
  conflict-avoiding encoding workflow;
- **coding groups** of size ``k + m`` — the servers across which one
  erasure-coded stripe's data and parity shards are spread.

Because groups are windows of the topology-aware ring, all members of any
group live in distinct cabinets (when the cluster has at least as many
cabinets as the group size), so a correlated cabinet failure costs at most
one shard per stripe — the paper's Figure 5 layout.
"""

from __future__ import annotations

from repro.sim.cluster import Cluster, topology_aware_ring

__all__ = ["GroupLayout"]


class GroupLayout:
    """Ring + group geometry for a given cluster and code parameters.

    Parameters
    ----------
    cluster:
        Physical layout (provides the cabinet mapping).
    n_level:
        Resilience level: replicas per entity (replication-group size is
        ``n_level + 1``).
    k, m:
        Erasure-code parameters (coding-group size is ``k + m``).
    topology_aware:
        When False, the ring is the identity permutation — the naive
        placement the ablation benchmark compares against.
    """

    def __init__(
        self,
        cluster: Cluster,
        n_level: int = 1,
        k: int = 3,
        m: int = 1,
        topology_aware: bool = True,
    ):
        if n_level < 1:
            raise ValueError("n_level must be >= 1")
        if k < 1 or m < 1:
            raise ValueError("k and m must be >= 1")
        n = cluster.n_servers
        self.rep_size = n_level + 1
        self.code_size = k + m
        if n % self.rep_size != 0:
            raise ValueError(
                f"{n} servers not divisible into replication groups of {self.rep_size}"
            )
        if n % self.code_size != 0:
            raise ValueError(
                f"{n} servers not divisible into coding groups of {self.code_size}"
            )
        self.cluster = cluster
        self.n_level = n_level
        self.k = k
        self.m = m
        self.ring = topology_aware_ring(cluster) if topology_aware else list(range(n))
        self.pos = {server: i for i, server in enumerate(self.ring)}

    @property
    def n_servers(self) -> int:
        return self.cluster.n_servers

    # ------------------------------------------------------------------
    # replication groups
    # ------------------------------------------------------------------
    def replication_group(self, server: int) -> list[int]:
        """Servers in ``server``'s replication group (aligned ring window)."""
        p = self.pos[server]
        start = p - (p % self.rep_size)
        return [self.ring[start + i] for i in range(self.rep_size)]

    def replica_targets(self, primary: int) -> list[int]:
        """Where ``primary``'s replicas go: the rest of its group, in ring order."""
        group = self.replication_group(primary)
        i = group.index(primary)
        return group[i + 1 :] + group[:i]

    def replication_group_id(self, server: int) -> int:
        return self.pos[server] // self.rep_size

    def n_replication_groups(self) -> int:
        return self.n_servers // self.rep_size

    # ------------------------------------------------------------------
    # coding groups
    # ------------------------------------------------------------------
    def coding_group(self, server: int) -> list[int]:
        """Servers in ``server``'s coding group (aligned ring window)."""
        p = self.pos[server]
        start = p - (p % self.code_size)
        return [self.ring[start + i] for i in range(self.code_size)]

    def coding_group_id(self, server: int) -> int:
        return self.pos[server] // self.code_size

    def n_coding_groups(self) -> int:
        return self.n_servers // self.code_size

    def coding_group_members(self, group_id: int) -> list[int]:
        start = group_id * self.code_size
        return [self.ring[start + i] for i in range(self.code_size)]

    # ------------------------------------------------------------------
    def validate_failure_separation(self) -> bool:
        """True if every group spans distinct cabinets (when possible)."""
        cabs = self.cluster.n_cabinets
        ok = True
        for gid in range(self.n_coding_groups()):
            members = self.coding_group_members(gid)
            seen = [self.cluster.cabinet_of(s) for s in members]
            if len(set(seen)) < min(len(members), cabs):
                ok = False
        for gid in range(self.n_replication_groups()):
            start = gid * self.rep_size
            members = [self.ring[start + i] for i in range(self.rep_size)]
            seen = [self.cluster.cabinet_of(s) for s in members]
            if len(set(seen)) < min(len(members), cabs):
                ok = False
        return ok

    def stripe_shard_servers(self, group_id: int, data_servers: list[int]) -> list[int]:
        """Full shard-server list for a stripe: data first, then parity.

        ``data_servers`` are the (distinct) primaries of the k member
        entities; parity shards land on the group members that hold no data
        shard of this stripe, so each server carries at most one shard.
        """
        members = self.coding_group_members(group_id)
        if len(data_servers) != self.k:
            raise ValueError(f"need {self.k} data servers, got {len(data_servers)}")
        if len(set(data_servers)) != len(data_servers):
            raise ValueError("data shards must sit on distinct servers")
        for s in data_servers:
            if s not in members:
                raise ValueError(f"server {s} not in coding group {group_id}")
        parity_servers = [s for s in members if s not in data_servers]
        return list(data_servers) + parity_servers[: self.m]
