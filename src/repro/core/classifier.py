"""Online hot/cold data-access classification (paper Section II-C).

An entity is **write-hot** if it was written recently, is spatially adjacent
to recently-written entities, or is predicted by its own temporal pattern to
be written soon; otherwise it is **write-cold**.  Hot entities are
replicated; cold ones are erasure coded.

Three signals, each independently switchable (for the ablation bench):

- **recency** — written within the last ``hot_window_steps`` timesteps at
  least ``hot_threshold`` times;
- **spatial locality** — a block within Chebyshev ``spatial_radius`` (in
  block-grid space) of a freshly written block is promoted for
  ``spatial_ttl_steps`` steps ("data objects with spatial coordinates near
  current hot data are anticipated to be accessed in the near future");
- **temporal lookahead** — if an entity's write history shows a stable
  period ``p``, it is promoted ``lookahead_steps`` before its predicted
  next write (the multi-timestep look-ahead that drives Case 2).

The classifier also keeps the accuracy bookkeeping behind the paper's miss
ratio :math:`r_m`: a write arriving at an entity currently classified cold
is a *miss* (a real hot object was treated as cold).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

from repro.staging.domain import Domain

__all__ = ["ClassifierConfig", "HotColdClassifier"]

EntityKey = tuple[str, int]


@dataclass
class ClassifierConfig:
    hot_window_steps: int = 3
    hot_threshold: int = 1
    spatial_radius: int = 1
    spatial_ttl_steps: int = 2
    temporal_lookahead: bool = True
    lookahead_steps: int = 1
    history_len: int = 8
    use_recency: bool = True
    use_spatial: bool = True
    # Count reads toward recency hotness (tiering v2).  Off by default:
    # the paper's classifier is write-history-only.
    count_reads: bool = False

    def __post_init__(self) -> None:
        if self.hot_window_steps < 1 or self.hot_threshold < 1:
            raise ValueError("window and threshold must be >= 1")
        if self.spatial_radius < 0 or self.spatial_ttl_steps < 0:
            raise ValueError("spatial parameters must be >= 0")
        if self.history_len < 2:
            raise ValueError("history_len must be >= 2 for period detection")


class HotColdClassifier:
    """Per-entity write-history tracking and hot/cold decisions."""

    def __init__(self, domain: Domain, config: ClassifierConfig | None = None):
        self.domain = domain
        self.config = config or ClassifierConfig()
        self._history: dict[EntityKey, deque[int]] = {}
        self._read_history: dict[EntityKey, deque[int]] = {}
        self._spatial_hot_until: dict[EntityKey, int] = {}
        # accuracy bookkeeping
        self.writes_total = 0
        self.writes_while_cold = 0

    # ------------------------------------------------------------------
    def record_write(self, key: EntityKey, step: int, was_hot: bool | None = None) -> None:
        """Note a write to ``key`` at timestep ``step``.

        ``was_hot`` is the classification in force when the write arrived
        (for miss accounting); pass None to skip accounting (e.g. replays).
        """
        hist = self._history.get(key)
        if hist is None:
            hist = deque(maxlen=self.config.history_len)
            self._history[key] = hist
        hist.append(step)
        if was_hot is not None:
            self.writes_total += 1
            if not was_hot:
                self.writes_while_cold += 1
        if self.config.use_spatial and self.config.spatial_radius > 0:
            name, block_id = key
            until = step + self.config.spatial_ttl_steps
            for nbr in self.domain.neighbor_blocks(block_id, self.config.spatial_radius):
                nbr_key = (name, nbr)
                if self._spatial_hot_until.get(nbr_key, -1) < until:
                    self._spatial_hot_until[nbr_key] = until

    def record_read(self, key: EntityKey, step: int) -> None:
        """Note a read of ``key`` (no-op unless ``count_reads`` is set).

        Reads feed recency only — they carry no spatial promotion (a read
        does not predict neighbouring *writes*) and no miss accounting.
        """
        if not self.config.count_reads:
            return
        hist = self._read_history.get(key)
        if hist is None:
            hist = deque(maxlen=self.config.history_len)
            self._read_history[key] = hist
        hist.append(step)

    # ------------------------------------------------------------------
    def recency_hot(self, key: EntityKey, step: int) -> bool:
        hist = self._history.get(key)
        if not hist:
            return False
        lo = step - self.config.hot_window_steps + 1
        recent = sum(1 for s in hist if s >= lo)
        return recent >= self.config.hot_threshold

    def spatial_hot(self, key: EntityKey, step: int) -> bool:
        return self._spatial_hot_until.get(key, -1) >= step

    def detect_period(self, key: EntityKey) -> int | None:
        """Stable inter-write period of ``key``, or None.

        Requires at least two equal consecutive intervals (three writes).
        """
        hist = self._history.get(key)
        if hist is None or len(hist) < 3:
            return None
        gaps = [b - a for a, b in zip(list(hist)[:-1], list(hist)[1:])]
        tail = gaps[-2:]
        if tail[0] == tail[1] and tail[0] > 0:
            return tail[0]
        return None

    def predicted_hot(self, key: EntityKey, step: int) -> bool:
        """Temporal lookahead: next periodic write within lookahead_steps."""
        if not self.config.temporal_lookahead:
            return False
        period = self.detect_period(key)
        if period is None:
            return False
        last = self._history[key][-1]
        next_write = last + period
        return 0 <= next_write - step <= self.config.lookahead_steps

    # ------------------------------------------------------------------
    def read_recency_hot(self, key: EntityKey, step: int) -> bool:
        hist = self._read_history.get(key)
        if not hist:
            return False
        lo = step - self.config.hot_window_steps + 1
        return sum(1 for s in hist if s >= lo) >= self.config.hot_threshold

    def is_hot(self, key: EntityKey, step: int) -> bool:
        """The combined classification used by the CoREC policy."""
        if self.config.use_recency and self.recency_hot(key, step):
            return True
        if self.config.count_reads and self.read_recency_hot(key, step):
            return True
        if self.spatial_hot(key, step):
            return True
        return self.predicted_hot(key, step)

    def miss_ratio(self) -> float:
        """Fraction of writes that arrived while classified cold."""
        return self.writes_while_cold / self.writes_total if self.writes_total else 0.0

    def advance(self, step: int) -> None:
        """Garbage-collect expired spatial promotions (once per timestep)."""
        if self._spatial_hot_until:
            self._spatial_hot_until = {
                k: v for k, v in self._spatial_hot_until.items() if v >= step
            }
