"""Response-time and execution-breakdown accounting.

Everything the paper's evaluation reports comes from here:

- **write/read response time** (Figure 8, 10, 11, 12): per-request samples
  recorded by the service's put/get flows;
- **execution-time breakdown** (Figure 9): cumulative transport / metadata /
  encode / classify (plus decode / recovery / store) durations attributed by
  the runtime helpers as they execute;
- **storage efficiency** (write-efficiency ratio in Figure 8): tracked
  incrementally by :class:`StorageAccountant` so constraint enforcement is
  O(1) per transition instead of a directory scan.

All named metrics live in one :class:`repro.obs.registry.MetricsRegistry`:
event counters are registry counters (``Metrics.counters`` stays available
as a read view), put/get response times additionally feed fixed-bucket
histograms for p50/p95/p99/max tail accounting, and the storage accountant
publishes byte gauges.  Components with internal counters (codec decode
caches, coding batches) register gauges into the same registry, replacing
the old scattered ``Counter`` dicts with one queryable namespace.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Iterable

from repro.obs.registry import MetricsRegistry
from repro.util.stats import RunningStat, TimeSeries

__all__ = ["Metrics", "StorageAccountant", "BREAKDOWN_CATEGORIES"]

BREAKDOWN_CATEGORIES = (
    "transport",
    "metadata",
    "encode",
    "classify",
    "decode",
    "recovery",
    "store",
)


@dataclass
class StorageAccountant:
    """Incremental original/replica/parity byte accounting.

    Mirrors :meth:`repro.staging.metadata.MetadataDirectory.storage_breakdown`
    but is updated in O(1) by the runtime on every protection transition.
    Tests cross-check the two representations after every workflow.
    """

    original: int = 0
    replica: int = 0
    parity: int = 0

    def efficiency(self) -> float:
        total = self.original + self.replica + self.parity
        return self.original / total if total else 1.0

    def overhead_ratio(self) -> float:
        """Redundancy bytes as a fraction of original bytes."""
        return (self.replica + self.parity) / self.original if self.original else 0.0

    def would_be_efficiency(self, d_original: int = 0, d_replica: int = 0, d_parity: int = 0) -> float:
        """Efficiency after a hypothetical delta (for admission decisions)."""
        orig = self.original + d_original
        total = orig + self.replica + d_replica + self.parity + d_parity
        return orig / total if total else 1.0

    def register_gauges(self, registry: MetricsRegistry, prefix: str = "storage") -> None:
        """Publish the byte counts and efficiency as registry gauges."""
        registry.gauge(f"{prefix}.original_bytes", lambda: self.original)
        registry.gauge(f"{prefix}.replica_bytes", lambda: self.replica)
        registry.gauge(f"{prefix}.parity_bytes", lambda: self.parity)
        registry.gauge(f"{prefix}.efficiency", self.efficiency)


class Metrics:
    """Shared metrics sink for one simulated workflow run.

    ``extra_categories`` extends the execution-breakdown beyond
    :data:`BREAKDOWN_CATEGORIES` (e.g. recovery sub-phases); categories can
    also be added later with :meth:`register_category` — ``add_time`` on an
    unregistered category stays a hard error so typos don't silently
    siphon time into nowhere.
    """

    def __init__(
        self,
        extra_categories: Iterable[str] = (),
        registry: MetricsRegistry | None = None,
    ) -> None:
        self.registry = registry if registry is not None else MetricsRegistry()
        self.put_stat = RunningStat()
        self.get_stat = RunningStat()
        self.put_series = TimeSeries("put")
        self.get_series = TimeSeries("get")
        self.breakdown: dict[str, float] = {
            c: 0.0 for c in (*BREAKDOWN_CATEGORIES, *extra_categories)
        }
        self.storage = StorageAccountant()
        self.storage.register_gauges(self.registry)
        self.efficiency_series = TimeSeries("efficiency")
        self.step_get_series = TimeSeries("step_get")  # per-timestep means (Fig. 10)
        self.step_put_series = TimeSeries("step_put")
        self.put_hist = self.registry.histogram("put_response_s")
        self.get_hist = self.registry.histogram("get_response_s")

    # ------------------------------------------------------------------
    def add_time(self, category: str, dt: float) -> None:
        if category not in self.breakdown:
            raise KeyError(f"unknown breakdown category {category!r}")
        self.breakdown[category] += dt

    def register_category(self, category: str) -> None:
        """Allow ``add_time`` on a new breakdown category (idempotent)."""
        self.breakdown.setdefault(category, 0.0)

    def count(self, name: str, n: int = 1) -> None:
        self.registry.counter(name).inc(n)

    @property
    def counters(self) -> Counter[str]:
        """Read view of the event counters (legacy ``Counter`` shape).

        Counters live in the registry; this rebuilds the classic mapping
        in creation order, so ``dict(metrics.counters)`` round-trips
        byte-identically with pre-registry runs.
        """
        return Counter(self.registry.counters())

    def record_put(self, t: float, duration: float) -> None:
        self.put_stat.add(duration)
        self.put_series.add(t, duration)
        self.put_hist.observe(duration)

    def record_get(self, t: float, duration: float) -> None:
        self.get_stat.add(duration)
        self.get_series.add(t, duration)
        self.get_hist.observe(duration)

    def sample_efficiency(self, t: float) -> None:
        self.efficiency_series.add(t, self.storage.efficiency())

    # ------------------------------------------------------------------
    def write_efficiency(self) -> float:
        """The paper's Figure 8 red line: write response / storage efficiency.

        Lower is better (good latency at good storage efficiency).
        """
        eff = self.storage.efficiency()
        return self.put_stat.mean / eff if eff > 0 else float("inf")

    def snapshot(self) -> dict:
        """Plain-dict summary for bench harness tables."""
        return {
            "put_mean_s": self.put_stat.mean,
            "put_total_s": self.put_stat.total,
            "put_n": self.put_stat.n,
            "get_mean_s": self.get_stat.mean,
            "get_total_s": self.get_stat.total,
            "get_n": self.get_stat.n,
            "storage_efficiency": self.storage.efficiency(),
            "write_efficiency": self.write_efficiency(),
            "breakdown": dict(self.breakdown),
            "counters": dict(self.counters),
            "put_percentiles_s": self.put_hist.percentiles(),
            "get_percentiles_s": self.get_hist.percentiles(),
        }
