"""Response-time and execution-breakdown accounting.

Everything the paper's evaluation reports comes from here:

- **write/read response time** (Figure 8, 10, 11, 12): per-request samples
  recorded by the service's put/get flows;
- **execution-time breakdown** (Figure 9): cumulative transport / metadata /
  encode / classify (plus decode / recovery / store) durations attributed by
  the runtime helpers as they execute;
- **storage efficiency** (write-efficiency ratio in Figure 8): tracked
  incrementally by :class:`StorageAccountant` so constraint enforcement is
  O(1) per transition instead of a directory scan.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

from repro.util.stats import RunningStat, TimeSeries

__all__ = ["Metrics", "StorageAccountant", "BREAKDOWN_CATEGORIES"]

BREAKDOWN_CATEGORIES = (
    "transport",
    "metadata",
    "encode",
    "classify",
    "decode",
    "recovery",
    "store",
)


@dataclass
class StorageAccountant:
    """Incremental original/replica/parity byte accounting.

    Mirrors :meth:`repro.staging.metadata.MetadataDirectory.storage_breakdown`
    but is updated in O(1) by the runtime on every protection transition.
    Tests cross-check the two representations after every workflow.
    """

    original: int = 0
    replica: int = 0
    parity: int = 0

    def efficiency(self) -> float:
        total = self.original + self.replica + self.parity
        return self.original / total if total else 1.0

    def overhead_ratio(self) -> float:
        """Redundancy bytes as a fraction of original bytes."""
        return (self.replica + self.parity) / self.original if self.original else 0.0

    def would_be_efficiency(self, d_original: int = 0, d_replica: int = 0, d_parity: int = 0) -> float:
        """Efficiency after a hypothetical delta (for admission decisions)."""
        orig = self.original + d_original
        total = orig + self.replica + d_replica + self.parity + d_parity
        return orig / total if total else 1.0


class Metrics:
    """Shared metrics sink for one simulated workflow run."""

    def __init__(self) -> None:
        self.put_stat = RunningStat()
        self.get_stat = RunningStat()
        self.put_series = TimeSeries("put")
        self.get_series = TimeSeries("get")
        self.breakdown: dict[str, float] = {c: 0.0 for c in BREAKDOWN_CATEGORIES}
        self.counters: Counter[str] = Counter()
        self.storage = StorageAccountant()
        self.efficiency_series = TimeSeries("efficiency")
        self.step_get_series = TimeSeries("step_get")  # per-timestep means (Fig. 10)
        self.step_put_series = TimeSeries("step_put")

    # ------------------------------------------------------------------
    def add_time(self, category: str, dt: float) -> None:
        if category not in self.breakdown:
            raise KeyError(f"unknown breakdown category {category!r}")
        self.breakdown[category] += dt

    def count(self, name: str, n: int = 1) -> None:
        self.counters[name] += n

    def record_put(self, t: float, duration: float) -> None:
        self.put_stat.add(duration)
        self.put_series.add(t, duration)

    def record_get(self, t: float, duration: float) -> None:
        self.get_stat.add(duration)
        self.get_series.add(t, duration)

    def sample_efficiency(self, t: float) -> None:
        self.efficiency_series.add(t, self.storage.efficiency())

    # ------------------------------------------------------------------
    def write_efficiency(self) -> float:
        """The paper's Figure 8 red line: write response / storage efficiency.

        Lower is better (good latency at good storage efficiency).
        """
        eff = self.storage.efficiency()
        return self.put_stat.mean / eff if eff > 0 else float("inf")

    def snapshot(self) -> dict:
        """Plain-dict summary for bench harness tables."""
        return {
            "put_mean_s": self.put_stat.mean,
            "put_total_s": self.put_stat.total,
            "put_n": self.put_stat.n,
            "get_mean_s": self.get_stat.mean,
            "get_total_s": self.get_stat.total,
            "get_n": self.get_stat.n,
            "storage_efficiency": self.storage.efficiency(),
            "write_efficiency": self.write_efficiency(),
            "breakdown": dict(self.breakdown),
            "counters": dict(self.counters),
        }
