"""Backend interfaces: the clock/scheduler and the transfer fabric.

``StagingRuntime`` and ``StagingService`` are written against two narrow
interfaces rather than against the simulator concretely:

- :class:`Clock` — event scheduling and time.  The discrete-event
  :class:`repro.sim.engine.Simulator` implements it with a virtual clock
  and a time-ordered heap; :class:`repro.live.engine.LiveEngine`
  implements it with the wall clock on top of an asyncio event loop.
- :class:`Transport` — byte movement between named endpoints.
  :class:`repro.sim.network.Network` charges modeled wire time;
  :class:`repro.live.transport.LiveTransport` moves bytes for real (they
  already live in process memory; the live fabric is the asyncio loop and
  the TCP protocol layer) and records the same statistics.

Both are structural (``typing.Protocol``): any object with the right
methods works, no inheritance required.  The crucial shared contract is
the *generator process model* — every flow in the runtime is a generator
that yields :class:`repro.sim.engine.Event` objects, and both backends
drive those same Event/Process/Resource classes through the three
scheduling primitives (``event``/``_schedule_event``/``_schedule_callback``).
That is what lets one copy of the resilience mechanics (replication,
stripe formation, parity maintenance, recovery) run unchanged under
simulated time *and* under real concurrency.
"""

from __future__ import annotations

from typing import Any, Callable, Generator, Protocol, runtime_checkable

__all__ = ["Clock", "Transport"]


@runtime_checkable
class Clock(Protocol):
    """Scheduling and time source driving generator processes.

    Implementations must also provide the two internal primitives the
    event classes call back into (``_schedule_event(event, delay=0.0)``
    and ``_schedule_callback(cb, delay=0.0)``); they are omitted here
    because protocol members are part of the *caller-facing* surface.
    """

    now: float

    def event(self) -> Any:
        """A fresh untriggered one-shot event."""
        ...

    def timeout(self, delay: float, value: Any = None) -> Any:
        """An event firing ``delay`` clock seconds from now."""
        ...

    def process(self, gen: Generator, name: str = "") -> Any:
        """Start a generator as a process; returns its completion event."""
        ...

    def peek(self) -> float:
        """Time of the next scheduled action (inf when idle/quiescent)."""
        ...


@runtime_checkable
class Transport(Protocol):
    """Byte movement between named endpoints (servers and clients).

    ``transfer``/``send_metadata`` are generator process bodies driven
    with ``yield from``; they return the elapsed transfer duration so
    callers can attribute transport time.  ``stats`` aggregates messages
    and bytes (see :class:`repro.sim.network.TransferStats`).
    """

    stats: Any
    config: Any

    def transfer(
        self, src: str, dst: str, nbytes: int, metadata: bool = False
    ) -> Generator:
        ...

    def send_metadata(self, src: str, dst: str) -> Generator:
        ...
