"""Failure-recovery strategies (paper Section III-D, Figure 10).

Three modes:

- **lazy** (CoREC's contribution): after a replacement server joins, lost
  objects are repaired *on access* (the read path restores what it had to
  reconstruct anyway), and a background sweep with a deadline of
  ``deadline_fraction * MTBF`` (the paper uses MTBF/4) repairs whatever was
  never touched.  Before a replacement joins, reads run in *degraded mode*
  (reconstruct, serve, discard).
- **aggressive** (the baseline of existing resilient stores): the moment a
  failure is detected, every lost object is reconstructed onto surviving
  servers in one burst — fast repair, but the burst competes with
  application requests for CPU and NICs.
- **none**: no background repair; degraded reads only.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator

from repro.core.runtime import DataLossError, StagingRuntime, primary_key, replica_key
from repro.staging.objects import BlockEntity, ResilienceState, StripeInfo

__all__ = ["RecoveryConfig", "RecoveryManager"]


@dataclass
class RecoveryConfig:
    mode: str = "lazy"               # "lazy" | "aggressive" | "none"
    mtbf_s: float = 400.0
    deadline_fraction: float = 0.25  # the paper's 1/4 MTBF limit
    repair_on_access: bool = True
    sweep_parallelism: int = 4       # concurrent repairs during a lazy sweep
    # Aggressive mode re-generates *everything at once* (paper Section
    # III-D: "all lost objects are recovered and re-generated onto active
    # servers immediately") — that burst is exactly what interferes with
    # application requests, so it gets its own, much wider, parallelism.
    aggressive_parallelism: int = 64

    def __post_init__(self) -> None:
        if self.mode not in ("lazy", "aggressive", "none"):
            raise ValueError(f"unknown recovery mode {self.mode!r}")
        if self.mtbf_s <= 0 or not 0 < self.deadline_fraction <= 1:
            raise ValueError("invalid MTBF / deadline fraction")
        if self.sweep_parallelism < 1:
            raise ValueError("sweep_parallelism must be >= 1")

    @property
    def deadline_s(self) -> float:
        return self.mtbf_s * self.deadline_fraction


class RecoveryManager:
    """Schedules repair work in reaction to failures/replacements."""

    #: Breakdown categories for recovery sub-phases (wall-clock per phase).
    #: Only registered when tracing is on — they are trace-support data and
    #: must not change the default ``Metrics.breakdown`` shape.
    PHASE_CATEGORIES = ("recovery_sweep", "recovery_burst", "recovery_rebalance")

    def __init__(self, runtime: StagingRuntime, config: RecoveryConfig | None = None):
        self.rt = runtime
        self.config = config or RecoveryConfig()
        self.sweeps_started = 0
        self.sweeps_finished = 0
        if runtime.tracer.enabled:
            for cat in self.PHASE_CATEGORIES:
                runtime.metrics.register_category(cat)

    # ------------------------------------------------------------------
    # tracing helpers
    # ------------------------------------------------------------------
    def _phase(self, name: str, category: str, body: Generator, **attrs) -> Generator:
        """Wrap a recovery phase in a span that books its wall-clock time.

        With tracing off this is the identity: ``body`` is returned
        untouched.  With tracing on the phase runs under a ``name`` span and
        its elapsed time is both booked to the ``category`` breakdown (one
        of :data:`PHASE_CATEGORIES`) and stamped on the span as ``booked``,
        so phase spans reconcile with the breakdown like the leaf spans do.
        """
        tracer = self.rt.tracer
        if not tracer.enabled:
            return body
        return tracer.traced(name, self._timed(category, body), category=category, **attrs)

    def _timed(self, category: str, body: Generator) -> Generator:
        t0 = self.rt.sim.now
        try:
            result = yield from body
        finally:
            dt = self.rt.sim.now - t0
            self.rt.metrics.add_time(category, dt)
            self.rt.tracer.annotate(booked=dt)
        return result

    # ------------------------------------------------------------------
    @property
    def repair_on_access(self) -> bool:
        return self.config.repair_on_access and self.config.mode != "none"

    def on_server_failed(self, sid: int) -> None:
        if self.config.mode == "aggressive":
            self.rt.sim.process(
                self._phase(
                    "recovery.burst", "recovery_burst", self._aggressive_recover(sid),
                    server=sid,
                ),
                name=f"aggr-recover-{sid}",
            )

    def on_server_replaced(self, sid: int) -> None:
        if self.config.mode == "lazy":
            self.rt.sim.process(
                self._phase(
                    "recovery.sweep", "recovery_sweep", self._lazy_sweep(sid),
                    server=sid,
                ),
                name=f"lazy-sweep-{sid}",
            )
        elif self.config.mode == "aggressive":
            # Aggressive already moved primaries to survivors at failure
            # time; the replacement only needs missing replicas/parities.
            self.rt.sim.process(
                self._phase(
                    "recovery.refill", "recovery_sweep",
                    self._repair_missing_on(sid, delay=0.0), server=sid,
                ),
                name=f"aggr-refill-{sid}",
            )
        if self.config.mode != "none":
            # Restore failure independence immediately: while a server was
            # down, redirected writes / survivor recovery may have doubled
            # stripe shards onto one server; the doubled shards migrate to
            # the replacement now (a small, bounded transfer set), closing
            # the window in which a second failure could take two shards of
            # one stripe at once.
            self.rt.sim.process(
                self._phase(
                    "recovery.rebalance", "recovery_rebalance",
                    self._rebalance_onto(sid), server=sid,
                ),
                name=f"rebalance-{sid}",
            )

    # ------------------------------------------------------------------
    # work enumeration
    # ------------------------------------------------------------------
    # Each enumeration reads the directory's reverse indexes, so a sweep
    # visits only the failed server's records (O(affected), not
    # O(directory)); the index accessors return insertion order, matching
    # what the old full scans produced.
    def _lost_primaries(self, sid: int) -> list[BlockEntity]:
        out = []
        for ent in self.rt.directory.entities_on_server(sid):
            if ent.version < 0:
                continue
            if not self.rt.server(sid).has(primary_key(ent)):
                out.append(ent)
        return out

    def _lost_replicas(self, sid: int) -> list[BlockEntity]:
        out = []
        for ent in self.rt.directory.replicas_on_server(sid):
            # Pending entities keep their pre-demotion replicas as their
            # only protection, so their copies are repaired too.  Encoded
            # entities may also hold leftover copies (drifted members); the
            # stripe protects those, so their replicas are not repaired.
            if ent.state not in (
                ResilienceState.REPLICATED,
                ResilienceState.PENDING_STRIPE,
            ):
                continue
            if not self.rt.server(sid).has(replica_key(ent)):
                out.append(ent)
        return out

    def _lost_parities(self, sid: int) -> list[tuple[StripeInfo, int]]:
        out = []
        for stripe in self.rt.directory.stripes_on_server(sid):
            for i in range(stripe.k, stripe.k + stripe.m):
                if stripe.shard_servers[i] == sid and not self.rt.server(sid).has(
                    stripe.shard_key(i)
                ):
                    out.append((stripe, i))
        return out

    # ------------------------------------------------------------------
    # lazy sweep
    # ------------------------------------------------------------------
    def _lazy_sweep(self, sid: int) -> Generator:
        """Wait out the deadline, then repair anything still missing."""
        self.sweeps_started += 1
        if self.config.deadline_s > 0:
            yield self.rt.sim.timeout(self.config.deadline_s)
        yield from self._repair_all_missing(sid)
        self.sweeps_finished += 1

    def _repair_missing_on(self, sid: int, delay: float) -> Generator:
        if delay > 0:
            yield self.rt.sim.timeout(delay)
        yield from self._repair_all_missing(sid)

    def _repair_all_missing(self, sid: int) -> Generator:
        if self.rt.server(sid).failed:
            return  # failed again before the sweep ran
        tasks = []
        decode_stripes = []
        for ent in self._lost_primaries(sid):
            tasks.append(self._primary_repair_task(ent, sid))
            if ent.stripe is not None:
                decode_stripes.append(ent.stripe)
        for ent in self._lost_replicas(sid):
            tasks.append(self._replica_repair_task(ent, sid))
        for stripe, idx in self._lost_parities(sid):
            tasks.append(self._parity_repair_task(stripe, idx, sid))
            decode_stripes.append(stripe)
        self._warm_decode_matrices(decode_stripes)
        yield from self._run_limited(tasks)

    # ------------------------------------------------------------------
    # per-task dispatch guards
    #
    # The sweep checks ``server(sid).failed`` once at entry, but a sweep
    # runs for a long time: the target can fail again while earlier
    # batches are still in flight.  Each task body therefore re-checks the
    # destination when its process actually starts (generator bodies run
    # lazily) and, if the target is down, requeues the repair onto a
    # survivor — mirroring the ``dst.failed`` guard in
    # ``_move_primary_locked`` and the survivor selection of aggressive
    # recovery.  A failure landing *mid-repair* surfaces as DataLossError
    # from the runtime's own dst guards; that is retried the same way.
    # ------------------------------------------------------------------
    def _primary_repair_task(self, ent: BlockEntity, sid: int) -> Generator:
        if not self.rt.server(sid).failed:
            try:
                yield from self.rt.recover_primary(ent)
                return
            except DataLossError:
                if not self.rt.server(sid).failed:
                    raise  # genuine loss, not a mid-repair target death
        if ent.primary != sid:
            return  # already rehomed by another flow
        onto = self._pick_survivor(ent, exclude=sid)
        if onto is None:
            raise DataLossError(f"no survivor to host {ent.key}")
        self.rt.metrics.count("repair_requeues")
        yield from self.rt.recover_primary(ent, onto=onto)

    def _replica_repair_task(self, ent: BlockEntity, sid: int) -> Generator:
        if not self.rt.server(sid).failed:
            yield from self.rt.recover_replica(ent, sid)
            if not self.rt.server(sid).failed:
                return
            # fell over mid-repair: the store above was skipped by the
            # runtime's dst guard, so fall through and re-home the copy.
        if sid not in ent.replicas:
            return
        group = self.rt.layout.replication_group(ent.primary)
        candidates = [
            t
            for t in group
            if t != ent.primary and t != sid and self.rt.alive(t) and t not in ent.replicas
        ]
        if not candidates:
            return  # replica stays owed to the failed server's replacement
        target = candidates[0]
        ent.replicas = [r for r in ent.replicas if r != sid] + [target]
        self.rt.metrics.count("repair_requeues")
        yield from self.rt.recover_replica(ent, target)

    def _parity_repair_task(self, stripe: StripeInfo, idx: int, sid: int) -> Generator:
        if not self.rt.server(sid).failed:
            yield from self.rt.recover_parity(stripe, idx)
            if not self.rt.server(sid).failed:
                return
            # mid-repair death: the runtime skipped the store; re-home it.
        if stripe.stripe_id not in self.rt.directory.stripes:
            return
        if stripe.shard_servers[idx] != sid:
            return  # already rehomed by another flow
        onto = self._pick_parity_survivor(stripe, exclude=sid)
        if onto is None:
            return  # nowhere alive to put it; the replacement will refill
        self.rt.metrics.count("repair_requeues")
        yield from self.rt.recover_parity(stripe, idx, onto=onto)

    def _warm_decode_matrices(self, stripes: list[StripeInfo]) -> None:
        """Batch-build the decode matrices a repair burst is about to need.

        One pure-compute pass over the distinct erasure patterns turns every
        per-repair Gauss-Jordan inversion into an LRU hit.  Host-side only:
        no simulator events, so traces and metrics are untouched; patterns
        that shift before a repair runs merely cost an unused cache entry.
        """
        patterns = {
            pattern
            for stripe in stripes
            if (pattern := self.rt.stripe_survivor_pattern(stripe)) is not None
        }
        if patterns:
            self.rt.codec.code.warm_decode_cache(patterns)

    def _run_limited(self, tasks: list, width: int | None = None) -> Generator:
        """Run repair generators with bounded parallelism."""
        from repro.sim.engine import AllOf

        tracer = self.rt.tracer
        # Repair tasks run as sibling processes, outside the phase span's
        # dynamic scope — anchor each task span to the phase explicitly so
        # the reconstruct/transfer spans inside parent under the phase.
        parent = tracer.current if tracer.enabled else None
        width = width or self.config.sweep_parallelism
        for i in range(0, len(tasks), width):
            batch = tasks[i : i + width]
            if parent is not None:
                procs = [
                    self.rt.sim.process(
                        tracer.traced(
                            "recovery.task", self._guarded(t),
                            category="recovery", parent=parent,
                        )
                    )
                    for t in batch
                ]
            else:
                procs = [self.rt.sim.process(self._guarded(t)) for t in batch]
            yield AllOf(self.rt.sim, procs)

    def _guarded(self, gen) -> Generator:
        """Swallow unrecoverable-object errors so one loss doesn't abort a sweep."""
        try:
            yield from gen
        except DataLossError:
            self.rt.metrics.count("unrecoverable_objects")

    # ------------------------------------------------------------------
    # shard rebalancing after a replacement joins
    # ------------------------------------------------------------------
    def _rebalance_onto(self, sid: int) -> Generator:
        """Migrate displaced stripe shards onto the replaced server.

        Two kinds of displacement accumulate while a server is down:
        *doubling* (two shards of one stripe on one server — only possible
        when every alive server already held a shard) and *off-group*
        placement (survivor recovery put a shard outside the stripe's
        coding group).  Both shrink the set of tolerable future failures,
        so the replacement absorbs one displaced shard per affected stripe.
        """
        group = set(self.rt.layout.coding_group(sid))
        tasks = []
        # Candidates come from the reverse index: exactly the stripes with a
        # shard on some group member (ascending id = directory insertion
        # order, the order the old full scan walked).
        directory = self.rt.directory
        candidate_ids = sorted(
            set().union(*(directory.stripes_by_server.get(s, set()) for s in group))
        ) if group else []
        directory.op_stats["stripe_touches"] += len(candidate_ids)
        for stripe_id in candidate_ids:
            stripe = directory.stripes.get(stripe_id)
            if stripe is None:
                continue
            if sid in stripe.shard_servers:
                continue
            if not (group & set(stripe.shard_servers)):
                continue  # another group's stripe
            move_slot = None
            seen: set[int] = set()
            for i, server in enumerate(stripe.shard_servers):
                if server in seen:
                    move_slot = i  # doubled shard
                    break
                seen.add(server)
            if move_slot is None:
                # Data shards belong on group members; parity belongs in the
                # placement mode's allowed universe (which is exactly the
                # group under grouped mode, but includes the coding-sets
                # menu / the whole cluster under the other modes — parity
                # legitimately living there must not be pulled in-group).
                allowed = self.rt.layout.allowed_stripe_servers(stripe.group_id)
                for i, server in enumerate(stripe.shard_servers):
                    if server not in group and (i < stripe.k or server not in allowed):
                        move_slot = i  # displaced shard
                        break
            if move_slot is None:
                continue
            if move_slot < stripe.k:
                mk = stripe.members[move_slot]
                if mk is None:
                    stripe.retarget_shard(move_slot, sid)  # vacant: pure metadata
                    self.rt.metrics.count("rebalanced_shards")
                    continue
                ent = self.rt.directory.entities[mk]
                tasks.append(self._move_primary(ent, stripe, move_slot, sid))
            else:
                tasks.append(self._move_parity(stripe, move_slot, sid))
        yield from self._run_limited(tasks)
        if tasks:
            self.rt.metrics.count("rebalanced_shards", len(tasks))

    def _move_primary(self, ent: BlockEntity, stripe: StripeInfo, slot: int, onto: int) -> Generator:
        """Migrate an entity's primary copy (and shard role) to ``onto``."""
        yield from self.rt.with_entity_lock(
            ent.key, self._move_primary_locked(ent, stripe, slot, onto)
        )

    def _move_primary_locked(self, ent: BlockEntity, stripe: StripeInfo, slot: int, onto: int) -> Generator:
        if stripe.members[slot] != ent.key or ent.primary == onto:
            return  # changed while we waited
        src = self.rt.server(ent.primary)
        dst = self.rt.server(onto)
        if dst.failed:
            return
        key = primary_key(ent)
        if not src.has(key):
            yield from self.rt._recover_primary_locked(ent, onto=onto)
            return
        payload = src.fetch_bytes(key)
        yield from self.rt.transfer(src.name, dst.name, ent.nbytes, "recovery")
        yield from self.rt.busy(onto, self.rt.costs.store_cost(ent.nbytes), "recovery")
        if dst.failed or stripe.members[slot] != ent.key:
            return
        dst.store_bytes(key, payload)
        if not src.failed:
            src.delete_bytes(key)
        stripe.retarget_shard(slot, onto)
        ent.primary = onto
        yield from self.rt.metadata_update(ent, onto)

    def _move_parity(self, stripe: StripeInfo, idx: int, onto: int) -> Generator:
        yield from self.rt.with_stripe_lock(
            stripe.stripe_id, self._move_parity_locked(stripe, idx, onto)
        )

    def _move_parity_locked(self, stripe: StripeInfo, idx: int, onto: int) -> Generator:
        old_sid = stripe.shard_servers[idx]
        old_srv = self.rt.server(old_sid)
        key = stripe.shard_key(idx)
        if old_srv.has(key):
            yield from self.rt.transfer(old_srv.name, self.rt.server(onto).name, stripe.shard_len, "recovery")
            yield from self.rt.busy(onto, self.rt.costs.store_cost(stripe.shard_len), "recovery")
            dst = self.rt.server(onto)
            # Re-fetch at the application instant: the stripe lock kept
            # parity updates out, but the source may have died meanwhile.
            if not dst.failed and old_srv.has(key):
                dst.store_bytes(key, old_srv.fetch_bytes(key))
                old_srv.delete_bytes(key)
                stripe.retarget_shard(idx, onto)
        else:
            yield from self.rt._recover_parity_locked(stripe, idx, onto)

    # ------------------------------------------------------------------
    # aggressive recovery
    # ------------------------------------------------------------------
    def _aggressive_recover(self, sid: int) -> Generator:
        """Reconstruct everything lost on ``sid`` onto survivors, now."""
        tasks = []
        decode_stripes = []
        for ent in self._lost_primaries(sid):
            onto = self._pick_survivor(ent, exclude=sid)
            if onto is None:
                self.rt.metrics.count("unrecoverable_objects")
                continue
            if ent.state == ResilienceState.REPLICATED and ent.replicas:
                tasks.append(self._promote_replica(ent, sid))
            else:
                tasks.append(self.rt.recover_primary(ent, onto=onto))
                if ent.stripe is not None:
                    decode_stripes.append(ent.stripe)
        for ent in self._lost_replicas(sid):
            # Re-replicate onto another live member of the replication
            # group when one exists; otherwise the replica remains owed to
            # the failed server and is refilled at replacement time.
            group = self.rt.layout.replication_group(ent.primary)
            candidates = [
                t
                for t in group
                if t != ent.primary and t != sid and self.rt.alive(t) and t not in ent.replicas
            ]
            if candidates:
                target = candidates[0]
                ent.replicas = [r for r in ent.replicas if r != sid] + [target]
                tasks.append(self.rt.recover_replica(ent, target))
        for stripe, idx in self._lost_parities(sid):
            onto = self._pick_parity_survivor(stripe, exclude=sid)
            if onto is not None:
                tasks.append(self.rt.recover_parity(stripe, idx, onto=onto))
                decode_stripes.append(stripe)
        self._warm_decode_matrices(decode_stripes)
        yield from self._run_limited(tasks, width=self.config.aggressive_parallelism)

    def _promote_replica(self, ent: BlockEntity, dead_sid: int) -> Generator:
        """Promote a live replica to primary, then restore replica count.

        Runs under the entity lock (state mutation + replica repair).
        """
        yield from self.rt.with_entity_lock(
            ent.key, self._promote_replica_locked(ent, dead_sid)
        )

    def _promote_replica_locked(self, ent: BlockEntity, dead_sid: int) -> Generator:
        live = [r for r in ent.replicas if self.rt.server(r).has(replica_key(ent))]
        if not live:
            onto = self._pick_survivor(ent, dead_sid)
            if onto is None:
                raise DataLossError(f"no survivor to host {ent.key}")
            yield from self.rt._recover_primary_locked(ent, onto=onto)
            return
        new_primary = live[0]
        srv = self.rt.server(new_primary)
        payload = srv.fetch_bytes(replica_key(ent))
        srv.store_bytes(primary_key(ent), payload)
        srv.delete_bytes(replica_key(ent))
        # The promoted bytes are the replica copy's version.
        ent.stored_version = ent.replica_version
        ent.primary = new_primary
        ent.replicas = [
            r for r in ent.replicas if r != new_primary and self.rt.alive(r)
        ]
        self.rt.metrics.count("replica_promotions")
        # Restore the replica count on another live group member.
        targets = [
            t
            for t in self.rt.layout.replica_targets(new_primary)
            if t != dead_sid and self.rt.alive(t)
        ]
        if targets:
            ent.replicas = targets[: self.rt.layout.n_level]
            for t in ent.replicas:
                yield from self.rt._recover_replica_locked(ent, t)
        # Logical accounting follows the new replica set.
        new_accounted = ent.nbytes * len(ent.replicas)
        self.rt.metrics.storage.replica += new_accounted - ent.replica_bytes_accounted
        ent.replica_bytes_accounted = new_accounted
        yield from self.rt.metadata_update(ent, new_primary)

    def _pick_survivor(self, ent: BlockEntity, exclude: int) -> int | None:
        """An alive server to host the reconstructed primary.

        Servers already holding a shard of the entity's stripe are avoided
        (preserving the one-shard-per-server failure independence), looking
        first inside the coding group, then cluster-wide; only if every
        alive server already holds a shard do we accept doubling up.
        """
        occupied = set(ent.stripe.shard_servers) if ent.stripe is not None else set()
        group = self.rt.layout.coding_group(ent.primary)
        tiers = (
            [s for s in group if s != exclude and self.rt.alive(s) and s not in occupied],
            [
                s
                for s in range(len(self.rt.servers))
                if s != exclude and self.rt.alive(s) and s not in occupied
            ],
            [s for s in group if s != exclude and self.rt.alive(s)],
            [s for s in range(len(self.rt.servers)) if s != exclude and self.rt.alive(s)],
        )
        for tier in tiers:
            if tier:
                return min(tier, key=lambda s: (self.rt.server(s).workload_level(), s))
        return None

    def _pick_parity_survivor(self, stripe: StripeInfo, exclude: int) -> int | None:
        gid = self.rt.layout.coding_group_id(stripe.shard_servers[0])
        # Mode-aware preference order: under coding_sets the group's parity
        # menu comes first, so repairs keep every stripe inside its allowed
        # server sets; grouped/spread prefer the group members as before.
        preferred = self.rt.layout.parity_candidates(gid)
        tiers = (
            [
                s
                for s in preferred
                if s != exclude and self.rt.alive(s) and s not in stripe.shard_servers
            ],
            [
                s
                for s in range(len(self.rt.servers))
                if s != exclude and self.rt.alive(s) and s not in stripe.shard_servers
            ],
            [s for s in preferred if s != exclude and self.rt.alive(s)],
        )
        for tier in tiers:
            if tier:
                return tier[0]
        return None
