"""Simple hybrid erasure coding — the classification-free strawman.

The paper's "Hybrid" baseline: "candidate data objects for replication and
erasure coding are selected randomly without any data classification"
(Section II-D.1), under the same storage-efficiency constraint as CoREC.
Because the choice is re-drawn per write, the same object oscillates
between replication and erasure coding, paying the full transition cost
each time — the behaviour responsible for its "longest total transportation
time" in the paper's Case 1 discussion.
"""

from __future__ import annotations

from typing import Generator

import numpy as np

from repro.core.model import CoRECModel, ModelParams
from repro.core.policies import ResiliencePolicy
from repro.core.recovery import RecoveryConfig
from repro.core.runtime import StagingRuntime, primary_key
from repro.staging.objects import BlockEntity, ResilienceState

__all__ = ["SimpleHybridPolicy"]


class SimpleHybridPolicy(ResiliencePolicy):
    """Random replicate-or-encode selection under a storage bound."""

    name = "hybrid"

    def __init__(
        self,
        storage_bound: float = 0.67,
        rng: np.random.Generator | None = None,
        redraw_on_update: bool = True,
        update_strategy: str = "reencode",
        recovery: RecoveryConfig | None = None,
    ):
        super().__init__(recovery=recovery or RecoveryConfig(mode="lazy"))
        if rng is None:
            raise ValueError("SimpleHybridPolicy requires an rng stream")
        self.storage_bound = storage_bound
        self.rng = rng
        self.redraw_on_update = redraw_on_update
        self.update_strategy = update_strategy
        self.p_replicate = 0.0  # resolved at attach from the code geometry

    def attach(self, runtime: StagingRuntime) -> None:
        super().attach(runtime)
        layout = runtime.layout
        model = CoRECModel(ModelParams(n_level=layout.m, n_node=layout.k))
        # The replicated fraction that exactly meets the storage bound.
        self.p_replicate = model.p_r_at_constraint(self.storage_bound)

    # ------------------------------------------------------------------
    def _draw(self) -> str:
        return "replicate" if self.rng.random() < self.p_replicate else "encode"

    def on_write(self, ent: BlockEntity, client_name, payload, step, is_new) -> Generator:
        desired = self._draw() if (is_new or self.redraw_on_update) else None

        if is_new:
            yield from self.rt.ingest_primary(ent, client_name, payload)
            if desired == "replicate":
                yield from self.rt.replicate_entity(ent, payload)
            else:
                self.rt.enqueue_for_encoding(ent)
                gid = self.rt.layout.coding_group_id(ent.primary)
                if self.rt.stripe_ready(gid):
                    yield from self.rt.encode_pending(gid)
            return

        state = ent.state
        if desired is None or (
            (desired == "replicate" and state == ResilienceState.REPLICATED)
            or (desired == "encode" and state == ResilienceState.ENCODED)
        ):
            # No switch: plain in-state update.
            if state == ResilienceState.REPLICATED:
                yield from self._refresh_replicated(ent, client_name, payload)
            elif state == ResilienceState.ENCODED:
                yield from self.rt.ingest_primary(ent, client_name, payload, store=False)
                yield from self.rt.update_encoded_entity(ent, payload, strategy=self.update_strategy)
            else:  # PENDING/NONE
                yield from self.rt.ingest_primary(ent, client_name, payload)
                if ent.state == ResilienceState.ENCODED:
                    # An encoder raced the ingest: reconcile the parity with
                    # the bytes that just landed.
                    yield from self.rt.reconcile_encoded_member(ent)
                elif ent.replicas:
                    yield from self.rt.refresh_replica_copies(ent, payload)
            return

        # Switching states on the write path — the churn the paper calls out.
        self.rt.metrics.count("hybrid_switches")
        if desired == "replicate":
            if state == ResilienceState.ENCODED:
                from repro.core.runtime import DataLossError

                yield from self.rt.ingest_primary(ent, client_name, payload, store=False)
                try:
                    yield from self.rt.extract_from_stripe(ent)
                except DataLossError:
                    # Primary failed mid-switch: keep the stripe protection
                    # and apply the write as a plain encoded update instead.
                    yield from self.rt.update_encoded_entity(
                        ent, payload, strategy=self.update_strategy
                    )
                    return
                yield from self.rt.busy(
                    ent.primary, self.rt.costs.store_cost(int(payload.size)), "store"
                )
                if not self.rt.server(ent.primary).failed:
                    self.rt.server(ent.primary).store_bytes(primary_key(ent), payload)
                    ent.stored_version = ent.version
                yield from self.rt.replicate_entity(ent, payload)
            else:  # PENDING or NONE -> replicate directly
                if state == ResilienceState.PENDING_STRIPE:
                    # The switch decision overtakes the queued demotion;
                    # leaving the key queued would let a later flush encode
                    # a replicated entity.
                    self.rt.dequeue_pending(ent)
                yield from self.rt.ingest_primary(ent, client_name, payload)
                if ent.state == ResilienceState.ENCODED:
                    # An encoder popped the key before the dequeue and raced
                    # the ingest: keep the stripe protection and fold the
                    # write into the parity (replicate_entity rejects
                    # striped entities).
                    yield from self.rt.reconcile_encoded_member(ent)
                else:
                    yield from self.rt.replicate_entity(ent, payload)
        else:  # desired == "encode"
            yield from self.rt.ingest_primary(ent, client_name, payload)
            if state == ResilienceState.REPLICATED:
                # The entity keeps its replicas while pending; they must
                # carry this write's bytes too, or a balanced read could
                # serve the stale copy.
                yield from self.rt.refresh_replica_copies(ent, payload)
                yield from self._demote_to_encoded(ent)
            elif state == ResilienceState.NONE:
                self.rt.enqueue_for_encoding(ent)
                gid = self.rt.layout.coding_group_id(ent.primary)
                if self.rt.stripe_ready(gid):
                    yield from self.rt.encode_pending(gid)

    def on_step_end(self, step: int) -> Generator:
        for gid in range(self.rt.layout.n_coding_groups()):
            yield from self.rt.flush_pending(gid)

    def on_flush(self) -> Generator:
        for gid in range(self.rt.layout.n_coding_groups()):
            yield from self.rt.flush_pending(gid)
