"""Assembly of the resilient staging service.

``StagingService`` wires together the simulator, the cluster/network models,
the staging servers, the spatial index, the metadata directory, the shared
runtime and one resilience policy, and exposes the DataSpaces-style client
API: ``put(client, var, bbox)`` / ``get(client, var, bbox)`` as simulator
process bodies, plus failure/replacement injection hooks.

Payloads are deterministic synthetic bytes derived from
``(variable, block, version)`` unless the caller supplies a real array, so
reads can always be verified byte-exactly against what was staged — the
correctness backbone of the failure/recovery tests.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Generator, Sequence

import numpy as np

from repro.core.metrics import Metrics
from repro.core.partition import choose_block_shape
from repro.core.placement import GroupLayout
from repro.core.runtime import DataLossError, StagingRuntime, primary_key
from repro.erasure.reedsolomon import StripeCodec
from repro.obs.tracer import NULL_TRACER, Tracer
from repro.sim.cluster import Cluster
from repro.sim.engine import AllOf, Simulator
from repro.sim.network import Network, NetworkConfig
from repro.staging.domain import BBox, Domain
from repro.staging.index import SpatialIndex
from repro.staging.metadata import MetadataDirectory
from repro.staging.objects import BlockEntity, ResilienceState, payload_digest
from repro.staging.server import CostModel, StagingServer
from repro.util.eventlog import EventLog
from repro.util.rng import RngStreams, stable_hash

__all__ = ["StagingConfig", "StagingService", "build_geometry"]


@dataclass
class StagingConfig:
    """Cluster, domain and code geometry of one staging deployment.

    Defaults mirror the paper's Table I at reduced scale: 8 staging
    servers, RS(k=3, m=1) (3 data + 1 parity objects), one replica,
    67% storage-efficiency bound handled by the policy.
    """

    n_servers: int = 8
    servers_per_node: int = 1
    nodes_per_cabinet: int = 2
    domain_shape: tuple[int, ...] = (64, 64, 64)
    element_bytes: int = 1
    object_max_bytes: int = 16 * 1024
    n_level: int = 1  # replicas per entity; also the code's parity count m
    k: int = 3
    rs_construction: str = "cauchy"
    network: NetworkConfig = field(default_factory=NetworkConfig)
    costs: CostModel = field(default_factory=CostModel)
    index_scheme: str = "round_robin"
    topology_aware: bool = True
    # Parity-placement regime (see repro.core.placement): "grouped" keeps
    # every stripe inside its coding group (the paper's layout, default),
    # "spread" scatters parity cluster-wide per stripe (unconstrained),
    # "coding_sets" bounds parity to a cabinet-disjoint menu of at most
    # ``max_coding_sets`` servers per group (Hydra's CodingSets).
    placement_mode: str = "grouped"
    max_coding_sets: int = 2
    verify_reads: bool = True
    # When True, a put is acknowledged once the primary copy is staged and
    # the protection work (replicas / parity) continues in the background,
    # contending with foreground requests — the large-scale deployment mode
    # of the paper's S3D runs, where resilience overhead surfaces as
    # interference rather than as blocking time.
    async_protection: bool = False
    # Optional multi-tier storage stack per server (list of
    # :class:`repro.staging.tiers.StorageTier`) — the paper's future-work
    # extension: redundancy placed on capacity tiers, live data in DRAM.
    tiers: tuple = ()
    # Hierarchical span tracing (see docs/OBSERVABILITY.md).  Off by
    # default: the null tracer adds no simulator events and no per-request
    # work, and golden benchmark outputs are byte-identical either way.
    tracing: bool = False
    seed: int = 0

    def __post_init__(self) -> None:
        if self.n_servers < self.k + self.n_level:
            raise ValueError(
                f"{self.n_servers} servers cannot host RS({self.k},{self.n_level}) stripes"
            )


def build_geometry(config: StagingConfig) -> tuple[Cluster, Domain, SpatialIndex, GroupLayout]:
    """Deterministic placement geometry of a deployment: no servers, no state.

    Everything that maps a block to servers and servers to groups —
    cluster topology, block grid, spatial index, group layout — is a pure
    function of the config.  The service builds its runtime on top of
    this; a cluster coordinator builds *only* this to route client ops to
    the shard that owns each block, guaranteed to agree with every shard's
    own view because they all derive it from the same config.
    """
    cluster = Cluster(
        n_servers=config.n_servers,
        servers_per_node=config.servers_per_node,
        nodes_per_cabinet=config.nodes_per_cabinet,
    )
    block_shape = choose_block_shape(
        config.domain_shape, config.element_bytes, config.object_max_bytes
    )
    domain = Domain(config.domain_shape, block_shape, config.element_bytes)
    index = SpatialIndex(domain, config.n_servers, scheme=config.index_scheme)
    layout = GroupLayout(
        cluster,
        n_level=config.n_level,
        k=config.k,
        m=config.n_level,
        topology_aware=config.topology_aware,
        placement_mode=config.placement_mode,
        max_coding_sets=config.max_coding_sets,
        placement_seed=config.seed,
    )
    return cluster, domain, index, layout


class StagingService:
    """One staging deployment under one resilience policy.

    Backend-agnostic assembly: by default it builds the discrete-event
    simulator and the modeled network, but any :class:`repro.core.backend.Clock`
    / :class:`repro.core.backend.Transport` pair can be injected — the
    live backend (:mod:`repro.live`) passes a wall-clock asyncio engine
    and a real transport, and every flow below this class runs unchanged.
    """

    def __init__(self, config: StagingConfig, policy, engine=None, transport=None, tracer=None):
        self.config = config
        self.policy = policy
        self.sim = engine if engine is not None else Simulator()
        self.streams = RngStreams(config.seed)
        self.log = EventLog()
        self.metrics = Metrics()
        # An injected tracer wins over the config flag: the live backend
        # passes a WallClockTracer so flows are stamped on the wall clock
        # instead of a sim-time Tracer.
        if tracer is not None:
            self.tracer = tracer
        else:
            self.tracer = Tracer(lambda: self.sim.now) if config.tracing else NULL_TRACER

        self.cluster, self.domain, self.index, self.layout = build_geometry(config)
        self.network = transport if transport is not None else Network(self.sim, config.network)
        self.servers = [
            StagingServer(
                self.sim, sid, costs=config.costs,
                tiers=(list(config.tiers) or None),
            )
            for sid in range(config.n_servers)
        ]
        self.directory = MetadataDirectory(self.domain, config.n_servers, layout=self.layout)
        self.codec = StripeCodec(config.k, config.n_level, config.rs_construction)
        self.runtime = StagingRuntime(
            sim=self.sim,
            network=self.network,
            servers=self.servers,
            directory=self.directory,
            layout=self.layout,
            metrics=self.metrics,
            codec=self.codec,
            log=self.log,
            tracer=self.tracer,
        )
        policy.attach(self.runtime)
        self._register_component_gauges()
        self.step = 0
        self.read_errors = 0
        self._protect_procs: list = []

    def _register_component_gauges(self) -> None:
        """Publish component-internal counters into the metrics registry.

        The decode-matrix cache, the coding batch and the event log keep
        plain-int counters for zero-overhead updates; registering callback
        gauges gives them one queryable namespace without changing the hot
        paths.
        """
        reg = self.metrics.registry
        code = self.codec.code
        reg.gauge("rs.decode_cache.hits", lambda: code.decode_cache_hits)
        reg.gauge("rs.decode_cache.misses", lambda: code.decode_cache_misses)
        reg.gauge("rs.decode_cache.evictions", lambda: code.decode_cache_evictions)
        batch = self.runtime.coding_batch
        reg.gauge("coding_batch.jobs_submitted", lambda: batch.jobs_submitted)
        reg.gauge("coding_batch.flushes", lambda: batch.flushes)
        reg.gauge("coding_batch.largest_flush", lambda: batch.largest_flush)
        reg.gauge("eventlog.len", lambda: len(self.log))
        reg.gauge("eventlog.dropped", lambda: self.log.dropped)
        stats = self.directory.op_stats
        reg.gauge("directory.entity_touches", lambda: stats["entity_touches"])
        reg.gauge("directory.stripe_touches", lambda: stats["stripe_touches"])
        reg.gauge("directory.full_scans", lambda: stats["full_scans"])

    # ------------------------------------------------------------------
    # synthetic payloads
    # ------------------------------------------------------------------
    @staticmethod
    def synth_payload(name: str, block_id: int, version: int, nbytes: int) -> np.ndarray:
        """Deterministic, version-distinct bytes for one object."""
        base = stable_hash(f"{name}/{block_id}@{version}")
        ramp = np.arange(nbytes, dtype=np.uint64)
        return ((ramp * 131 + base) & 0xFF).astype(np.uint8)

    def _block_payload(
        self, name: str, block_id: int, version: int, region: BBox, data: np.ndarray | None
    ) -> np.ndarray:
        block_box = self.domain.block_bbox(block_id)
        nbytes = self.domain.nbytes(block_box)
        if data is None:
            return self.synth_payload(name, block_id, version, nbytes)
        # Slice the caller's region array down to this block.  A region that
        # only partially covers the block is applied read-modify-write on
        # top of the block's current content (zeros if never written).
        eb = self.config.element_bytes
        arr = np.ascontiguousarray(data)
        if arr.size * arr.itemsize != region.volume * eb:
            raise ValueError(
                f"data has {arr.size * arr.itemsize} bytes; region {region} needs "
                f"{region.volume * eb}"
            )
        # Element-wise byte view: (*region.shape, element_bytes).
        grid = arr.view(np.uint8).reshape(region.shape + (eb,))
        inter = block_box.intersect(region)
        if inter is None:  # pragma: no cover - caller guarantees overlap
            raise ValueError("block does not overlap the written region")
        src = grid[
            tuple(slice(il - rl, iu - rl) for il, iu, rl in zip(inter.lb, inter.ub, region.lb))
        ]
        if region.contains(block_box):
            return np.ascontiguousarray(src).ravel()
        # Partial write: overlay onto the existing block content.
        base = np.zeros(block_box.shape + (eb,), dtype=np.uint8)
        ent = self.directory.get(name, block_id)
        if ent is not None and ent.version >= 0:
            srv = self.servers[ent.primary]
            cur = srv.store.get(primary_key(ent))
            if cur is not None and cur.size == nbytes:
                base = cur.reshape(block_box.shape + (eb,)).copy()
        base[
            tuple(slice(il - bl, iu - bl) for il, iu, bl in zip(inter.lb, inter.ub, block_box.lb))
        ] = src
        return base.ravel()

    # ------------------------------------------------------------------
    # client API (process bodies)
    # ------------------------------------------------------------------
    def put(
        self,
        client_name: str,
        name: str,
        region: BBox,
        data: np.ndarray | None = None,
    ) -> Generator:
        """Write ``region`` of variable ``name``; returns the response time.

        The region is decomposed onto the block grid; blocks are staged
        concurrently and the put completes when every block (including its
        synchronous protection work) is durable.
        """
        t0 = self.sim.now
        block_ids = self.domain.blocks_overlapping(region)
        if not block_ids:
            raise ValueError(f"region {region} outside the staged domain")
        tracer = self.tracer
        # Block flows run as sibling processes outside this generator's
        # dynamic scope, so the root span is passed as an explicit parent.
        root = tracer.begin(
            "put", category="request", client=client_name, var=name, blocks=len(block_ids)
        )
        procs = [
            self.sim.process(
                tracer.traced(
                    "put.block",
                    self._put_block(client_name, name, bid, region, data),
                    category="request",
                    parent=root,
                    block=bid,
                )
            )
            for bid in block_ids
        ]
        yield AllOf(self.sim, procs)
        duration = self.sim.now - t0
        self.metrics.record_put(t0, duration)
        tracer.end(root, duration_s=duration)
        return duration

    def _put_block(
        self, client_name: str, name: str, block_id: int, region: BBox, data: np.ndarray | None
    ) -> Generator:
        primary = self.index.primary_of_block(block_id, name)
        ent = self.directory.get_or_create(name, block_id, primary)
        yield from self.runtime.with_entity_lock(
            ent.key, self._put_block_locked(ent, client_name, region, data)
        )

    def _put_block_locked(
        self, ent: BlockEntity, client_name: str, region: BBox, data: np.ndarray | None
    ) -> Generator:
        self._ensure_writable_primary(ent)
        is_new = ent.version < 0
        prev_bytes = ent.nbytes if not is_new else 0
        payload = self._block_payload(ent.name, ent.block_id, ent.version + 1, region, data)
        # Digest is a pure function of the payload; on the live backend it
        # runs lock-free on a worker (blake2b releases the GIL), keeping
        # the hash off the event loop.  The entity lock is held, so the
        # write is still recorded before any later op on this entity.
        digest = yield from self.runtime.compute(
            lambda: payload_digest(payload), exclusive=False, category="digest"
        )
        ent.record_write(self.sim.now, self.step, int(payload.size), digest)
        self.metrics.storage.original += int(payload.size) - prev_bytes
        if self.config.async_protection:
            # Acknowledge once the primary copy is staged; protection runs
            # in the background (serialized by the entity lock, so a later
            # write cannot overtake this one's protection).
            yield from self.runtime.ingest_primary(ent, client_name, payload)
            body = self._background_protect(ent, payload, self.step, is_new)
            if self.tracer.enabled:
                # The protect process outlives the put; anchor its span to
                # the spawning put.block span explicitly.
                body = self.tracer.traced(
                    "protect.async", body, category="protect",
                    parent=self.tracer.current, entity=f"{ent.name}/{ent.block_id}",
                )
            proc = self.sim.process(
                body, name=f"protect-{ent.name}-{ent.block_id}"
            )
            self._protect_procs.append(proc)
        else:
            yield from self.policy.on_write(ent, client_name, payload, self.step, is_new)
        # Every write publishes its new version to the distributed
        # directory, independent of the protection scheme.
        yield from self.runtime.metadata_update(ent, ent.primary)

    def _background_protect(self, ent: BlockEntity, payload, step: int, is_new: bool) -> Generator:
        """Deferred protection: run the policy's write path from the primary.

        The payload is already on the primary, so the policy's ingest leg
        degenerates to a local copy; replication / parity maintenance then
        contends with foreground requests, which is where the resilience
        cost of the async mode shows up.
        """
        primary_name = self.servers[ent.primary].name
        yield from self.runtime.with_entity_lock(
            ent.key, self.policy.on_write(ent, primary_name, payload, step, is_new)
        )

    def get(
        self,
        client_name: str,
        name: str,
        region: BBox,
        verify: bool | None = None,
    ) -> Generator:
        """Read ``region``; returns ``(response_time, payloads_by_block)``."""
        t0 = self.sim.now
        verify = self.config.verify_reads if verify is None else verify
        block_ids = self.domain.blocks_overlapping(region)
        if not block_ids:
            raise ValueError(f"region {region} outside the staged domain")
        tracer = self.tracer
        root = tracer.begin(
            "get", category="request", client=client_name, var=name, blocks=len(block_ids)
        )
        procs = [
            self.sim.process(
                tracer.traced(
                    "get.block",
                    self._get_block(client_name, name, bid, verify),
                    category="request",
                    parent=root,
                    block=bid,
                )
            )
            for bid in block_ids
        ]
        done = AllOf(self.sim, procs)
        yield done
        duration = self.sim.now - t0
        self.metrics.record_get(t0, duration)
        tracer.end(root, duration_s=duration)
        payloads = {bid: proc.value for bid, proc in zip(block_ids, procs)}
        return duration, payloads

    def _get_block(self, client_name: str, name: str, block_id: int, verify: bool) -> Generator:
        ent = self.directory.get(name, block_id)
        if ent is None or ent.version < 0:
            raise KeyError(f"{name}/{block_id} has never been staged")
        if self.tracer.enabled:
            # Directory lookups are host-side (no simulated cost); mark the
            # location decision as an instant so reads show locate → fetch.
            self.tracer.instant(
                "get.locate", category="request",
                entity=f"{name}/{block_id}", primary=ent.primary, state=ent.state.name,
            )
        payload = yield from self.runtime.read_entity(
            ent, client_name, repair=self.policy.repair_on_access
        )
        if verify:
            digest = yield from self.runtime.compute(
                lambda: payload_digest(payload), exclusive=False, category="digest"
            )
            if digest != ent.digest:
                self.read_errors += 1
                raise DataLossError(
                    f"digest mismatch reading {name}/{block_id}@v{ent.version}"
                )
        # Synchronous notification (no simulated events): policies feed
        # read-access statistics for adaptive tiering from here.
        self.policy.on_read(ent, self.step)
        return payload

    # ------------------------------------------------------------------
    # step orchestration
    # ------------------------------------------------------------------
    def end_step(self) -> Generator:
        """Barrier at the end of a timestep (runs the policy's step hook).

        In async-protection mode the barrier also quiesces the outstanding
        background protection work, so step boundaries are always fully
        protected states (failures injected at boundaries never hit the
        unprotected ACK window).
        """
        if self._protect_procs:
            pending = [p for p in self._protect_procs if p.is_alive]
            self._protect_procs.clear()
            if pending:
                yield AllOf(self.sim, pending)
        yield from self.policy.on_step_end(self.step)
        self.metrics.sample_efficiency(self.sim.now)
        self.step += 1

    def flush(self) -> Generator:
        """Force full protection of everything staged (workflow barrier)."""
        yield from self.policy.on_flush()

    def run(self, until=None):
        return self.sim.run(until)

    def run_workflow(self, workflow_gen) -> None:
        """Drive a workflow generator to completion on the simulator."""
        done = self.sim.process(workflow_gen, name="workflow")
        self.sim.run(until=done)

    # ------------------------------------------------------------------
    # failures
    # ------------------------------------------------------------------
    def fail_server(self, sid: int) -> None:
        self.servers[sid].fail()
        self.log.emit(self.sim.now, "server_failed", source=f"s{sid}", server=sid)
        self.tracer.instant("failure.detect", category="failure", server=sid)
        self.policy.on_server_failed(sid)

    def replace_server(self, sid: int) -> None:
        self.servers[sid].replace()
        self.log.emit(self.sim.now, "server_replaced", source=f"s{sid}", server=sid)
        self.tracer.instant("failure.replace", category="failure", server=sid)
        self.policy.on_server_replaced(sid)

    def _ensure_writable_primary(self, ent: BlockEntity) -> None:
        """Redirect the entity's primary if its server is down (no cost:
        pure metadata decision made from the directory)."""
        if not self.servers[ent.primary].failed:
            return
        if ent.state == ResilienceState.REPLICATED:
            live = [r for r in ent.replicas if not self.servers[r].failed]
            if live:
                new_primary = live[0]
                srv = self.servers[new_primary]
                if srv.has(f"R/{ent.name}/{ent.block_id}"):
                    srv.store_bytes(primary_key(ent), srv.fetch_bytes(f"R/{ent.name}/{ent.block_id}"))
                    srv.delete_bytes(f"R/{ent.name}/{ent.block_id}")
                    # The promoted bytes are the replica copy's version.
                    ent.stored_version = ent.replica_version
                ent.primary = new_primary
                ent.replicas = [r for r in ent.replicas if r != new_primary]
                new_accounted = ent.nbytes * len(ent.replicas)
                self.metrics.storage.replica += new_accounted - ent.replica_bytes_accounted
                ent.replica_bytes_accounted = new_accounted
                return
        if ent.state == ResilienceState.ENCODED and ent.stripe is not None:
            stripe = ent.stripe
            slot = stripe.member_shard_index(ent.key)
            members = self.layout.coding_group_members(stripe.group_id)
            # Occupancy counts real shards only: a vacant slot's placeholder
            # server holds no bytes, and counting it here starves ``free``
            # and doubles two live data shards onto one server (a single
            # further failure would then exceed the code's tolerance).
            occupied = stripe.occupied_servers()
            free = [
                s for s in members
                if not self.servers[s].failed and s not in occupied
            ]
            alive = [s for s in members if not self.servers[s].failed]
            if not alive:
                raise DataLossError(f"coding group of {ent.key} entirely failed")
            new_primary = free[0] if free else min(
                alive, key=lambda s: (self.servers[s].workload_level(), s)
            )
            stripe.retarget_shard(slot, new_primary)
            ent.primary = new_primary
            return
        if ent.state == ResilienceState.PENDING_STRIPE:
            self.runtime.redirect_pending(ent)
            return
        # Unprotected: stay inside the primary's coding group if any member
        # is alive (every other redirect path above is group-confined too,
        # which is what keeps an entity's whole footprint in one failure
        # domain — and in one shard of a partitioned deployment); fall back
        # to the global ring successor only when the entire group is down.
        members = self.layout.coding_group_members(
            self.layout.coding_group_id(ent.primary)
        )
        start = members.index(ent.primary)
        for off in range(1, len(members)):
            cand = members[(start + off) % len(members)]
            if not self.servers[cand].failed:
                ent.primary = cand
                return
        ring = self.layout.ring
        pos = self.layout.pos[ent.primary]
        for off in range(1, len(ring)):
            cand = ring[(pos + off) % len(ring)]
            if not self.servers[cand].failed:
                ent.primary = cand
                return
        raise DataLossError("no alive staging server available")

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def alive_servers(self) -> list[int]:
        return [s.server_id for s in self.servers if not s.failed]

    def verify_all(self) -> dict:
        """Off-line audit: try to serve every staged entity and verify it.

        Runs the real read paths (replica fallback, degraded decode) on a
        probe client without recording metrics-relevant response times as
        application traffic.  Returns counts of verified and unrecoverable
        entities — the end-of-run invariant most tests want in one call.
        """
        verified = 0
        unrecoverable = []
        for key in list(self.directory.entities):
            ent = self.directory.entities[key]
            if ent.version < 0:
                continue

            def probe(e=ent):
                payload = yield from self.runtime.read_entity(e, "auditor", repair=False)
                if payload_digest(payload) != e.digest:
                    raise DataLossError(f"audit digest mismatch for {e.key}")

            try:
                self.run_workflow(probe())
                verified += 1
            except DataLossError:
                unrecoverable.append(key)
        return {"verified": verified, "unrecoverable": unrecoverable}

    def state_snapshot(self) -> dict:
        """Deterministic dump of the deployment's observable state.

        Everything is keyed and sorted stably (no ids, no hashes of
        mutable objects), so two runs that made the same decisions produce
        the same snapshot — chaos campaigns fingerprint this to assert
        bit-identical reproduction of a seed.
        """
        entities = {}
        for (name, block), ent in sorted(self.directory.entities.items()):
            entities[f"{name}/{block}"] = {
                "version": ent.version,
                "state": ent.state.value,
                "primary": ent.primary,
                "replicas": list(ent.replicas),
                "stripe": None if ent.stripe is None else ent.stripe.stripe_id,
                "digest": ent.digest,
            }
        stripes = {
            str(sid): {
                "servers": list(stripe.shard_servers),
                "members": [
                    None if mk is None else f"{mk[0]}/{mk[1]}" for mk in stripe.members
                ],
                "lengths": list(stripe.lengths),
            }
            for sid, stripe in sorted(self.directory.stripes.items())
        }
        return {
            "t": self.sim.now,
            "servers": [s.snapshot() for s in self.servers],
            "entities": entities,
            "stripes": stripes,
            "counters": dict(sorted(self.metrics.counters.items())),
            "read_errors": self.read_errors,
        }

    def storage_report(self) -> dict:
        logical = self.directory.storage_breakdown()
        return {
            "logical": logical,
            "accounted": {
                "original": self.metrics.storage.original,
                "replica": self.metrics.storage.replica,
                "parity": self.metrics.storage.parity,
            },
            "efficiency": self.metrics.storage.efficiency(),
            "physical_bytes": {s.name: s.bytes_stored for s in self.servers},
        }
