"""Staging-server state: object store, CPU resource, workload monitor.

A server couples *state* (the in-memory object store — real byte buffers)
with *timing resources* (a CPU slot through which request processing and
encoding serialize, and a NIC owned by the network model).  Operations on
the store are instantaneous state changes; their simulated duration is
charged explicitly through :meth:`StagingServer.busy` using the
:class:`CostModel`, which keeps the timing model in one auditable place.

The workload monitor implements the paper's "workload measurement component"
(Section III-B): it measures a server's load level from its queue depth and
recent request rate, which drives the encoding-token placement.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Generator

import numpy as np

from repro.sim.engine import Simulator
from repro.sim.resources import Resource

__all__ = ["CostModel", "StagingServer"]


@dataclass
class CostModel:
    """Simulated durations of server-side operations.

    Throughputs are calibrated to commodity numbers (memcpy tens of GB/s,
    table-driven GF(2^8) a few GB/s per core); what the experiments depend
    on is their *ratio* — encoding is an order of magnitude more expensive
    per byte than copying, as in the paper's testbed.
    """

    put_op_s: float = 20e-6        # fixed per-object store overhead
    get_op_s: float = 10e-6        # fixed per-object lookup overhead
    memcpy_bps: float = 20.0e9     # local copy bandwidth
    gf_bps: float = 1.0e9          # GF(2^8) addmul throughput per core
    parity_op_s: float = 5e-6      # fixed cost of an in-place parity RMW
    classify_op_s: float = 2e-6    # per-object classification decision
    metadata_op_s: float = 5e-6    # apply one metadata update

    def store_cost(self, nbytes: int) -> float:
        return self.put_op_s + nbytes / self.memcpy_bps

    def lookup_cost(self, nbytes: int) -> float:
        return self.get_op_s + nbytes / self.memcpy_bps

    def encode_cost(self, k: int, m: int, shard_len: int) -> float:
        """Encode one stripe: m parity rows, each a k-term GF dot product.

        Matches the paper's O(N_level * N_node) per-stripe complexity.
        """
        return (m * k * shard_len) / self.gf_bps + self.put_op_s

    def decode_cost(self, k: int, n_lost: int, shard_len: int) -> float:
        """Reconstruct ``n_lost`` shards from k survivors."""
        return (max(1, n_lost) * k * shard_len) / self.gf_bps + self.get_op_s

    def parity_update_cost(self, m: int, nbytes: int) -> float:
        """Delta-update all m parities after one member write.

        An in-place read-modify-write of the parity buffer: one GF addmul
        pass per parity plus a small fixed cost — cheaper than a stripe
        re-encode by construction, which is the asymmetry CoREC exploits.
        """
        return (m * nbytes) / self.gf_bps + self.parity_op_s


class StagingServer:
    """One staging server: store + CPU slot + workload statistics."""

    def __init__(
        self,
        sim: Simulator,
        server_id: int,
        costs: CostModel | None = None,
        cpu_slots: int = 1,
        workload_window_s: float = 1.0,
        tiers=None,
    ):
        self.sim = sim
        self.server_id = server_id
        self.name = f"s{server_id}"
        self.costs = costs or CostModel()
        self.cpu = Resource(sim, capacity=cpu_slots)
        self.store: dict[str, np.ndarray] = {}
        # Optional multi-tier backing store (the paper's future-work
        # extension): placement/capacity/migration are tracked per object
        # and the cumulative tier access time is reported in
        # ``tier_busy_s`` (an accounting statistic layered on top of the
        # flat-memory timing model).
        self.tiered = None
        self.tier_busy_s = 0.0
        if tiers is not None:
            from repro.staging.tiers import TieredStore

            self.tiered = TieredStore(tiers)
        self.failed = False
        self.epoch = 0  # bumped on replacement; distinguishes incarnations
        self._window_s = workload_window_s
        self._recent_requests: deque[float] = deque()
        self.requests_served = 0
        self.bytes_stored = 0

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<StagingServer {self.name} objs={len(self.store)} failed={self.failed}>"

    # ------------------------------------------------------------------
    # state operations (instantaneous; time charged separately)
    # ------------------------------------------------------------------
    def store_bytes(self, key: str, payload: np.ndarray) -> None:
        if self.failed:
            raise RuntimeError(f"store on failed server {self.name}")
        payload = np.ascontiguousarray(payload, dtype=np.uint8).ravel()
        old = self.store.get(key)
        if old is not None:
            self.bytes_stored -= old.size
        self.store[key] = payload
        self.bytes_stored += payload.size
        if self.tiered is not None:
            self.tier_busy_s += self.tiered.put(key, payload)

    def fetch_bytes(self, key: str) -> np.ndarray:
        if self.failed:
            raise RuntimeError(f"fetch on failed server {self.name}")
        payload = self.store.get(key)
        if payload is None:
            raise KeyError(f"{self.name} has no object {key!r}")
        if self.tiered is not None and key in self.tiered:
            _, cost = self.tiered.fetch(key)
            self.tier_busy_s += cost
        return payload

    def has(self, key: str) -> bool:
        return not self.failed and key in self.store

    def delete_bytes(self, key: str) -> None:
        payload = self.store.pop(key, None)
        if payload is not None:
            self.bytes_stored -= payload.size
        if self.tiered is not None:
            self.tiered.delete(key)

    def snapshot(self) -> dict:
        """Deterministic structural summary of this server's state.

        ``content`` digests the sorted (key, payload-digest) pairs, so two
        servers holding byte-identical stores produce identical snapshots
        regardless of insertion order — the building block of the chaos
        campaigns' bit-identical-reproduction fingerprint.
        """
        import hashlib

        from repro.staging.objects import payload_digest

        h = hashlib.blake2b(digest_size=12)
        for key in sorted(self.store):
            h.update(f"{key}:{payload_digest(self.store[key])};".encode())
        return {
            "server": self.server_id,
            "failed": self.failed,
            "epoch": self.epoch,
            "objects": len(self.store),
            "bytes": self.bytes_stored,
            "content": h.hexdigest(),
        }

    # ------------------------------------------------------------------
    # failure / replacement
    # ------------------------------------------------------------------
    def fail(self) -> None:
        """Crash: all in-memory content is lost."""
        self.failed = True
        self.store.clear()
        self.bytes_stored = 0
        if self.tiered is not None:
            self.tiered.clear()

    def replace(self) -> None:
        """A fresh replacement server joins under the same id."""
        if not self.failed:
            raise RuntimeError(f"replace called on healthy server {self.name}")
        self.failed = False
        self.epoch += 1
        self.store.clear()
        self.bytes_stored = 0
        if self.tiered is not None:
            self.tiered.clear()
        self._recent_requests.clear()

    # ------------------------------------------------------------------
    # timing and workload
    # ------------------------------------------------------------------
    def busy(self, duration: float) -> Generator:
        """Process body: occupy this server's CPU for ``duration`` seconds.

        Returns the total elapsed time including queueing, so callers can
        attribute wait time to the server's load.
        """
        start = self.sim.now
        self.note_request()
        req = self.cpu.request()
        yield req
        try:
            if duration > 0:
                yield self.sim.timeout(duration)
        finally:
            self.cpu.release(req)
        self.requests_served += 1
        return self.sim.now - start

    def note_request(self) -> None:
        now = self.sim.now
        self._recent_requests.append(now)
        cutoff = now - self._window_s
        while self._recent_requests and self._recent_requests[0] < cutoff:
            self._recent_requests.popleft()

    def workload_level(self) -> float:
        """Current load: queue depth plus recent request rate (normalized).

        Dimensionless; only used for *comparisons* between servers in a
        replication group when placing the encoding token.
        """
        now = self.sim.now
        cutoff = now - self._window_s
        while self._recent_requests and self._recent_requests[0] < cutoff:
            self._recent_requests.popleft()
        rate = len(self._recent_requests) / self._window_s
        return self.cpu.queued + self.cpu.in_use + 0.01 * rate
