"""n-dimensional bounding boxes and the global staged domain.

The staging service addresses data by *region*: a client writes or queries a
half-open axis-aligned box ``[lb, ub)`` of the global grid.  ``BBox`` is the
geometric workhorse (intersection, containment, splitting — including the
longest-dimension halving used by the paper's Algorithm 1), and ``Domain``
describes the global grid plus its decomposition into fixed blocks, which
are the distribution unit of the spatial index.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Iterator, Sequence

__all__ = ["BBox", "Domain"]


@dataclass(frozen=True)
class BBox:
    """A half-open axis-aligned box ``[lb[i], ub[i])`` in n-D index space."""

    lb: tuple[int, ...]
    ub: tuple[int, ...]

    def __post_init__(self) -> None:
        lb = tuple(int(x) for x in self.lb)
        ub = tuple(int(x) for x in self.ub)
        object.__setattr__(self, "lb", lb)
        object.__setattr__(self, "ub", ub)
        if len(lb) != len(ub):
            raise ValueError("lb and ub must have the same dimensionality")
        if len(lb) == 0:
            raise ValueError("zero-dimensional box")
        if any(u < l for l, u in zip(lb, ub)):
            raise ValueError(f"inverted box {lb}..{ub}")

    # ------------------------------------------------------------------
    @property
    def ndim(self) -> int:
        return len(self.lb)

    @property
    def shape(self) -> tuple[int, ...]:
        return tuple(u - l for l, u in zip(self.lb, self.ub))

    @property
    def volume(self) -> int:
        v = 1
        for s in self.shape:
            v *= s
        return v

    @property
    def is_empty(self) -> bool:
        return any(u <= l for l, u in zip(self.lb, self.ub))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"BBox({list(self.lb)}..{list(self.ub)})"

    # ------------------------------------------------------------------
    def contains(self, other: "BBox") -> bool:
        """True if ``other`` lies entirely within this box."""
        self._same_dim(other)
        return all(sl <= ol and ou <= su for sl, su, ol, ou in zip(self.lb, self.ub, other.lb, other.ub))

    def contains_point(self, point: Sequence[int]) -> bool:
        if len(point) != self.ndim:
            raise ValueError("dimensionality mismatch")
        return all(l <= p < u for l, p, u in zip(self.lb, point, self.ub))

    def intersect(self, other: "BBox") -> "BBox | None":
        """The overlapping box, or None if disjoint (or touching)."""
        self._same_dim(other)
        lb = tuple(max(a, b) for a, b in zip(self.lb, other.lb))
        ub = tuple(min(a, b) for a, b in zip(self.ub, other.ub))
        if any(u <= l for l, u in zip(lb, ub)):
            return None
        return BBox(lb, ub)

    def overlaps(self, other: "BBox") -> bool:
        return self.intersect(other) is not None

    def union_bounds(self, other: "BBox") -> "BBox":
        """Smallest box covering both (not a set union)."""
        self._same_dim(other)
        return BBox(
            tuple(min(a, b) for a, b in zip(self.lb, other.lb)),
            tuple(max(a, b) for a, b in zip(self.ub, other.ub)),
        )

    def _same_dim(self, other: "BBox") -> None:
        if self.ndim != other.ndim:
            raise ValueError("dimensionality mismatch")

    # ------------------------------------------------------------------
    def split(self, dim: int, at: int) -> tuple["BBox", "BBox"]:
        """Split along ``dim`` at absolute coordinate ``at``."""
        if not self.lb[dim] < at < self.ub[dim]:
            raise ValueError(f"split point {at} outside open interval of dim {dim}")
        ub1 = list(self.ub)
        ub1[dim] = at
        lb2 = list(self.lb)
        lb2[dim] = at
        return BBox(self.lb, tuple(ub1)), BBox(tuple(lb2), self.ub)

    def halve_longest(self) -> tuple["BBox", "BBox"]:
        """Split in half along the longest dimension (ties -> lowest dim).

        This is the partition step of the paper's Algorithm 1: "partition
        the object into halves along the longest geometric dimension".
        """
        shape = self.shape
        dim = max(range(self.ndim), key=lambda d: (shape[d], -d))
        if shape[dim] < 2:
            raise ValueError(f"box {self} too small to halve")
        mid = self.lb[dim] + shape[dim] // 2
        return self.split(dim, mid)

    def chebyshev_distance(self, other: "BBox") -> int:
        """L-inf gap between two boxes (0 if they touch or overlap).

        Used by the spatial-locality classifier: blocks within a small
        Chebyshev distance of a hot block are promoted to hot.
        """
        self._same_dim(other)
        dist = 0
        for d in range(self.ndim):
            gap = max(self.lb[d] - other.ub[d], other.lb[d] - self.ub[d], 0)
            # Half-open boxes: ub is one past the last cell, so a gap
            # computed this way is already in cells; adjacent boxes give 0.
            dist = max(dist, gap)
        return dist

    def corners(self) -> list[tuple[int, ...]]:
        """Distinct corner cells of the box; ``[]`` for an empty box.

        A size-1 dimension contributes one coordinate, not two (its first
        and last cells coincide), so no corner is listed twice.
        """
        if self.is_empty:
            return []
        axes = [(l,) if u - l == 1 else (l, u - 1) for l, u in zip(self.lb, self.ub)]
        return list(itertools.product(*axes))


class Domain:
    """The global staged grid and its decomposition into index blocks.

    Parameters
    ----------
    shape:
        Global grid extent per dimension (e.g. ``(256, 256, 256)``).
    block_shape:
        Extent of one distribution block.  Must divide nothing in
        particular — edge blocks may be smaller.
    element_bytes:
        Bytes per grid element (8 for double-precision fields).
    """

    def __init__(self, shape: Sequence[int], block_shape: Sequence[int], element_bytes: int = 8):
        self.shape = tuple(int(s) for s in shape)
        self.block_shape = tuple(int(b) for b in block_shape)
        if len(self.shape) != len(self.block_shape):
            raise ValueError("shape and block_shape dimensionality mismatch")
        if any(s < 1 for s in self.shape) or any(b < 1 for b in self.block_shape):
            raise ValueError("extents must be positive")
        self.element_bytes = int(element_bytes)
        self.bbox = BBox(tuple(0 for _ in self.shape), self.shape)
        self.blocks_per_dim = tuple(
            -(-s // b) for s, b in zip(self.shape, self.block_shape)
        )

    # ------------------------------------------------------------------
    @property
    def ndim(self) -> int:
        return len(self.shape)

    @property
    def n_blocks(self) -> int:
        n = 1
        for b in self.blocks_per_dim:
            n *= b
        return n

    def total_bytes(self) -> int:
        return self.bbox.volume * self.element_bytes

    def nbytes(self, box: BBox) -> int:
        return box.volume * self.element_bytes

    # ------------------------------------------------------------------
    def block_id(self, coords: Sequence[int]) -> int:
        """Linearize block grid coordinates (row-major)."""
        bid = 0
        for c, n in zip(coords, self.blocks_per_dim):
            if not 0 <= c < n:
                raise IndexError(f"block coord {coords} outside grid {self.blocks_per_dim}")
            bid = bid * n + c
        return bid

    def block_coords(self, block_id: int) -> tuple[int, ...]:
        if not 0 <= block_id < self.n_blocks:
            raise IndexError(f"block id {block_id} out of range")
        coords = []
        for n in reversed(self.blocks_per_dim):
            coords.append(block_id % n)
            block_id //= n
        return tuple(reversed(coords))

    def block_bbox(self, block_id: int) -> BBox:
        coords = self.block_coords(block_id)
        lb = tuple(c * b for c, b in zip(coords, self.block_shape))
        ub = tuple(min((c + 1) * b, s) for c, b, s in zip(coords, self.block_shape, self.shape))
        return BBox(lb, ub)

    def blocks_overlapping(self, box: BBox) -> list[int]:
        """Block ids intersecting ``box`` (clipped to the domain)."""
        clipped = box.intersect(self.bbox)
        if clipped is None:
            return []
        lo = tuple(l // b for l, b in zip(clipped.lb, self.block_shape))
        hi = tuple((u - 1) // b for u, b in zip(clipped.ub, self.block_shape))
        ids = []
        for coords in itertools.product(*(range(a, z + 1) for a, z in zip(lo, hi))):
            ids.append(self.block_id(coords))
        return ids

    def iter_blocks(self) -> Iterator[tuple[int, BBox]]:
        for bid in range(self.n_blocks):
            yield bid, self.block_bbox(bid)

    def neighbor_blocks(self, block_id: int, radius: int = 1) -> list[int]:
        """Block ids within Chebyshev ``radius`` in block-grid space.

        This powers the spatial-locality promotion of the CoREC classifier:
        neighbours of a freshly-written block are predicted to be written
        soon (paper Section II-C).
        """
        coords = self.block_coords(block_id)
        ranges = [
            range(max(0, c - radius), min(n, c + radius + 1))
            for c, n in zip(coords, self.blocks_per_dim)
        ]
        out = []
        for cs in itertools.product(*ranges):
            bid = self.block_id(cs)
            if bid != block_id:
                out.append(bid)
        return out
