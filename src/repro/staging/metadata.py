"""Distributed object directory.

Tracks, for every block entity, where its primary copy, replicas and stripe
shards live.  In DataSpaces the directory is itself distributed across the
staging servers; we reproduce that by assigning each entity's metadata to an
owner server (by hash) and charging a metadata network message whenever a
*remote* component updates it — that is the "metadata" slice of the paper's
Figure 9 time breakdown.

The directory's *content* lives in one Python structure for simplicity
(perfectly consistent metadata), while the *cost* of keeping it consistent
is modelled through the owner mapping.
"""

from __future__ import annotations

from repro.staging.domain import BBox, Domain
from repro.staging.objects import BlockEntity, ResilienceState, StripeInfo
from repro.util.rng import stable_hash

__all__ = ["MetadataDirectory"]


class MetadataDirectory:
    """Entity registry plus metadata-owner mapping."""

    def __init__(self, domain: Domain, n_servers: int):
        self.domain = domain
        self.n_servers = n_servers
        self.entities: dict[tuple[str, int], BlockEntity] = {}
        self.stripes: dict[int, StripeInfo] = {}
        self._next_stripe_id = 0

    # ------------------------------------------------------------------
    def owner_of(self, entity_key: tuple[str, int]) -> int:
        """Metadata owner server for an entity (hash distribution)."""
        name, block_id = entity_key
        return stable_hash(f"meta:{name}/{block_id}") % self.n_servers

    def get_or_create(self, name: str, block_id: int, primary: int) -> BlockEntity:
        key = (name, block_id)
        ent = self.entities.get(key)
        if ent is None:
            ent = BlockEntity(
                name=name,
                block_id=block_id,
                bbox=self.domain.block_bbox(block_id),
                primary=primary,
            )
            self.entities[key] = ent
        return ent

    def get(self, name: str, block_id: int) -> BlockEntity | None:
        return self.entities.get((name, block_id))

    def require(self, name: str, block_id: int) -> BlockEntity:
        ent = self.get(name, block_id)
        if ent is None:
            raise KeyError(f"no staged entity {name}/{block_id}")
        return ent

    # ------------------------------------------------------------------
    def new_stripe_id(self) -> int:
        sid = self._next_stripe_id
        self._next_stripe_id += 1
        return sid

    def register_stripe(self, stripe: StripeInfo) -> None:
        self.stripes[stripe.stripe_id] = stripe

    def drop_stripe(self, stripe_id: int) -> None:
        self.stripes.pop(stripe_id, None)

    # ------------------------------------------------------------------
    # aggregate queries used by metrics and tests
    # ------------------------------------------------------------------
    def entities_on_server(self, server_id: int) -> list[BlockEntity]:
        """Entities whose primary copy lives on ``server_id``."""
        return [e for e in self.entities.values() if e.primary == server_id]

    def entities_in_state(self, state: ResilienceState) -> list[BlockEntity]:
        return [e for e in self.entities.values() if e.state == state]

    def storage_breakdown(self) -> dict[str, int]:
        """Bytes of original data vs redundancy currently promised.

        Computed from metadata (entity sizes and states), independent of the
        per-server stores, so tests can cross-check the two.
        """
        original = 0
        replica_overhead = 0
        parity_overhead = 0
        counted_stripes: set[int] = set()
        for ent in self.entities.values():
            if ent.version < 0:
                continue
            original += ent.nbytes
            if ent.replicas:
                # Replicas may persist through a pending demotion, so they
                # are counted by presence, not by state.
                replica_overhead += ent.nbytes * len(ent.replicas)
            if ent.state == ResilienceState.ENCODED and ent.stripe is not None:
                if ent.stripe.stripe_id not in counted_stripes:
                    counted_stripes.add(ent.stripe.stripe_id)
                    parity_overhead += ent.stripe.shard_len * ent.stripe.m
        return {
            "original": original,
            "replica_overhead": replica_overhead,
            "parity_overhead": parity_overhead,
        }

    def storage_efficiency(self) -> float:
        """original / (original + redundancy); 1.0 when nothing is staged."""
        b = self.storage_breakdown()
        total = b["original"] + b["replica_overhead"] + b["parity_overhead"]
        return b["original"] / total if total else 1.0
