"""Distributed object directory.

Tracks, for every block entity, where its primary copy, replicas and stripe
shards live.  In DataSpaces the directory is itself distributed across the
staging servers; we reproduce that by assigning each entity's metadata to an
owner server (by hash) and charging a metadata network message whenever a
*remote* component updates it — that is the "metadata" slice of the paper's
Figure 9 time breakdown.

The directory's *content* lives in one Python structure for simplicity
(perfectly consistent metadata), while the *cost* of keeping it consistent
is modelled through the owner mapping.
"""

from __future__ import annotations

from repro.staging.domain import BBox, Domain
from repro.staging.objects import BlockEntity, ResilienceState, StripeInfo
from repro.util.rng import stable_hash

__all__ = ["MetadataDirectory"]


class MetadataDirectory:
    """Entity registry plus metadata-owner mapping.

    Beyond the forward maps (``entities``, ``stripes``) the directory
    maintains *reverse indexes* so failure handling, recovery sweeps and
    classification touch only the records they affect instead of walking
    the whole directory:

    - ``entities_by_primary``: server id -> entity keys whose primary copy
      lives there;
    - ``entities_by_state``: resilience state -> entity keys (the hot/cold
      membership sets the classifier scans);
    - ``replicas_by_server``: server id -> entity keys with a replica there;
    - ``stripes_by_server``: server id -> stripe ids with any shard slot
      (including vacant placeholders) targeted at that server;
    - ``vacant_by_group``: coding-group id -> stripe ids with >=1 vacant
      data slot (the free list refills and compaction consume).

    The indexes are updated transactionally with every mutation:
    ``BlockEntity.__setattr__`` notifies on primary/state/replicas writes,
    and ``StripeInfo``'s mutation methods notify on shard placement
    changes.  ``op_stats`` counts index-path record touches and remaining
    full-directory walks so complexity bounds can be asserted from
    operation counts rather than wall-clock time.
    """

    def __init__(self, domain: Domain, n_servers: int, layout=None):
        self.domain = domain
        self.n_servers = n_servers
        self.layout = layout
        self.entities: dict[tuple[str, int], BlockEntity] = {}
        self.stripes: dict[int, StripeInfo] = {}
        self._next_stripe_id = 0
        self._stripes_formed_by_group: dict[int, int] = {}
        self._next_entity_seq = 0
        self.entities_by_primary: dict[int, set[tuple[str, int]]] = {}
        self.entities_by_state: dict[ResilienceState, set[tuple[str, int]]] = {
            s: set() for s in ResilienceState
        }
        self.replicas_by_server: dict[int, set[tuple[str, int]]] = {}
        self.stripes_by_server: dict[int, set[int]] = {}
        self.vacant_by_group: dict[int, set[int]] = {}
        # Plain-int operation counters (exported as registry gauges so they
        # never enter ``Metrics.counters`` and cannot perturb golden runs).
        self.op_stats = {"entity_touches": 0, "stripe_touches": 0, "full_scans": 0}

    # ------------------------------------------------------------------
    def owner_of(self, entity_key: tuple[str, int]) -> int:
        """Metadata owner server for an entity (hash distribution)."""
        name, block_id = entity_key
        return stable_hash(f"meta:{name}/{block_id}") % self.n_servers

    def get_or_create(self, name: str, block_id: int, primary: int) -> BlockEntity:
        key = (name, block_id)
        ent = self.entities.get(key)
        if ent is None:
            ent = BlockEntity(
                name=name,
                block_id=block_id,
                bbox=self.domain.block_bbox(block_id),
                primary=primary,
            )
            ent.seq = self._next_entity_seq
            self._next_entity_seq += 1
            self.entities[key] = ent
            self.entities_by_primary.setdefault(ent.primary, set()).add(key)
            self.entities_by_state[ent.state].add(key)
            ent._dir = self  # from here on, mutations notify the indexes
            self.op_stats["entity_touches"] += 1
        return ent

    def get(self, name: str, block_id: int) -> BlockEntity | None:
        return self.entities.get((name, block_id))

    def require(self, name: str, block_id: int) -> BlockEntity:
        ent = self.get(name, block_id)
        if ent is None:
            raise KeyError(f"no staged entity {name}/{block_id}")
        return ent

    # ------------------------------------------------------------------
    def new_stripe_id(self, group_id: int | None = None) -> int:
        """Allocate a stripe id; deterministic under directory partitioning.

        With a ``group_id`` (and a layout to size the id space), ids are
        striped per coding group: the i-th stripe formed in group ``g``
        gets ``g + n_coding_groups * i``.  Two directories that each hold
        a disjoint subset of the coding groups therefore allocate exactly
        the ids a single directory holding all groups would — which is
        what lets a sharded cluster's metadata merge byte-identically
        with a single-process run.  Without a group (or layout) the
        legacy global counter applies.
        """
        if group_id is not None and self.layout is not None:
            n_groups = self.layout.n_coding_groups()
            count = self._stripes_formed_by_group.get(group_id, 0)
            self._stripes_formed_by_group[group_id] = count + 1
            return group_id + n_groups * count
        sid = self._next_stripe_id
        self._next_stripe_id += 1
        return sid

    def stripe_seq(self, group_id: int) -> int:
        """Formation ordinal the next stripe of ``group_id`` will receive.

        Drives the per-stripe deterministic parity draws of the non-grouped
        placement modes; like :meth:`new_stripe_id` it is a pure function
        of how many stripes the group has formed, so a sharded directory
        computes exactly what a global one would.
        """
        return self._stripes_formed_by_group.get(group_id, 0)

    def register_stripe(self, stripe: StripeInfo) -> None:
        if stripe.group_id < 0 and self.layout is not None:
            stripe.group_id = self.layout.coding_group_id(stripe.shard_servers[0])
        self.stripes[stripe.stripe_id] = stripe
        for srv in set(stripe.shard_servers):
            self.stripes_by_server.setdefault(srv, set()).add(stripe.stripe_id)
        if stripe.vacant_slots():
            self.vacant_by_group.setdefault(stripe.group_id, set()).add(stripe.stripe_id)
        stripe._dir = self
        self.op_stats["stripe_touches"] += 1

    def drop_stripe(self, stripe_id: int) -> None:
        stripe = self.stripes.pop(stripe_id, None)
        if stripe is None:
            return
        stripe._dir = None
        for srv in set(stripe.shard_servers):
            self.stripes_by_server.get(srv, set()).discard(stripe_id)
        self.vacant_by_group.get(stripe.group_id, set()).discard(stripe_id)
        self.op_stats["stripe_touches"] += 1

    # ------------------------------------------------------------------
    # index-maintenance notifications (called from the object layer)
    # ------------------------------------------------------------------
    def _entity_index_update(self, ent: BlockEntity, attr: str, old, new) -> None:
        key = ent.key
        if attr == "primary":
            if old != new:
                self.entities_by_primary.get(old, set()).discard(key)
                self.entities_by_primary.setdefault(new, set()).add(key)
        elif attr == "state":
            if old != new:
                self.entities_by_state[old].discard(key)
                self.entities_by_state[new].add(key)
        else:  # replicas
            old_set, new_set = set(old or ()), set(new or ())
            for srv in old_set - new_set:
                self.replicas_by_server.get(srv, set()).discard(key)
            for srv in new_set - old_set:
                self.replicas_by_server.setdefault(srv, set()).add(key)
        self.op_stats["entity_touches"] += 1

    def _stripe_retargeted(self, stripe: StripeInfo, old: int, new: int) -> None:
        if old != new:
            if old not in stripe.shard_servers:
                self.stripes_by_server.get(old, set()).discard(stripe.stripe_id)
            self.stripes_by_server.setdefault(new, set()).add(stripe.stripe_id)
        self.op_stats["stripe_touches"] += 1

    def _stripe_slot_filled(self, stripe: StripeInfo, old: int, new: int) -> None:
        self._stripe_retargeted(stripe, old, new)
        if not stripe.vacant_slots():
            self.vacant_by_group.get(stripe.group_id, set()).discard(stripe.stripe_id)

    def _stripe_slot_vacated(self, stripe: StripeInfo) -> None:
        self.vacant_by_group.setdefault(stripe.group_id, set()).add(stripe.stripe_id)
        self.op_stats["stripe_touches"] += 1

    # ------------------------------------------------------------------
    # aggregate queries used by metrics and tests
    # ------------------------------------------------------------------
    def entities_on_server(self, server_id: int) -> list[BlockEntity]:
        """Entities whose primary copy lives on ``server_id``.

        Served from the reverse index in O(entities on that server); the
        ``seq`` sort reproduces directory insertion order, so consumers see
        the same ordering the old full scan produced.
        """
        keys = self.entities_by_primary.get(server_id, ())
        self.op_stats["entity_touches"] += len(keys)
        return sorted((self.entities[k] for k in keys), key=lambda e: e.seq)

    def entities_in_state(self, state: ResilienceState) -> list[BlockEntity]:
        keys = self.entities_by_state[state]
        self.op_stats["entity_touches"] += len(keys)
        return sorted((self.entities[k] for k in keys), key=lambda e: e.seq)

    def replicas_on_server(self, server_id: int) -> list[BlockEntity]:
        """Entities holding a replica on ``server_id`` (insertion order)."""
        keys = self.replicas_by_server.get(server_id, ())
        self.op_stats["entity_touches"] += len(keys)
        return sorted((self.entities[k] for k in keys), key=lambda e: e.seq)

    def stripes_on_server(self, server_id: int) -> list[StripeInfo]:
        """Stripes with any shard slot targeted at ``server_id`` (id order)."""
        ids = self.stripes_by_server.get(server_id, ())
        self.op_stats["stripe_touches"] += len(ids)
        return [self.stripes[sid] for sid in sorted(ids)]

    def vacant_stripes(self, group_id: int) -> list[StripeInfo]:
        """Stripes of one coding group with >=1 vacant data slot (id order)."""
        ids = self.vacant_by_group.get(group_id, ())
        self.op_stats["stripe_touches"] += len(ids)
        return [self.stripes[sid] for sid in sorted(ids)]

    def storage_breakdown(self) -> dict[str, int]:
        """Bytes of original data vs redundancy currently promised.

        Computed from metadata (entity sizes and states), independent of the
        per-server stores, so tests can cross-check the two.
        """
        self.op_stats["full_scans"] += 1
        original = 0
        replica_overhead = 0
        parity_overhead = 0
        counted_stripes: set[int] = set()
        for ent in self.entities.values():
            if ent.version < 0:
                continue
            original += ent.nbytes
            if ent.replicas:
                # Replicas may persist through a pending demotion, so they
                # are counted by presence, not by state.
                replica_overhead += ent.nbytes * len(ent.replicas)
            if ent.state == ResilienceState.ENCODED and ent.stripe is not None:
                if ent.stripe.stripe_id not in counted_stripes:
                    counted_stripes.add(ent.stripe.stripe_id)
                    parity_overhead += ent.stripe.shard_len * ent.stripe.m
        return {
            "original": original,
            "replica_overhead": replica_overhead,
            "parity_overhead": parity_overhead,
        }

    def storage_efficiency(self) -> float:
        """original / (original + redundancy); 1.0 when nothing is staged."""
        b = self.storage_breakdown()
        total = b["original"] + b["replica_overhead"] + b["parity_overhead"]
        return b["original"] / total if total else 1.0
