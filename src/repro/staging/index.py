"""Spatial index: block -> primary staging server.

DataSpaces distributes the staged domain across servers with a DHT over a
space-filling decomposition.  We reproduce the essential property — a
*deterministic, balanced* mapping from spatial blocks to servers that every
client can compute locally — with a block-grid round-robin assignment
(optionally hashed for de-clustering).
"""

from __future__ import annotations

from repro.staging.domain import BBox, Domain
from repro.util.rng import stable_hash

__all__ = ["SpatialIndex"]


class SpatialIndex:
    """Maps domain blocks to primary servers.

    Parameters
    ----------
    domain:
        The global staged domain.
    n_servers:
        Number of staging servers.
    scheme:
        ``"round_robin"`` (default) assigns block ``b`` to server
        ``b % n_servers`` — preserving spatial striding, which is what the
        original DataSpaces layout achieves; ``"hash"`` de-clusters blocks
        pseudo-randomly but deterministically.
    """

    def __init__(self, domain: Domain, n_servers: int, scheme: str = "round_robin"):
        if n_servers < 1:
            raise ValueError("need at least one server")
        if scheme not in ("round_robin", "hash"):
            raise ValueError(f"unknown scheme {scheme!r}")
        self.domain = domain
        self.n_servers = n_servers
        self.scheme = scheme
        # blocks_per_server is pure in (scheme, name): memoise per name.
        self._load_cache: dict[str, dict[int, int]] = {}

    # ------------------------------------------------------------------
    def primary_of_block(self, block_id: int, name: str = "") -> int:
        """Primary server for one block of one variable."""
        if not 0 <= block_id < self.domain.n_blocks:
            raise IndexError(f"block {block_id} out of range")
        if self.scheme == "round_robin":
            return block_id % self.n_servers
        return (stable_hash(f"{name}/{block_id}")) % self.n_servers

    def locate(self, box: BBox, name: str = "") -> dict[int, list[int]]:
        """Map a query box to ``{server: [block ids]}`` covering it."""
        out: dict[int, list[int]] = {}
        for bid in self.domain.blocks_overlapping(box):
            srv = self.primary_of_block(bid, name)
            out.setdefault(srv, []).append(bid)
        return out

    def blocks_per_server(self, name: str = "") -> dict[int, int]:
        """Block-count load per server (for balance assertions).

        Round-robin loads are computed analytically in O(n_servers); hash
        loads are scanned once per variable name and memoised (the mapping
        is a pure function of the name, so the cache never invalidates).
        """
        if self.scheme == "round_robin":
            # Blocks 0..n-1 striped over servers: server s gets one extra
            # block iff s < n_blocks % n_servers.  Name plays no role.
            base, extra = divmod(self.domain.n_blocks, self.n_servers)
            return {s: base + (1 if s < extra else 0) for s in range(self.n_servers)}
        cached = self._load_cache.get(name)
        if cached is None:
            cached = self._load_cache[name] = self.scan_blocks_per_server(name)
        return dict(cached)

    def scan_blocks_per_server(self, name: str = "") -> dict[int, int]:
        """Uncached O(n_blocks) reference scan (cross-check for the cache)."""
        counts = {s: 0 for s in range(self.n_servers)}
        for bid in range(self.domain.n_blocks):
            counts[self.primary_of_block(bid, name)] += 1
        return counts
