"""Multi-tier staging storage (the paper's future-work extension).

Section VI: "we plan to expand CoREC to support multiple storage layers,
for example, using NVRAM and SSD, and designing new models for data
resilience that incorporate utility-based data placement across these
layers."

This module implements that extension:

- :class:`StorageTier` — a layer's capacity and speed (DRAM, NVRAM, SSD);
- :class:`TieredStore` — a per-server object store that places objects
  across tiers by *utility* and migrates them under capacity pressure;
- :func:`default_tiers` — a DRAM + NVRAM + SSD stack with realistic speed
  ratios.

Utility model
-------------
An object's placement utility on tier ``t`` is the access-rate-weighted
speed benefit per byte of capacity consumed::

    utility(obj, t) = access_rate(obj) * (1 / t.read_latency) / t.byte_pressure

In practice this reduces to the intuitive policy the paper sketches:
**primary (live) data belongs in DRAM; redundancy (replicas, parity) —
written on every update but read only during recovery — belongs in the
capacity tiers.**  Under DRAM pressure, the store demotes the
lowest-utility objects down-tier; a fetch of a down-tier object charges
the tier's read penalty and optionally promotes it back.

The store tracks byte occupancy per tier so the resilience policy can keep
its storage-efficiency constraint against the *DRAM* budget (the scarce
resource) rather than total bytes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

import numpy as np

__all__ = ["StorageTier", "TieredStore", "default_tiers", "TierPlacementRule"]


@dataclass(frozen=True)
class StorageTier:
    """One storage layer of a staging server."""

    name: str
    capacity_bytes: int           # 0 = unbounded (the bottom tier)
    write_bps: float
    read_bps: float
    latency_s: float = 0.0

    def write_time(self, nbytes: int) -> float:
        return self.latency_s + nbytes / self.write_bps

    def read_time(self, nbytes: int) -> float:
        return self.latency_s + nbytes / self.read_bps


def default_tiers(dram_bytes: int, nvram_bytes: int = 0, ssd: bool = True) -> list[StorageTier]:
    """A DRAM + NVRAM + SSD stack with Titan-era speed ratios.

    DRAM ~20 GB/s, NVRAM ~2 GB/s with microsecond latency, SSD ~500 MB/s
    with tens of microseconds latency.  The bottom tier is unbounded.
    """
    tiers = [StorageTier("dram", dram_bytes, write_bps=20e9, read_bps=20e9)]
    if nvram_bytes:
        tiers.append(
            StorageTier("nvram", nvram_bytes, write_bps=2e9, read_bps=3e9, latency_s=1e-6)
        )
    if ssd:
        tiers.append(
            StorageTier("ssd", 0, write_bps=5e8, read_bps=5e8, latency_s=3e-5)
        )
    return tiers


@dataclass
class TierPlacementRule:
    """Which tier classes of objects *prefer*.

    Key kinds follow the runtime's store-key layout: ``P/`` primary
    copies, ``R/`` replicas, ``stripe`` parity shards.  Redundancy prefers
    the first capacity tier when one exists (it is written often but read
    only during recovery).
    """

    primary_tier: int = 0
    replica_tier: int = 1
    parity_tier: int = 1

    def preferred(self, key: str, n_tiers: int) -> int:
        if key.startswith("P/"):
            idx = self.primary_tier
        elif key.startswith("R/"):
            idx = self.replica_tier
        else:
            idx = self.parity_tier
        return min(idx, n_tiers - 1)


class TieredStore:
    """A per-server object store spread across storage tiers.

    The mapping interface mirrors the flat dict the runtime uses (``get``,
    ``__contains__`` etc. via the owning server); additionally every put
    and fetch reports the tier *time cost* so the simulator can charge it.
    """

    def __init__(
        self,
        tiers: Iterable[StorageTier],
        rule: TierPlacementRule | None = None,
        promote_on_read: bool = True,
    ):
        self.tiers = list(tiers)
        if not self.tiers:
            raise ValueError("need at least one tier")
        if any(t.capacity_bytes == 0 for t in self.tiers[:-1]):
            raise ValueError("only the bottom tier may be unbounded")
        self.rule = rule or TierPlacementRule()
        self.promote_on_read = promote_on_read
        self._objects: dict[str, np.ndarray] = {}
        self._tier_of: dict[str, int] = {}
        # Access rates: incremented on fetch, optionally decayed by the
        # tiering layer so the utility ordering tracks *recent* heat.
        self._access: dict[str, float] = {}
        self.occupancy = [0] * len(self.tiers)
        self.migrations_down = 0
        self.migrations_up = 0

    # ------------------------------------------------------------------
    # mapping-style access (state)
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._objects)

    def __contains__(self, key: str) -> bool:
        return key in self._objects

    def get(self, key: str):
        return self._objects.get(key)

    def keys(self):
        return self._objects.keys()

    def tier_of(self, key: str) -> str:
        return self.tiers[self._tier_of[key]].name

    # ------------------------------------------------------------------
    def _fits(self, tier_idx: int, nbytes: int) -> bool:
        cap = self.tiers[tier_idx].capacity_bytes
        return cap == 0 or self.occupancy[tier_idx] + nbytes <= cap

    def _utility(self, key: str) -> float:
        """Objects with low utility are demoted first under pressure."""
        rate = self._access.get(key, 0)
        kind_bias = 2.0 if key.startswith("P/") else 1.0
        size = self._objects[key].size or 1
        return kind_bias * (1 + rate) / size

    def _evict_from(self, tier_idx: int, needed: int) -> float:
        """Demote lowest-utility objects from ``tier_idx`` until ``needed``
        bytes fit.  Returns the migration time cost."""
        if tier_idx + 1 >= len(self.tiers):
            raise RuntimeError("bottom tier is full — increase its capacity")
        cost = 0.0
        candidates = sorted(
            (k for k, t in self._tier_of.items() if t == tier_idx),
            key=self._utility,
        )
        for key in candidates:
            if self._fits(tier_idx, needed):
                break
            payload = self._objects[key]
            cost += self._place(key, payload, tier_idx + 1, replace=True)
            self.migrations_down += 1
        if not self._fits(tier_idx, needed):
            raise RuntimeError(f"tier {self.tiers[tier_idx].name} cannot make room")
        return cost

    def _place(self, key: str, payload: np.ndarray, tier_idx: int, replace: bool) -> float:
        """Put bytes on a tier (evicting down-tier as needed); returns time."""
        cost = 0.0
        if not self._fits(tier_idx, payload.size):
            cost += self._evict_from(tier_idx, payload.size)
        if replace and key in self._objects:
            old_tier = self._tier_of[key]
            self.occupancy[old_tier] -= self._objects[key].size
        self._objects[key] = payload
        self._tier_of[key] = tier_idx
        self.occupancy[tier_idx] += payload.size
        cost += self.tiers[tier_idx].write_time(payload.size)
        return cost

    # ------------------------------------------------------------------
    # timed operations
    # ------------------------------------------------------------------
    def put(self, key: str, payload: np.ndarray) -> float:
        """Store ``payload`` under ``key``; returns the tier write time."""
        payload = np.ascontiguousarray(payload, dtype=np.uint8).ravel()
        tier_idx = self.rule.preferred(key, len(self.tiers))
        # Find the highest preferred-or-lower tier with room (evicting only
        # within the preferred tier itself).
        return self._place(key, payload, tier_idx, replace=True)

    def fetch(self, key: str) -> tuple[np.ndarray, float]:
        """Read ``key``; returns (payload, tier read time)."""
        payload = self._objects[key]
        tier_idx = self._tier_of[key]
        self._access[key] = self._access.get(key, 0) + 1
        cost = self.tiers[tier_idx].read_time(payload.size)
        preferred = self.rule.preferred(key, len(self.tiers))
        if (
            self.promote_on_read
            and tier_idx > preferred
            and self._fits(preferred, payload.size)
        ):
            cost += self._place(key, payload, preferred, replace=True)
            self.migrations_up += 1
        return payload, cost

    def decay_access(self, factor: float) -> None:
        """Geometrically decay access rates (EWMA with no new samples).

        Called at step barriers by the adaptive-tiering layer; rates below
        a small floor are dropped so a long-idle store frees its tracking.
        """
        if not 0.0 <= factor <= 1.0:
            raise ValueError("decay factor must be in [0, 1]")
        decayed = {}
        for key, rate in self._access.items():
            rate *= factor
            if rate >= 1e-3:
                decayed[key] = rate
        self._access = decayed

    def delete(self, key: str) -> None:
        payload = self._objects.pop(key, None)
        if payload is not None:
            tier_idx = self._tier_of.pop(key)
            self.occupancy[tier_idx] -= payload.size
            self._access.pop(key, None)

    def clear(self) -> None:
        self._objects.clear()
        self._tier_of.clear()
        self._access.clear()
        self.occupancy = [0] * len(self.tiers)

    # ------------------------------------------------------------------
    def stats(self) -> dict:
        return {
            "occupancy": {
                t.name: self.occupancy[i] for i, t in enumerate(self.tiers)
            },
            "objects": len(self._objects),
            "migrations_down": self.migrations_down,
            "migrations_up": self.migrations_up,
        }
