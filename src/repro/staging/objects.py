"""Object model of the staging service.

The unit of resilience is the *block entity*: one spatial block of one
staged variable.  Writers update entities with new versions; the resilience
policy attaches a protection state (replicated / erasure coded) to each
entity; the classifier tracks each entity's write history.

Payloads are real byte buffers (numpy ``uint8``) so that recovery tests can
assert byte-exact reconstruction after failures — the simulator models the
*time* of operations while the object layer performs the actual data
manipulation.
"""

from __future__ import annotations

import enum
import hashlib
from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.staging.domain import BBox

__all__ = ["ObjectId", "DataObject", "ResilienceState", "BlockEntity", "StripeInfo"]


@dataclass(frozen=True)
class ObjectId:
    """Identity of one staged object version: (variable, block, version)."""

    name: str
    block_id: int
    version: int

    def key(self) -> str:
        return f"{self.name}/{self.block_id}@{self.version}"

    def entity_key(self) -> tuple[str, int]:
        """The version-less entity this object belongs to."""
        return (self.name, self.block_id)


def payload_digest(data: np.ndarray) -> str:
    """Short stable digest for byte-exact comparison in tests."""
    return hashlib.blake2b(np.ascontiguousarray(data, dtype=np.uint8).tobytes(), digest_size=12).hexdigest()


@dataclass
class DataObject:
    """One staged object version with its payload."""

    oid: ObjectId
    bbox: BBox
    payload: np.ndarray

    def __post_init__(self) -> None:
        self.payload = np.ascontiguousarray(self.payload, dtype=np.uint8).ravel()

    @property
    def nbytes(self) -> int:
        return int(self.payload.size)

    def digest(self) -> str:
        return payload_digest(self.payload)


class ResilienceState(enum.Enum):
    """Protection state of a block entity."""

    NONE = "none"            # staged only on its primary (no fault tolerance)
    REPLICATED = "replicated"  # N_level full copies on other servers
    ENCODED = "encoded"      # member of an erasure-coded stripe
    PENDING_STRIPE = "pending"  # queued for encoding, not yet in a stripe


@dataclass
class StripeInfo:
    """One erasure-coded stripe: k data slots plus m parities.

    ``members[i]`` is the entity key occupying data-shard slot ``i`` or
    ``None`` for a *vacant* slot (an all-zero virtual shard — created when a
    member is promoted back to replication, or when a partial stripe is
    flushed).  ``shard_servers`` lists the server responsible for each of
    the ``k+m`` shards (data first); vacant slots keep their placeholder
    server so a later entity on that server can refill the slot with a
    cheap parity delta-update.  ``lengths`` are original payload lengths
    (0 for vacant); decode strips the padding.  ``member_versions`` pins the
    entity version each slot currently encodes.
    """

    stripe_id: int
    k: int
    m: int
    members: list[Optional[tuple[str, int]]]
    member_versions: dict[tuple[str, int], int]
    shard_servers: list[int]
    lengths: list[int]
    shard_len: int
    # Coding group this stripe belongs to, fixed at formation time.  A
    # rehomed shard can temporarily live off-group, so the group identity
    # must not be re-derived from ``shard_servers``.
    group_id: int = -1
    # The exact (padded) data-shard payloads the parity currently encodes.
    # This is the read-before-overwrite baseline a real implementation gets
    # for free by reading the old object during a read-modify-write; here
    # the service applies writes through a separate path, so the stripe
    # carries its baseline explicitly.  Used only for delta computation —
    # failure reconstruction always decodes from the physically stored
    # shards.  ``None`` entries are vacant (all-zero) slots.
    baseline: list = field(default_factory=list, repr=False, compare=False)

    # Back-reference to the owning MetadataDirectory (set by
    # ``register_stripe``); mutations route index updates through it.
    _dir = None

    def data_servers(self) -> list[int]:
        return self.shard_servers[: self.k]

    def parity_servers(self) -> list[int]:
        return self.shard_servers[self.k :]

    def shard_key(self, shard_index: int) -> str:
        return f"stripe{self.stripe_id}/shard{shard_index}"

    def member_shard_index(self, entity_key: tuple[str, int]) -> int:
        return self.members.index(entity_key)

    def vacant_slots(self) -> list[int]:
        return [i for i, mk in enumerate(self.members) if mk is None]

    def occupied_servers(self) -> set[int]:
        """Servers holding a *real* shard: occupied data slots plus parities.

        Vacant slots are excluded — their placeholder server stores no
        bytes, so placement decisions (rehoming, refills) must not treat it
        as taken or they double real shards while a group member sits idle.
        """
        holders = {
            self.shard_servers[i]
            for i, mk in enumerate(self.members)
            if mk is not None
        }
        holders.update(self.shard_servers[self.k:])
        return holders

    def is_empty(self) -> bool:
        """True when every data slot is vacant (stripe can be reclaimed)."""
        return all(mk is None for mk in self.members)

    # --- index-maintaining mutations ---------------------------------
    # All placement changes go through these so the directory's reverse
    # indexes (server -> stripes, group -> vacant stripes) stay exact.

    def retarget_shard(self, shard_index: int, server: int) -> None:
        """Move shard ``shard_index`` (data or parity) to ``server``."""
        old = self.shard_servers[shard_index]
        self.shard_servers[shard_index] = server
        if self._dir is not None:
            self._dir._stripe_retargeted(self, old, server)

    def fill_slot(self, slot: int, entity_key: tuple[str, int], server: int) -> None:
        """Occupy vacant data slot ``slot`` with ``entity_key`` on ``server``."""
        old = self.shard_servers[slot]
        self.members[slot] = entity_key
        self.shard_servers[slot] = server
        if self._dir is not None:
            self._dir._stripe_slot_filled(self, old, server)

    def vacate_slot(self, slot: int) -> None:
        """Empty data slot ``slot``; the placeholder server stays behind."""
        self.members[slot] = None
        if self._dir is not None:
            self._dir._stripe_slot_vacated(self)


@dataclass
class BlockEntity:
    """One protected spatial block of a staged variable.

    Carries the current version/payload bookkeeping, the resilience state,
    and the access counters the CoREC classifier reads (paper Section II-C:
    "we use reference counters to record the access frequency of each data
    object").
    """

    name: str
    block_id: int
    bbox: BBox
    primary: int
    version: int = -1
    nbytes: int = 0
    state: ResilienceState = ResilienceState.NONE
    replicas: list[int] = field(default_factory=list)
    stripe: Optional[StripeInfo] = None

    # --- classifier bookkeeping -------------------------------------
    write_count: int = 0          # lifetime writes
    ref_counter: int = 0          # accesses since the last state transition
    last_write_time: float = -1.0
    last_write_step: int = -1
    digest: str = ""              # blake2b of the current payload
    transition_in_flight: bool = False  # async promote/demote already queued
    replica_bytes_accounted: int = 0    # logical replica bytes in the accountant
    # Version the replica copies hold.  Reads may serve a replica only when
    # this matches ``version``: leftover copies kept through a drifted
    # encode (or mid-refresh) hold older bytes, and serving them silently
    # returns stale data.  ``-1`` (or any mismatch) means "don't trust".
    replica_version: int = -1
    # Version of the bytes the primary store currently holds.  A writer
    # bumps ``version`` (under the entity lock) before its store lands, and
    # flows that do NOT hold the entity lock — stripe formation snapshots,
    # reconciles — read the primary in that window.  Pairing every fetch
    # with this stamp (instead of ``version``) keeps "which bytes did I
    # actually capture" exact; restores from replicas/stripes stamp the
    # version of the bytes they materialized.
    stored_version: int = -1
    seq: int = -1                 # directory insertion order (stable sort key)

    # Back-reference to the owning MetadataDirectory (set by
    # ``get_or_create``); placement/state writes notify it so the reverse
    # indexes track every mutation, wherever it happens.
    _dir = None
    _indexed_attrs = frozenset(("primary", "state", "replicas"))

    def __setattr__(self, name: str, value) -> None:
        d = self._dir
        if d is not None and name in self._indexed_attrs:
            old = getattr(self, name)
            object.__setattr__(self, name, value)
            d._entity_index_update(self, name, old, value)
        else:
            object.__setattr__(self, name, value)

    @property
    def key(self) -> tuple[str, int]:
        return (self.name, self.block_id)

    @property
    def current_oid(self) -> ObjectId:
        return ObjectId(self.name, self.block_id, self.version)

    def record_write(self, t: float, step: int, nbytes: int, digest: str) -> None:
        self.version += 1
        self.write_count += 1
        self.ref_counter += 1
        self.last_write_time = t
        self.last_write_step = step
        self.nbytes = nbytes
        self.digest = digest

    def reset_ref_counter(self) -> None:
        """Reset on state transition, per the paper: "once it is erasure
        coded, its access frequency is reset back to zero"."""
        self.ref_counter = 0

    def store_key(self, version: int | None = None) -> str:
        v = self.version if version is None else version
        return ObjectId(self.name, self.block_id, v).key()

    def primary_key(self) -> str:
        """Key under which the *current* primary copy is stored."""
        return f"{self.name}/{self.block_id}"
