"""DataSpaces-like in-memory staging service.

Implements the virtual shared-space abstraction the paper builds on: n-D
array regions written by simulation clients are partitioned into objects,
distributed across staging servers by a spatial index, and read back by
analysis clients via bounding-box queries.

Modules
-------
- :mod:`repro.staging.domain` — n-D half-open bounding boxes and the global
  domain grid;
- :mod:`repro.staging.objects` — object identifiers, payloads, versions and
  block entities (the unit of hot/cold classification);
- :mod:`repro.staging.index` — the block -> server spatial index (the DHT
  analogue);
- :mod:`repro.staging.server` — staging-server state: local object store,
  CPU resource, workload monitor, failure flag;
- :mod:`repro.staging.metadata` — the distributed object directory;
- :mod:`repro.staging.service` — assembly of cluster + network + servers +
  resilience runtime, with client-facing ``put``/``get``;
- :mod:`repro.staging.checkpoint` — the Checkpoint/Restart baseline used by
  the paper's Figure 2 motivation experiment.
"""

from repro.staging.domain import BBox, Domain
from repro.staging.objects import ObjectId, DataObject, BlockEntity, ResilienceState
from repro.staging.index import SpatialIndex
from repro.staging.server import StagingServer, CostModel
from repro.staging.metadata import MetadataDirectory

__all__ = [
    "BBox",
    "Domain",
    "ObjectId",
    "DataObject",
    "BlockEntity",
    "ResilienceState",
    "SpatialIndex",
    "StagingServer",
    "CostModel",
    "MetadataDirectory",
    "StagingService",
    "StagingConfig",
    "CheckpointedStaging",
    "CheckpointConfig",
]

_LAZY = {
    # service and checkpoint sit above repro.core in the layering; import
    # them lazily to avoid a circular import through core's model modules.
    "StagingService": "repro.staging.service",
    "StagingConfig": "repro.staging.service",
    "CheckpointedStaging": "repro.staging.checkpoint",
    "CheckpointConfig": "repro.staging.checkpoint",
}


def __getattr__(name: str):
    target = _LAZY.get(name)
    if target is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    module = importlib.import_module(target)
    return getattr(module, name)
