"""Checkpoint/Restart baseline for the staged data (paper Figure 2).

Models the motivation experiment of Section II-A: the staging servers
periodically checkpoint their entire in-memory content to the parallel file
system.  A checkpoint is a globally consistent snapshot — all servers pause
request processing (their CPU slots are held) while the staged bytes drain
to the PFS at its aggregate bandwidth.  Restart reads the snapshot back and
redistributes it.

The PFS is the bottleneck: ``duration = latency + staged_bytes /
aggregate_bandwidth``, which is what makes checkpoint cost grow linearly
with staged data size — the effect Figure 2 plots.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator

from repro.sim.engine import Simulator

__all__ = ["PFSModel", "CheckpointConfig", "CheckpointedStaging"]


@dataclass
class PFSModel:
    """Aggregate-bandwidth parallel-filesystem model (Lustre-like)."""

    aggregate_bandwidth_bps: float = 2.0e9
    latency_s: float = 5.0e-3

    def write_time(self, nbytes: int) -> float:
        return self.latency_s + nbytes / self.aggregate_bandwidth_bps

    def read_time(self, nbytes: int) -> float:
        return self.latency_s + nbytes / self.aggregate_bandwidth_bps


@dataclass
class CheckpointConfig:
    """Periodic checkpointing parameters (the paper used a 4 s period)."""

    interval_s: float = 4.0
    pfs: PFSModel = None
    redistribute_overhead: float = 0.25  # restart extra cost (re-index, scatter)

    def __post_init__(self) -> None:
        if self.interval_s <= 0:
            raise ValueError("interval must be positive")
        if self.pfs is None:
            self.pfs = PFSModel()


class CheckpointedStaging:
    """Drives periodic global checkpoints of a staging service.

    Attach to any :class:`~repro.staging.service.StagingService`; normally
    used with the :class:`~repro.core.policies.NoResilience` policy, since
    Checkpoint/Restart *is* the fault-tolerance mechanism here.
    """

    def __init__(self, service, config: CheckpointConfig | None = None):
        self.service = service
        self.config = config or CheckpointConfig()
        self.n_checkpoints = 0
        self.total_checkpoint_time = 0.0
        self.total_restart_time = 0.0
        self.last_checkpoint_bytes = 0
        self._proc = None
        self._stopped = False

    # ------------------------------------------------------------------
    def staged_bytes(self) -> int:
        return sum(s.bytes_stored for s in self.service.servers)

    def start(self) -> None:
        """Launch the periodic checkpoint process."""
        self._proc = self.service.sim.process(self._loop(), name="checkpointer")

    def stop(self) -> None:
        self._stopped = True
        if self._proc is not None and self._proc.is_alive:
            self._proc.interrupt("stop")

    def _loop(self) -> Generator:
        from repro.sim.engine import Interrupt

        sim: Simulator = self.service.sim
        try:
            while not self._stopped:
                yield sim.timeout(self.config.interval_s)
                if self._stopped:
                    return
                yield from self.checkpoint_once()
        except Interrupt:
            return

    def checkpoint_once(self) -> Generator:
        """One globally consistent checkpoint: pause all servers, drain."""
        sim = self.service.sim
        t0 = sim.now
        requests = []
        servers = [s for s in self.service.servers if not s.failed]
        for srv in servers:
            req = srv.cpu.request()
            yield req
            requests.append((srv, req))
        nbytes = self.staged_bytes()
        self.last_checkpoint_bytes = nbytes
        try:
            yield sim.timeout(self.config.pfs.write_time(nbytes))
        finally:
            for srv, req in requests:
                srv.cpu.release(req)
        duration = sim.now - t0
        self.n_checkpoints += 1
        self.total_checkpoint_time += duration
        self.service.log.emit(sim.now, "checkpoint", source="ckpt", bytes=nbytes, duration=duration)
        return duration

    def restart(self) -> Generator:
        """Global restart from the last checkpoint (rollback).

        Reads the snapshot back and redistributes it; all servers blocked.
        Returns the restart duration.
        """
        sim = self.service.sim
        t0 = sim.now
        nbytes = self.last_checkpoint_bytes
        base = self.config.pfs.read_time(nbytes)
        yield sim.timeout(base * (1.0 + self.config.redistribute_overhead))
        duration = sim.now - t0
        self.total_restart_time += duration
        self.service.log.emit(sim.now, "restart", source="ckpt", bytes=nbytes, duration=duration)
        return duration
