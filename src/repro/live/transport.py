"""Real byte movement for the live backend.

In the simulator, payload bytes already live in process memory (servers
are in-memory dicts) and :class:`repro.sim.network.Network` charges
*modeled* wire time for moving them.  In the live backend the bytes still
move within process memory — the client-facing hop happens for real in
the TCP protocol layer (:mod:`repro.live.server`) — so the transport's
job is cooperative scheduling and accounting, not copying:

- it yields once per transfer (a zero-delay timeout, or a scaled wire
  time when ``time_scale > 0``), which keeps long staging flows from
  monopolizing the event loop between socket reads — the live analogue
  of the simulator's NIC serialization points;
- it records the same :class:`~repro.sim.network.TransferStats`, so
  storage/traffic accounting and the invariant checkers read identically
  on both backends.

With ``time_scale > 0`` transfers also serialize through per-endpoint
NIC :class:`~repro.sim.resources.Resource` locks (acquired in sorted
endpoint order, same deadlock-freedom argument as the simulator), which
reproduces the modeled fabric's queueing behaviour on the wall clock.
"""

from __future__ import annotations

from typing import Generator

from repro.sim.network import NetworkConfig, TransferStats
from repro.sim.resources import Resource

__all__ = ["LiveTransport"]


class LiveTransport:
    """Transport implementation on a :class:`repro.live.engine.LiveEngine`."""

    def __init__(self, engine, config: NetworkConfig | None = None):
        self.engine = engine
        self.config = config or NetworkConfig()
        self.stats = TransferStats()
        self._nics: dict[str, Resource] = {}

    def nic(self, endpoint: str) -> Resource:
        res = self._nics.get(endpoint)
        if res is None:
            res = Resource(self.engine, capacity=self.config.nic_capacity)
            self._nics[endpoint] = res
        return res

    def transfer_time(self, nbytes: int) -> float:
        return self.config.latency_s + nbytes / self.config.bandwidth_bps

    def transfer(self, src: str, dst: str, nbytes: int, metadata: bool = False) -> Generator:
        nbytes = int(nbytes)
        if nbytes < 0:
            raise ValueError("negative transfer size")
        start = self.engine.now
        if src == dst or self.engine.time_scale <= 0.0:
            # One cooperative yield; fires immediately at time_scale 0.
            yield self.engine.timeout(
                0.0 if src == dst else self.transfer_time(nbytes)
            )
            duration = self.engine.now - start
            self.stats.record(src, dst, nbytes, duration, metadata)
            return duration
        # Paced mode: reproduce the modeled fabric's NIC contention.
        # NIC grant waits are wire queueing, not lock contention, so they
        # attribute as "transfer" in the wall-clock breakdown.
        first, second = sorted((src, dst))
        req_a = self.nic(first).request()
        req_a.charge = "transfer"
        yield req_a
        req_b = self.nic(second).request()
        req_b.charge = "transfer"
        yield req_b
        try:
            yield self.engine.timeout(self.transfer_time(nbytes))
        finally:
            self.nic(second).release(req_b)
            self.nic(first).release(req_a)
        duration = self.engine.now - start
        self.stats.record(src, dst, nbytes, duration, metadata)
        return duration

    def send_metadata(self, src: str, dst: str) -> Generator:
        result = yield from self.transfer(src, dst, self.config.metadata_bytes, metadata=True)
        return result
