"""Differential sim-vs-live conformance harness.

The live backend's correctness claim is *state equivalence*: the same
seeded workload, driven through the simulator and through the live
engine, must leave the deployment in byte-identical shape — same object
contents, same directory and stripe metadata, same durability
classifications.  Timing and costs are allowed (expected) to differ;
placement, versions, digests and protection state are not.

The harness has three parts:

- seeded workload specs (:data:`WORKLOADS`): deterministic op tapes
  (put/get/step/flush/fail/replace) over single-block regions, built
  from a spec's seed alone;
- two runners that play a tape on either backend with a **full drain
  between ops** (sim: ``run_workflow`` + ``run()``; live: ``await`` +
  ``quiesce()``), so both backends pass through the same sequence of
  quiescent states — this is what makes lock-acquisition and background
  protection ordering irrelevant to the comparison;
- :func:`conformance_projection`: the timing-free projection of a
  deployment's state that must match across backends (read payload
  digests are compared per-op by the runners themselves).

Determinism notes baked into the specs: ops touch one block at a time
(multi-block requests fan out sibling processes whose *completion* order
is timing-dependent; their final state is not, but single-block ops keep
the read-back comparison trivially ordered), and the CoREC spec disables
access promotions (a promotion races the background compaction scan in
wall-clock time; with promotions off, classification depends only on the
step counter, which both backends advance identically).
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.staging.objects import payload_digest
from repro.staging.service import StagingConfig, StagingService

__all__ = [
    "WorkloadSpec",
    "WORKLOADS",
    "build_config",
    "build_ops",
    "make_policy",
    "policy_spec",
    "run_sim",
    "run_live",
    "run_cluster",
    "conformance_projection",
    "normalize_projection",
]


@dataclass(frozen=True)
class WorkloadSpec:
    """One seeded differential workload: policy + op-tape parameters."""

    name: str
    policy: str  # "replicate" | "corec"
    seed: int
    n_vars: int = 2
    n_blocks: int = 12  # distinct blocks touched (first N of the grid)
    n_steps: int = 4
    puts_per_step: int = 6
    gets_per_step: int = 3
    rewrite_fraction: float = 0.5
    failures: tuple[tuple[int, int], ...] = ()  # (step, server) pairs
    config_overrides: dict[str, Any] = field(default_factory=dict)
    # Extra CoRECConfig fields (ignored for "replicate").  The sharded
    # differential tests set enforcement_scope="group" on *both* sides of
    # the comparison — group-scoped storage-bound enforcement is what a
    # sharded deployment can actually compute, so the single-process
    # reference must enforce the same way.
    policy_overrides: dict[str, Any] = field(default_factory=dict)

    def with_overrides(self, **policy_overrides: Any) -> "WorkloadSpec":
        """Copy of this spec with extra policy overrides merged in."""
        import dataclasses

        return dataclasses.replace(
            self, policy_overrides={**self.policy_overrides, **policy_overrides}
        )


WORKLOADS: dict[str, WorkloadSpec] = {
    spec.name: spec
    for spec in (
        # Pure replication: exercises ingest, replica placement, redirect.
        WorkloadSpec(name="replication-only", policy="replicate", seed=101),
        # Hybrid CoREC: demotions, stripe formation, delta parity updates.
        WorkloadSpec(
            name="hybrid",
            policy="corec",
            seed=202,
            n_blocks=16,
            puts_per_step=8,
            n_steps=5,
        ),
        # Failure injected mid-run, replacement next step: redirected
        # writes, degraded reads, lazy sweep + rebalance all inside the
        # comparison window.
        WorkloadSpec(
            name="failure-and-recover",
            policy="corec",
            seed=303,
            n_blocks=16,
            puts_per_step=8,
            n_steps=5,
            failures=((2, 3),),
        ),
    )
}


def build_config(spec: WorkloadSpec) -> StagingConfig:
    """Small 8-server deployment (mirrors the test suite's default)."""
    defaults: dict[str, Any] = dict(
        n_servers=8,
        domain_shape=(64, 64, 32),  # 32 blocks of 16^3 = one 4 KiB object each
        element_bytes=1,
        object_max_bytes=4096,
        seed=1,
    )
    defaults.update(spec.config_overrides)
    return StagingConfig(**defaults)


def policy_spec(spec: WorkloadSpec) -> tuple[str, dict[str, Any]]:
    """Picklable policy spec for ``spec`` (what shard processes receive)."""
    if spec.policy == "replicate":
        return ("replicate", {})
    if spec.policy == "corec":
        # Promotions react to *access order in wall-clock time*; disable
        # them so hot/cold transitions depend only on the step counter.
        return (
            "corec",
            {
                "promote_on_access": False,
                "max_promotions_per_step": 0,
                **spec.policy_overrides,
            },
        )
    raise ValueError(f"unknown conformance policy {spec.policy!r}")


def make_policy(spec: WorkloadSpec):
    """Fresh policy instance for one run of ``spec`` (never shared)."""
    from repro.live.cluster import build_policy

    return build_policy(policy_spec(spec))


def build_ops(spec: WorkloadSpec) -> list[tuple]:
    """Deterministic op tape for ``spec`` (depends only on the spec).

    Ops are tuples: ``("put", var, block)``, ``("get", var, block)``,
    ``("step",)``, ``("flush",)``, ``("fail", sid)``, ``("replace", sid)``.
    """
    rng = np.random.default_rng(spec.seed)
    variables = [f"var{v}" for v in range(spec.n_vars)]
    written: list[tuple[str, int]] = []
    fail_at = {step: sid for step, sid in spec.failures}
    pending_replace: list[int] = []
    ops: list[tuple] = []
    for step in range(spec.n_steps):
        for sid in pending_replace:
            ops.append(("replace", sid))
        pending_replace.clear()
        for _ in range(spec.puts_per_step):
            var = variables[int(rng.integers(len(variables)))]
            if written and rng.random() < spec.rewrite_fraction:
                var, block = written[int(rng.integers(len(written)))]
            else:
                block = int(rng.integers(spec.n_blocks))
            ops.append(("put", var, block))
            if (var, block) not in written:
                written.append((var, block))
        if step in fail_at:
            ops.append(("fail", fail_at[step]))
            pending_replace.append(fail_at[step])
        for _ in range(spec.gets_per_step):
            var, block = written[int(rng.integers(len(written)))]
            ops.append(("get", var, block))
        ops.append(("step",))
    ops.append(("flush",))
    # Read everything back at the end: every staged object must be
    # servable on both backends with identical bytes.
    for var, block in sorted(written):
        ops.append(("get", var, block))
    return ops


# ---------------------------------------------------------------------------
# runners
# ---------------------------------------------------------------------------
def run_sim(spec: WorkloadSpec) -> tuple[dict, list[str]]:
    """Play ``spec`` on the simulator; returns (projection, read digests)."""
    svc = StagingService(build_config(spec), make_policy(spec))
    reads: list[str] = []

    def apply(op: tuple) -> None:
        kind = op[0]
        if kind == "put":
            _, var, block = op
            svc.run_workflow(svc.put("w", var, svc.domain.block_bbox(block)))
        elif kind == "get":
            _, var, block = op
            box: list = []

            def flow(v=var, b=block):
                result = yield from svc.get("r", v, svc.domain.block_bbox(b))
                box.append(result)

            svc.run_workflow(flow())
            _, payloads = box[0]
            for bid in sorted(payloads):
                reads.append(payload_digest(payloads[bid]))
        elif kind == "step":
            svc.run_workflow(svc.end_step())
        elif kind == "flush":
            svc.run_workflow(svc.flush())
        elif kind == "fail":
            svc.fail_server(op[1])
        elif kind == "replace":
            svc.replace_server(op[1])
        else:  # pragma: no cover - tape bug
            raise ValueError(f"unknown op {op!r}")
        svc.run()  # drain all background work before the next op

    for op in build_ops(spec):
        apply(op)
    svc.run()
    return conformance_projection(svc), reads


def run_live(spec: WorkloadSpec, **live_kwargs) -> tuple[dict, list[str]]:
    """Play ``spec`` on the live backend; returns (projection, read digests)."""
    from repro.live.service import LiveStagingService

    async def main() -> tuple[dict, list[str]]:
        live = LiveStagingService(build_config(spec), make_policy(spec), **live_kwargs)
        reads: list[str] = []
        try:
            for op in build_ops(spec):
                kind = op[0]
                if kind == "put":
                    _, var, block = op
                    await live.put("w", var, live.domain.block_bbox(block))
                elif kind == "get":
                    _, var, block = op
                    _, payloads = await live.get("r", var, live.domain.block_bbox(block))
                    for bid in sorted(payloads):
                        reads.append(payload_digest(payloads[bid]))
                elif kind == "step":
                    await live.end_step()
                elif kind == "flush":
                    await live.flush()
                elif kind == "fail":
                    live.fail_server(op[1])
                elif kind == "replace":
                    live.replace_server(op[1])
                else:  # pragma: no cover - tape bug
                    raise ValueError(f"unknown op {op!r}")
                await live.quiesce()  # same quiescent-state sequence as sim
            return conformance_projection(live.service), reads
        finally:
            await live.close()

    return asyncio.run(main())


def run_cluster(
    spec: WorkloadSpec, n_shards: int, **cluster_kwargs: Any
) -> tuple[dict, list[str]]:
    """Play ``spec`` on a sharded multi-process cluster over the wire.

    Same tape, same full-drain-between-ops discipline as the other
    runners (``quiesce`` broadcasts to every shard), so the cluster
    passes through the same quiescent-state sequence.  Returns the
    *merged* cluster projection (compare against
    :func:`normalize_projection` of a single-process projection) and the
    per-op read digests.
    """
    from repro.live.cluster import LiveCluster

    reads: list[str] = []
    with LiveCluster(
        build_config(spec), policy_spec(spec), n_shards, **cluster_kwargs
    ) as cluster:
        with cluster.client(name="w") as client:
            domain = client.domain
            for op in build_ops(spec):
                kind = op[0]
                if kind == "put":
                    _, var, block = op
                    box = domain.block_bbox(block)
                    client.put(var, box.lb, box.ub)
                elif kind == "get":
                    _, var, block = op
                    box = domain.block_bbox(block)
                    _, payloads = client.get(var, box.lb, box.ub)
                    for bid in sorted(payloads):
                        reads.append(
                            payload_digest(np.frombuffer(payloads[bid], dtype=np.uint8))
                        )
                elif kind == "step":
                    client.step()
                elif kind == "flush":
                    client.flush()
                elif kind == "fail":
                    client.fail_server(op[1])
                elif kind == "replace":
                    client.replace_server(op[1])
                else:  # pragma: no cover - tape bug
                    raise ValueError(f"unknown op {op!r}")
                client.quiesce()  # same quiescent-state sequence as sim/live
            projection = client.projection()
    return projection, reads


# ---------------------------------------------------------------------------
# projection
# ---------------------------------------------------------------------------
def conformance_projection(svc: StagingService) -> dict:
    """Timing-free projection of deployment state for differential compare.

    Everything here must be identical across backends at a quiescent
    point: directory metadata, stripe geometry and membership, each
    server's store contents (key → payload digest), pending-encode pools
    and durability-relevant counters.  Clock readings, response times and
    transfer stats are deliberately excluded.
    """
    entities = {}
    for (name, block), ent in sorted(svc.directory.entities.items()):
        entities[f"{name}/{block}"] = {
            "version": ent.version,
            "state": ent.state.value,
            "primary": ent.primary,
            "replicas": sorted(ent.replicas),
            "stripe": None if ent.stripe is None else ent.stripe.stripe_id,
            "digest": ent.digest,
            "nbytes": ent.nbytes,
        }
    stripes = {}
    for sid, stripe in sorted(svc.directory.stripes.items()):
        stripes[sid] = {
            "servers": list(stripe.shard_servers),
            "members": [
                None if mk is None else f"{mk[0]}/{mk[1]}" for mk in stripe.members
            ],
            "lengths": list(stripe.lengths),
            "shard_len": stripe.shard_len,
        }
    servers = []
    for srv in svc.servers:
        servers.append(
            {
                "server": srv.server_id,
                "failed": srv.failed,
                "epoch": srv.epoch,
                "store": {
                    key: payload_digest(srv.store[key]) for key in sorted(srv.store)
                },
            }
        )
    pending = {
        gid: {
            srv: [f"{k[0]}/{k[1]}" for k in queue]
            for srv, queue in sorted(group.items())
            if queue
        }
        for gid, group in sorted(svc.runtime.pending.items())
        if any(queue for queue in group.values())
    }
    storage = svc.metrics.storage
    return {
        "entities": entities,
        "stripes": stripes,
        "servers": servers,
        "pending": pending,
        "storage": {
            "original": storage.original,
            "replica": storage.replica,
            "parity": storage.parity,
        },
        "read_errors": svc.read_errors,
    }


def normalize_projection(projection: dict) -> dict:
    """JSON round-trip of a projection (int dict keys become strings).

    Wire projections pass through JSON headers, which stringifies the
    stripe-id and group-id keys; normalizing the in-process reference the
    same way makes :func:`diff_projections` comparisons exact.
    """
    return json.loads(json.dumps(projection))


def diff_projections(a: dict, b: dict, prefix: str = "") -> list[str]:
    """Human-readable list of paths where two projections differ."""
    out: list[str] = []
    if isinstance(a, dict) and isinstance(b, dict):
        for key in sorted(set(a) | set(b)):
            path = f"{prefix}.{key}" if prefix else str(key)
            if key not in a:
                out.append(f"{path}: only in live")
            elif key not in b:
                out.append(f"{path}: only in sim")
            else:
                out.extend(diff_projections(a[key], b[key], path))
    elif isinstance(a, list) and isinstance(b, list):
        if a != b:
            out.append(f"{prefix}: {a!r} != {b!r}")
    elif a != b:
        out.append(f"{prefix}: {a!r} != {b!r}")
    return out
