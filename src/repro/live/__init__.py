"""Live (wall-clock, concurrent) staging backend.

The simulator answers "what would CoREC's policies do"; this package
answers "do they survive contact with a real event loop".  It reuses the
entire policy/runtime/directory stack behind the
:mod:`repro.core.backend` interfaces:

- :class:`LiveEngine` — asyncio-backed clock driving the same
  generator-process model as the simulator, plus a worker pool for
  GF(2^8) offload;
- :class:`LiveTransport` — cooperative-yield transport with the
  simulator's transfer accounting (optionally paced by ``time_scale``);
- :class:`LiveStagingService` — async facade assembling the standard
  :class:`~repro.staging.service.StagingService` on the live backend;
- :class:`LiveServer` / :class:`LiveClient` — length-prefixed TCP
  protocol for real multi-client traffic (``serve_in_thread`` runs the
  whole stack on a background thread for tests and load generators);
- :class:`LiveCluster` / :class:`ClusterClient` — sharded multi-process
  deployment (one OS process per coding-group shard) plus the
  block→shard routing client over the same wire protocol;
- :mod:`repro.live.conformance` — seeded differential workloads
  asserting sim, live and sharded-cluster runs reach byte-identical
  state at quiescence.
"""

from repro.live.cluster import LiveCluster, ShardPlan, build_policy
from repro.live.engine import LiveEngine, LiveProcessError
from repro.live.protocol import LiveClient, ProtocolError, RemoteOpError
from repro.live.router import ClusterClient
from repro.live.server import LiveServer, ServerHandle, serve_in_thread
from repro.live.service import LiveStagingService
from repro.live.transport import LiveTransport

__all__ = [
    "LiveEngine",
    "LiveProcessError",
    "LiveTransport",
    "LiveStagingService",
    "LiveServer",
    "ServerHandle",
    "serve_in_thread",
    "LiveClient",
    "ProtocolError",
    "RemoteOpError",
    "LiveCluster",
    "ShardPlan",
    "ClusterClient",
    "build_policy",
]
