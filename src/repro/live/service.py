"""Async facade over the staging service on the live engine.

``LiveStagingService`` assembles the *same* :class:`~repro.staging.service.StagingService`
— same policies, runtime, directory, codec, metrics — but injects a
:class:`~repro.live.engine.LiveEngine` clock and a
:class:`~repro.live.transport.LiveTransport` fabric, then exposes the
client API as coroutines.  Every generator flow (put/get, stripe
formation, recovery sweeps) runs unchanged; what changes is who drives
it: asyncio tasks on the wall clock instead of a virtual-time heap.

GF(2^8) encode/decode batches are offloaded to the engine's worker pool
via :meth:`StagingRuntime.compute` and run **lock-free**: the codec
layer is thread-safe (locked decode-matrix cache, condition-guarded
coding batch, thread-local scratch pools), so concurrent offloads
genuinely overlap.  On top of that, each offloaded kernel pass is
stripe-parallel — ``RSCode.parallel_map`` is wired to
:meth:`LiveEngine.codec_map`, which fans the pass's column splits across
a dedicated codec worker pool.  The ``exclusive`` offload lock still
exists for any future work that mutates truly shared scratch state, but
no codec path needs it anymore.
"""

from __future__ import annotations

import asyncio
import threading
from typing import Any

import numpy as np

from repro.live.engine import LiveEngine
from repro.live.transport import LiveTransport
from repro.obs.export import prometheus_text
from repro.obs.wallclock import WallClockTracer
from repro.staging.domain import BBox
from repro.staging.service import StagingConfig, StagingService

__all__ = ["LiveStagingService"]


class LiveStagingService:
    """One live (wall-clock, concurrent) staging deployment.

    Must be constructed inside a running asyncio event loop; all methods
    must be called on that loop.
    """

    def __init__(
        self,
        config: StagingConfig,
        policy,
        time_scale: float = 0.0,
        max_workers: int | None = None,
        offload_compute: bool = True,
        parallel_codec: bool = True,
        tracing: bool = False,
    ):
        self.engine = LiveEngine(time_scale=time_scale, max_workers=max_workers)
        # Wall-clock tracing: the injected tracer replaces the sim-time
        # Tracer the StagingService would build, so put/get flows, the
        # runtime's leaf instrumentation and the engine's offload/codec
        # spans all land in one wall-clock span tree.  `config.tracing`
        # opts in too, for callers that only hold a StagingConfig.
        self.tracing = bool(tracing or config.tracing)
        self.tracer = WallClockTracer() if self.tracing else None
        transport = LiveTransport(self.engine, config.network)
        self.service = StagingService(
            config, policy, engine=self.engine, transport=transport, tracer=self.tracer
        )
        if self.tracer is None:
            self.tracer = self.service.tracer  # NULL_TRACER
        self.engine.tracer = self.tracer
        self._codec_lock = threading.Lock()
        if offload_compute:
            self.service.runtime.compute_offload = self._offload_compute
        if parallel_codec:
            # Stripe-parallel kernel passes: large encodes/decodes split by
            # column range across the engine's codec pool.  Byte-identical
            # to serial (columns are independent), so sim-vs-live
            # conformance is unaffected.
            self.service.codec.code.parallel_map = self.engine.codec_map
        self._register_live_gauges()
        if self.tracing:
            self.engine.start_watchdog(
                histogram=self.service.metrics.registry.histogram("live.loop.lag_s")
            )

    def _register_live_gauges(self) -> None:
        """Publish live-only counters next to the service's gauges."""
        from repro.live import protocol

        reg = self.service.metrics.registry
        code = self.service.codec.code
        engine = self.engine
        code.parallel_stats.register_gauges(reg, "codec.parallel")
        protocol.PROTO_STATS.register_gauges(reg, "protocol")
        # Continuous saturation signals for the data plane: worker-pool
        # backlogs, the zero-delay microqueue, in-flight offloads and the
        # watchdog's event-loop lag readings.
        reg.gauge("live.pool.queue_depth", lambda: engine.pool_queue_depth)
        reg.gauge("live.codec_pool.queue_depth", lambda: engine.codec_queue_depth)
        reg.gauge("live.microqueue.depth", lambda: engine.microqueue_depth)
        reg.gauge("live.offloads.inflight", lambda: engine.offloads_inflight)
        reg.gauge("live.loop.lag_last_s", lambda: engine.loop_lag_s)
        reg.gauge("live.loop.lag_max_s", lambda: engine.loop_lag_max_s)

    def _offload_compute(self, fn, exclusive: bool = True, category: str = "codec"):
        if not exclusive:
            return self.engine.offload(fn, charge=category)

        # ``exclusive`` work mutates shared scratch state that is not
        # thread-safe.  No codec path is marked exclusive anymore (the
        # codec layer carries its own locks and thread-local scratch);
        # the lock remains for anything that still needs serialization.
        def locked():
            with self._codec_lock:
                return fn()

        return self.engine.offload(locked, charge=category)

    # ------------------------------------------------------------------
    # convenience passthroughs
    # ------------------------------------------------------------------
    @property
    def config(self) -> StagingConfig:
        return self.service.config

    @property
    def runtime(self):
        return self.service.runtime

    @property
    def directory(self):
        return self.service.directory

    @property
    def domain(self):
        return self.service.domain

    @property
    def servers(self):
        return self.service.servers

    @property
    def metrics(self):
        return self.service.metrics

    @property
    def step(self) -> int:
        return self.service.step

    # ------------------------------------------------------------------
    # client API (coroutines)
    # ------------------------------------------------------------------
    async def put(
        self, client_name: str, name: str, region: BBox, data: np.ndarray | None = None
    ) -> float:
        return await self.engine.run_process(
            self.service.put(client_name, name, region, data), name=f"put-{name}"
        )

    async def get(
        self, client_name: str, name: str, region: BBox, verify: bool | None = None
    ) -> tuple[float, dict[int, np.ndarray]]:
        return await self.engine.run_process(
            self.service.get(client_name, name, region, verify), name=f"get-{name}"
        )

    # ------------------------------------------------------------------
    # batched ops (one shard's slice of a routed multi-block request)
    # ------------------------------------------------------------------
    async def put_blocks(
        self, client_name: str, name: str, subputs: list[tuple[BBox, np.ndarray | None]]
    ) -> float:
        """Stage several sub-regions of one variable concurrently.

        A cluster router decomposes a client put onto the block grid and
        ships each shard exactly the sub-regions it owns in one ``mput``
        frame; the sub-puts then fan out here just like the block flows of
        a single-process multi-block put.  Returns the slowest sub-put's
        response time (the batch's completion time).
        """
        durations = await asyncio.gather(
            *(self.put(client_name, name, bbox, data) for bbox, data in subputs)
        )
        return max(durations)

    async def get_blocks(
        self, client_name: str, name: str, regions: list[BBox], verify: bool | None = None
    ) -> tuple[float, dict[int, np.ndarray]]:
        """Read several regions of one variable concurrently; merged payloads."""
        results = await asyncio.gather(
            *(self.get(client_name, name, region, verify) for region in regions)
        )
        payloads: dict[int, np.ndarray] = {}
        for _, part in results:
            payloads.update(part)
        return max(d for d, _ in results), payloads

    async def end_step(self) -> None:
        await self.engine.run_process(self.service.end_step(), name="end_step")

    async def flush(self) -> None:
        await self.engine.run_process(self.service.flush(), name="flush")

    async def quiesce(self) -> None:
        """Drain all scheduled work, background protection and offloads."""
        await self.engine.quiesce()

    # ------------------------------------------------------------------
    # failures (synchronous state changes; recovery runs in background)
    # ------------------------------------------------------------------
    def fail_server(self, sid: int) -> None:
        self.service.fail_server(sid)

    def replace_server(self, sid: int) -> None:
        self.service.replace_server(sid)

    def alive_servers(self) -> list[int]:
        return self.service.alive_servers()

    # ------------------------------------------------------------------
    # audit / introspection
    # ------------------------------------------------------------------
    async def verify_all(self) -> dict:
        """Live analogue of :meth:`StagingService.verify_all` (read audit)."""
        from repro.core.runtime import DataLossError
        from repro.staging.objects import payload_digest

        svc = self.service
        verified = 0
        unrecoverable = []
        for key in sorted(svc.directory.entities):
            ent = svc.directory.entities[key]
            if ent.version < 0:
                continue

            def probe(e=ent):
                payload = yield from svc.runtime.read_entity(e, "auditor", repair=False)
                if payload_digest(payload) != e.digest:
                    raise DataLossError(f"audit digest mismatch for {e.key}")

            try:
                await self.engine.run_process(probe(), name=f"audit-{key}")
                verified += 1
            except DataLossError:
                unrecoverable.append(key)
        return {"verified": verified, "unrecoverable": unrecoverable}

    def state_snapshot(self) -> dict:
        return self.service.state_snapshot()

    def storage_report(self) -> dict:
        return self.service.storage_report()

    def stats(self) -> dict[str, Any]:
        """Small operational summary for the protocol's STATS op."""
        m = self.service.metrics
        return {
            "now": self.engine.now,
            "step": self.service.step,
            "puts": m.put_stat.n,
            "gets": m.get_stat.n,
            "alive_servers": self.alive_servers(),
            "entities": len(self.service.directory.entities),
            "stripes": len(self.service.directory.stripes),
            "read_errors": self.service.read_errors,
            "events_dropped": self.service.log.dropped,
        }

    def observe_request(self, op: str, e2e_s: float, breakdown: dict[str, float]) -> None:
        """Fold one traced request into the registry (loop thread only).

        Per-op counters + end-to-end histograms, plus one histogram per
        attribution category — the continuous view the periodic metrics
        snapshot and the Prometheus dump export.
        """
        reg = self.service.metrics.registry
        reg.counter(f"live.rpc.{op}").inc()
        reg.histogram(f"live.rpc.{op}.e2e_s").observe(e2e_s)
        for cat, dt in breakdown.items():
            reg.histogram(f"live.attr.{cat}_s").observe(dt)

    def metrics_text(self) -> str:
        """Prometheus text exposition of the full metrics registry."""
        return prometheus_text(self.service.metrics.registry)

    async def close(self) -> None:
        await self.engine.quiesce()
        self.engine.close()
