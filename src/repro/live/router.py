"""Client-side router for the sharded live cluster.

:class:`ClusterClient` gives callers the single-server :class:`~repro.live.protocol.LiveClient`
surface over a :class:`~repro.live.cluster.LiveCluster`: one blocking
client per shard plus the block→shard routing that decides which
connection each operation rides.

Routing is pure geometry, derived from the same :func:`~repro.staging.service.build_geometry`
the servers use: a block's owner is the shard owning the coding group of
its *hash-placed primary* (``index.primary_of_block``).  Failure
redirects never move an object across coding groups, so this static
mapping stays correct across server kills and replacements — no
membership chatter, no ownership leases.

Multi-block requests are decomposed on the block grid, grouped by owning
shard and shipped as one batched ``mput``/``mget`` frame per shard, so a
cross-shard put costs one RPC per *shard* touched, not per block.  The
data slicing mirrors the staging service's own region-to-block payload
slicing byte for byte (element-wise uint8 grid views), which is what
keeps sharded runs digest-identical to single-process runs.

Deployment-wide controls (``step``, ``flush``, ``quiesce``) broadcast to
every shard; ``fail``/``replace`` route to the shard owning the server.
``projection()`` merges the per-shard quiescent conformance projections
into one deployment-shaped projection the differential harness can diff
directly against a single-process run.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from typing import Any, Callable, Sequence

import numpy as np

from repro.live.cluster import ShardPlan
from repro.live.protocol import Buffer, LiveClient
from repro.staging.domain import BBox
from repro.staging.service import build_geometry

__all__ = ["ClusterClient"]


class ClusterClient:
    """Synchronous client speaking to every shard of one live cluster.

    Not thread-safe (each underlying :class:`LiveClient` owns one TCP
    connection): use one router per thread/process.  Multi-shard data ops
    overlap their per-shard RPCs on an internal thread pool — safe because
    each in-flight RPC rides a *different* shard's connection.
    ``client_kwargs`` (timeouts, reconnect policy, tracer) are passed to
    every per-shard client; ``client_factory`` swaps the per-shard client
    constructor (tests inject fakes with deterministic delays).
    """

    def __init__(
        self,
        plan: ShardPlan,
        endpoints: Sequence[tuple[str, int]],
        name: str = "client",
        client_factory: Callable[..., LiveClient] | None = None,
        **client_kwargs: Any,
    ):
        if len(endpoints) != plan.n_shards:
            raise ValueError(
                f"plan has {plan.n_shards} shards but {len(endpoints)} endpoints given"
            )
        self.plan = plan
        self.name = name
        self._client_kwargs = dict(client_kwargs)
        self._factory = client_factory or LiveClient
        _, self.domain, self.index, self.layout = build_geometry(plan.config)
        self._clients: list[LiveClient] = [
            self._factory(host, port, name=name, **self._client_kwargs)
            for host, port in endpoints
        ]
        self._pool: ThreadPoolExecutor | None = None

    # -- routing -------------------------------------------------------
    def shard_of_block(self, block_id: int, var: str) -> int:
        """Owning shard: the shard of the block's hash-placed primary."""
        primary = self.index.primary_of_block(block_id, var)
        return self.plan.server_to_shard[primary]

    def shard_client(self, shard: int) -> LiveClient:
        return self._clients[shard]

    def set_endpoint(self, shard: int, host: str, port: int) -> None:
        """Repoint one shard's connection (after a shard restart)."""
        old = self._clients[shard]
        self._clients[shard] = self._factory(host, port, name=self.name, **self._client_kwargs)
        try:
            old.close()
        except OSError:  # pragma: no cover - best effort
            pass

    def _decompose(self, var: str, region: BBox) -> dict[int, list[tuple[int, BBox]]]:
        """Group the region's overlapping blocks by owning shard.

        Returns ``{shard: [(block_id, block ∩ region), ...]}`` in block-id
        order — each sub-box is confined to one block, so a shard's
        service stages exactly the blocks it owns and nothing else.
        """
        block_ids = self.domain.blocks_overlapping(region)
        if not block_ids:
            raise ValueError(f"region {region} outside the staged domain")
        per_shard: dict[int, list[tuple[int, BBox]]] = {}
        for bid in block_ids:
            inter = self.domain.block_bbox(bid).intersect(region)
            assert inter is not None
            per_shard.setdefault(self.shard_of_block(bid, var), []).append((bid, inter))
        return per_shard

    def _fanout(self, calls: list[Callable[[], Any]]) -> list[Any]:
        """Run per-shard RPCs concurrently, results in input order.

        A multi-shard put/get used to contact shards one at a time, so the
        client-side cost grew linearly with shards touched even though the
        shards work independently.  Each call targets a distinct shard
        connection, so overlapping them is safe; a single call runs
        inline (no pool hop on the hot single-shard path).  The first
        exception propagates after all calls settle.
        """
        if len(calls) == 1:
            return [calls[0]()]
        if self._pool is None:
            self._pool = ThreadPoolExecutor(
                max_workers=self.plan.n_shards,
                thread_name_prefix=f"router-{self.name}",
            )
        futures = [self._pool.submit(c) for c in calls]
        results: list[Any] = []
        first_exc: BaseException | None = None
        for fut in futures:
            try:
                results.append(fut.result())
            except BaseException as exc:  # settle every connection first
                first_exc = first_exc or exc
                results.append(None)
        if first_exc is not None:
            raise first_exc
        return results

    # -- data plane ----------------------------------------------------
    def put(self, var: str, lb, ub, data: np.ndarray | None = None) -> float:
        """Write ``[lb, ub)`` of ``var``; one ``mput`` per shard touched.

        Returns the slowest shard's batch duration (the put's completion
        time).  With ``data`` the region's bytes are sliced per block
        exactly like the staging service's region-to-block slicing, so a
        sharded write stages byte-identical payloads.
        """
        region = BBox(tuple(lb), tuple(ub))
        per_shard = self._decompose(var, region)
        grid = None
        eb = self.domain.element_bytes
        if data is not None:
            arr = np.ascontiguousarray(data)
            if arr.size * arr.itemsize != region.volume * eb:
                raise ValueError(
                    f"data has {arr.size * arr.itemsize} bytes; region {region} "
                    f"needs {region.volume * eb}"
                )
            # Element-wise byte view: (*region.shape, element_bytes) —
            # the same view _block_payload takes server-side.
            grid = arr.view(np.uint8).reshape(region.shape + (eb,))
        calls: list[Callable[[], float]] = []
        for shard in sorted(per_shard):
            puts: list[tuple] = []
            parts: list[Buffer] = []
            for _, inter in per_shard[shard]:
                if grid is None:
                    puts.append((inter.lb, inter.ub, 0))
                    continue
                src = np.ascontiguousarray(
                    grid[
                        tuple(
                            slice(il - rl, iu - rl)
                            for il, iu, rl in zip(inter.lb, inter.ub, region.lb)
                        )
                    ]
                ).ravel()
                puts.append((inter.lb, inter.ub, src.nbytes))
                parts.append(memoryview(src).cast("B"))
            calls.append(
                lambda cli=self._clients[shard], puts=puts, parts=parts: cli.mput(
                    var, puts, parts, dtype=None if grid is None else "uint8"
                )
            )
        return max(self._fanout(calls))

    def get(
        self, var: str, lb, ub, verify: bool | None = None
    ) -> tuple[float, dict[int, memoryview]]:
        """Read ``[lb, ub)``; one ``mget`` per shard, merged block views."""
        region = BBox(tuple(lb), tuple(ub))
        per_shard = self._decompose(var, region)
        calls = [
            lambda cli=self._clients[shard], regions=[
                (inter.lb, inter.ub) for _, inter in per_shard[shard]
            ]: cli.mget(var, regions, verify=verify)
            for shard in sorted(per_shard)
        ]
        merged: dict[int, memoryview] = {}
        duration = 0.0
        for dur, blocks in self._fanout(calls):
            duration = max(duration, dur)
            merged.update(blocks)
        return duration, merged

    def query(self, var: str, lb, ub) -> list[dict[str, Any]]:
        """Merged block metadata, each block answered by its owning shard."""
        region = BBox(tuple(lb), tuple(ub))
        per_shard = self._decompose(var, region)
        rows: dict[int, dict[str, Any]] = {}
        for shard, blocks in per_shard.items():
            owned = {bid for bid, _ in blocks}
            for row in self._clients[shard].query(var, region.lb, region.ub):
                if row["block"] in owned:
                    rows[row["block"]] = row
        return [rows[bid] for bid in sorted(rows)]

    # -- deployment-wide controls (broadcast) --------------------------
    def ping(self) -> float:
        return max(cli.ping() for cli in self._clients)

    def step(self) -> int:
        """Advance the application step on every shard (must agree)."""
        steps = [cli.step() for cli in self._clients]
        if len(set(steps)) != 1:
            raise RuntimeError(f"shards disagree on step: {steps}")
        return steps[0]

    def flush(self) -> None:
        for cli in self._clients:
            cli.flush()

    def quiesce(self) -> None:
        for cli in self._clients:
            cli.quiesce()

    # -- failures (routed to the owning shard) -------------------------
    def fail_server(self, sid: int) -> None:
        self._clients[self.plan.shard_of_server(sid)].fail_server(sid)

    def replace_server(self, sid: int) -> None:
        self._clients[self.plan.shard_of_server(sid)].replace_server(sid)

    # -- merged introspection ------------------------------------------
    def stats(self) -> dict[str, Any]:
        """Cluster-wide operational summary (sums + per-shard rows)."""
        shard_stats = [cli.stats() for cli in self._clients]
        alive: list[int] = []
        for shard, st in enumerate(shard_stats):
            owned = set(self.plan.shard_servers(shard))
            alive.extend(s for s in st["alive_servers"] if s in owned)
        return {
            "shards": len(shard_stats),
            "step": shard_stats[0]["step"],
            "puts": sum(st["puts"] for st in shard_stats),
            "gets": sum(st["gets"] for st in shard_stats),
            "entities": sum(st["entities"] for st in shard_stats),
            "stripes": sum(st["stripes"] for st in shard_stats),
            "read_errors": sum(st["read_errors"] for st in shard_stats),
            "alive_servers": sorted(alive),
            "per_shard": shard_stats,
        }

    def verify(self) -> dict[str, Any]:
        """Cluster-wide read audit: every shard audits the objects it owns."""
        verified = 0
        unrecoverable: list[str] = []
        for cli in self._clients:
            result = cli.verify()
            verified += result["verified"]
            unrecoverable.extend(result["unrecoverable"])
        return {"verified": verified, "unrecoverable": sorted(unrecoverable)}

    def invariants(self) -> list[str]:
        """Quiescent invariant sweep across all shards (prefixed per shard)."""
        out: list[str] = []
        for shard, cli in enumerate(self._clients):
            out.extend(f"shard {shard}: {v}" for v in cli.invariants())
        return out

    def projection(self) -> dict[str, Any]:
        """Merged quiescent conformance projection of the whole cluster.

        Entity/stripe/pending records live wholly within one shard (group
        partitioning), so the merge is a disjoint union; each server's
        row comes from its owning shard (the only shard whose husk of
        that server ever holds state); storage counters sum.  The result
        is shaped exactly like a single-process projection modulo JSON
        key stringification — compare against
        :func:`repro.live.conformance.normalize_projection` of the
        reference.
        """
        shard_projs = [cli.projection() for cli in self._clients]
        entities: dict[str, Any] = {}
        stripes: dict[str, Any] = {}
        pending: dict[str, Any] = {}
        servers: list[Any] = [None] * self.plan.config.n_servers
        storage = {"original": 0, "replica": 0, "parity": 0}
        read_errors = 0
        for shard, proj in enumerate(shard_projs):
            for key, ent in proj["entities"].items():
                if key in entities:
                    raise RuntimeError(f"entity {key} present on two shards")
                entities[key] = ent
            for sid, stripe in proj["stripes"].items():
                if sid in stripes:
                    raise RuntimeError(f"stripe {sid} present on two shards")
                stripes[sid] = stripe
            for gid, group in proj["pending"].items():
                pending[gid] = group
            for srv in self.plan.shard_servers(shard):
                servers[srv] = proj["servers"][srv]
            for k in storage:
                storage[k] += proj["storage"][k]
            read_errors += proj["read_errors"]
        return {
            "entities": entities,
            "stripes": stripes,
            "servers": servers,
            "pending": pending,
            "storage": storage,
            "read_errors": read_errors,
        }

    # -- lifecycle -----------------------------------------------------
    def shutdown(self) -> None:
        """Graceful cluster stop: every shard drains and exits."""
        for cli in self._clients:
            cli.shutdown()

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None
        for cli in self._clients:
            cli.close()

    def __enter__(self) -> "ClusterClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
