"""Asyncio TCP server for the live staging backend.

One :class:`LiveServer` fronts one :class:`~repro.live.service.LiveStagingService`:
each accepted connection gets a handler coroutine that reads
length-prefixed frames (:mod:`repro.live.protocol`), dispatches them on
the shared service, and streams the response back.  Frames on one
connection execute in order (a client's pipeline is FIFO); different
connections run concurrently on the event loop — which is exactly where
the live backend's parallelism comes from: while one request's encode
batch runs on a worker thread, the loop serves other clients.

``serve_in_thread`` runs the whole stack (loop + service + server) on a
dedicated thread and hands back a handle with the bound port — the shape
load generators, the CLI and tests use to run real-socket traffic from
plain blocking clients.
"""

from __future__ import annotations

import asyncio
import threading
from concurrent.futures import TimeoutError as FuturesTimeoutError
from typing import Any, Callable

import numpy as np

from repro.live.protocol import (
    ProtocolError,
    frame_parts,
    read_frame,
    read_frame_timed,
    write_frame,
)
from repro.live.service import LiveStagingService
from repro.staging.domain import BBox
from repro.staging.service import StagingConfig

__all__ = ["LiveServer", "ServerHandle", "serve_in_thread"]


class LiveServer:
    """Protocol frontend over one live staging service."""

    def __init__(self, live: LiveStagingService, drain_timeout: float = 30.0):
        self.live = live
        self._server: asyncio.AbstractServer | None = None
        self._shutdown = asyncio.Event()
        # In-flight dispatch accounting for graceful shutdown: the drain
        # waits until every request that had started dispatching has sent
        # its response, so a `shutdown` frame on one connection cannot
        # yank the service out from under another connection's put.
        self._inflight = 0
        self._idle = asyncio.Event()
        self._idle.set()
        self.drain_timeout = drain_timeout
        self.connections_served = 0
        self.requests_served = 0

    # ------------------------------------------------------------------
    async def start(self, host: str = "127.0.0.1", port: int = 0) -> tuple[str, int]:
        """Bind and start accepting; returns the (host, port) actually bound."""
        self._server = await asyncio.start_server(self._handle, host, port)
        sockname = self._server.sockets[0].getsockname()
        return sockname[0], sockname[1]

    async def serve_until_shutdown(self) -> None:
        """Serve until a ``shutdown`` frame (or :meth:`stop`), then drain and close.

        Teardown order: stop accepting, wait for in-flight requests to
        finish responding (bounded by ``drain_timeout``), then quiesce and
        close the engine.  Requests that outlive the drain deadline are
        abandoned (their tasks are cancelled when the loop winds down).
        """
        if self._server is None:
            raise RuntimeError("start() first")
        async with self._server:
            await self._shutdown.wait()
        if self._inflight:
            try:
                await asyncio.wait_for(self._idle.wait(), timeout=self.drain_timeout)
            except asyncio.TimeoutError:  # pragma: no cover - pathological op
                pass
        await self.live.close()

    async def stop(self) -> None:
        """Schedule a graceful stop (same path as the ``shutdown`` wire op)."""
        self._shutdown.set()

    # ------------------------------------------------------------------
    async def _handle(self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter) -> None:
        self.connections_served += 1
        try:
            while True:
                if self.live.tracer.enabled:
                    op = await self._serve_one_traced(reader, writer)
                else:
                    op = await self._serve_one(reader, writer)
                if op is None:  # clean EOF
                    break
                if op == "shutdown":
                    self._shutdown.set()
                    break
        except (ProtocolError, ConnectionResetError, BrokenPipeError):
            pass  # drop the misbehaving/vanished connection
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):  # pragma: no cover
                pass

    async def _serve_one(self, reader, writer) -> str | None:
        """Read-dispatch-respond for one frame; returns the op (None on EOF)."""
        try:
            header, payload = await read_frame(reader)
        except EOFError:
            return None
        self._begin_request()
        try:
            try:
                resp, body = await self._dispatch(header, payload)
            except ProtocolError:
                raise
            except BaseException as exc:
                resp = {
                    "ok": False,
                    "error_type": type(exc).__name__,
                    "error": str(exc),
                }
                body = b""
            self.requests_served += 1
            await write_frame(writer, resp, body)
        finally:
            self._end_request()
        return header.get("op")

    async def _serve_one_traced(self, reader, writer) -> str | None:
        """The traced request path: one dispatch span + latency attribution.

        The dispatch span is a *local* root backdated to frame arrival; a
        propagated client trace context pins its ``trace_id`` and lands as
        ``attrs["remote_parent"]`` (remote span ids never masquerade as
        local parent links).  The span is installed as the handler task's
        current scope, so every flow span the dispatch spawns — put/get
        roots, offload and codec-pool spans — parents under it through the
        contextvar, forming one tree per request.

        Attribution: flow waits charge the request sink (classified by
        the tracer) and are normalized to the dispatch wall interval when
        concurrent flows overlap their waits; handler-side
        socket/serialization costs are measured directly, ``loop_cpu`` is
        the dispatch residual, and ``other`` closes the sum to
        end-to-end exactly.  The partial breakdown
        (everything but the response serialize/send, which cannot observe
        itself) returns to the client as ``attr`` + ``srv_span``.
        """
        tracer = self.live.tracer
        try:
            header, payload, t_arrival, read_s, decode_s = await read_frame_timed(
                reader, tracer._clock
            )
        except EOFError:
            return None
        self._begin_request()
        try:
            return await self._serve_one_traced_inner(
                writer, header, payload, t_arrival, read_s, decode_s
            )
        finally:
            self._end_request()

    async def _serve_one_traced_inner(
        self, writer, header, payload, t_arrival, read_s, decode_s
    ) -> str:
        tracer = self.live.tracer
        op = header.get("op", "?")
        span = tracer.begin(
            f"rpc.{op}",
            category="rpc",
            parent=None,
            trace_id=header.get("trace"),
            t0=t_arrival,
            client=header.get("client"),
        )
        if header.get("span") is not None:
            span.set(remote_parent=header["span"])
        sink: dict[str, float] = {}
        scope_token = tracer.activate(span)
        attr_token = tracer.push_attribution(sink)
        t_svc0 = tracer.now
        try:
            resp, body = await self._dispatch(header, payload)
        except ProtocolError:
            tracer.end(span, error="ProtocolError")
            raise
        except BaseException as exc:
            resp = {
                "ok": False,
                "error_type": type(exc).__name__,
                "error": str(exc),
            }
            body = b""
            span.set(error=f"{type(exc).__name__}: {exc}")
        finally:
            service_s = tracer.now - t_svc0
            tracer.pop_attribution(attr_token)
            tracer.deactivate(scope_token)
        self.requests_served += 1
        # Concurrent flows (block fan-out, background protection) overlap
        # their waits, so charged seconds can exceed the dispatch wall
        # interval.  Reconcile by scaling the categories down to the
        # interval — ratios are preserved, the sum closes against wall
        # time, and the raw overlap factor lands on the span.
        sink_total = sum(sink.values())
        wait_overlap = sink_total / service_s if service_s > 0.0 else 0.0
        if sink_total > service_s > 0.0:
            scale = service_s / sink_total
            sink = {k: v * scale for k, v in sink.items()}
            loop_cpu = 0.0
        else:
            loop_cpu = max(0.0, service_s - sink_total)
        attr = {"socket_read": read_s, "serialization": decode_s, **sink,
                "loop_cpu": loop_cpu}
        resp["attr"] = attr
        resp["srv_span"] = span.span_id
        t_ser0 = tracer.now
        parts = frame_parts(resp, body)
        t_ser1 = tracer.now
        writer.writelines(parts)
        await writer.drain()
        t_end = tracer.now
        breakdown = dict(attr)
        breakdown["serialization"] += t_ser1 - t_ser0
        breakdown["socket_write"] = t_end - t_ser1
        e2e = t_end - t_arrival
        # Exact closure: "other" absorbs what no probe measured (handler
        # bookkeeping, clock skew between probes); near zero by design.
        breakdown["other"] = e2e - sum(breakdown.values())
        span.t1 = t_end
        span.set(op=op, e2e_s=e2e, breakdown=breakdown, wait_overlap=wait_overlap)
        self.live.observe_request(op, e2e, breakdown)
        return op

    def _begin_request(self) -> None:
        self._inflight += 1
        self._idle.clear()

    def _end_request(self) -> None:
        self._inflight -= 1
        if self._inflight == 0:
            self._idle.set()

    def _bbox(self, header: dict[str, Any]) -> BBox:
        return BBox(tuple(header["lb"]), tuple(header["ub"]))

    async def _dispatch(self, header: dict[str, Any], payload: bytes) -> tuple[dict, Any]:
        op = header.get("op")
        live = self.live
        if op == "ping":
            return {"ok": True, "now": live.engine.now}, b""
        if op == "put":
            data = None
            if payload:
                data = np.frombuffer(payload, dtype=header.get("dtype", "uint8"))
            duration = await live.put(
                header.get("client", "client"), header["var"], self._bbox(header), data
            )
            return {"ok": True, "duration": duration}, b""
        if op == "get":
            duration, payloads = await live.get(
                header.get("client", "client"),
                header["var"],
                self._bbox(header),
                header.get("verify"),
            )
            blocks = []
            chunks = []
            for bid in sorted(payloads):
                # Zero-copy: ship a memoryview over the block's array; the
                # scatter/gather write_frame sends the list without joining.
                buf = np.ascontiguousarray(payloads[bid], dtype=np.uint8)
                blocks.append([int(bid), int(buf.size)])
                chunks.append(memoryview(buf).cast("B"))
            return {"ok": True, "duration": duration, "blocks": blocks}, chunks
        if op == "mput":
            # Batched put: one shard's sub-regions of a routed client put.
            # Header: "puts" = [[lb, ub, nbytes], ...]; payload = the
            # sub-regions' bytes concatenated in list order (empty nbytes
            # means synthetic payload, like a put without data).
            dtype = np.dtype(header.get("dtype", "uint8"))
            subputs: list[tuple[BBox, Any]] = []
            off = 0
            for lb, ub, nbytes in header["puts"]:
                data = None
                if nbytes:
                    data = np.frombuffer(
                        payload, dtype=dtype, count=nbytes // dtype.itemsize, offset=off
                    )
                    off += nbytes
                subputs.append((BBox(tuple(lb), tuple(ub)), data))
            duration = await live.put_blocks(
                header.get("client", "client"), header["var"], subputs
            )
            return {"ok": True, "duration": duration}, b""
        if op == "mget":
            regions = [BBox(tuple(lb), tuple(ub)) for lb, ub in header["regions"]]
            duration, payloads = await live.get_blocks(
                header.get("client", "client"), header["var"], regions,
                header.get("verify"),
            )
            blocks = []
            chunks = []
            for bid in sorted(payloads):
                buf = np.ascontiguousarray(payloads[bid], dtype=np.uint8)
                blocks.append([int(bid), int(buf.size)])
                chunks.append(memoryview(buf).cast("B"))
            return {"ok": True, "duration": duration, "blocks": blocks}, chunks
        if op == "query":
            region = self._bbox(header)
            out = []
            for bid in live.domain.blocks_overlapping(region):
                ent = live.directory.get(header["var"], bid)
                if ent is None:
                    out.append({"block": bid, "version": -1})
                    continue
                out.append(
                    {
                        "block": bid,
                        "version": ent.version,
                        "state": ent.state.value,
                        "primary": ent.primary,
                        "replicas": list(ent.replicas),
                        "stripe": None if ent.stripe is None else ent.stripe.stripe_id,
                        "nbytes": ent.nbytes,
                    }
                )
            return {"ok": True, "blocks": out}, b""
        if op == "step":
            await live.end_step()
            return {"ok": True, "step": live.step}, b""
        if op == "flush":
            await live.flush()
            return {"ok": True}, b""
        if op == "quiesce":
            await live.quiesce()
            return {"ok": True}, b""
        if op == "fail":
            live.fail_server(int(header["server"]))
            return {"ok": True}, b""
        if op == "replace":
            live.replace_server(int(header["server"]))
            return {"ok": True}, b""
        if op == "snapshot":
            await live.quiesce()
            return {"ok": True, "snapshot": live.state_snapshot()}, b""
        if op == "projection":
            # Quiescent conformance projection (timing-free state) — what
            # the sharded differential harness merges across shards and
            # diffs against a single-process run.
            from repro.live.conformance import conformance_projection

            await live.quiesce()
            return {"ok": True, "projection": conformance_projection(live.service)}, b""
        if op == "stats":
            return {"ok": True, "stats": live.stats()}, b""
        if op == "metrics":
            # Prometheus text exposition as the response payload — the
            # live protocol's /metrics endpoint.
            return {"ok": True}, live.metrics_text().encode("utf-8")
        if op == "verify":
            return {"ok": True, "result": await live.verify_all()}, b""
        if op == "invariants":
            # Quiescent invariant sweep over this deployment's state —
            # what chaos campaigns run in-process, exposed on the wire so
            # a cluster coordinator can audit every shard after a fault.
            # The digest audit runs through the live async read paths
            # (its sim checker would call the engine's forbidden run()).
            from repro.chaos.invariants import (
                INVARIANTS,
                QUIESCENT,
                Violation,
                audit_violations,
                run_invariants,
            )

            await live.quiesce()
            state_checks = [i.name for i in INVARIANTS if i.name != "digest_audit"]
            violations = run_invariants(live.service, tier=QUIESCENT, names=state_checks)
            audit = await live.verify_all()
            now = live.engine.now
            violations.extend(
                Violation("digest_audit", detail, now)
                for detail in audit_violations(live.service, audit)
            )
            return {"ok": True, "violations": [str(v) for v in violations]}, b""
        if op == "shutdown":
            # Schedule the graceful stop *here*, not as a side effect of
            # the connection loop: serve_until_shutdown stops accepting,
            # drains in-flight requests (this response included) and then
            # closes the engine — the teardown the cluster coordinator
            # relies on for clean shard shutdown.
            await self.stop()
            return {"ok": True}, b""
        raise ProtocolError(f"unknown op {op!r}")


class ServerHandle:
    """A live server running on its own thread + event loop.

    ``live`` exposes the underlying service for observability readers
    (tracer spans, metrics registry) — safe to inspect from the launching
    thread once the server has stopped, or read-only while it runs.
    """

    def __init__(
        self,
        host: str,
        port: int,
        thread: threading.Thread,
        loop: asyncio.AbstractEventLoop,
        server: LiveServer,
        live: LiveStagingService | None = None,
        box: dict[str, Any] | None = None,
    ):
        self.host = host
        self.port = port
        self._thread = thread
        self._loop = loop
        self._server = server
        self.live = live
        self._box = box if box is not None else {}

    def stop(self, timeout: float = 30.0) -> None:
        """Request shutdown, surface its outcome, and join the server thread.

        The stop coroutine runs on the server's loop; its future is
        awaited with a deadline and any exception it raised is re-raised
        here instead of being dropped on the floor (a lost stop error
        used to surface only as an undiagnosed join timeout).  A crash of
        the server thread itself (recorded by the runner) is re-raised
        after the join for the same reason.
        """
        if self._thread.is_alive():
            try:
                future = asyncio.run_coroutine_threadsafe(self._server.stop(), self._loop)
            except RuntimeError:
                # The loop wound down between the aliveness check and the
                # submit — the thread is exiting; fall through to join.
                future = None
            if future is not None:
                try:
                    future.result(timeout)
                except FuturesTimeoutError:
                    future.cancel()
                    raise RuntimeError(
                        f"live server stop() did not complete within {timeout}s"
                    ) from None
        self._thread.join(timeout)
        if self._thread.is_alive():  # pragma: no cover - watchdog
            raise RuntimeError("live server thread did not stop")
        err = self._box.get("error")
        if err is not None and not self._box.get("error_raised"):
            self._box["error_raised"] = True
            raise RuntimeError(f"live server thread failed: {err!r}") from err

    def join(self, timeout: float | None = None) -> None:
        """Block until the server thread exits (e.g. after a ``shutdown``
        frame drains it) — how a shard process waits out its lifetime."""
        self._thread.join(timeout)

    def __enter__(self) -> "ServerHandle":
        return self

    def __exit__(self, *exc) -> None:
        self.stop()


def serve_in_thread(
    config: StagingConfig,
    policy_factory: Callable[[], Any],
    host: str = "127.0.0.1",
    port: int = 0,
    time_scale: float = 0.0,
    max_workers: int | None = None,
    tracing: bool = False,
) -> ServerHandle:
    """Run a live staging server on a dedicated thread; returns its handle.

    ``tracing=True`` gives the service a wall-clock tracer (distributed
    span trees, per-request attribution, loop-lag watchdog); read the
    results through ``handle.live`` after ``handle.stop()``.
    """
    started = threading.Event()
    box: dict[str, Any] = {}

    def runner() -> None:
        async def main() -> None:
            live = LiveStagingService(
                config,
                policy_factory(),
                time_scale=time_scale,
                max_workers=max_workers,
                tracing=tracing,
            )
            server = LiveServer(live)
            bound_host, bound_port = await server.start(host, port)
            box["host"], box["port"] = bound_host, bound_port
            box["loop"] = asyncio.get_running_loop()
            box["server"] = server
            box["live"] = live
            started.set()
            await server.serve_until_shutdown()

        try:
            asyncio.run(main())
        except BaseException as exc:
            # Before start(): surfaced by serve_in_thread below.  After:
            # surfaced by ServerHandle.stop() once the thread is joined.
            box["error"] = exc
            started.set()
            raise

    thread = threading.Thread(target=runner, name="repro-live-server", daemon=True)
    thread.start()
    if not started.wait(timeout=30.0):  # pragma: no cover - watchdog
        raise RuntimeError("live server failed to start within 30s")
    if "error" in box:
        raise RuntimeError(f"live server failed to start: {box['error']!r}")
    return ServerHandle(
        box["host"], box["port"], thread, box["loop"], box["server"], box["live"],
        box=box,
    )
