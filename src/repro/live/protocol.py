"""Length-prefixed put/get/query wire protocol for the live backend.

Frame layout (both directions)::

    +----------------+---------------------+----------------------+
    | header_len: u32| header: JSON (utf-8)| payload: raw bytes   |
    | little-endian  | header_len bytes    | header["payload_len"]|
    +----------------+---------------------+----------------------+

The JSON header carries the operation and its metadata; bulk object
bytes ride behind it untouched (no base64, no JSON inflation).  Requests
carry ``op`` plus op-specific fields; responses carry ``ok`` plus result
fields, or ``ok: false`` with ``error``/``error_type`` on failure.

Zero-copy framing
-----------------
Payload bytes are never concatenated in this module: a frame is built as
a *list* of buffers (:func:`frame_parts`) — one small prefix holding the
length word plus the JSON header, then the payload buffers exactly as
the caller handed them over (``memoryview``\\ s over numpy arrays, block
slices, …).  Senders hand the list to a scatter/gather primitive —
``StreamWriter.writelines`` on the asyncio side, ``socket.sendmsg`` on
the blocking client — and receivers land bytes directly into one
preallocated buffer (``recv_into``) and return ``memoryview`` slices of
it.  :data:`PROTO_STATS` counts the payload copies that do happen (only
the legacy :func:`_encode_frame` join performs one), so tests can assert
the hot path stays at zero.

Hot-path header encoding: ``json.dumps`` of a per-request dict shows up
at GB/s payload rates, so stable header fields can be pre-serialized
once into a :func:`header_preamble` and reused — only the payload length
is appended per frame.  :class:`LiveClient` caches preambles per
(op, var, region) key.

Operations
----------
``ping``, ``put``, ``get``, ``mput``, ``mget``, ``query``, ``step``,
``flush``, ``quiesce``, ``fail``, ``replace``, ``snapshot``, ``projection``,
``stats``, ``metrics``, ``verify``, ``invariants``, ``shutdown`` — see
:class:`repro.live.server.LiveServer` for semantics.

Trace propagation
-----------------
When a client is built with a :class:`~repro.obs.wallclock.WallClockTracer`,
each request opens an ``rpc.<op>`` span and carries ``"trace"`` (trace id)
and ``"span"`` (parent span id) in the frame header, appended per frame
*after* ``payload_len`` so cached preambles stay valid.  A traced server
links its dispatch span to them and returns its own span id (``srv_span``)
plus the request's latency attribution (``attr``) in the response header.
With tracing off, no extra fields are encoded and frames are byte-for-byte
identical to the untraced protocol.

This module is transport-agnostic plumbing: async reader/writer framing
for the server side and a blocking-socket :class:`LiveClient` for load
generators and tests (usable from plain threads or subprocesses — no
asyncio needed on the client side).
"""

from __future__ import annotations

import json
import socket
import struct
import time
from typing import Any, Sequence

import numpy as np

from repro.obs.registry import StatCounters

__all__ = [
    "ProtocolError",
    "RemoteOpError",
    "PROTO_STATS",
    "frame_parts",
    "header_preamble",
    "read_frame",
    "read_frame_timed",
    "write_frame",
    "LiveClient",
]

_LEN = struct.Struct("<I")
MAX_HEADER_BYTES = 1 << 20
MAX_PAYLOAD_BYTES = 1 << 30

#: Copy accounting for the payload path.  ``payload_copies`` /
#: ``bytes_copied`` count every place this module materializes payload
#: bytes it already held in another buffer; the scatter/gather send and
#: recv_into receive paths never increment them.  Thread-safe: client
#: threads and the server loop thread increment concurrently.
PROTO_STATS = StatCounters(
    ("frames_out", "frames_in", "payload_copies", "bytes_copied", "preamble_hits")
)


class ProtocolError(RuntimeError):
    """Malformed frame on the wire."""


class RemoteOpError(RuntimeError):
    """The server reported a failure executing the requested operation."""

    def __init__(self, error_type: str, message: str):
        super().__init__(f"{error_type}: {message}")
        self.error_type = error_type


Buffer = Any  # bytes | bytearray | memoryview | numpy array view


def _payload_list(payload: Buffer | Sequence[Buffer]) -> list[memoryview]:
    """Normalize one buffer or a sequence of buffers to flat byte views.

    Only ``list``/``tuple`` are treated as scatter/gather part sequences;
    anything else exposing the buffer protocol (bytes, memoryview, numpy
    array, ...) is one buffer — iterating it element-wise would shred an
    array into thousands of scalar "parts".
    """
    parts = list(payload) if isinstance(payload, (list, tuple)) else [payload]
    views = []
    for part in parts:
        view = part if isinstance(part, memoryview) else memoryview(part)
        if view.format != "B" or view.ndim != 1:
            view = view.cast("B")
        if view.nbytes:
            views.append(view)
    return views


def header_preamble(header: dict[str, Any]) -> bytes:
    """Pre-serialize a header's stable fields, ready for length append.

    Returns the compact JSON encoding of ``header`` minus the closing
    brace, ending in ``,"payload_len":`` — a frame prefix is completed by
    appending the decimal payload length and ``}``.  Callers that send
    many frames with identical metadata serialize the dict once instead
    of per frame (:class:`LiveClient` keeps a small cache).
    """
    raw = json.dumps(header, separators=(",", ":")).encode("utf-8")
    if raw == b"{}":
        return b'{"payload_len":'
    return raw[:-1] + b',"payload_len":'


def _extra_fields(extra: dict[str, Any] | None) -> bytes:
    """Encode per-frame header fields appended after ``payload_len``.

    Returns ``b""`` for no extras (the frame bytes are then identical to
    a build without the parameter), else ``,"k":v,...`` ready to splice
    before the closing brace.  This is how trace context rides along
    without invalidating cached preambles: the preamble covers the stable
    fields, the extras vary per frame like the payload length does.
    """
    if not extra:
        return b""
    raw = json.dumps(extra, separators=(",", ":")).encode("utf-8")
    return b"," + raw[1:-1]


def _prefix(preamble: bytes, payload_len: int, extra: bytes = b"") -> bytes:
    raw = preamble + str(payload_len).encode("ascii") + extra + b"}"
    if len(raw) > MAX_HEADER_BYTES:
        raise ProtocolError(f"header too large ({len(raw)} bytes)")
    return _LEN.pack(len(raw)) + raw


def frame_parts(
    header: dict[str, Any] | None,
    payload: Buffer | Sequence[Buffer] = b"",
    preamble: bytes | None = None,
    extra: dict[str, Any] | None = None,
) -> list[Buffer]:
    """Build one frame as a buffer list — no payload bytes are copied.

    The first element is the length word + JSON header (one small bytes
    object); the rest are the payload buffers exactly as given.  Pass a
    cached ``preamble`` (from :func:`header_preamble`) to skip the JSON
    encoding of the stable header fields entirely.  ``extra`` fields
    (trace context) are encoded per frame after ``payload_len``; when
    ``extra`` is None the output is byte-identical to a call without it.
    """
    views = _payload_list(payload)
    plen = sum(v.nbytes for v in views)
    if plen > MAX_PAYLOAD_BYTES:
        raise ProtocolError(f"payload too large ({plen} bytes)")
    if preamble is None:
        preamble = header_preamble(header or {})
    else:
        PROTO_STATS.inc("preamble_hits")
    PROTO_STATS.inc("frames_out")
    return [_prefix(preamble, plen, _extra_fields(extra)), *views]


def _encode_frame(header: dict[str, Any], payload: bytes | memoryview = b"") -> bytes:
    """Legacy single-buffer framing: joins the parts (copies the payload).

    Kept for tests and for callers that genuinely need one contiguous
    buffer; the data plane uses :func:`frame_parts` + scatter/gather
    sends instead.
    """
    parts = frame_parts(header, payload)
    plen = sum(memoryview(p).nbytes for p in parts[1:])
    if plen:
        PROTO_STATS.inc("payload_copies")
        PROTO_STATS.inc("bytes_copied", plen)
    return b"".join(bytes(p) if not isinstance(p, bytes) else p for p in parts)


def _decode_header(raw: bytes | bytearray | memoryview) -> dict[str, Any]:
    if isinstance(raw, memoryview):
        raw = bytes(raw)  # headers are small; payload never passes through here
    try:
        header = json.loads(raw.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"bad frame header: {exc}") from exc
    if not isinstance(header, dict):
        raise ProtocolError("frame header must be a JSON object")
    plen = header.get("payload_len", 0)
    if not isinstance(plen, int) or plen < 0 or plen > MAX_PAYLOAD_BYTES:
        raise ProtocolError(f"bad payload_len {plen!r}")
    return header


# ---------------------------------------------------------------------------
# asyncio framing (server side)
# ---------------------------------------------------------------------------
async def read_frame(reader) -> tuple[dict[str, Any], bytes]:
    """Read one frame; raises ``EOFError`` on clean connection close.

    The payload lands in the single buffer ``readexactly`` returns —
    that is its final resting place on this side (``np.frombuffer``
    wraps it without copying), so the receive path contributes no
    intermediate copies.
    """
    try:
        head = await reader.readexactly(_LEN.size)
    except Exception as exc:  # IncompleteReadError or closed transport
        raise EOFError("connection closed") from exc
    (hlen,) = _LEN.unpack(head)
    if hlen == 0 or hlen > MAX_HEADER_BYTES:
        raise ProtocolError(f"bad header length {hlen}")
    header = _decode_header(await reader.readexactly(hlen))
    payload = await reader.readexactly(header["payload_len"]) if header["payload_len"] else b""
    PROTO_STATS.inc("frames_in")
    return header, payload


async def read_frame_timed(reader, clock) -> tuple[dict[str, Any], bytes, float, float, float]:
    """:func:`read_frame` plus arrival time and socket/decode timing.

    Returns ``(header, payload, t_arrival, read_s, decode_s)`` where
    ``t_arrival`` is the ``clock()`` reading right after the first length
    byte arrived (the earliest this process can observe the request),
    ``read_s`` is time spent awaiting header/payload bytes off the socket
    and ``decode_s`` the JSON header decode.  Identical wire behaviour to
    :func:`read_frame`; only used by the traced server path.
    """
    try:
        head = await reader.readexactly(_LEN.size)
    except Exception as exc:  # IncompleteReadError or closed transport
        raise EOFError("connection closed") from exc
    t_arrival = clock()
    (hlen,) = _LEN.unpack(head)
    if hlen == 0 or hlen > MAX_HEADER_BYTES:
        raise ProtocolError(f"bad header length {hlen}")
    hraw = await reader.readexactly(hlen)
    t_head = clock()
    header = _decode_header(hraw)
    t_decoded = clock()
    if header["payload_len"]:
        payload = await reader.readexactly(header["payload_len"])
    else:
        payload = b""
    t_body = clock()
    PROTO_STATS.inc("frames_in")
    read_s = (t_head - t_arrival) + (t_body - t_decoded)
    return header, payload, t_arrival, read_s, t_decoded - t_head


async def write_frame(
    writer,
    header: dict[str, Any],
    payload: Buffer | Sequence[Buffer] = b"",
    extra: dict[str, Any] | None = None,
) -> None:
    """Scatter/gather frame send: no payload concatenation in our code.

    ``payload`` may be one buffer or a list of buffers (e.g. a get
    response's block views); ``writelines`` hands the list to the
    transport as-is.
    """
    writer.writelines(frame_parts(header, payload, extra=extra))
    await writer.drain()


# ---------------------------------------------------------------------------
# blocking client
# ---------------------------------------------------------------------------
class LiveClient:
    """Synchronous client speaking the live protocol over one TCP connection.

    Not thread-safe: use one client per thread/process.  Ops raise
    :class:`RemoteOpError` when the server reports a failure.

    Payload discipline: requests are sent with ``socket.sendmsg`` (vectored,
    no join), responses land via ``recv_into`` one preallocated buffer and
    get/``request`` return ``memoryview`` slices of it — zero intermediate
    copies in either direction.  The views stay valid indefinitely (each
    response owns its buffer) but a new request allocates a new one, so
    hold ``bytes(view)`` if you need the data past the next call *and*
    want independence from the buffer's lifetime.
    """

    def __init__(
        self,
        host: str,
        port: int,
        name: str = "client",
        timeout: float | None = 60.0,
        tracer=None,
        connect_timeout: float | None = None,
        reconnect: bool = True,
        reconnect_backoff: float = 0.2,
    ):
        self.name = name
        self.host = host
        self.port = port
        # ``timeout`` is the per-op deadline: every request's socket I/O
        # must make progress within it or the op raises ``TimeoutError``.
        # A killed/hung server therefore surfaces as a bounded, typed
        # error instead of a caller blocked forever.
        self.timeout = timeout
        self._connect_timeout = connect_timeout if connect_timeout is not None else timeout
        # One bounded reconnect: after a connection failure is surfaced,
        # the *next* request attempts a fresh connection (with one backoff
        # retry) instead of failing forever on a dead socket.  The failed
        # op itself is never silently replayed — at-most-once semantics
        # are the caller's to reason about.
        self._reconnect = reconnect
        self._reconnect_backoff = reconnect_backoff
        self.sock: socket.socket | None = None
        self._connect()
        # op/var/region header preambles, serialized once per distinct key.
        self._preambles: dict[tuple, bytes] = {}
        # Optional WallClockTracer: every request gets an rpc span whose
        # trace context rides the frame header, and the server's latency
        # attribution (response "attr" field) is kept in ``last_attr``.
        # None (the default) adds zero work and zero header bytes.
        self.tracer = tracer
        self.last_attr: dict[str, float] | None = None

    def _connect(self) -> None:
        sock = socket.create_connection(
            (self.host, self.port), timeout=self._connect_timeout
        )
        sock.settimeout(self.timeout)
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        self.sock = sock

    def _mark_broken(self) -> None:
        if self.sock is not None:
            try:
                self.sock.close()
            except OSError:  # pragma: no cover - best effort
                pass
            self.sock = None

    def _ensure_connected(self) -> None:
        if self.sock is not None:
            return
        if not self._reconnect:
            raise ConnectionError(
                f"connection to {self.host}:{self.port} is closed"
            )
        try:
            self._connect()
            return
        except OSError:
            time.sleep(self._reconnect_backoff)
        try:
            self._connect()
        except OSError as exc:
            raise ConnectionError(
                f"reconnect to {self.host}:{self.port} failed: {exc}"
            ) from exc

    # -- framing -------------------------------------------------------
    def _send_parts(self, parts: list[Buffer]) -> None:
        """Vectored send with partial-send continuation."""
        views = [p if isinstance(p, memoryview) else memoryview(p) for p in parts]
        views = [v if v.format == "B" and v.ndim == 1 else v.cast("B") for v in views]
        while views:
            sent = self.sock.sendmsg(views)
            while sent:
                if sent >= views[0].nbytes:
                    sent -= views[0].nbytes
                    views.pop(0)
                else:
                    views[0] = views[0][sent:]
                    sent = 0
            views = [v for v in views if v.nbytes]

    def _recv_exactly(self, n: int) -> memoryview:
        """Receive exactly ``n`` bytes into one fresh buffer (no joins)."""
        buf = bytearray(n)
        view = memoryview(buf)
        got = 0
        while got < n:
            nread = self.sock.recv_into(view[got:], n - got)
            if nread == 0:
                raise EOFError("server closed the connection")
            got += nread
        return view

    def _cached_preamble(self, key: tuple, header: dict[str, Any]) -> bytes:
        pre = self._preambles.get(key)
        if pre is None:
            pre = header_preamble(header)
            if len(self._preambles) >= 256:  # bound memory under key churn
                self._preambles.clear()
            self._preambles[key] = pre
        return pre

    def request(
        self,
        header: dict[str, Any],
        payload: Buffer | Sequence[Buffer] = b"",
        preamble: bytes | None = None,
    ) -> tuple[dict[str, Any], memoryview]:
        tracer = self.tracer
        if tracer is None or not tracer.enabled:
            return self._request_raw(header, payload, preamble, None)
        span = tracer.begin(
            f"rpc.{header.get('op', '?')}", category="rpc", client=self.name
        )
        extra = {"trace": span.trace_id, "span": span.span_id}
        try:
            resp, body = self._request_raw(header, payload, preamble, extra)
        except BaseException as exc:
            tracer.end(span, error=repr(exc))
            raise
        attr = resp.get("attr")
        if attr is not None:
            self.last_attr = attr
            span.set(server_attr=attr)
        if resp.get("srv_span") is not None:
            span.set(srv_span=resp["srv_span"])
        tracer.end(span)
        return resp, body

    def _request_raw(
        self,
        header: dict[str, Any],
        payload: Buffer | Sequence[Buffer],
        preamble: bytes | None,
        extra: dict[str, Any] | None,
    ) -> tuple[dict[str, Any], memoryview]:
        self._ensure_connected()
        op = header.get("op", "?")
        try:
            self._send_parts(frame_parts(header, payload, preamble=preamble, extra=extra))
            (hlen,) = _LEN.unpack(self._recv_exactly(_LEN.size))
            if hlen == 0 or hlen > MAX_HEADER_BYTES:
                raise ProtocolError(f"bad header length {hlen}")
            resp = _decode_header(self._recv_exactly(hlen))
            body = self._recv_exactly(resp["payload_len"]) if resp["payload_len"] else memoryview(b"")
        except socket.timeout as exc:
            # The op blew its deadline: the connection's framing state is
            # unknown (a late response would desync the next request), so
            # the socket is condemned and the next op reconnects.
            self._mark_broken()
            raise TimeoutError(
                f"rpc {op!r} to {self.host}:{self.port} exceeded the "
                f"{self.timeout}s deadline"
            ) from exc
        except (EOFError, OSError) as exc:
            self._mark_broken()
            raise ConnectionError(
                f"connection to {self.host}:{self.port} lost during rpc {op!r}: {exc}"
            ) from exc
        PROTO_STATS.inc("frames_in")
        if not resp.get("ok", False):
            raise RemoteOpError(resp.get("error_type", "Error"), resp.get("error", "unknown"))
        return resp, body

    # -- operations ----------------------------------------------------
    def ping(self) -> float:
        resp, _ = self.request({"op": "ping"})
        return float(resp["now"])

    def put(self, var: str, lb, ub, data: np.ndarray | None = None) -> float:
        header = {"op": "put", "client": self.name, "var": var,
                  "lb": list(lb), "ub": list(ub)}
        payload: Buffer = b""
        key = ("put", var, tuple(lb), tuple(ub), None)
        if data is not None:
            arr = np.ascontiguousarray(data)
            header["dtype"] = str(arr.dtype)
            payload = memoryview(arr).cast("B")  # zero-copy view of the array
            key = ("put", var, tuple(lb), tuple(ub), header["dtype"])
        resp, _ = self.request(header, payload, preamble=self._cached_preamble(key, header))
        return float(resp["duration"])

    def get(
        self, var: str, lb, ub, verify: bool | None = None
    ) -> tuple[float, dict[int, memoryview]]:
        header = {"op": "get", "client": self.name, "var": var,
                  "lb": list(lb), "ub": list(ub)}
        if verify is not None:
            header["verify"] = bool(verify)
        key = ("get", var, tuple(lb), tuple(ub), verify)
        resp, body = self.request(header, preamble=self._cached_preamble(key, header))
        blocks: dict[int, memoryview] = {}
        off = 0
        for bid, nbytes in resp["blocks"]:
            blocks[int(bid)] = body[off:off + nbytes]  # zero-copy slice
            off += nbytes
        return float(resp["duration"]), blocks

    def mput(
        self,
        var: str,
        puts: Sequence[tuple],
        parts: Sequence[Buffer] = (),
        dtype: str | None = None,
    ) -> float:
        """Batched put: ``puts`` is ``[(lb, ub, nbytes), ...]``; ``parts``
        the matching payload buffers in order (scatter/gather, no join)."""
        header: dict[str, Any] = {
            "op": "mput", "client": self.name, "var": var,
            "puts": [[list(lb), list(ub), int(n)] for lb, ub, n in puts],
        }
        if dtype is not None:
            header["dtype"] = dtype
        resp, _ = self.request(header, list(parts))
        return float(resp["duration"])

    def mget(
        self, var: str, regions: Sequence[tuple], verify: bool | None = None
    ) -> tuple[float, dict[int, memoryview]]:
        """Batched get of several ``(lb, ub)`` regions of one variable."""
        header: dict[str, Any] = {
            "op": "mget", "client": self.name, "var": var,
            "regions": [[list(lb), list(ub)] for lb, ub in regions],
        }
        if verify is not None:
            header["verify"] = bool(verify)
        resp, body = self.request(header)
        blocks: dict[int, memoryview] = {}
        off = 0
        for bid, nbytes in resp["blocks"]:
            blocks[int(bid)] = body[off:off + nbytes]  # zero-copy slice
            off += nbytes
        return float(resp["duration"]), blocks

    def projection(self) -> dict[str, Any]:
        """Quiescent conformance projection of the server's deployment."""
        resp, _ = self.request({"op": "projection"})
        return resp["projection"]

    def query(self, var: str, lb, ub) -> list[dict[str, Any]]:
        resp, _ = self.request({"op": "query", "var": var, "lb": list(lb), "ub": list(ub)})
        return resp["blocks"]

    def step(self) -> int:
        resp, _ = self.request({"op": "step"})
        return int(resp["step"])

    def flush(self) -> None:
        self.request({"op": "flush"})

    def quiesce(self) -> None:
        self.request({"op": "quiesce"})

    def fail_server(self, sid: int) -> None:
        self.request({"op": "fail", "server": int(sid)})

    def replace_server(self, sid: int) -> None:
        self.request({"op": "replace", "server": int(sid)})

    def snapshot(self) -> dict[str, Any]:
        resp, _ = self.request({"op": "snapshot"})
        return resp["snapshot"]

    def stats(self) -> dict[str, Any]:
        resp, _ = self.request({"op": "stats"})
        return resp["stats"]

    def metrics_text(self) -> str:
        """Fetch the server's Prometheus text exposition (``/metrics`` dump)."""
        _, body = self.request({"op": "metrics"})
        return bytes(body).decode("utf-8")

    def verify(self) -> dict[str, Any]:
        resp, _ = self.request({"op": "verify"})
        return resp["result"]

    def invariants(self) -> list[str]:
        """Quiescent invariant sweep on the server; returns violations."""
        resp, _ = self.request({"op": "invariants"})
        return resp["violations"]

    def shutdown(self) -> None:
        try:
            self.request({"op": "shutdown"})
        except (EOFError, OSError):  # server may close before replying
            pass

    def close(self) -> None:
        if self.sock is None:
            return
        try:
            self.sock.close()
        except OSError:  # pragma: no cover - best effort
            pass
        self.sock = None

    def __enter__(self) -> "LiveClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
