"""Length-prefixed put/get/query wire protocol for the live backend.

Frame layout (both directions)::

    +----------------+---------------------+----------------------+
    | header_len: u32| header: JSON (utf-8)| payload: raw bytes   |
    | little-endian  | header_len bytes    | header["payload_len"]|
    +----------------+---------------------+----------------------+

The JSON header carries the operation and its metadata; bulk object
bytes ride behind it untouched (no base64, no JSON inflation).  Requests
carry ``op`` plus op-specific fields; responses carry ``ok`` plus result
fields, or ``ok: false`` with ``error``/``error_type`` on failure.

Operations
----------
``ping``, ``put``, ``get``, ``query``, ``step``, ``flush``, ``quiesce``,
``fail``, ``replace``, ``snapshot``, ``stats``, ``verify``, ``shutdown``
— see :class:`repro.live.server.LiveServer` for semantics.

This module is transport-agnostic plumbing: async reader/writer framing
for the server side and a blocking-socket :class:`LiveClient` for load
generators and tests (usable from plain threads or subprocesses — no
asyncio needed on the client side).
"""

from __future__ import annotations

import json
import socket
import struct
from typing import Any

import numpy as np

__all__ = [
    "ProtocolError",
    "RemoteOpError",
    "read_frame",
    "write_frame",
    "LiveClient",
]

_LEN = struct.Struct("<I")
MAX_HEADER_BYTES = 1 << 20
MAX_PAYLOAD_BYTES = 1 << 30


class ProtocolError(RuntimeError):
    """Malformed frame on the wire."""


class RemoteOpError(RuntimeError):
    """The server reported a failure executing the requested operation."""

    def __init__(self, error_type: str, message: str):
        super().__init__(f"{error_type}: {message}")
        self.error_type = error_type


def _encode_frame(header: dict[str, Any], payload: bytes | memoryview = b"") -> bytes:
    header = dict(header)
    header["payload_len"] = len(payload)
    raw = json.dumps(header, separators=(",", ":")).encode("utf-8")
    if len(raw) > MAX_HEADER_BYTES:
        raise ProtocolError(f"header too large ({len(raw)} bytes)")
    return _LEN.pack(len(raw)) + raw + bytes(payload)


def _decode_header(raw: bytes) -> dict[str, Any]:
    try:
        header = json.loads(raw.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"bad frame header: {exc}") from exc
    if not isinstance(header, dict):
        raise ProtocolError("frame header must be a JSON object")
    plen = header.get("payload_len", 0)
    if not isinstance(plen, int) or plen < 0 or plen > MAX_PAYLOAD_BYTES:
        raise ProtocolError(f"bad payload_len {plen!r}")
    return header


# ---------------------------------------------------------------------------
# asyncio framing (server side)
# ---------------------------------------------------------------------------
async def read_frame(reader) -> tuple[dict[str, Any], bytes]:
    """Read one frame; raises ``EOFError`` on clean connection close."""
    try:
        head = await reader.readexactly(_LEN.size)
    except Exception as exc:  # IncompleteReadError or closed transport
        raise EOFError("connection closed") from exc
    (hlen,) = _LEN.unpack(head)
    if hlen == 0 or hlen > MAX_HEADER_BYTES:
        raise ProtocolError(f"bad header length {hlen}")
    header = _decode_header(await reader.readexactly(hlen))
    payload = await reader.readexactly(header["payload_len"]) if header["payload_len"] else b""
    return header, payload


async def write_frame(writer, header: dict[str, Any], payload: bytes | memoryview = b"") -> None:
    writer.write(_encode_frame(header, payload))
    await writer.drain()


# ---------------------------------------------------------------------------
# blocking client
# ---------------------------------------------------------------------------
class LiveClient:
    """Synchronous client speaking the live protocol over one TCP connection.

    Not thread-safe: use one client per thread/process.  Ops raise
    :class:`RemoteOpError` when the server reports a failure.
    """

    def __init__(self, host: str, port: int, name: str = "client", timeout: float | None = 60.0):
        self.name = name
        self.sock = socket.create_connection((host, port), timeout=timeout)
        self.sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)

    # -- framing -------------------------------------------------------
    def _recv_exactly(self, n: int) -> bytes:
        chunks = []
        remaining = n
        while remaining:
            chunk = self.sock.recv(min(remaining, 1 << 20))
            if not chunk:
                raise EOFError("server closed the connection")
            chunks.append(chunk)
            remaining -= len(chunk)
        return b"".join(chunks)

    def request(self, header: dict[str, Any], payload: bytes = b"") -> tuple[dict[str, Any], bytes]:
        self.sock.sendall(_encode_frame(header, payload))
        (hlen,) = _LEN.unpack(self._recv_exactly(_LEN.size))
        if hlen == 0 or hlen > MAX_HEADER_BYTES:
            raise ProtocolError(f"bad header length {hlen}")
        resp = _decode_header(self._recv_exactly(hlen))
        body = self._recv_exactly(resp["payload_len"]) if resp["payload_len"] else b""
        if not resp.get("ok", False):
            raise RemoteOpError(resp.get("error_type", "Error"), resp.get("error", "unknown"))
        return resp, body

    # -- operations ----------------------------------------------------
    def ping(self) -> float:
        resp, _ = self.request({"op": "ping"})
        return float(resp["now"])

    def put(self, var: str, lb, ub, data: np.ndarray | None = None) -> float:
        header = {"op": "put", "client": self.name, "var": var,
                  "lb": list(lb), "ub": list(ub)}
        payload = b""
        if data is not None:
            arr = np.ascontiguousarray(data)
            header["dtype"] = str(arr.dtype)
            payload = arr.tobytes()
        resp, _ = self.request(header, payload)
        return float(resp["duration"])

    def get(self, var: str, lb, ub, verify: bool | None = None) -> tuple[float, dict[int, bytes]]:
        header = {"op": "get", "client": self.name, "var": var,
                  "lb": list(lb), "ub": list(ub)}
        if verify is not None:
            header["verify"] = bool(verify)
        resp, body = self.request(header)
        blocks: dict[int, bytes] = {}
        off = 0
        for bid, nbytes in resp["blocks"]:
            blocks[int(bid)] = body[off:off + nbytes]
            off += nbytes
        return float(resp["duration"]), blocks

    def query(self, var: str, lb, ub) -> list[dict[str, Any]]:
        resp, _ = self.request({"op": "query", "var": var, "lb": list(lb), "ub": list(ub)})
        return resp["blocks"]

    def step(self) -> int:
        resp, _ = self.request({"op": "step"})
        return int(resp["step"])

    def flush(self) -> None:
        self.request({"op": "flush"})

    def quiesce(self) -> None:
        self.request({"op": "quiesce"})

    def fail_server(self, sid: int) -> None:
        self.request({"op": "fail", "server": int(sid)})

    def replace_server(self, sid: int) -> None:
        self.request({"op": "replace", "server": int(sid)})

    def snapshot(self) -> dict[str, Any]:
        resp, _ = self.request({"op": "snapshot"})
        return resp["snapshot"]

    def stats(self) -> dict[str, Any]:
        resp, _ = self.request({"op": "stats"})
        return resp["stats"]

    def verify(self) -> dict[str, Any]:
        resp, _ = self.request({"op": "verify"})
        return resp["result"]

    def shutdown(self) -> None:
        try:
            self.request({"op": "shutdown"})
        except (EOFError, OSError):  # server may close before replying
            pass

    def close(self) -> None:
        try:
            self.sock.close()
        except OSError:  # pragma: no cover - best effort
            pass

    def __enter__(self) -> "LiveClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
