"""Sharded multi-process live cluster.

One OS process per shard, each running the complete live stack
(:func:`~repro.live.server.serve_in_thread`'s engine + service + TCP
server) for a *subset of the coding groups*.  The partitioning unit is
the coding group because every structure that matters already breaks
along group lines:

- placement never crosses a coding group: replicas live in the aligned
  replication sub-window, stripe shards in the group, and every failure
  redirect (replica promotion, encoded retarget, pending redirect,
  unprotected fallback) stays inside the group;
- the metadata directory's reverse indexes are keyed by server and
  group, so a shard's directory is exactly the global directory
  restricted to its groups — no record is split, none is shared;
- stripe ids are allocated per group (``g + n_groups * i``), so shards
  mint exactly the ids a single process would.

Each shard process instantiates the *full* deployment config (all N
servers); servers outside its groups are empty husks that never host an
object.  That keeps every id computation (ring positions, group
windows, hash owners) bit-identical to a single-process run, which is
what the sharded conformance suite asserts.

The coordinator (:class:`LiveCluster`) spawns the shard processes,
collects their endpoints, and hands out :class:`~repro.live.router.ClusterClient`
routers.  Clean teardown goes through the wire: a ``shutdown`` frame per
shard drains in-flight requests, closes the engine and lets the process
exit on its own; ``kill_shard`` is the chaos path (SIGKILL, nothing
drains — the shard's in-memory state is gone, which is exactly the
failure domain the test suite probes).
"""

from __future__ import annotations

import multiprocessing
import os
from dataclasses import dataclass
from typing import Any, Sequence

from repro.staging.service import StagingConfig, build_geometry

__all__ = ["ShardPlan", "LiveCluster", "build_policy"]


# ---------------------------------------------------------------------------
# policy specs (picklable across process boundaries)
# ---------------------------------------------------------------------------
def build_policy(policy_spec: tuple[str, dict[str, Any]]):
    """Construct a resilience policy from a (name, options) spec.

    Shard processes cannot receive live policy objects (not picklable,
    and sharing one across processes would be wrong anyway), so the
    cluster ships a spec and every shard builds its own instance —
    mirroring ``serve_in_thread``'s fresh-policy-per-server contract.
    """
    name, options = policy_spec
    if name == "replicate":
        from repro.core.policies import ReplicationPolicy

        return ReplicationPolicy()
    if name == "corec":
        from repro.core.corec import CoRECConfig, CoRECPolicy

        return CoRECPolicy(CoRECConfig(**options))
    raise ValueError(f"unknown policy spec {name!r}")


# ---------------------------------------------------------------------------
# shard plan
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class ShardPlan:
    """Static partition of one deployment's coding groups onto shards.

    Pure function of (config, n_shards): the coordinator, every router
    and every test derive the same plan independently, so there is no
    membership state to synchronize.  Shard ``s`` owns the contiguous
    group range ``[s * groups_per_shard, (s+1) * groups_per_shard)``.
    """

    config: StagingConfig
    n_shards: int
    groups_per_shard: int
    group_to_shard: tuple[int, ...]
    server_to_shard: tuple[int, ...]

    @classmethod
    def build(cls, config: StagingConfig, n_shards: int) -> "ShardPlan":
        _, _, _, layout = build_geometry(config)
        n_groups = layout.n_coding_groups()
        if n_shards < 1:
            raise ValueError(f"need at least one shard, got {n_shards}")
        if n_shards > 1 and config.placement_mode != "grouped":
            # Sharding partitions the cluster by coding-group ranges; the
            # spread/coding_sets modes place parity on servers outside the
            # group, which may land on a different shard — cross-shard
            # stripes are not supported by the shard-local directories.
            raise ValueError(
                f"placement_mode={config.placement_mode!r} can place parity "
                f"across coding-group boundaries and cannot be sharded; "
                f"use n_shards=1 or grouped placement"
            )
        if n_groups % n_shards:
            raise ValueError(
                f"{n_groups} coding groups do not divide into {n_shards} shards; "
                f"choose a server count whose group count is a multiple of the "
                f"shard count"
            )
        groups_per_shard = n_groups // n_shards
        group_to_shard = tuple(g // groups_per_shard for g in range(n_groups))
        server_to_shard = tuple(
            group_to_shard[layout.coding_group_id(sid)]
            for sid in range(config.n_servers)
        )
        return cls(
            config=config,
            n_shards=n_shards,
            groups_per_shard=groups_per_shard,
            group_to_shard=group_to_shard,
            server_to_shard=server_to_shard,
        )

    # -- routing -------------------------------------------------------
    def shard_of_server(self, sid: int) -> int:
        return self.server_to_shard[sid]

    def shard_groups(self, shard: int) -> list[int]:
        return [g for g, s in enumerate(self.group_to_shard) if s == shard]

    def shard_servers(self, shard: int) -> list[int]:
        return [sid for sid, s in enumerate(self.server_to_shard) if s == shard]


# ---------------------------------------------------------------------------
# shard worker (child-process entry point)
# ---------------------------------------------------------------------------
def _shard_worker(
    shard_id: int,
    config: StagingConfig,
    policy_spec: tuple[str, dict[str, Any]],
    host: str,
    conn,
    time_scale: float,
    max_workers: int | None,
    tracing: bool,
) -> None:  # pragma: no cover - runs in a child process
    """Run one shard: a full live server bound to an ephemeral port.

    Reports ``("ready", host, port)`` (or ``("error", repr)``) over the
    pipe, then blocks until the server thread exits — which happens when
    a ``shutdown`` frame arrives and the graceful drain completes, so a
    clean cluster stop needs no signals at all.
    """
    from repro.live.server import serve_in_thread

    try:
        handle = serve_in_thread(
            config,
            lambda: build_policy(policy_spec),
            host=host,
            port=0,
            time_scale=time_scale,
            max_workers=max_workers,
            tracing=tracing,
        )
    except BaseException as exc:
        try:
            conn.send(("error", repr(exc)))
        finally:
            conn.close()
        return
    conn.send(("ready", handle.host, handle.port))
    conn.close()
    handle.join()


# ---------------------------------------------------------------------------
# coordinator
# ---------------------------------------------------------------------------
class LiveCluster:
    """Spawn and manage one sharded live deployment.

    ``policy_spec`` is a ``(name, options)`` pair (see :func:`build_policy`);
    each shard builds its own policy instance.  ``start_method`` defaults
    to ``fork`` where available (cheap on Linux; the coordinator holds no
    event loop or server threads when spawning) and ``spawn`` elsewhere.
    """

    def __init__(
        self,
        config: StagingConfig,
        policy_spec: tuple[str, dict[str, Any]],
        n_shards: int,
        time_scale: float = 0.0,
        max_workers: int | None = None,
        tracing: bool = False,
        host: str = "127.0.0.1",
        start_method: str | None = None,
        start_timeout: float = 60.0,
    ):
        self.plan = ShardPlan.build(config, n_shards)
        self.config = config
        self.policy_spec = policy_spec
        self._host = host
        self._worker_args = (policy_spec, host, time_scale, max_workers, tracing)
        if start_method is None:
            start_method = (
                "fork" if "fork" in multiprocessing.get_all_start_methods() else "spawn"
            )
        self._ctx = multiprocessing.get_context(start_method)
        self._start_timeout = start_timeout
        self.processes: list[multiprocessing.Process | None] = [None] * n_shards
        self.endpoints: list[tuple[str, int] | None] = [None] * n_shards
        try:
            for shard in range(n_shards):
                self._spawn(shard)
        except BaseException:
            self.stop(force=True)
            raise

    # -- lifecycle -----------------------------------------------------
    def _spawn(self, shard: int) -> None:
        policy_spec, host, time_scale, max_workers, tracing = self._worker_args
        parent_conn, child_conn = self._ctx.Pipe(duplex=False)
        proc = self._ctx.Process(
            target=_shard_worker,
            args=(
                shard, self.config, policy_spec, host, child_conn,
                time_scale, max_workers, tracing,
            ),
            name=f"repro-live-shard-{shard}",
            daemon=True,
        )
        proc.start()
        child_conn.close()
        if not parent_conn.poll(self._start_timeout):
            proc.kill()
            raise RuntimeError(f"shard {shard} did not report within {self._start_timeout}s")
        msg = parent_conn.recv()
        parent_conn.close()
        if msg[0] != "ready":
            proc.join(5.0)
            raise RuntimeError(f"shard {shard} failed to start: {msg[1]}")
        self.processes[shard] = proc
        self.endpoints[shard] = (msg[1], msg[2])

    @property
    def n_shards(self) -> int:
        return self.plan.n_shards

    def client(self, name: str = "client", **client_kwargs):
        """A router connected to every shard (see :class:`ClusterClient`)."""
        from repro.live.router import ClusterClient

        endpoints = list(self.endpoints)
        if any(ep is None for ep in endpoints):
            raise RuntimeError("cluster has unstarted shards")
        return ClusterClient(self.plan, endpoints, name=name, **client_kwargs)

    def alive_shards(self) -> list[int]:
        return [
            s for s, p in enumerate(self.processes) if p is not None and p.is_alive()
        ]

    def kill_shard(self, shard: int) -> None:
        """Chaos path: SIGKILL the shard process (no drain, state lost)."""
        proc = self.processes[shard]
        if proc is not None and proc.is_alive():
            proc.kill()
            proc.join(10.0)
        self.endpoints[shard] = None

    def restart_shard(self, shard: int) -> tuple[str, int]:
        """Replace a dead shard with a fresh (empty) process.

        Mirrors the paper's staging-server replacement at the process
        level: the replacement owns the same groups but starts with no
        objects — only data protected *within* surviving shards is still
        servable, and the chaos suite asserts exactly that boundary.
        """
        proc = self.processes[shard]
        if proc is not None and proc.is_alive():
            raise RuntimeError(f"shard {shard} is still alive; kill it first")
        self._spawn(shard)
        return self.endpoints[shard]  # type: ignore[return-value]

    def stop(self, timeout: float = 30.0, force: bool = False) -> None:
        """Drain and stop every live shard; escalate to kill on timeout."""
        from repro.live.protocol import LiveClient

        if not force:
            for shard, proc in enumerate(self.processes):
                ep = self.endpoints[shard]
                if proc is None or not proc.is_alive() or ep is None:
                    continue
                try:
                    with LiveClient(
                        ep[0], ep[1], name="coordinator",
                        timeout=timeout, reconnect=False,
                    ) as cli:
                        cli.shutdown()
                except OSError:
                    pass  # already gone; the join below reaps it
        for proc in self.processes:
            if proc is not None and proc.is_alive():
                proc.join(timeout)
        stuck = [
            s for s, p in enumerate(self.processes) if p is not None and p.is_alive()
        ]
        for shard in stuck:
            self.processes[shard].kill()  # type: ignore[union-attr]
            self.processes[shard].join(10.0)  # type: ignore[union-attr]
        self.processes = [None] * self.plan.n_shards
        self.endpoints = [None] * self.plan.n_shards
        if stuck and not force:
            raise RuntimeError(f"shards {stuck} did not drain within {timeout}s; killed")

    def __enter__(self) -> "LiveCluster":
        return self

    def __exit__(self, *exc) -> None:
        self.stop(force=exc[0] is not None)


def default_shards() -> int:
    """Conservative shard-count default for CLI smoke runs."""
    return max(1, min(2, (os.cpu_count() or 1)))
