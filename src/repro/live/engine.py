"""Wall-clock scheduling engine: the live backend's :class:`~repro.core.backend.Clock`.

The simulator's generator-process model (:mod:`repro.sim.engine`) touches
its scheduler through exactly three primitives — ``event()``,
``_schedule_event(event, delay)`` and ``_schedule_callback(cb, delay)`` —
plus ``now``.  :class:`LiveEngine` implements those primitives on top of a
running asyncio event loop, so the *same* ``Event`` / ``Timeout`` /
``Process`` / condition classes and the same ``Resource`` locks drive every
staging flow (replication, stripe formation, parity maintenance, recovery)
under real concurrency, with no second copy of the mechanics.

Key differences from the simulator:

- ``now`` is the wall clock (monotonic seconds since engine start).
- Modeled delays are scaled by ``time_scale`` (default ``0.0``: cost-model
  timeouts fire immediately, so the engine runs as fast as the hardware
  allows; a nonzero scale re-introduces modeled pacing for experiments).
- ``offload(fn)`` runs host-side numeric work (GF(2^8) encode/decode
  batches) on a :class:`~concurrent.futures.ThreadPoolExecutor` and
  returns an :class:`~repro.sim.engine.Event` that fires on the loop when
  the work completes — this is what :meth:`StagingRuntime.compute` yields
  on in live mode, keeping kernel passes off the event loop.
- ``quiesce()`` awaits full drain (no scheduled actions, no in-flight
  offloads) — the live analogue of ``Simulator.run()`` running the heap
  dry — and re-raises any exception a detached background process died
  with instead of letting it vanish into the loop's exception handler.

Thread discipline: every engine method must be called on the loop thread
(offload completion callbacks are marshalled back onto it), so all
scheduler and directory state stays single-threaded exactly like the
simulator; only the numeric payload work inside ``offload`` runs on
worker threads.
"""

from __future__ import annotations

import asyncio
import contextvars
import os
import threading
import time
import weakref
from collections import deque
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Callable, Generator

from repro.obs.tracer import NULL_TRACER
from repro.sim.engine import Event, Process, Timeout

__all__ = ["LiveEngine", "LiveProcessError"]


class LiveProcessError(RuntimeError):
    """A detached background process crashed during a live run.

    Carries every exception collected since the last drain so a stress
    test failure shows all crashes, not just the first.
    """

    def __init__(self, errors: list[BaseException]):
        self.errors = list(errors)
        heads = ", ".join(f"{type(e).__name__}: {e}" for e in self.errors[:3])
        more = f" (+{len(self.errors) - 3} more)" if len(self.errors) > 3 else ""
        super().__init__(f"{len(self.errors)} live process(es) crashed: {heads}{more}")


class LiveEngine:
    """Asyncio-backed implementation of the :class:`repro.core.backend.Clock`."""

    def __init__(
        self,
        time_scale: float = 0.0,
        max_workers: int | None = None,
        codec_workers: int | None = None,
    ):
        self.loop = asyncio.get_running_loop()
        self.time_scale = float(time_scale)
        self._t0 = time.monotonic()
        # Scheduled-but-not-yet-executed actions (microqueue + timers) and
        # in-flight offloads; quiescence is both counters at zero.
        self._pending = 0
        self._offloads = 0
        # Zero-delay actions drain through one FIFO microqueue per loop
        # callback instead of one call_soon (and one selector round) each:
        # a put chains ~15 zero-delay events, and per-event loop iterations
        # were the dominant cost of the whole request path.  The batch cap
        # bounds how long the drain keeps the loop from its selector, so
        # socket I/O stays responsive under load.  Entries are
        # ``(action, context)``; the context is None with tracing off and
        # a per-action contextvars snapshot with tracing on, so the
        # wall-clock tracer's request scope survives the shared drain
        # callback (``call_later``/``add_done_callback`` capture context
        # natively, the batched microqueue must do it by hand).
        self._soon: deque[tuple[Callable[[], None], contextvars.Context | None]] = deque()
        self._drain_scheduled = False
        self.soon_batch = 128
        self._timer_deadlines: dict[int, float] = {}
        self._timer_seq = 0
        self._quiesce_waiters: list[asyncio.Future] = []
        self.errors: list[BaseException] = []
        self._processes: weakref.WeakSet[Process] = weakref.WeakSet()
        self._executor = ThreadPoolExecutor(
            max_workers=max_workers, thread_name_prefix="repro-live"
        )
        # Separate pool for *leaf* codec tasks (column splits of one kernel
        # pass).  Offloaded passes run on ``_executor`` workers and fan
        # their splits out here; keeping the pools distinct means a pass
        # can never deadlock waiting for splits behind other whole passes.
        if codec_workers is None:
            codec_workers = min(8, (os.cpu_count() or 1))
        self.codec_workers = codec_workers
        self._codec_executor = ThreadPoolExecutor(
            max_workers=codec_workers, thread_name_prefix="repro-codec"
        )
        # Wall-clock observability (off by default; the live service
        # installs a WallClockTracer and starts the watchdog).
        self.tracer = NULL_TRACER
        self._watchdog_task: asyncio.Task | None = None
        self._watchdog_hist = None
        self.loop_lag_s = 0.0
        self.loop_lag_max_s = 0.0
        self._closed = False

    # ------------------------------------------------------------------
    # Clock protocol
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        return time.monotonic() - self._t0

    def event(self) -> Event:
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        return Timeout(self, delay, value)

    def process(self, gen: Generator, name: str = "") -> Process:
        proc = Process(self, gen, name=name)
        self._processes.add(proc)
        return proc

    def peek(self) -> float:
        """Time of the next scheduled action (inf when fully drained).

        In-flight offloads count as imminent work: their completion event
        is scheduled the moment the worker finishes.
        """
        soon = self._pending - len(self._timer_deadlines)
        if soon > 0 or self._offloads > 0:
            return self.now
        if self._timer_deadlines:
            return min(self._timer_deadlines.values())
        return float("inf")

    # ------------------------------------------------------------------
    # scheduling primitives (the contract the sim's Event classes use)
    # ------------------------------------------------------------------
    def _schedule_event(self, event: Event, delay: float = 0.0) -> None:
        if event._scheduled:
            raise RuntimeError("event scheduled twice")
        event._scheduled = True
        self._schedule_action(delay, event._process)

    def _schedule_callback(self, cb: Callable[[], None], delay: float = 0.0) -> None:
        self._schedule_action(delay, cb)

    def _schedule_action(self, delay: float, action: Callable[[], None]) -> None:
        self._pending += 1
        wall = delay * self.time_scale
        if wall <= 0.0:
            # FIFO at zero delay, matching the simulator's same-timestamp
            # sequence-number ordering.
            ctx = contextvars.copy_context() if self.tracer.enabled else None
            self._soon.append((action, ctx))
            if not self._drain_scheduled:
                self._drain_scheduled = True
                self.loop.call_soon(self._drain_soon)
        else:
            self._timer_seq += 1
            key = self._timer_seq
            self._timer_deadlines[key] = self.now + wall
            self.loop.call_later(wall, self._run_action, action, key)

    def _drain_soon(self) -> None:
        """Run queued zero-delay actions FIFO, up to the batch cap."""
        budget = self.soon_batch
        queue = self._soon
        while queue and budget > 0:
            budget -= 1
            action, ctx = queue.popleft()
            try:
                if ctx is not None:
                    ctx.run(action)
                else:
                    action()
            except BaseException as exc:  # detached crash: re-raised at drain
                self.errors.append(exc)
            finally:
                self._pending -= 1
        if queue:
            self.loop.call_soon(self._drain_soon)  # yield to the selector first
        else:
            self._drain_scheduled = False
        self._notify_if_drained()

    def _run_action(self, action: Callable[[], None], timer_key: int | None) -> None:
        if timer_key is not None:
            self._timer_deadlines.pop(timer_key, None)
        try:
            action()
        except BaseException as exc:  # detached process crash: keep, re-raise at drain
            self.errors.append(exc)
        finally:
            self._pending -= 1
            self._notify_if_drained()

    def _notify_if_drained(self) -> None:
        if self._pending == 0 and self._offloads == 0 and self._quiesce_waiters:
            waiters, self._quiesce_waiters = self._quiesce_waiters, []
            for fut in waiters:
                if not fut.done():
                    fut.set_result(None)

    # ------------------------------------------------------------------
    # live-only surface
    # ------------------------------------------------------------------
    def offload(self, fn: Callable[[], Any], charge: str = "offload") -> Event:
        """Run ``fn`` on a worker thread; the returned event fires on the loop.

        ``charge`` names the attribution bucket the caller's wait on the
        returned event is charged to, and the category of the worker-side
        span when tracing is on.
        """
        if self._closed:
            raise RuntimeError("offload on a closed LiveEngine")
        ev = Event(self)
        tracer = self.tracer
        if tracer.enabled:
            ev.charge = charge
            # Snapshot the caller's context so the worker-side span lands
            # under the flow span that requested the offload.
            ctx = contextvars.copy_context()
            work = fn

            def _traced_work():
                span = tracer.begin(
                    f"offload.{charge}",
                    category=charge,
                    thread=threading.get_ident(),
                )
                token = tracer.activate(span)
                try:
                    return work()
                except BaseException as exc:
                    span.set(error=repr(exc))
                    raise
                finally:
                    tracer.deactivate(token)
                    tracer.end(span)

            fn = lambda: ctx.run(_traced_work)  # noqa: E731
        self._offloads += 1
        fut = self.loop.run_in_executor(self._executor, fn)

        def _done(f: asyncio.Future) -> None:
            self._offloads -= 1
            exc = f.exception()
            if exc is not None:
                ev.fail(exc)
            else:
                ev.succeed(f.result())

        fut.add_done_callback(_done)
        return ev

    def codec_map(self, tasks: list[Callable[[], None]]) -> None:
        """Run one kernel pass's column-split tasks across the codec pool.

        This is the :attr:`RSCode.parallel_map` hook for live deployments:
        the codec layer hands over independent closures (each writing a
        disjoint byte range), and they execute concurrently — the native
        GF kernel releases the GIL for the duration of the C call, so the
        splits genuinely overlap.  The first task runs inline on the
        calling thread (usually an ``offload`` worker): only *leaf* tasks
        ever enter the codec pool, so nested submission deadlock is
        impossible, and a single-task pass costs no handoff at all.
        Exceptions propagate to the caller after every task has finished
        (no split is left half-written when a sibling fails).
        """
        tracer = self.tracer
        if not tracer.enabled:
            if len(tasks) <= 1 or self._closed:
                for task in tasks:
                    task()
                return
            futs = [self._codec_executor.submit(task) for task in tasks[1:]]
            first_exc: BaseException | None = None
            try:
                tasks[0]()
            except BaseException as exc:
                first_exc = exc
            for fut in futs:
                try:
                    fut.result()
                except BaseException as exc:
                    if first_exc is None:
                        first_exc = exc
            if first_exc is not None:
                raise first_exc
            return
        self._codec_map_traced(tasks, tracer)

    def _codec_map_traced(self, tasks: list[Callable[[], None]], tracer) -> None:
        """codec_map with one pass span + one span per column-split task.

        Same execution and exception semantics as the untraced path; the
        task spans carry explicit parents because codec-pool threads have
        no inherited context.  Task spans close on the exception path too,
        so a poisoned split never leaves an open span in the export.
        """
        pass_span = tracer.begin(
            "codec.pass", category="codec", parent=tracer.current, tasks=len(tasks)
        )

        def run_task(index: int, task: Callable[[], None]) -> None:
            span = tracer.begin(
                "codec.task",
                category="codec",
                parent=pass_span,
                index=index,
                thread=threading.get_ident(),
            )
            try:
                task()
            except BaseException as exc:
                span.set(error=repr(exc))
                raise
            finally:
                tracer.end(span)

        first_exc: BaseException | None = None
        try:
            if len(tasks) <= 1 or self._closed:
                for i, task in enumerate(tasks):
                    run_task(i, task)
                return
            futs = [
                self._codec_executor.submit(run_task, i, task)
                for i, task in enumerate(tasks[1:], start=1)
            ]
            try:
                run_task(0, tasks[0])
            except BaseException as exc:
                first_exc = exc
            for fut in futs:
                try:
                    fut.result()
                except BaseException as exc:
                    if first_exc is None:
                        first_exc = exc
            if first_exc is not None:
                raise first_exc
        except BaseException as exc:
            pass_span.set(error=repr(exc))
            raise
        finally:
            tracer.end(pass_span)

    def wait(self, event: Event) -> asyncio.Future:
        """Bridge a process-model event to an awaitable."""
        fut = self.loop.create_future()

        def _fire(ev: Event) -> None:
            if fut.done():
                return
            if ev.ok:
                fut.set_result(ev.value)
            else:
                fut.set_exception(ev.value)

        event._add_callback(_fire)
        return fut

    async def run_process(self, gen: Generator, name: str = "") -> Any:
        """Start ``gen`` as a process and await its completion value."""
        return await self.wait(self.process(gen, name=name))

    async def quiesce(self, settle_rounds: int = 2) -> None:
        """Await full drain of scheduled work and offloads.

        ``settle_rounds`` extra no-op loop passes absorb completions that
        land exactly at the drain edge (an offload finishing between the
        counter check and the waiter registration).  Raises
        :class:`LiveProcessError` if any detached process crashed since
        the previous drain.
        """
        while True:
            if self._pending == 0 and self._offloads == 0:
                settled = True
                for _ in range(settle_rounds):
                    await asyncio.sleep(0)
                    if self._pending or self._offloads:
                        settled = False
                        break
                if settled:
                    break
            else:
                fut = self.loop.create_future()
                self._quiesce_waiters.append(fut)
                await fut
        if self.errors:
            errors, self.errors = list(self.errors), []
            raise LiveProcessError(errors)

    # ------------------------------------------------------------------
    # observability surface
    # ------------------------------------------------------------------
    @property
    def microqueue_depth(self) -> int:
        """Zero-delay actions waiting in the drain queue."""
        return len(self._soon)

    @property
    def pool_queue_depth(self) -> int:
        """Offload work items queued behind busy worker threads."""
        return self._executor._work_queue.qsize()

    @property
    def codec_queue_depth(self) -> int:
        """Column-split tasks queued behind busy codec-pool threads."""
        return self._codec_executor._work_queue.qsize()

    @property
    def offloads_inflight(self) -> int:
        return self._offloads

    def start_watchdog(self, interval: float = 0.05, histogram=None) -> None:
        """Start the event-loop lag sampler (idempotent).

        A background task sleeps ``interval`` and measures how late it
        wakes — the classic loop-lag probe: any callback (or GIL-holding
        kernel pass) that blocks the loop shows up as lag.  The latest and
        max readings are published as attributes (gauges read them); an
        optional registry ``histogram`` accumulates the distribution.
        The task never touches ``_pending``, so it does not keep
        ``quiesce()`` from draining.
        """
        if self._watchdog_task is not None or self._closed:
            return
        self._watchdog_hist = histogram

        async def _watch() -> None:
            while True:
                t0 = time.monotonic()
                await asyncio.sleep(interval)
                lag = max(0.0, time.monotonic() - t0 - interval)
                self.loop_lag_s = lag
                if lag > self.loop_lag_max_s:
                    self.loop_lag_max_s = lag
                if self._watchdog_hist is not None:
                    self._watchdog_hist.observe(lag)

        self._watchdog_task = self.loop.create_task(_watch())

    def stop_watchdog(self) -> None:
        if self._watchdog_task is not None:
            self._watchdog_task.cancel()
            self._watchdog_task = None

    def alive_processes(self) -> list[Process]:
        """Processes started on this engine that have not completed.

        After a clean ``quiesce()`` this must be empty; anything left is
        deadlocked (waiting on an event nothing will ever fire)."""
        return [p for p in self._processes if p.is_alive]

    def run(self, until: Any = None) -> None:  # pragma: no cover - guard rail
        raise RuntimeError(
            "LiveEngine has no synchronous run(); await quiesce() or wait(event)"
        )

    def close(self) -> None:
        if not self._closed:
            self._closed = True
            self.stop_watchdog()
            self._executor.shutdown(wait=True, cancel_futures=True)
            self._codec_executor.shutdown(wait=True, cancel_futures=True)
