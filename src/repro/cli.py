"""Command-line interface: run experiments without writing a script.

Usage::

    python -m repro run-case --case case1 --policy corec --timesteps 20
    python -m repro run-s3d --scale 0 --policy corec --shrink 8
    python -m repro model --s 0.67 --miss 0.2
    python -m repro run-case --case case5 --policy corec \
        --fail 4:0 --replace 8:0
    python -m repro trace --case case1 --policy corec --out traces/
    python -m repro report --trace traces/spans.jsonl
    python -m repro scale --servers 4 8 16
    python -m repro load --process poisson --rate 50 --duration 2 \
        --shards 2 --capture run.tape.jsonl
    python -m repro replay --tape run.tape.jsonl --backend cluster --shards 2

``--fail STEP:SERVER`` / ``--replace STEP:SERVER`` inject the paper's
Figure-10-style failure schedules.  ``trace`` runs with hierarchical span
tracing enabled and exports Perfetto-loadable ``trace.json`` plus JSONL
span/event dumps (see docs/OBSERVABILITY.md).
"""

from __future__ import annotations

import argparse
import json
import sys

import numpy as np


def _make_policy(name: str, storage_bound: float, seed: int):
    from repro import (
        CoRECConfig,
        CoRECPolicy,
        ErasurePolicy,
        NoResilience,
        ReplicationPolicy,
        SimpleHybridPolicy,
    )

    return {
        "none": lambda: NoResilience(),
        "replicate": lambda: ReplicationPolicy(),
        "erasure": lambda: ErasurePolicy(),
        "hybrid": lambda: SimpleHybridPolicy(
            storage_bound=storage_bound, rng=np.random.default_rng(seed)
        ),
        "corec": lambda: CoRECPolicy(CoRECConfig(storage_bound=storage_bound)),
    }[name]()


def _parse_plan(fails: list[str], replaces: list[str]) -> dict:
    plan: dict[int, list[tuple[str, int]]] = {}
    for action, items in (("fail", fails), ("replace", replaces)):
        for item in items:
            step_s, _, sid_s = item.partition(":")
            plan.setdefault(int(step_s), []).append((action, int(sid_s)))
    return plan


def _build_case(args: argparse.Namespace, tracing: bool = False):
    """One synthetic Table-I case: service + workload, ready to run."""
    from repro import StagingConfig, StagingService
    from repro.workloads.synthetic import SyntheticWorkload, SyntheticWorkloadConfig

    service = StagingService(
        StagingConfig(
            n_servers=args.servers,
            domain_shape=tuple(args.domain),
            element_bytes=args.element_bytes,
            object_max_bytes=args.object_bytes,
            async_protection=args.async_protection,
            tracing=tracing,
            seed=args.seed,
        ),
        _make_policy(args.policy, args.storage_bound, args.seed),
    )
    workload = SyntheticWorkload(
        service,
        SyntheticWorkloadConfig(
            case=args.case,
            n_writers=args.writers,
            n_readers=args.readers,
            timesteps=args.timesteps,
            failure_plan=_parse_plan(args.fail, args.replace),
            seed=args.seed,
        ),
    )
    return service, workload


def cmd_run_case(args: argparse.Namespace) -> int:
    service, workload = _build_case(args)
    service.run_workflow(workload.run())
    service.run()
    out = {
        "case": args.case,
        "policy": args.policy,
        **service.metrics.snapshot(),
        "read_errors": service.read_errors,
        "step_put_ms": [v * 1e3 for v in workload.step_put.values],
        "step_get_ms": [v * 1e3 for v in workload.step_get.values],
    }
    _emit(out, args)
    return 0 if service.read_errors == 0 else 1


def cmd_trace(args: argparse.Namespace) -> int:
    """Run one traced case and export Chrome-trace / JSONL / metrics files."""
    import os

    from repro.obs.export import (
        spans_to_breakdown,
        write_chrome_trace,
        write_events_jsonl,
        write_metrics_json,
        write_spans_jsonl,
    )

    service, workload = _build_case(args, tracing=True)
    service.run_workflow(workload.run())
    service.run()
    os.makedirs(args.out, exist_ok=True)
    tracer = service.tracer
    artifacts = {
        "chrome_trace": write_chrome_trace(
            os.path.join(args.out, "trace.json"), tracer,
            process_name=f"repro-{args.case}-{args.policy}",
        ),
        "spans": write_spans_jsonl(os.path.join(args.out, "spans.jsonl"), tracer),
        "events": write_events_jsonl(os.path.join(args.out, "events.jsonl"), service.log),
        "metrics": write_metrics_json(os.path.join(args.out, "metrics.json"), service.metrics),
    }
    # Cross-check: summed leaf-span costs must reproduce Metrics.breakdown.
    recon = spans_to_breakdown(tracer.spans)
    breakdown = service.metrics.breakdown
    drift = max(
        (abs(recon.get(c, 0.0) - v) for c, v in breakdown.items()), default=0.0
    )
    out = {
        "case": args.case,
        "policy": args.policy,
        "spans": len(tracer.spans),
        "root_spans": len(tracer.roots()),
        "events": len(service.log),
        "events_dropped": service.log.dropped,
        "breakdown_max_drift_s": drift,
        "read_errors": service.read_errors,
        "artifacts": artifacts,
    }
    _emit(out, args)
    if drift > 1e-6:
        print(f"warning: trace/breakdown drift {drift:.3e}s exceeds 1e-6s", file=sys.stderr)
        return 1
    return 0 if service.read_errors == 0 else 1


def cmd_run_s3d(args: argparse.Namespace) -> int:
    from repro import StagingConfig, StagingService
    from repro.workloads.s3d import S3DConfig, S3DWorkload

    cfg = S3DConfig(
        scale_index=args.scale,
        shrink=args.shrink,
        per_core_subdomain=args.subdomain,
        timesteps=args.timesteps,
        analysis_every=args.analysis_every,
        failure_plan=_parse_plan(args.fail, args.replace),
    )
    service = StagingService(
        StagingConfig(
            n_servers=max(4, cfg.n_staging),
            domain_shape=cfg.domain_shape,
            element_bytes=cfg.element_bytes,
            object_max_bytes=args.object_bytes,
            nodes_per_cabinet=1,
            async_protection=args.async_protection,
            seed=args.seed,
        ),
        _make_policy(args.policy, args.storage_bound, args.seed),
    )
    workload = S3DWorkload(service, cfg)
    service.run_workflow(workload.run())
    service.run()
    out = {
        "scale_index": args.scale,
        "writers": cfg.n_writers,
        "staging": cfg.n_staging,
        "policy": args.policy,
        "cumulative_write_s": workload.cumulative_write_s,
        "cumulative_read_s": workload.cumulative_read_s,
        **service.metrics.snapshot(),
        "read_errors": service.read_errors,
    }
    _emit(out, args)
    return 0 if service.read_errors == 0 else 1


def cmd_durability(args: argparse.Namespace) -> int:
    from repro.core.durability import (
        DurabilityParams,
        annual_loss_probability,
        group_mttdl,
        recovery_deadline_tradeoff,
    )

    p = DurabilityParams(
        mtbf_s=args.mtbf,
        mttr_s=args.mttr,
        group_size=args.group_size,
        tolerance=args.tolerance,
    )
    out = {
        "group_mttdl_s": group_mttdl(p),
        "annual_loss_probability": annual_loss_probability(p, args.groups),
        "deadline_sweep": recovery_deadline_tradeoff(
            args.mtbf, args.group_size, args.tolerance
        ),
    }
    _emit(out, args)
    return 0


def _events_dropped_nearby(path: str) -> int | None:
    """Read ``eventlog.dropped`` from a metrics.json next to ``path``."""
    import os

    metrics_path = os.path.join(os.path.dirname(os.path.abspath(path)), "metrics.json")
    if not os.path.exists(metrics_path):
        return None
    try:
        with open(metrics_path, encoding="utf-8") as fh:
            registry = json.load(fh).get("registry", {})
    except (OSError, ValueError):
        return None
    dropped = registry.get("eventlog.dropped")
    return int(dropped) if dropped is not None else None


def _span_table(rows: list[dict]) -> None:
    header = f"{'span':<22} {'n':>7} {'total_s':>10} {'p50_s':>10} {'p95_s':>10} {'p99_s':>10} {'max_s':>10}"
    print(header)
    print("-" * len(header))
    for r in rows:
        print(
            f"{r['name']:<22} {r['n']:>7} {r['total']:>10.4f} {r['p50']:>10.6f} "
            f"{r['p95']:>10.6f} {r['p99']:>10.6f} {r['max']:>10.6f}"
        )


def _report_trace(path: str, as_json: bool) -> int:
    """Per-span-name duration summary of a ``spans.jsonl`` dump."""
    from repro.obs.registry import Histogram

    by_name: dict[str, Histogram] = {}
    with open(path, encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            row = json.loads(line)
            hist = by_name.get(row["name"])
            if hist is None:
                hist = by_name[row["name"]] = Histogram(row["name"])
            hist.observe(float(row["t1"]) - float(row["t0"]))
    rows = [{"name": name, **hist.snapshot()} for name, hist in by_name.items()]
    rows.sort(key=lambda r: -r["total"])
    if as_json:
        json.dump(rows, sys.stdout, indent=2, default=float)
        print()
        return 0
    _span_table(rows)
    dropped = _events_dropped_nearby(path)
    if dropped is not None:
        print(f"events dropped: {dropped}")
    return 0


def _report_live_trace(trace_dir: str, as_json: bool) -> int:
    """Summary of a wall-clock live trace directory.

    Reads ``spans.jsonl`` written by ``repro live --trace-dir`` (or
    ``bench_live.py --trace-dir``): per-span-name duration percentiles,
    request count and distinct trace count, plus per-category latency
    attribution aggregated from the dispatch spans' ``breakdown`` attrs.
    ``metrics.json`` in the same directory contributes the dropped-event
    count.
    """
    import os

    from repro.obs.registry import Histogram

    spans_path = os.path.join(trace_dir, "spans.jsonl")
    by_name: dict[str, Histogram] = {}
    attr_hists: dict[str, Histogram] = {}
    trace_ids: set[str] = set()
    n_spans = 0
    n_requests = 0
    with open(spans_path, encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            row = json.loads(line)
            n_spans += 1
            if row.get("trace_id"):
                trace_ids.add(row["trace_id"])
            hist = by_name.get(row["name"])
            if hist is None:
                hist = by_name[row["name"]] = Histogram(row["name"])
            hist.observe(float(row["t1"]) - float(row["t0"]))
            breakdown = (row.get("attrs") or {}).get("breakdown")
            if breakdown:
                n_requests += 1
                for cat, dt in breakdown.items():
                    cat_hist = attr_hists.get(cat)
                    if cat_hist is None:
                        cat_hist = attr_hists[cat] = Histogram(cat)
                    cat_hist.observe(float(dt))
    span_rows = [{"name": name, **hist.snapshot()} for name, hist in by_name.items()]
    span_rows.sort(key=lambda r: -r["total"])
    attr_rows = [{"name": cat, **hist.snapshot()} for cat, hist in attr_hists.items()]
    attr_rows.sort(key=lambda r: -r["total"])
    dropped = _events_dropped_nearby(spans_path)
    if as_json:
        json.dump(
            {
                "spans": n_spans,
                "traces": len(trace_ids),
                "requests": n_requests,
                "events_dropped": dropped,
                "by_span": span_rows,
                "attribution": attr_rows,
            },
            sys.stdout,
            indent=2,
            default=float,
        )
        print()
        return 0
    print(f"{n_spans} spans in {len(trace_ids)} traces, "
          f"{n_requests} attributed requests")
    if dropped is not None:
        print(f"events dropped: {dropped}")
    print()
    _span_table(span_rows)
    if attr_rows:
        print()
        print("latency attribution (per request, seconds):")
        _span_table(attr_rows)
    return 0


def cmd_report(args: argparse.Namespace) -> int:
    from repro.analysis import ascii_bars, ascii_series, list_results, load_results

    if args.live_trace:
        return _report_live_trace(args.live_trace, args.json)
    if args.trace:
        return _report_trace(args.trace, args.json)
    if args.list:
        for name in list_results(args.results_dir):
            print(name)
        return 0
    if not args.name:
        print("pick a result with --name (see --list)", file=sys.stderr)
        return 2
    payload = load_results(args.name, args.results_dir)
    if args.json:
        json.dump(payload, sys.stdout, indent=2, default=float)
        print()
        return 0
    # Heuristic rendering: dict of per-name series -> line plot; list of
    # rows with a numeric column -> bars; otherwise pretty-print.
    if isinstance(payload, dict) and all(
        isinstance(v, list) and v and isinstance(v[0], (int, float))
        for v in payload.values()
    ):
        print(ascii_series(payload, title=args.name))
        return 0
    if isinstance(payload, list) and payload and isinstance(payload[0], dict):
        numeric = [
            k for k, v in payload[0].items() if isinstance(v, (int, float)) and k != "read_errors"
        ]
        if numeric and "policy" in payload[0]:
            key = numeric[0]
            print(ascii_bars({r["policy"]: r[key] for r in payload}, title=f"{args.name}: {key}"))
            return 0
    json.dump(payload, sys.stdout, indent=2, default=float)
    print()
    return 0


def cmd_chaos(args: argparse.Namespace) -> int:
    """Run seed-reproducible fault campaigns with invariant checking.

    Exit status: 0 when every campaign passed, 1 when any invariant was
    violated (the failing campaign's schedule is shrunk and, with --out,
    its trace artifacts are dumped).
    """
    from repro.chaos import ChaosConfig, run_campaign

    modes = ["scheduled", "stochastic", "cabinet"] if args.mode == "all" else [args.mode]
    results = []
    failed = False
    for mode in modes:
        for i in range(args.campaigns):
            cfg = ChaosConfig(
                mode=mode,
                policy=args.policy,
                seed=args.seed + i,
                n_servers=args.servers,
                timesteps=args.timesteps,
                object_bytes=args.object_bytes,
                n_failures=args.failures,
                storage_bound=args.storage_bound,
                shrink=not args.no_shrink,
                out_dir=args.out,
            )
            result = run_campaign(cfg)
            results.append({"policy": args.policy, **result.summary()})
            if not result.passed:
                failed = True
    _emit({"campaigns": results} if len(results) > 1 else results[0], args)
    return 1 if failed else 0


def cmd_dataloss(args: argparse.Namespace) -> int:
    """Correlated-cabinet data-loss campaign: spread vs CodingSets placement.

    Exit status: 0 when CodingSets reduces stripe-kill events by at least
    ``--min-ratio`` (default 2x), 1 otherwise — so CI can gate on the
    placement actually paying off.
    """
    from repro.chaos import DataLossConfig, run_dataloss_campaign

    cfg = DataLossConfig(
        seed=args.seed,
        n_servers=args.servers,
        nodes_per_cabinet=args.nodes_per_cabinet,
        n_variables=args.variables,
        object_bytes=args.object_bytes,
        max_coding_sets=args.max_coding_sets,
        inject=not args.no_inject,
    )
    payload = run_dataloss_campaign(cfg)
    comparison = payload["comparisons"]["spread_vs_coding_sets"]
    if args.json:
        _emit(payload, args)
    else:
        for name, res in payload["placements"].items():
            print(
                f"{name:12s} stripes={res['stripes_total']} "
                f"kill_events={res['stripe_kill_events']} "
                f"p(kill|cabinet)={res['kill_probability']:.4f}"
            )
            inj = res.get("injected")
            if inj:
                print(
                    f"{'':12s} injected cabinet {inj['cabinet']}: "
                    f"{len(inj['unrecoverable'])} unrecoverable, "
                    f"{len(inj['unexplained_losses'])} unexplained"
                )
        print(f"loss ratio (spread/coding_sets): {comparison['loss_ratio']:.1f}")
        print(f"fingerprint: {payload['fingerprint']}")
    if comparison["loss_ratio"] < args.min_ratio:
        print(
            f"FAIL: loss ratio {comparison['loss_ratio']:.2f} "
            f"below required {args.min_ratio:.2f}",
            file=sys.stderr,
        )
        return 1
    return 0


def cmd_scale(args: argparse.Namespace) -> int:
    """Weak-scaling sweep of the failure paths with operation-count bounds.

    Exit status: 0 when directory touches per failure stay proportional to
    the failed server's share across the sweep, 1 when any complexity
    bound (or quiescent invariant) is violated.
    """
    from repro.scaling import SWEEP_SERVERS, ScalingConfig, check_bounds, run_scale

    cfg = ScalingConfig(
        servers=tuple(args.servers) if args.servers else SWEEP_SERVERS,
        blocks_per_server=args.blocks_per_server,
        timesteps=args.timesteps,
        seed=args.seed,
    )
    rows = [run_scale(cfg, n) for n in cfg.servers]
    problems = [] if args.no_assert else check_bounds(rows, cfg)
    _emit({"sweep": rows, "bound_violations": problems}, args)
    if problems and not args.json:
        for p in problems:
            print(f"BOUND VIOLATED: {p}", file=sys.stderr)
    return 1 if problems else 0


def _export_live_trace(out_dir: str, live) -> dict[str, str]:
    """Dump a stopped live service's trace + metrics artifacts to a dir.

    Same artifact set as ``repro trace`` (Perfetto ``trace.json``,
    ``spans.jsonl``, ``events.jsonl``, ``metrics.json``) plus a
    Prometheus text dump, with the wall-clock domain labeled in the
    Chrome trace metadata.
    """
    import os

    from repro.obs.export import (
        write_chrome_trace,
        write_events_jsonl,
        write_metrics_json,
        write_prometheus_text,
        write_spans_jsonl,
    )

    os.makedirs(out_dir, exist_ok=True)
    service = live.service
    return {
        "chrome_trace": write_chrome_trace(
            os.path.join(out_dir, "trace.json"), live.tracer,
            process_name="repro-live", clock="wall-clock seconds",
        ),
        "spans": write_spans_jsonl(os.path.join(out_dir, "spans.jsonl"), live.tracer),
        "events": write_events_jsonl(os.path.join(out_dir, "events.jsonl"), service.log),
        "metrics": write_metrics_json(os.path.join(out_dir, "metrics.json"), service.metrics),
        "prometheus": write_prometheus_text(
            os.path.join(out_dir, "metrics.prom"), service.metrics.registry
        ),
    }


def cmd_live(args: argparse.Namespace) -> int:
    """Serve the live (wall-clock, concurrent) staging backend over TCP.

    Default mode serves in the foreground until a ``shutdown`` frame or
    Ctrl-C.  ``--smoke`` instead runs the server on a background thread,
    drives a small client workload through the real socket path, prints
    the resulting stats and exits — the self-contained health check CI
    runs on every push.  ``--trace-dir DIR`` turns on wall-clock tracing
    and exports the span tree, event log, metrics snapshot and a
    Prometheus text dump to ``DIR`` on exit (both modes).
    """
    from repro import StagingConfig

    config = StagingConfig(
        n_servers=args.servers,
        domain_shape=tuple(args.domain),
        element_bytes=args.element_bytes,
        object_max_bytes=args.object_bytes,
        async_protection=args.async_protection,
        seed=args.seed,
    )
    tracing = bool(args.trace_dir)

    def policy_factory():
        return _make_policy(args.policy, args.storage_bound, args.seed)

    if args.shards > 1:
        return _cmd_live_cluster(args, config)

    if args.smoke:
        from repro.live import LiveClient, serve_in_thread

        handle = serve_in_thread(
            config, policy_factory, host=args.host, port=args.port,
            time_scale=args.time_scale, tracing=tracing,
        )
        try:
            # Sharing the server's tracer puts the in-process client's
            # rpc spans and the server's dispatch spans in one exported
            # span list — each request reads as one linked trace.
            tracer = handle.live.tracer if tracing else None
            with LiveClient(
                handle.host, handle.port, name="smoke", tracer=tracer
            ) as cli:
                for step in range(3):
                    for v in range(2):
                        cli.put(f"var{v}", (0, 0, 0), tuple(args.domain))
                    cli.step()
                _, blocks = cli.get("var0", (0, 0, 0), tuple(args.domain))
                cli.flush()
                cli.quiesce()
                audit = cli.verify()
                stats = cli.stats()
        finally:
            handle.stop()
        out = {
            "host": handle.host,
            "port": handle.port,
            "blocks_read": len(blocks),
            **stats,
            "unrecoverable": audit["unrecoverable"],
        }
        if tracing:
            out["spans"] = len(handle.live.tracer.spans)
            out["artifacts"] = _export_live_trace(args.trace_dir, handle.live)
        _emit(out, args)
        return 0 if not audit["unrecoverable"] else 1

    import asyncio

    from repro.live import LiveServer, LiveStagingService

    box: dict = {}

    async def serve() -> None:
        live = LiveStagingService(
            config, policy_factory(), time_scale=args.time_scale,
            max_workers=args.workers, tracing=tracing,
        )
        box["live"] = live
        server = LiveServer(live)
        host, port = await server.start(args.host, args.port)
        print(f"live staging server on {host}:{port} "
              f"({args.servers} servers, policy={args.policy})", file=sys.stderr)
        await server.serve_until_shutdown()

    try:
        asyncio.run(serve())
    except KeyboardInterrupt:  # pragma: no cover - interactive exit
        pass
    if tracing and "live" in box:
        artifacts = _export_live_trace(args.trace_dir, box["live"])
        print(f"trace artifacts in {args.trace_dir}: "
              f"{', '.join(sorted(artifacts))}", file=sys.stderr)
    return 0


def _cmd_live_cluster(args: argparse.Namespace, config) -> int:
    """``repro live --shards N``: the sharded multi-process deployment.

    One OS process per coding-group shard; clients route block ops by
    primary placement.  ``--smoke`` drives a routed workload through the
    cluster (cross-shard puts/gets, step/flush broadcasts, full audit +
    quiescent invariant sweep on every shard) and exits — the CI health
    check for the cluster path.  Foreground mode prints each shard's
    endpoint and serves until Ctrl-C.
    """
    from repro.live.cluster import LiveCluster

    if args.policy not in ("replicate", "corec"):
        print(
            f"--shards requires a process-shippable policy "
            f"(replicate or corec), not {args.policy!r}",
            file=sys.stderr,
        )
        return 2
    if args.trace_dir:
        print("--trace-dir is per-process; ignored with --shards > 1", file=sys.stderr)
    if args.policy == "replicate":
        pspec = ("replicate", {})
    else:
        # Group-scoped enforcement is the only storage-bound scope a
        # sharded deployment can evaluate (each shard sees its groups).
        pspec = (
            "corec",
            {"storage_bound": args.storage_bound, "enforcement_scope": "group"},
        )

    if args.smoke:
        with LiveCluster(
            config, pspec, args.shards,
            time_scale=args.time_scale, max_workers=args.workers, host=args.host,
        ) as cluster:
            endpoints = [list(ep) for ep in cluster.endpoints]
            with cluster.client(name="smoke") as cli:
                for _ in range(3):
                    for v in range(2):
                        cli.put(f"var{v}", (0, 0, 0), tuple(args.domain))
                    cli.step()
                _, blocks = cli.get("var0", (0, 0, 0), tuple(args.domain))
                cli.flush()
                cli.quiesce()
                audit = cli.verify()
                violations = cli.invariants()
                stats = cli.stats()
        out = {
            "endpoints": endpoints,
            "blocks_read": len(blocks),
            **stats,
            "unrecoverable": audit["unrecoverable"],
            "invariant_violations": violations,
        }
        _emit(out, args)
        return 0 if not audit["unrecoverable"] and not violations else 1

    cluster = LiveCluster(
        config, pspec, args.shards,
        time_scale=args.time_scale, max_workers=args.workers, host=args.host,
    )
    for shard, (host, port) in enumerate(cluster.endpoints):
        print(
            f"live staging shard {shard} on {host}:{port} "
            f"(servers {cluster.plan.shard_servers(shard)}, policy={args.policy})",
            file=sys.stderr,
        )
    try:
        for proc in cluster.processes:
            if proc is not None:
                proc.join()
    except KeyboardInterrupt:  # pragma: no cover - interactive exit
        pass
    finally:
        cluster.stop()
    return 0


def _load_config(args: argparse.Namespace):
    """Deployment config for the load/replay verbs (conformance-sized)."""
    from repro import StagingConfig

    return StagingConfig(
        n_servers=args.servers,
        domain_shape=tuple(args.domain),
        element_bytes=1,
        object_max_bytes=args.object_bytes,
        seed=args.seed,
    )


def _load_policy_spec(args: argparse.Namespace) -> tuple[str, dict]:
    """Process-shippable policy spec shared by every load/replay backend.

    Mirrors the differential-conformance discipline: promotions off (they
    race wall-clock access order) and group-scoped enforcement (the only
    scope a sharded deployment can evaluate), so captures and replays stay
    comparable across backends.
    """
    if args.policy == "replicate":
        return ("replicate", {})
    return (
        "corec",
        {
            "storage_bound": args.storage_bound,
            "promote_on_access": False,
            "max_promotions_per_step": 0,
            "enforcement_scope": "group",
        },
    )


def cmd_load(args: argparse.Namespace) -> int:
    """Open-loop load generation against a live or sharded backend.

    Seeded arrivals (constant/poisson/hotspot/diurnal/flash-crowd) drive
    ``--flows`` concurrent clients; per-op latencies land in a metrics
    registry and the p99/error-rate SLO gate decides the exit code.
    ``--capture PATH`` records the run as a replayable JSONL tape.
    """
    from repro.live.cluster import LiveCluster, build_policy
    from repro.live.protocol import LiveClient
    from repro.live.server import serve_in_thread
    from repro.staging.service import build_geometry
    from repro.workloads.capture import Tape
    from repro.workloads.load import SLO, LoadSpec, run_load

    config = _load_config(args)
    pspec = _load_policy_spec(args)
    _, domain, _, _ = build_geometry(config)
    spec = LoadSpec(
        process=args.process,
        rate=args.rate,
        duration=args.duration,
        flows=args.flows,
        n_vars=args.vars,
        n_blocks=args.blocks,
        read_fraction=args.read_fraction,
        verify_fraction=args.verify_fraction,
        seed=args.seed,
    )
    slo = SLO(
        put_p99_ms=args.slo_put_p99,
        get_p99_ms=args.slo_get_p99,
        max_error_rate=args.max_error_rate,
    )
    tape = Tape() if args.capture else None

    def finish(make_client, control_client) -> dict:
        report = run_load(
            make_client, spec, domain=domain, slo=slo,
            enforce_slo=not args.report_only, capture_tape=tape,
        )
        if tape is not None:
            control_client.flush()
            control_client.quiesce()
            tape.meta["load_spec"] = {
                "process": spec.process, "rate": spec.rate,
                "duration": spec.duration, "flows": spec.flows,
                "seed": spec.seed,
            }
            from repro.workloads.capture import config_meta

            tape.meta["config"] = config_meta(config)
            tape.meta["policy"] = [pspec[0], dict(pspec[1])]
            # No projection_sha256 on load tapes: a streamed (unquiesced)
            # capture's background batching — stripe formation groups
            # whatever is pending when the encoder runs — depends on
            # arrival timing, so the quiescent state is not a replay
            # invariant.  Projection-grade tapes come from the serial
            # per-op-quiesced capture in benchmarks/bench_load.py.
            tape.save(args.capture)
        return report.to_json()

    if args.shards > 1:
        with LiveCluster(config, pspec, args.shards, host=args.host) as cluster:
            with cluster.client(name="control") as control:
                out = finish(lambda flow: cluster.client(name=flow), control)
                out["backend"] = f"cluster-{args.shards}"
    else:
        handle = serve_in_thread(
            config, lambda: build_policy(pspec), host=args.host, port=args.port
        )
        try:
            with LiveClient(handle.host, handle.port, name="control") as control:
                out = finish(
                    lambda flow: LiveClient(handle.host, handle.port, name=flow),
                    control,
                )
                out["backend"] = "live"
        finally:
            handle.stop()
            handle.join()
    if tape is not None:
        out["tape"] = args.capture
        out["tape_ops"] = len(tape)
    _emit(out, args)
    return 0 if out["slo_gate"] in ("pass", "report-only", "not-evaluated") else 1


def cmd_replay(args: argparse.Namespace) -> int:
    """Replay a captured tape against any backend with equivalence checks.

    The tape's own config/policy meta rebuilds the deployment; read
    digests (and the recorded quiescent projection, when present) are
    compared byte-for-byte against the recording.  Exit code 1 on any
    mismatch.
    """
    from repro.workloads.capture import Tape, config_from_meta
    from repro.workloads.load import SimTarget, replay_tape

    tape = Tape.load(args.tape)
    if "config" not in tape.meta or "policy" not in tape.meta:
        print(f"{args.tape}: tape has no config/policy meta; cannot rebuild "
              f"a deployment to replay against", file=sys.stderr)
        return 2
    config = config_from_meta(tape.meta["config"])
    name, opts = tape.meta["policy"]
    pspec = (name, dict(opts))
    amplify = {}
    for item in args.amplify:
        flow, _, count = item.partition("=")
        amplify[flow] = int(count)
    speedup = None if not args.speedup else args.speedup

    def run(target) -> dict:
        report = replay_tape(
            tape, target, speedup=speedup, amplify=amplify or None,
            check_digests=not args.no_check,
        )
        return report.to_json()

    if args.backend == "sim":
        from repro.live.cluster import build_policy
        from repro.staging.service import StagingService

        out = run(SimTarget(StagingService(config, build_policy(pspec))))
        out["backend"] = "sim"
    elif args.backend == "live":
        from repro.live.cluster import build_policy
        from repro.live.protocol import LiveClient
        from repro.live.server import serve_in_thread

        handle = serve_in_thread(config, lambda: build_policy(pspec))
        try:
            with LiveClient(handle.host, handle.port, name="replay") as cli:
                out = run(cli)
        finally:
            handle.stop()
            handle.join()
        out["backend"] = "live"
    else:
        from repro.live.cluster import LiveCluster

        with LiveCluster(config, pspec, args.shards, host=args.host) as cluster:
            with cluster.client(name="replay") as cli:
                out = run(cli)
        out["backend"] = f"cluster-{args.shards}"
    out["tape"] = args.tape
    _emit(out, args)
    return 0 if out["ok"] else 1


def cmd_model(args: argparse.Namespace) -> int:
    from repro.core.model import CoRECModel, ModelParams

    model = CoRECModel(ModelParams(n_level=args.n_level, n_node=args.n_node))
    series = model.fig4_series(miss_ratios=tuple(args.miss), s=args.s, n_points=args.points)
    out = {
        "p_r_star": series["p_r_star"],
        "E_r": model.E_r,
        "E_e": model.E_e,
        "curves": {
            k: (v.tolist() if hasattr(v, "tolist") else v) for k, v in series.items()
        },
    }
    _emit(out, args)
    return 0


def _emit(payload: dict, args: argparse.Namespace) -> None:
    if args.json:
        json.dump(payload, sys.stdout, indent=2, default=float)
        print()
        return
    for key, value in payload.items():
        if isinstance(value, dict):
            print(f"{key}:")
            for k, v in value.items():
                print(f"  {k}: {v}")
        elif isinstance(value, list) and len(value) > 8:
            head = ", ".join(f"{v:.3f}" if isinstance(v, float) else str(v) for v in value[:8])
            print(f"{key}: [{head}, ... {len(value)} values]")
        else:
            print(f"{key}: {value}")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="CoREC reproduction experiment runner"
    )
    parser.add_argument("--json", action="store_true", help="emit JSON")
    sub = parser.add_subparsers(dest="command", required=True)

    def common(p):
        p.add_argument("--policy", default="corec",
                       choices=["none", "replicate", "erasure", "hybrid", "corec"])
        p.add_argument("--storage-bound", type=float, default=0.67)
        p.add_argument("--timesteps", type=int, default=20)
        p.add_argument("--object-bytes", type=int, default=4096)
        p.add_argument("--seed", type=int, default=1)
        p.add_argument("--async-protection", action="store_true")
        p.add_argument("--fail", action="append", default=[], metavar="STEP:SERVER")
        p.add_argument("--replace", action="append", default=[], metavar="STEP:SERVER")

    p_case = sub.add_parser("run-case", help="run a synthetic Table-I case")
    common(p_case)
    p_case.add_argument("--case", default="case1",
                        choices=["case1", "case2", "case3", "case4", "case5"])
    p_case.add_argument("--writers", type=int, default=64)
    p_case.add_argument("--readers", type=int, default=32)
    p_case.add_argument("--servers", type=int, default=8)
    p_case.add_argument("--domain", type=int, nargs=3, default=[64, 64, 64])
    p_case.add_argument("--element-bytes", type=int, default=1)
    p_case.set_defaults(func=cmd_run_case)

    p_trace = sub.add_parser(
        "trace", help="run a traced synthetic case and export trace artifacts"
    )
    common(p_trace)
    p_trace.add_argument("--case", default="case1",
                         choices=["case1", "case2", "case3", "case4", "case5"])
    p_trace.add_argument("--writers", type=int, default=64)
    p_trace.add_argument("--readers", type=int, default=32)
    p_trace.add_argument("--servers", type=int, default=8)
    p_trace.add_argument("--domain", type=int, nargs=3, default=[64, 64, 64])
    p_trace.add_argument("--element-bytes", type=int, default=1)
    p_trace.add_argument("--out", default="trace-out",
                         help="directory for trace.json / spans.jsonl / events.jsonl / metrics.json")
    p_trace.set_defaults(func=cmd_trace)

    p_s3d = sub.add_parser("run-s3d", help="run the S3D workflow (Table II)")
    common(p_s3d)
    p_s3d.add_argument("--scale", type=int, default=0, choices=[0, 1, 2])
    p_s3d.add_argument("--shrink", type=int, default=8)
    p_s3d.add_argument("--subdomain", type=int, default=16)
    p_s3d.add_argument("--analysis-every", type=int, default=2)
    p_s3d.set_defaults(func=cmd_run_s3d)

    p_dur = sub.add_parser("durability", help="MTTDL / loss-probability analysis")
    p_dur.add_argument("--mtbf", type=float, default=400 * 3600.0)
    p_dur.add_argument("--mttr", type=float, default=3600.0)
    p_dur.add_argument("--group-size", type=int, default=4)
    p_dur.add_argument("--tolerance", type=int, default=1)
    p_dur.add_argument("--groups", type=int, default=1)
    p_dur.set_defaults(func=cmd_durability)

    p_report = sub.add_parser("report", help="render stored benchmark results")
    p_report.add_argument("--name", default="")
    p_report.add_argument("--list", action="store_true")
    p_report.add_argument("--results-dir", default=None)
    p_report.add_argument("--trace", default="",
                          help="summarize a spans.jsonl dump instead of a stored result")
    p_report.add_argument("--live-trace", default="", metavar="DIR",
                          help="summarize a live trace directory (spans, traces, "
                               "latency attribution, dropped events)")
    p_report.set_defaults(func=cmd_report)

    p_chaos = sub.add_parser(
        "chaos", help="run fault campaigns with invariant checking"
    )
    p_chaos.add_argument("--mode", default="all",
                         choices=["scheduled", "stochastic", "cabinet", "all"])
    p_chaos.add_argument("--policy", default="corec",
                         choices=["replicate", "erasure", "hybrid", "corec"])
    p_chaos.add_argument("--seed", type=int, default=0)
    p_chaos.add_argument("--campaigns", type=int, default=1,
                         help="campaigns per mode (seeds seed..seed+N-1)")
    p_chaos.add_argument("--servers", type=int, default=8)
    p_chaos.add_argument("--timesteps", type=int, default=4)
    p_chaos.add_argument("--object-bytes", type=int, default=4096)
    p_chaos.add_argument("--failures", type=int, default=3)
    p_chaos.add_argument("--storage-bound", type=float, default=0.67)
    p_chaos.add_argument("--no-shrink", action="store_true",
                         help="skip minimizing a failing schedule")
    p_chaos.add_argument("--out", default=None,
                         help="directory for trace/schedule dumps of a failing campaign")
    p_chaos.set_defaults(func=cmd_chaos)

    p_loss = sub.add_parser(
        "dataloss", help="correlated-cabinet loss: spread vs CodingSets placement"
    )
    p_loss.add_argument("--seed", type=int, default=0)
    p_loss.add_argument("--servers", type=int, default=16)
    p_loss.add_argument("--nodes-per-cabinet", type=int, default=2)
    p_loss.add_argument("--variables", type=int, default=3)
    p_loss.add_argument("--object-bytes", type=int, default=4096)
    p_loss.add_argument("--max-coding-sets", type=int, default=2)
    p_loss.add_argument("--min-ratio", type=float, default=2.0,
                        help="required spread/coding_sets stripe-kill ratio")
    p_loss.add_argument("--no-inject", action="store_true",
                        help="static sweep only; skip the real cabinet kill")
    p_loss.set_defaults(func=cmd_dataloss)

    p_scale = sub.add_parser(
        "scale", help="weak-scaling sweep of the failure paths (4 -> 64 servers)"
    )
    p_scale.add_argument("--servers", type=int, nargs="*", default=None,
                         help="server counts to sweep (each divisible by 4)")
    p_scale.add_argument("--blocks-per-server", type=int, default=8)
    p_scale.add_argument("--timesteps", type=int, default=3)
    p_scale.add_argument("--seed", type=int, default=1)
    p_scale.add_argument("--no-assert", action="store_true",
                         help="report only; do not enforce the complexity bounds")
    p_scale.set_defaults(func=cmd_scale)

    p_live = sub.add_parser(
        "live", help="serve the live concurrent staging backend over TCP"
    )
    p_live.add_argument("--host", default="127.0.0.1")
    p_live.add_argument("--port", type=int, default=0,
                        help="TCP port (0 picks a free one)")
    p_live.add_argument("--policy", default="corec",
                        choices=["none", "replicate", "erasure", "hybrid", "corec"])
    p_live.add_argument("--storage-bound", type=float, default=0.67)
    p_live.add_argument("--servers", type=int, default=8)
    p_live.add_argument("--domain", type=int, nargs=3, default=[64, 64, 32])
    p_live.add_argument("--element-bytes", type=int, default=1)
    p_live.add_argument("--object-bytes", type=int, default=4096)
    p_live.add_argument("--seed", type=int, default=1)
    p_live.add_argument("--async-protection", action="store_true")
    p_live.add_argument("--time-scale", type=float, default=0.0,
                        help="wall seconds per modeled second (0: run flat out)")
    p_live.add_argument("--workers", type=int, default=None,
                        help="codec offload thread pool size")
    p_live.add_argument("--shards", type=int, default=1,
                        help="split the deployment into N shard processes "
                             "(one per coding-group range; requires the "
                             "group count to divide by N)")
    p_live.add_argument("--smoke", action="store_true",
                        help="serve on a thread, run a client workload, exit")
    p_live.add_argument("--trace-dir", default="",
                        help="enable wall-clock tracing; export span/metrics "
                             "artifacts to this directory on exit")
    p_live.set_defaults(func=cmd_live)

    def load_replay_common(p):
        p.add_argument("--host", default="127.0.0.1")
        p.add_argument("--port", type=int, default=0,
                       help="TCP port (0 picks a free one)")
        p.add_argument("--shards", type=int, default=2,
                       help="shard processes for the cluster backend")

    p_load = sub.add_parser(
        "load", help="open-loop load generation with SLO gate (live/cluster)"
    )
    load_replay_common(p_load)
    p_load.add_argument("--policy", default="corec", choices=["replicate", "corec"])
    p_load.add_argument("--storage-bound", type=float, default=0.67)
    p_load.add_argument("--servers", type=int, default=8)
    p_load.add_argument("--domain", type=int, nargs=3, default=[64, 64, 32])
    p_load.add_argument("--object-bytes", type=int, default=4096)
    p_load.add_argument("--seed", type=int, default=7)
    p_load.add_argument("--process", default="poisson",
                        choices=["constant", "poisson", "hotspot", "diurnal",
                                 "flash-crowd"],
                        help="seeded arrival process")
    p_load.add_argument("--rate", type=float, default=50.0,
                        help="aggregate arrival rate (ops/s)")
    p_load.add_argument("--duration", type=float, default=5.0,
                        help="seconds of scheduled arrivals")
    p_load.add_argument("--flows", type=int, default=2,
                        help="concurrent flow clients")
    p_load.add_argument("--vars", type=int, default=2)
    p_load.add_argument("--blocks", type=int, default=12,
                        help="working-set size (first N blocks)")
    p_load.add_argument("--read-fraction", type=float, default=0.4)
    p_load.add_argument("--verify-fraction", type=float, default=0.0,
                        help="fraction of gets issued with verify=True")
    p_load.add_argument("--capture", default="",
                        help="record the run to this JSONL tape")
    p_load.add_argument("--slo-put-p99", type=float, default=None, metavar="MS")
    p_load.add_argument("--slo-get-p99", type=float, default=None, metavar="MS")
    p_load.add_argument("--max-error-rate", type=float, default=0.01)
    p_load.add_argument("--report-only", action="store_true",
                        help="report SLO violations without failing")
    p_load.set_defaults(func=cmd_load, shards=1)

    p_replay = sub.add_parser(
        "replay", help="replay a captured tape with byte-equivalence checks"
    )
    load_replay_common(p_replay)
    p_replay.add_argument("--tape", required=True, help="JSONL tape path")
    p_replay.add_argument("--backend", default="sim",
                          choices=["sim", "live", "cluster"])
    p_replay.add_argument("--speedup", type=float, default=0.0,
                          help="pace replay at recorded-time/N (0: no pacing, "
                               "replay flat out)")
    p_replay.add_argument("--amplify", action="append", default=[],
                          metavar="FLOW=K",
                          help="issue FLOW's data ops K times (shadow vars; "
                               "repeatable)")
    p_replay.add_argument("--no-check", action="store_true",
                          help="skip digest equivalence checks")
    p_replay.set_defaults(func=cmd_replay)

    p_model = sub.add_parser("model", help="evaluate the Section II-D model")
    p_model.add_argument("--s", type=float, default=0.67)
    p_model.add_argument("--miss", type=float, nargs="*", default=[0.0, 0.2, 0.4])
    p_model.add_argument("--n-level", type=int, default=1)
    p_model.add_argument("--n-node", type=int, default=3)
    p_model.add_argument("--points", type=int, default=11)
    p_model.set_defaults(func=cmd_model)
    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
