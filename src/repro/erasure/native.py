"""Runtime-built native GF(2^8) matrix kernel (optional, best effort).

Compiles :mod:`_gf_matmul.c` with the host C compiler on first use and
loads it through :mod:`ctypes`.  The shared object is cached in a
per-user temp directory keyed by the source hash, so the one-time gcc
invocation (~a second) happens once per container, not per process.

Everything here is **best effort**: no compiler, a failed compile, a
missing dlopen, or ``REPRO_GF_NATIVE=0`` all simply leave
:data:`NATIVE` as ``None`` and the pure-numpy kernels in
:mod:`repro.erasure.gf256` carry the data plane (at a few hundred MB/s
instead of multiple GB/s).  The native kernel is bit-exact with the
reference kernel and holds no global state, so concurrent calls from
parallel codec workers need no locking.
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import shutil
import subprocess
import tempfile
import threading
from dataclasses import dataclass

import numpy as np

__all__ = ["NativeKernel", "load", "NATIVE"]

_SOURCE = os.path.join(os.path.dirname(__file__), "_gf_matmul.c")
_CC_CANDIDATES = ("cc", "gcc", "clang")
_LOCK = threading.Lock()


@dataclass
class NativeKernel:
    """ctypes handle to the compiled kernel plus its nibble tables."""

    lib: ctypes.CDLL
    simd_level: int
    nib_lo: np.ndarray
    nib_hi: np.ndarray

    def matmul_ptrs(
        self,
        mat: np.ndarray,
        shard_ptrs,
        out_ptrs,
        length: int,
    ) -> None:
        """XOR-accumulate ``mat . shards`` into the out rows.

        ``shard_ptrs`` / ``out_ptrs`` are ctypes pointer arrays built by
        :meth:`row_ptrs`; rows may live at arbitrary addresses, so no
        (k, L) stacking copy is ever needed.
        """
        r, k = mat.shape
        self.lib.gf_matmul(
            mat.ctypes.data,
            r,
            k,
            shard_ptrs,
            out_ptrs,
            length,
            self.nib_lo.ctypes.data,
            self.nib_hi.ctypes.data,
        )

    @staticmethod
    def row_ptrs(rows, offset: int = 0):
        """Pointer array over uint8 row buffers (ndarray or memoryview)."""
        arr = (ctypes.c_void_p * len(rows))()
        for i, row in enumerate(rows):
            arr[i] = row.ctypes.data + offset
        return arr


def _compiler() -> str | None:
    for cc in _CC_CANDIDATES:
        path = shutil.which(cc)
        if path:
            return path
    return None


def _cache_path(source: bytes, cc: str) -> str:
    tag = hashlib.sha256(source + cc.encode()).hexdigest()[:16]
    root = os.environ.get("REPRO_NATIVE_CACHE") or os.path.join(
        tempfile.gettempdir(), f"repro-gf-native-{os.getuid()}"
    )
    return os.path.join(root, f"gf_matmul-{tag}.so")


def _build(source_path: str, out_path: str, cc: str) -> None:
    os.makedirs(os.path.dirname(out_path), exist_ok=True)
    # Build to a unique temp name then rename: atomic under concurrent
    # first-use from several processes.
    fd, tmp = tempfile.mkstemp(
        suffix=".so", dir=os.path.dirname(out_path), prefix=".build-"
    )
    os.close(fd)
    try:
        subprocess.run(
            [cc, "-O3", "-shared", "-fPIC", "-o", tmp, source_path],
            check=True,
            capture_output=True,
            timeout=120,
        )
        os.replace(tmp, out_path)
    finally:
        if os.path.exists(tmp):
            os.unlink(tmp)


def _load_uncached() -> NativeKernel | None:
    if os.environ.get("REPRO_GF_NATIVE", "1") in ("0", "false", "off"):
        return None
    cc = _compiler()
    if cc is None:
        return None
    try:
        with open(_SOURCE, "rb") as fh:
            source = fh.read()
        so_path = _cache_path(source, cc)
        if not os.path.exists(so_path):
            _build(_SOURCE, so_path, cc)
        lib = ctypes.CDLL(so_path)
    except (OSError, subprocess.SubprocessError):
        return None
    lib.gf_matmul.argtypes = [
        ctypes.c_void_p,  # mat
        ctypes.c_size_t,  # r
        ctypes.c_size_t,  # k
        ctypes.POINTER(ctypes.c_void_p),  # shard ptrs
        ctypes.POINTER(ctypes.c_void_p),  # out ptrs
        ctypes.c_size_t,  # length
        ctypes.c_void_p,  # nib_lo
        ctypes.c_void_p,  # nib_hi
    ]
    lib.gf_matmul.restype = None
    lib.gf_simd_level.restype = ctypes.c_int

    from repro.erasure.gf256 import GF256

    return NativeKernel(
        lib=lib,
        simd_level=int(lib.gf_simd_level()),
        nib_lo=np.ascontiguousarray(GF256.NIB_LO, dtype=np.uint8),
        nib_hi=np.ascontiguousarray(GF256.NIB_HI, dtype=np.uint8),
    )


_loaded = False
NATIVE: NativeKernel | None = None


def load() -> NativeKernel | None:
    """The process-wide native kernel, building it on first call."""
    global _loaded, NATIVE
    if not _loaded:
        with _LOCK:
            if not _loaded:
                NATIVE = _load_uncached()
                _loaded = True
    return NATIVE
