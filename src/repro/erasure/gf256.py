"""The finite field GF(2^8) used by Reed-Solomon coding.

Elements are bytes 0..255.  Addition is XOR; multiplication is polynomial
multiplication modulo the primitive polynomial ``x^8 + x^4 + x^3 + x^2 + 1``
(0x11D, the same polynomial Jerasure and most storage systems use).

Two representations back the arithmetic:

- **log/antilog tables** for scalar operations: ``a*b = exp[log a + log b]``;
- a **256x256 full multiplication table** (64 KiB) for the vectorized data
  path: multiplying a whole byte buffer by a scalar is a single numpy fancy
  index, ``MUL[c][buf]``, with no Python-level loop over the payload.

The vectorized kernels (:meth:`GF256.mul_bytes`, :meth:`GF256.addmul_bytes`)
are what the encoder's throughput depends on; everything else is setup cost.
"""

from __future__ import annotations

import numpy as np

__all__ = ["GF256"]

_PRIMITIVE_POLY = 0x11D  # x^8 + x^4 + x^3 + x^2 + 1
_FIELD_SIZE = 256
_GENERATOR = 2  # 2 is a generator of GF(2^8)* for this polynomial


def _build_tables() -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Build exp/log tables and the full 256x256 product table."""
    exp = np.zeros(2 * _FIELD_SIZE, dtype=np.uint8)  # doubled to skip mod-255
    log = np.zeros(_FIELD_SIZE, dtype=np.int32)
    x = 1
    for i in range(_FIELD_SIZE - 1):
        exp[i] = x
        log[x] = i
        x <<= 1
        if x & 0x100:
            x ^= _PRIMITIVE_POLY
    exp[_FIELD_SIZE - 1 : 2 * (_FIELD_SIZE - 1)] = exp[: _FIELD_SIZE - 1]

    # Full product table via broadcasting over the log representation.
    a = np.arange(_FIELD_SIZE)
    la = log[a]
    mul = exp[(la[:, None] + la[None, :]) % (_FIELD_SIZE - 1)].astype(np.uint8)
    mul[0, :] = 0
    mul[:, 0] = 0
    return exp, log, mul


class GF256:
    """GF(2^8) arithmetic.  All methods are static; tables are module-level.

    Scalar API: :meth:`add`, :meth:`mul`, :meth:`div`, :meth:`inv`,
    :meth:`pow`.  Vector API (the hot path): :meth:`mul_bytes`,
    :meth:`addmul_bytes`.
    """

    EXP, LOG, MUL = _build_tables()
    ORDER = _FIELD_SIZE
    PRIMITIVE_POLY = _PRIMITIVE_POLY
    GENERATOR = _GENERATOR

    # ------------------------------------------------------------------
    # scalar operations
    # ------------------------------------------------------------------
    @staticmethod
    def add(a: int, b: int) -> int:
        """Field addition (== subtraction): XOR."""
        return (a ^ b) & 0xFF

    sub = add  # characteristic 2: subtraction is addition

    @classmethod
    def mul(cls, a: int, b: int) -> int:
        """Field multiplication via the product table."""
        return int(cls.MUL[a & 0xFF, b & 0xFF])

    @classmethod
    def div(cls, a: int, b: int) -> int:
        """Field division ``a / b``; raises ZeroDivisionError for b == 0."""
        if b == 0:
            raise ZeroDivisionError("division by zero in GF(256)")
        if a == 0:
            return 0
        return int(cls.EXP[(cls.LOG[a] - cls.LOG[b]) % 255])

    @classmethod
    def inv(cls, a: int) -> int:
        """Multiplicative inverse; raises ZeroDivisionError for 0."""
        if a == 0:
            raise ZeroDivisionError("0 has no inverse in GF(256)")
        return int(cls.EXP[(255 - cls.LOG[a]) % 255])

    @classmethod
    def pow(cls, a: int, n: int) -> int:
        """``a`` raised to integer power ``n`` (n may be negative if a != 0)."""
        if a == 0:
            if n == 0:
                return 1
            if n < 0:
                raise ZeroDivisionError("0 has no inverse in GF(256)")
            return 0
        return int(cls.EXP[(cls.LOG[a] * n) % 255])

    @classmethod
    def exp(cls, n: int) -> int:
        """Generator raised to power ``n`` (antilog)."""
        return int(cls.EXP[n % 255])

    # ------------------------------------------------------------------
    # vectorized byte-buffer kernels (the encode/decode hot path)
    # ------------------------------------------------------------------
    @classmethod
    def mul_bytes(cls, c: int, buf: np.ndarray) -> np.ndarray:
        """Return ``c * buf`` elementwise for a uint8 buffer.

        A single fancy-index into the product-table row: O(len) with no
        Python loop, per the vectorization idiom the data path requires.
        """
        buf = np.ascontiguousarray(buf, dtype=np.uint8)
        c &= 0xFF
        if c == 0:
            return np.zeros_like(buf)
        if c == 1:
            return buf.copy()
        return cls.MUL[c][buf]

    @classmethod
    def addmul_bytes(cls, acc: np.ndarray, c: int, buf: np.ndarray) -> None:
        """In-place ``acc ^= c * buf`` — the fused kernel used per matrix cell.

        In-place XOR avoids one temporary per coefficient (the dominant
        allocation in a naive implementation).
        """
        c &= 0xFF
        if c == 0:
            return
        if c == 1:
            np.bitwise_xor(acc, buf, out=acc)
        else:
            np.bitwise_xor(acc, cls.MUL[c][buf], out=acc)

    @classmethod
    def matmul_bytes(cls, mat: np.ndarray, shards: np.ndarray) -> np.ndarray:
        """Multiply a GF matrix (r x k, uint8) by k data shards.

        ``shards`` has shape ``(k, L)``; the result has shape ``(r, L)``.
        This implements the stripe-encode/decode product ``M . D`` where each
        shard is a column-block of the stripe.
        """
        mat = np.asarray(mat, dtype=np.uint8)
        shards = np.ascontiguousarray(shards, dtype=np.uint8)
        r, k = mat.shape
        if shards.shape[0] != k:
            raise ValueError(f"matrix expects {k} shards, got {shards.shape[0]}")
        out = np.zeros((r, shards.shape[1]), dtype=np.uint8)
        for i in range(r):
            row = mat[i]
            acc = out[i]
            for j in range(k):
                cls.addmul_bytes(acc, int(row[j]), shards[j])
        return out
