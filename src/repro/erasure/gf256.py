"""The finite field GF(2^8) used by Reed-Solomon coding.

Elements are bytes 0..255.  Addition is XOR; multiplication is polynomial
multiplication modulo the primitive polynomial ``x^8 + x^4 + x^3 + x^2 + 1``
(0x11D, the same polynomial Jerasure and most storage systems use).

Several representations back the arithmetic:

- **log/antilog tables** for scalar operations: ``a*b = exp[log a + log b]``;
- a **256x256 full multiplication table** (64 KiB) for the vectorized data
  path: multiplying a whole byte buffer by a scalar is a single numpy
  table gather, ``np.take(MUL[c], buf, out=...)``, with no Python-level
  loop over the payload;
- **fused matrix kernels** for the stripe product ``M . D``: the per-cell
  gather loop, a log-domain variant with one gather per output row, a
  low/high **nibble-split** table variant (two 256x16 table gathers per
  cell — the numpy analogue of ISA-L's SIMD shuffle kernel), a
  **paired-coefficient** variant that folds two matrix columns into one
  gather from a cached 64 KiB product table (halving both the gather and
  the XOR count, the way production RS stacks fold multiple coefficients
  into one SIMD pass), and a **wide** variant that additionally packs up
  to four *output rows* into one uint32 table entry — one gather applies
  two coefficients to four rows at once, cutting the gather count a
  further 4x — processed in L2-sized column chunks so every scratch
  buffer stays cache-resident.

Which matrix kernel runs is chosen by a tiny autotune benchmark at import
(per shard-size class), overridable with ``REPRO_GF_KERNEL`` or
:meth:`GF256.set_kernel`.  All kernels compute exact field arithmetic, so
the choice never changes a single output byte — only throughput.

The vectorized kernels (:meth:`GF256.mul_bytes`, :meth:`GF256.addmul_bytes`,
:meth:`GF256.matmul_bytes`) are what the encoder's throughput depends on;
everything else is setup cost.
"""

from __future__ import annotations

import ctypes
import os
import sys
import threading
import time
from collections import OrderedDict

import numpy as np

__all__ = ["GF256"]

_PRIMITIVE_POLY = 0x11D  # x^8 + x^4 + x^3 + x^2 + 1
_FIELD_SIZE = 256
_GENERATOR = 2  # 2 is a generator of GF(2^8)* for this polynomial

# Sentinel log value for 0: large enough that any index involving a zero
# operand lands in the zero-padded tail of the extended antilog table.
_LOG_ZERO = 512


def _build_tables() -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Build exp/log tables and the full 256x256 product table."""
    exp = np.zeros(2 * _FIELD_SIZE, dtype=np.uint8)  # doubled to skip mod-255
    log = np.zeros(_FIELD_SIZE, dtype=np.int32)
    x = 1
    for i in range(_FIELD_SIZE - 1):
        exp[i] = x
        log[x] = i
        x <<= 1
        if x & 0x100:
            x ^= _PRIMITIVE_POLY
    exp[_FIELD_SIZE - 1 : 2 * (_FIELD_SIZE - 1)] = exp[: _FIELD_SIZE - 1]

    # Full product table via broadcasting over the log representation.
    a = np.arange(_FIELD_SIZE)
    la = log[a]
    mul = exp[(la[:, None] + la[None, :]) % (_FIELD_SIZE - 1)].astype(np.uint8)
    mul[0, :] = 0
    mul[:, 0] = 0
    return exp, log, mul


def _build_kernel_tables(
    exp: np.ndarray, log: np.ndarray, mul: np.ndarray
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Derived tables for the fused matrix kernels.

    - ``log_z``: log table with a sentinel at 0 so zero operands can flow
      through the log-domain kernel without a branch;
    - ``exp_pad``: antilog table extended so any index with a zero operand
      (>= ``_LOG_ZERO``) reads 0;
    - ``nib_lo`` / ``nib_hi``: per-coefficient products of the low and high
      nibble, ``nib_lo[c][x] = c * x`` and ``nib_hi[c][x] = c * (x << 4)``.
    """
    log_z = np.full(_FIELD_SIZE, _LOG_ZERO, dtype=np.int16)
    log_z[1:] = log[1:]
    # Nonzero·nonzero indices top out at 2*(order-2) = 508; everything from
    # there to 2*_LOG_ZERO involves at least one zero operand.
    exp_pad = np.zeros(2 * _LOG_ZERO + 1, dtype=np.uint8)
    idx = np.arange(2 * (_FIELD_SIZE - 2) + 1)
    exp_pad[: idx.size] = exp[idx % (_FIELD_SIZE - 1)]
    nib_lo = mul[:, :16].copy()
    nib_hi = mul[:, [x << 4 for x in range(16)]].copy()
    return log_z, exp_pad, nib_lo, nib_hi


# ---------------------------------------------------------------------------
# scratch buffers (grow-only, reused across kernel calls)
# ---------------------------------------------------------------------------
# One scratch pool per *thread*, so steady-state kernel calls allocate
# nothing while staying safe when the live backend offloads encodes to a
# worker thread concurrently with parity delta-updates on the event loop.
_SCRATCH = threading.local()


def _scratch(name: str, size: int, dtype) -> np.ndarray:
    pool = getattr(_SCRATCH, "pool", None)
    if pool is None:
        pool = _SCRATCH.pool = {}
    buf = pool.get(name)
    if buf is None or buf.size < size:
        buf = np.empty(size, dtype=dtype)
        pool[name] = buf
    return buf[:size]


class GF256:
    """GF(2^8) arithmetic.  All methods are static; tables are module-level.

    Scalar API: :meth:`add`, :meth:`mul`, :meth:`div`, :meth:`inv`,
    :meth:`pow`.  Vector API (the hot path): :meth:`mul_bytes`,
    :meth:`addmul_bytes`, :meth:`matmul_bytes`.
    """

    EXP, LOG, MUL = _build_tables()
    LOG_Z, EXP_PAD, NIB_LO, NIB_HI = _build_kernel_tables(EXP, LOG, MUL)
    ORDER = _FIELD_SIZE
    PRIMITIVE_POLY = _PRIMITIVE_POLY
    GENERATOR = _GENERATOR

    # Boundary between the "small" and "large" shard-size classes used by
    # the kernel autotuner (bytes per shard), and the floor below which the
    # setup-free table kernel is always used.
    SMALL_SHARD_CUTOFF = 1 << 15
    TINY_SHARD_CUTOFF = 1 << 10

    # Observability for tests and benchmarks: every fused matrix-kernel
    # pass increments ``matmul_calls`` (so e.g. single-shard reconstruction
    # can assert it ran exactly one pass) and the per-kernel counter.
    KERNEL_STATS: dict[str, int] = {"matmul_calls": 0}

    # ------------------------------------------------------------------
    # scalar operations
    # ------------------------------------------------------------------
    @staticmethod
    def add(a: int, b: int) -> int:
        """Field addition (== subtraction): XOR."""
        return (a ^ b) & 0xFF

    sub = add  # characteristic 2: subtraction is addition

    @classmethod
    def mul(cls, a: int, b: int) -> int:
        """Field multiplication via the product table."""
        return int(cls.MUL[a & 0xFF, b & 0xFF])

    @classmethod
    def div(cls, a: int, b: int) -> int:
        """Field division ``a / b``; raises ZeroDivisionError for b == 0."""
        if b == 0:
            raise ZeroDivisionError("division by zero in GF(256)")
        if a == 0:
            return 0
        return int(cls.EXP[(cls.LOG[a] - cls.LOG[b]) % 255])

    @classmethod
    def inv(cls, a: int) -> int:
        """Multiplicative inverse; raises ZeroDivisionError for 0."""
        if a == 0:
            raise ZeroDivisionError("0 has no inverse in GF(256)")
        return int(cls.EXP[(255 - cls.LOG[a]) % 255])

    @classmethod
    def pow(cls, a: int, n: int) -> int:
        """``a`` raised to integer power ``n`` (n may be negative if a != 0)."""
        if a == 0:
            if n == 0:
                return 1
            if n < 0:
                raise ZeroDivisionError("0 has no inverse in GF(256)")
            return 0
        return int(cls.EXP[(cls.LOG[a] * n) % 255])

    @classmethod
    def exp(cls, n: int) -> int:
        """Generator raised to power ``n`` (antilog)."""
        return int(cls.EXP[n % 255])

    # ------------------------------------------------------------------
    # vectorized byte-buffer kernels (the encode/decode hot path)
    # ------------------------------------------------------------------
    @classmethod
    def mul_bytes(cls, c: int, buf: np.ndarray, out: np.ndarray | None = None) -> np.ndarray:
        """``c * buf`` elementwise for a uint8 buffer, optionally into ``out``.

        A single gather from the product-table row: O(len) with no Python
        loop and, with ``out=`` supplied, no allocation either.
        """
        buf = np.ascontiguousarray(buf, dtype=np.uint8)
        c &= 0xFF
        if out is None:
            out = np.empty_like(buf)
        elif out.shape != buf.shape or out.dtype != np.uint8:
            raise ValueError("out must be a uint8 buffer of the input's shape")
        if c == 0:
            out[...] = 0
        elif c == 1:
            if out is not buf:
                out[...] = buf
        else:
            np.take(cls.MUL[c], buf, out=out, mode="clip")
        return out

    @classmethod
    def addmul_bytes(cls, acc: np.ndarray, c: int, buf: np.ndarray) -> None:
        """In-place ``acc ^= c * buf`` — the fused scalar-coefficient kernel.

        The product is gathered through a reused row view of ``MUL`` into a
        module-level scratch buffer, so the steady state allocates nothing.
        """
        c &= 0xFF
        if c == 0:
            return
        if c == 1:
            np.bitwise_xor(acc, buf, out=acc)
        else:
            tmp = _scratch("addmul", buf.size, np.uint8).reshape(buf.shape)
            np.take(cls.MUL[c], buf, out=tmp, mode="clip")
            np.bitwise_xor(acc, tmp, out=acc)

    # ------------------------------------------------------------------
    # fused matrix kernels
    # ------------------------------------------------------------------
    @classmethod
    def _kernel_reference(cls, mat: np.ndarray, shards: np.ndarray, out: np.ndarray) -> None:
        """The seed per-cell kernel: one fancy-index temporary per coefficient.

        Kept as the baseline the autotuner and the regression benchmarks
        measure speedups against, and as a cross-check oracle in tests.
        """
        for i in range(mat.shape[0]):
            acc = out[i]
            for j in range(mat.shape[1]):
                c = int(mat[i, j])
                if c == 0:
                    continue
                if c == 1:
                    np.bitwise_xor(acc, shards[j], out=acc)
                else:
                    np.bitwise_xor(acc, cls.MUL[c][shards[j]], out=acc)

    @classmethod
    def _kernel_table(cls, mat: np.ndarray, shards: np.ndarray, out: np.ndarray) -> None:
        """Per-cell table gather through a reused scratch buffer (no allocs)."""
        length = shards.shape[1]
        tmp = _scratch("mm_u8", length, np.uint8)
        for i in range(mat.shape[0]):
            acc = out[i]
            for j in range(mat.shape[1]):
                c = int(mat[i, j])
                if c == 0:
                    continue
                if c == 1:
                    np.bitwise_xor(acc, shards[j], out=acc)
                else:
                    np.take(cls.MUL[c], shards[j], out=tmp, mode="clip")
                    np.bitwise_xor(acc, tmp, out=acc)

    @classmethod
    def _kernel_logfused(cls, mat: np.ndarray, shards: np.ndarray, out: np.ndarray) -> None:
        """Log-domain fused product: one big gather + XOR-reduce per output row.

        ``LOG_Z[shards]`` is computed once for the whole product; each output
        row is then ``EXP_PAD[LOG_Z[row][:, None] + LOG_Z[shards]]`` reduced
        over the coefficient axis, accumulated into preallocated scratch.
        """
        k, length = shards.shape
        ld = _scratch("mm_i16a", k * length, np.int16).reshape(k, length)
        np.take(cls.LOG_Z, shards, out=ld, mode="clip")
        lm = cls.LOG_Z[mat]  # (r, k) int16
        idx = _scratch("mm_i16b", k * length, np.int16).reshape(k, length)
        prod = _scratch("mm_u8b", k * length, np.uint8).reshape(k, length)
        row = _scratch("mm_u8", length, np.uint8)
        for i in range(mat.shape[0]):
            np.add(lm[i][:, None], ld, out=idx)
            np.take(cls.EXP_PAD, idx, out=prod, mode="clip")
            np.bitwise_xor.reduce(prod, axis=0, out=row)
            np.bitwise_xor(out[i], row, out=out[i])

    @classmethod
    def _kernel_nibble(cls, mat: np.ndarray, shards: np.ndarray, out: np.ndarray) -> None:
        """Nibble-split kernel: two 256x16-table gathers per matrix cell.

        The low/high nibble indices are extracted once per shard and shared
        across all output rows — the numpy rendition of ISA-L's split-table
        SIMD shuffle kernel.
        """
        k, length = shards.shape
        lo = _scratch("mm_u8lo", k * length, np.uint8).reshape(k, length)
        hi = _scratch("mm_u8hi", k * length, np.uint8).reshape(k, length)
        np.bitwise_and(shards, 0x0F, out=lo)
        np.right_shift(shards, 4, out=hi)
        t1 = _scratch("mm_u8", length, np.uint8)
        t2 = _scratch("mm_u8b", length, np.uint8)
        for i in range(mat.shape[0]):
            acc = out[i]
            for j in range(k):
                c = int(mat[i, j])
                if c == 0:
                    continue
                if c == 1:
                    np.bitwise_xor(acc, shards[j], out=acc)
                    continue
                np.take(cls.NIB_LO[c], lo[j], out=t1, mode="clip")
                np.take(cls.NIB_HI[c], hi[j], out=t2, mode="clip")
                np.bitwise_xor(t1, t2, out=t1)
                np.bitwise_xor(acc, t1, out=acc)

    # Caches of precomputed product tables keyed by the matrix bytes.
    # Generator matrices and decode matrices recur constantly, so table
    # construction amortizes to zero; the bounds keep worst-case memory at
    # a few tens of MiB.  A single lock guards both caches: parallel codec
    # passes share the same generator matrix, so lookups must be safe from
    # any worker thread (builds happen outside the lock — a racing
    # double-build costs one redundant table, never corruption).
    _TABLE_LOCK = threading.Lock()
    _PAIR_TABLE_CACHE: OrderedDict[bytes, list[np.ndarray]] = OrderedDict()
    _PAIR_TABLE_CAP = 32
    _WIDE_TABLE_CACHE: OrderedDict[bytes, list] = OrderedDict()
    _WIDE_TABLE_CAP = 16

    @classmethod
    def _pair_tables(cls, mat: np.ndarray) -> list[np.ndarray]:
        key = mat.shape[1].to_bytes(2, "little") + mat.tobytes()
        with cls._TABLE_LOCK:
            cached = cls._PAIR_TABLE_CACHE.get(key)
            if cached is not None:
                cls._PAIR_TABLE_CACHE.move_to_end(key)
                return cached
        r, k = mat.shape
        tables = []
        for i in range(r):
            for j in range(0, k - 1, 2):
                # 64 KiB table of (a, b) -> c1*a ^ c2*b for this row's pair.
                t = np.bitwise_xor.outer(
                    cls.MUL[int(mat[i, j])], cls.MUL[int(mat[i, j + 1])]
                ).ravel()
                tables.append(np.ascontiguousarray(t))
        with cls._TABLE_LOCK:
            while len(cls._PAIR_TABLE_CACHE) >= cls._PAIR_TABLE_CAP:
                cls._PAIR_TABLE_CACHE.popitem(last=False)
            cls._PAIR_TABLE_CACHE[key] = tables
        return tables

    @classmethod
    def _kernel_pairs(cls, mat: np.ndarray, shards: np.ndarray, out: np.ndarray) -> None:
        """Paired-coefficient kernel: one 64 KiB-table gather per column pair.

        Two shards are fused into one uint16 index stream (built once per
        pair, shared across output rows); each gather then applies two
        coefficients at once, halving both gathers and XOR passes.
        """
        r, k = mat.shape
        length = shards.shape[1]
        tables = cls._pair_tables(mat)
        n_pairs = k // 2
        idx = _scratch("mm_u16", length, np.uint16)
        idx_bytes = idx.view(np.uint8).reshape(length, 2)
        tmp = _scratch("mm_u8", length, np.uint8)
        for p in range(n_pairs):
            j = 2 * p
            # uint16 index (a << 8) | b, assembled via the little-endian
            # byte view so no intermediate shift/or arrays are allocated.
            idx_bytes[:, 1] = shards[j]
            idx_bytes[:, 0] = shards[j + 1]
            for i in range(r):
                np.take(tables[i * n_pairs + p], idx, out=tmp, mode="clip")
                np.bitwise_xor(out[i], tmp, out=out[i])
        if k % 2:  # odd trailing column: plain single-coefficient gathers
            j = k - 1
            for i in range(r):
                cls.addmul_bytes(out[i], int(mat[i, j]), shards[j])

    # Columns per internal chunk of the wide kernel.  16 Ki columns keeps
    # the uint16 index (32 KiB), uint32 accumulator and gather scratch
    # (64 KiB each) resident in L2 across the whole row-group pass.
    WIDE_CHUNK = 1 << 14

    # Lane order when unpacking a packed uint32 accumulator into its four
    # uint8 output rows: on little-endian hosts byte b of the uint32 holds
    # row bit b; big-endian reverses the lanes.
    _LANE = tuple(range(4)) if sys.byteorder == "little" else tuple(range(3, -1, -1))

    @classmethod
    def _wide_tables(cls, mat: np.ndarray) -> list:
        """Packed-row tables: groups of <=4 output rows share one gather.

        For each row group and column pair ``(j, j+1)`` the 64 Ki-entry
        uint32 table holds, at index ``(a << 8) | b``, the four products
        ``mat[i, j]*a ^ mat[i, j+1]*b`` of the group's rows packed one per
        byte lane.  An odd trailing column gets a 256-entry packed table.
        """
        key = mat.shape[1].to_bytes(2, "little") + mat.tobytes()
        with cls._TABLE_LOCK:
            cached = cls._WIDE_TABLE_CACHE.get(key)
            if cached is not None:
                cls._WIDE_TABLE_CACHE.move_to_end(key)
                return cached
        r, k = mat.shape
        groups = []
        for g0 in range(0, r, 4):
            rows = range(g0, min(g0 + 4, r))
            pair_tabs = []
            for j in range(0, k - 1, 2):
                t = np.zeros(1 << 16, dtype=np.uint32)
                for bit, i in enumerate(rows):
                    sub = np.bitwise_xor.outer(
                        cls.MUL[int(mat[i, j])], cls.MUL[int(mat[i, j + 1])]
                    ).ravel()
                    t |= sub.astype(np.uint32) << np.uint32(8 * bit)
                pair_tabs.append(t)
            odd_tab = None
            if k % 2:
                odd_tab = np.zeros(256, dtype=np.uint32)
                for bit, i in enumerate(rows):
                    odd_tab |= cls.MUL[int(mat[i, k - 1])].astype(
                        np.uint32
                    ) << np.uint32(8 * bit)
            groups.append((g0, len(rows), pair_tabs, odd_tab))
        with cls._TABLE_LOCK:
            while len(cls._WIDE_TABLE_CACHE) >= cls._WIDE_TABLE_CAP:
                cls._WIDE_TABLE_CACHE.popitem(last=False)
            cls._WIDE_TABLE_CACHE[key] = groups
        return groups

    @classmethod
    def _kernel_wide(cls, mat: np.ndarray, shards: np.ndarray, out: np.ndarray) -> None:
        """Packed-row kernel: one gather covers two columns x four rows.

        On top of the pairs kernel's column fusion, up to four *output
        rows* ride in the byte lanes of one uint32 table entry, cutting
        the gather count another 4x for r >= 4 (and 3x for the canonical
        RS(6,3) parity product).  Columns are processed in
        :data:`WIDE_CHUNK`-sized chunks so all scratch stays cache-hot.
        """
        r, k = mat.shape
        if r == 1:
            # A single output row gains nothing from lane packing and
            # would pay 4x the gather bandwidth; the pairs kernel is the
            # same algorithm minus the packing.
            cls._kernel_pairs(mat, shards, out)
            return
        length = shards.shape[1]
        if length == 0:
            return
        groups = cls._wide_tables(mat)
        chunk = min(length, cls.WIDE_CHUNK)
        idx = _scratch("mm_w16", chunk, np.uint16)
        idx_bytes = idx.view(np.uint8).reshape(chunk, 2)
        acc = _scratch("mm_w32a", chunk, np.uint32)
        tmp = _scratch("mm_w32b", chunk, np.uint32)
        for a in range(0, length, chunk):
            b = min(a + chunk, length)
            n = b - a
            acc_n, tmp_n = acc[:n], tmp[:n]
            for g0, gr, pair_tabs, odd_tab in groups:
                acc_n[...] = 0
                for p, t in enumerate(pair_tabs):
                    j = 2 * p
                    # uint16 index (a << 8) | b via the little-endian byte
                    # view, as in the pairs kernel.
                    idx_bytes[:n, 1] = shards[j, a:b]
                    idx_bytes[:n, 0] = shards[j + 1, a:b]
                    np.take(t, idx[:n], out=tmp_n, mode="clip")
                    np.bitwise_xor(acc_n, tmp_n, out=acc_n)
                if odd_tab is not None:
                    np.take(odd_tab, shards[k - 1, a:b], out=tmp_n, mode="clip")
                    np.bitwise_xor(acc_n, tmp_n, out=acc_n)
                lanes = acc_n.view(np.uint8).reshape(n, 4)
                for bit in range(gr):
                    row = out[g0 + bit, a:b]
                    np.bitwise_xor(row, lanes[:, cls._LANE[bit]], out=row)

    @classmethod
    def _kernel_native(cls, mat: np.ndarray, shards: np.ndarray, out: np.ndarray) -> None:
        """Compiled nibble-shuffle kernel (see ``_gf_matmul.c``).

        Registered in ``_KERNELS`` only when :mod:`repro.erasure.native`
        managed to build and load the shared object; rows are handed to C
        as a pointer array, so strided row starts (column slices of a
        larger product) need no compaction copy.
        """
        nat = cls._NATIVE
        r, k = mat.shape
        mat = np.ascontiguousarray(mat)
        sp = (ctypes.c_void_p * k)()
        base, ss = shards.ctypes.data, shards.strides[0]
        for j in range(k):
            sp[j] = base + j * ss
        op = (ctypes.c_void_p * r)()
        base, os_ = out.ctypes.data, out.strides[0]
        for i in range(r):
            op[i] = base + i * os_
        nat.matmul_ptrs(mat, sp, op, shards.shape[1])

    # Populated at module import (below) when the runtime-compiled kernel
    # is available; None keeps the pure-numpy kernels in charge.
    _NATIVE = None

    @classmethod
    def native_kernel(cls):
        """The loaded native kernel handle, or None."""
        return cls._NATIVE

    _KERNELS = {
        "reference": _kernel_reference,
        "table": _kernel_table,
        "logfused": _kernel_logfused,
        "nibble": _kernel_nibble,
        "pairs": _kernel_pairs,
        "wide": _kernel_wide,
    }

    # Selected kernel per shard-size class; populated by the import-time
    # autotune below (or static defaults / environment override).
    _SELECTED: dict[str, str] = {"small": "table", "large": "pairs"}

    @classmethod
    def available_kernels(cls) -> tuple[str, ...]:
        return tuple(cls._KERNELS)

    @classmethod
    def selected_kernels(cls) -> dict[str, str]:
        """The kernel chosen for each shard-size class."""
        return dict(cls._SELECTED)

    # True when an explicit kernel override (env var or set_kernel) is in
    # effect — overrides also bypass the tiny-product guard so tests can
    # exercise any kernel at any size.
    _FORCED = False

    @classmethod
    def set_kernel(cls, name: str | None, size_class: str | None = None) -> None:
        """Force a matrix kernel (``None`` restores autotuned defaults)."""
        if name is None:
            cls._SELECTED = dict(cls._AUTOTUNED)
            cls._FORCED = bool(os.environ.get("REPRO_GF_KERNEL"))
            return
        if name not in cls._KERNELS:
            raise ValueError(f"unknown kernel {name!r}; one of {sorted(cls._KERNELS)}")
        classes = (size_class,) if size_class else ("small", "large")
        for sc in classes:
            if sc not in cls._SELECTED:
                raise ValueError(f"unknown size class {sc!r}")
            cls._SELECTED[sc] = name
        cls._FORCED = True

    @classmethod
    def reset_kernel_stats(cls) -> None:
        for key in cls.KERNEL_STATS:
            cls.KERNEL_STATS[key] = 0

    @classmethod
    def matmul_rows(
        cls,
        mat: np.ndarray,
        shard_rows,
        out_rows,
        offset: int = 0,
        length: int | None = None,
        accumulate: bool = False,
    ) -> None:
        """Fused product over *separate* row buffers — no stacking copy.

        The zero-copy twin of :meth:`matmul_bytes`: ``shard_rows`` and
        ``out_rows`` are sequences of contiguous uint8 arrays handed to
        the native kernel as pointer arrays, so a stripe encode reads the
        k payload buffers in place instead of first compacting them into
        a (k, L) matrix.  ``offset``/``length`` select a column range,
        which is how parallel passes split one large product across
        workers without slicing copies.  Requires the native kernel
        (callers check :meth:`native_kernel` and fall back to the stacked
        path).
        """
        nat = cls._NATIVE
        if nat is None:
            raise RuntimeError("native GF kernel unavailable")
        if length is None:
            length = (len(shard_rows[0]) if shard_rows else 0) - offset
        if not accumulate:
            for row in out_rows:
                row[offset : offset + length] = 0
        if length <= 0 or not shard_rows:
            return
        mat = np.ascontiguousarray(mat, dtype=np.uint8)
        cls.KERNEL_STATS["matmul_calls"] += 1
        cls.KERNEL_STATS["native"] = cls.KERNEL_STATS.get("native", 0) + 1
        nat.matmul_ptrs(
            mat,
            nat.row_ptrs(shard_rows, offset),
            nat.row_ptrs(out_rows, offset),
            length,
        )

    @classmethod
    def matmul_bytes(
        cls,
        mat: np.ndarray,
        shards: np.ndarray,
        out: np.ndarray | None = None,
        accumulate: bool = False,
    ) -> np.ndarray:
        """Multiply a GF matrix (r x k, uint8) by k data shards.

        ``shards`` has shape ``(k, L)``; the result has shape ``(r, L)``.
        This implements the stripe-encode/decode product ``M . D`` where each
        shard is a column-block of the stripe.  With ``out=`` the product is
        written (or, with ``accumulate=True``, XOR-accumulated) into the
        caller's buffer.  One call is one fused kernel pass regardless of
        matrix size — the unit `KERNEL_STATS["matmul_calls"]` counts.
        """
        mat = np.asarray(mat, dtype=np.uint8)
        if mat.ndim != 2:
            raise ValueError("matrix must be 2-D")
        shards = np.ascontiguousarray(shards, dtype=np.uint8)
        if shards.ndim != 2:
            raise ValueError("shards must form a (k, L) matrix")
        r, k = mat.shape
        if shards.shape[0] != k:
            raise ValueError(f"matrix expects {k} shards, got {shards.shape[0]}")
        length = shards.shape[1]
        if out is None:
            out = np.zeros((r, length), dtype=np.uint8)
        else:
            if out.shape != (r, length) or out.dtype != np.uint8:
                raise ValueError(f"out must be uint8 of shape {(r, length)}")
            if not accumulate:
                out[...] = 0
        if r == 0 or length == 0:
            return out
        if length < cls.TINY_SHARD_CUTOFF and not cls._FORCED:
            # Matrix-algebra-sized products (inversion checks, row
            # composition): setup-free gathers always win and, unlike the
            # pairs kernel, never churn the 64 KiB-table cache.
            name = "table"
        else:
            size_class = "small" if length < cls.SMALL_SHARD_CUTOFF else "large"
            name = cls._SELECTED[size_class]
        cls.KERNEL_STATS["matmul_calls"] += 1
        cls.KERNEL_STATS[name] = cls.KERNEL_STATS.get(name, 0) + 1
        cls._KERNELS[name].__get__(None, cls)(mat, shards, out)
        return out


def _autotune(cls=GF256) -> dict[str, str]:
    """Race the matrix kernels on one synthetic problem per size class.

    Runs at import and takes a few tens of milliseconds; every kernel is
    exact, so a noisy pick costs throughput only, never correctness.
    """
    rng = np.random.default_rng(0x5EED)
    choices: dict[str, str] = {}
    candidates = ("table", "logfused", "nibble", "pairs", "wide") + (
        ("native",) if "native" in cls._KERNELS else ()
    )
    for size_class, length, reps in (("small", 4096, 4), ("large", 1 << 18, 2)):
        mat = rng.integers(1, 256, (3, 6), dtype=np.uint8)
        shards = rng.integers(0, 256, (6, length), dtype=np.uint8)
        out = np.zeros((3, length), dtype=np.uint8)
        best, best_t = "table", float("inf")
        for name in candidates:
            kernel = cls._KERNELS[name].__get__(None, cls)
            out[...] = 0
            kernel(mat, shards, out)  # warmup (builds pair tables etc.)
            t0 = time.perf_counter()
            for _ in range(reps):
                out[...] = 0
                kernel(mat, shards, out)
            dt = (time.perf_counter() - t0) / reps
            if dt < best_t:
                best, best_t = name, dt
        choices[size_class] = best
    return choices


# Best-effort native kernel: registered before the autotune race (and the
# env-override validation) so a successful build competes like any other
# kernel and REPRO_GF_KERNEL=native is accepted.
from repro.erasure import native as _native  # noqa: E402  (needs GF256 defined)

GF256._NATIVE = _native.load()
if GF256._NATIVE is not None:
    GF256._KERNELS["native"] = GF256.__dict__["_kernel_native"]

_forced = os.environ.get("REPRO_GF_KERNEL")
if _forced:
    if _forced not in GF256._KERNELS:
        raise ValueError(
            f"REPRO_GF_KERNEL={_forced!r} is not one of {sorted(GF256._KERNELS)}"
        )
    GF256._AUTOTUNED = {"small": _forced, "large": _forced}
    GF256._FORCED = True
elif os.environ.get("REPRO_GF_AUTOTUNE", "1") not in ("0", "false", "off"):
    GF256._AUTOTUNED = _autotune()
else:  # static defaults measured on commodity x86: table small, pairs large
    GF256._AUTOTUNED = {"small": "table", "large": "pairs"}
GF256._SELECTED = dict(GF256._AUTOTUNED)
