"""Deferred multi-stripe coding batches over one :class:`RSCode`.

The staging runtime forms and repairs stripes one simulated flow at a
time, but the *numeric* work of those flows need not run one stripe at a
time: every encode submitted to a :class:`CodingBatch` is deferred until
some submitter actually needs its bytes, at which point **all** pending
jobs are flushed through :meth:`RSCode.encode_batch` — one fused kernel
pass per shard-length group, however many stripes have accumulated.

Within the discrete-event simulator a stripe's parity bytes are stored
(and thus forced) before the next stripe's flow begins, so batches there
are usually singletons — the deferral exists so the *data path* is
batch-shaped: any caller that can hold several submissions open (bulk
drains, the benchmark harness, the live backend's worker pool) gets
multi-stripe kernel passes with no API change, and the simulated cost
model is untouched because deferral moves no simulator events.

Thread-safety: the live backend flushes batches from parallel codec
workers, so submission and flushing are guarded by a lock.  A flush
takes ownership of every pending job before computing; a second thread
asking for one of those jobs' results blocks on the batch condition
until the owning flush publishes them (or fails, in which case the
error propagates to every waiter).
"""

from __future__ import annotations

import threading
from typing import TYPE_CHECKING, Sequence

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.erasure.reedsolomon import RSCode

__all__ = ["CodingBatch", "PendingEncode"]


class PendingEncode:
    """Handle for one deferred stripe encode.

    ``result()`` forces the owning batch: every job submitted so far is
    computed in one batched kernel flush, then this job's parity shards
    are returned.  If another thread's flush already took this job,
    ``result()`` waits for that flush to publish instead of recomputing.
    """

    __slots__ = ("_batch", "_payloads", "_result", "_error")

    def __init__(self, batch: "CodingBatch", payloads: Sequence[np.ndarray]):
        self._batch = batch
        self._payloads = payloads
        self._result: list[np.ndarray] | None = None
        self._error: BaseException | None = None

    @property
    def ready(self) -> bool:
        return self._result is not None

    def result(self) -> list[np.ndarray]:
        if self._result is None and self._error is None:
            self._batch.flush()
        if self._result is None and self._error is None:
            # A concurrent flush owns this job; wait for it to publish.
            with self._batch._cond:
                while self._result is None and self._error is None:
                    self._batch._cond.wait()
        if self._error is not None:
            raise self._error
        assert self._result is not None
        return self._result


class CodingBatch:
    """Accumulates encode jobs and flushes them through the batched kernels.

    ``tracer`` (any object with ``enabled`` and ``instant``; see
    :class:`repro.obs.tracer.Tracer`) is optional — when given and enabled,
    every flush emits a ``coding.flush`` instant span with batch stats.
    """

    def __init__(self, code: "RSCode", tracer=None):
        self.code = code
        self.tracer = tracer
        self._lock = threading.Lock()
        self._cond = threading.Condition(self._lock)
        self._pending: list[PendingEncode] = []
        # Stats: how batchy the data path actually ran.
        self.jobs_submitted = 0
        self.flushes = 0
        self.largest_flush = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._pending)

    def submit_encode(self, payloads: Sequence[np.ndarray]) -> PendingEncode:
        """Queue one stripe's data shards for a later batched encode."""
        job = PendingEncode(self, payloads)
        with self._lock:
            self._pending.append(job)
            self.jobs_submitted += 1
        return job

    def flush(self) -> int:
        """Encode every pending job in one :meth:`RSCode.encode_batch` call.

        Returns the number of jobs flushed.  Safe to call when empty and
        from multiple threads: each flush owns the jobs it dequeued.
        """
        with self._lock:
            if not self._pending:
                return 0
            jobs, self._pending = self._pending, []
        try:
            results = self.code.encode_batch([job._payloads for job in jobs])
        except BaseException as exc:
            with self._cond:
                for job in jobs:
                    job._error = exc
                self._cond.notify_all()
            raise
        with self._cond:
            for job, parity in zip(jobs, results):
                job._result = parity
                job._payloads = ()
            self.flushes += 1
            self.largest_flush = max(self.largest_flush, len(jobs))
            self._cond.notify_all()
        if self.tracer is not None and self.tracer.enabled:
            self.tracer.instant(
                "coding.flush", category="encode_batch",
                jobs=len(jobs), flushes=self.flushes,
            )
        return len(jobs)
