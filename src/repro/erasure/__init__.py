"""Erasure-coding substrate: GF(2^8) arithmetic and Reed-Solomon codes.

This subpackage replaces the Jerasure C library used by the paper.  It
implements:

- :mod:`repro.erasure.gf256` — the finite field GF(2^8) with log/antilog
  tables and autotuned fused matrix kernels (numpy table gathers, no
  Python loops on the data path);
- :mod:`repro.erasure.matrix` — matrix algebra over GF(2^8), including
  Gauss-Jordan inversion and Vandermonde/Cauchy generator constructions;
- :mod:`repro.erasure.reedsolomon` — systematic Reed-Solomon ``RS(k, m)``
  encode, arbitrary-erasure decode, delta-based parity update, batched
  multi-stripe encode/decode, and single-row shard reconstruction;
- :mod:`repro.erasure.batch` — deferred coding batches that let the data
  path fuse many stripes into one kernel pass.
"""

from repro.erasure.batch import CodingBatch, PendingEncode
from repro.erasure.gf256 import GF256
from repro.erasure.matrix import GFMatrix, vandermonde_rs_matrix, cauchy_rs_matrix
from repro.erasure.reedsolomon import RSCode, StripeCodec

__all__ = [
    "GF256",
    "GFMatrix",
    "vandermonde_rs_matrix",
    "cauchy_rs_matrix",
    "RSCode",
    "StripeCodec",
    "CodingBatch",
    "PendingEncode",
]
