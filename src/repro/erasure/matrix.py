"""Matrix algebra over GF(2^8) and generator-matrix constructions.

Reed-Solomon coding reduces to linear algebra over the field: encoding is a
matrix-vector product with a generator matrix whose every square submatrix is
invertible (the MDS property), and decoding is inversion of the submatrix of
rows corresponding to surviving shards.

Two standard constructions are provided:

- :func:`vandermonde_rs_matrix` — a systematic generator derived from a
  Vandermonde matrix by Gaussian elimination (the classic Jerasure
  ``vandermonde`` coding matrix);
- :func:`cauchy_rs_matrix` — a systematic Cauchy construction, which is MDS
  by construction without the elimination step.
"""

from __future__ import annotations

import numpy as np

from repro.erasure.gf256 import GF256

__all__ = [
    "GFMatrix",
    "identity",
    "vandermonde_matrix",
    "vandermonde_rs_matrix",
    "cauchy_rs_matrix",
]


def identity(n: int) -> np.ndarray:
    """The n x n identity matrix over GF(2^8)."""
    return np.eye(n, dtype=np.uint8)


class GFMatrix:
    """A dense matrix over GF(2^8) with multiply / invert / solve.

    Thin wrapper over a uint8 ndarray; rows/cols are field elements.  The
    heavy per-byte work happens in :class:`~repro.erasure.gf256.GF256`'s
    vectorized kernels — this class only runs at matrix dimension (k, m <= 32
    in practice), so clarity beats micro-optimization here.
    """

    def __init__(self, data) -> None:
        arr = np.asarray(data, dtype=np.uint8)
        if arr.ndim != 2:
            raise ValueError("GFMatrix requires a 2-D array")
        self.a = arr.copy()

    @property
    def shape(self) -> tuple[int, int]:
        return self.a.shape

    def __eq__(self, other: object) -> bool:
        return isinstance(other, GFMatrix) and self.a.shape == other.a.shape and bool((self.a == other.a).all())

    def __hash__(self):  # pragma: no cover - matrices are not hashed
        return NotImplemented

    def copy(self) -> "GFMatrix":
        return GFMatrix(self.a)

    # ------------------------------------------------------------------
    def matmul(self, other: "GFMatrix") -> "GFMatrix":
        """Matrix product over the field."""
        a, b = self.a, other.a
        if a.shape[1] != b.shape[0]:
            raise ValueError(f"shape mismatch {a.shape} @ {b.shape}")
        # The stripe product and the matrix product are the same operation;
        # delegate to the fused kernel layer (which routes matrix-sized
        # operands through the setup-free table kernel).
        return GFMatrix(GF256.matmul_bytes(a, b))

    def __matmul__(self, other: "GFMatrix") -> "GFMatrix":
        return self.matmul(other)

    def mul_vec(self, v: np.ndarray) -> np.ndarray:
        """Matrix-vector product over the field."""
        return self.matmul(GFMatrix(np.asarray(v, dtype=np.uint8).reshape(-1, 1))).a.ravel()

    # ------------------------------------------------------------------
    def invert(self) -> "GFMatrix":
        """Gauss-Jordan inversion over GF(2^8).

        Raises ``np.linalg.LinAlgError`` if the matrix is singular.  Used by
        the decoder on the surviving-rows submatrix, so singularity here
        means the erasure pattern exceeded the code's tolerance.
        """
        n, m = self.a.shape
        if n != m:
            raise ValueError("only square matrices can be inverted")
        aug = np.concatenate([self.a.copy(), identity(n)], axis=1)
        for col in range(n):
            # locate pivot
            pivot = -1
            for r in range(col, n):
                if aug[r, col] != 0:
                    pivot = r
                    break
            if pivot < 0:
                raise np.linalg.LinAlgError("singular matrix over GF(256)")
            if pivot != col:
                aug[[col, pivot]] = aug[[pivot, col]]
            # normalize pivot row
            inv_p = GF256.inv(int(aug[col, col]))
            if inv_p != 1:
                aug[col] = GF256.MUL[inv_p][aug[col]]
            # eliminate the column from every other row
            for r in range(n):
                if r != col and aug[r, col] != 0:
                    c = int(aug[r, col])
                    aug[r] ^= GF256.MUL[c][aug[col]]
        return GFMatrix(aug[:, n:])

    def rank(self) -> int:
        """Rank over GF(2^8) by forward elimination."""
        a = self.a.copy()
        n, m = a.shape
        rank = 0
        for col in range(m):
            pivot = -1
            for r in range(rank, n):
                if a[r, col] != 0:
                    pivot = r
                    break
            if pivot < 0:
                continue
            if pivot != rank:
                a[[rank, pivot]] = a[[pivot, rank]]
            inv_p = GF256.inv(int(a[rank, col]))
            if inv_p != 1:
                a[rank] = GF256.MUL[inv_p][a[rank]]
            for r in range(n):
                if r != rank and a[r, col] != 0:
                    c = int(a[r, col])
                    a[r] ^= GF256.MUL[c][a[rank]]
            rank += 1
            if rank == n:
                break
        return rank

    def is_mds_generator(self, k: int) -> bool:
        """Check the MDS property: every k x k submatrix is invertible.

        Exponential in the worst case; intended for tests and small (k, m).
        """
        from itertools import combinations

        n = self.a.shape[0]
        if self.a.shape[1] != k:
            raise ValueError("generator must have k columns")
        for rows in combinations(range(n), k):
            sub = GFMatrix(self.a[list(rows)])
            try:
                sub.invert()
            except np.linalg.LinAlgError:
                return False
        return True


def vandermonde_matrix(rows: int, cols: int) -> GFMatrix:
    """The (rows x cols) Vandermonde matrix V[i, j] = i**j over GF(2^8)."""
    a = np.zeros((rows, cols), dtype=np.uint8)
    for i in range(rows):
        for j in range(cols):
            a[i, j] = GF256.pow(i, j) if i > 0 else (1 if j == 0 else 0)
    return GFMatrix(a)


def vandermonde_rs_matrix(k: int, m: int) -> GFMatrix:
    """Systematic (k+m) x k generator from a Vandermonde matrix.

    Column-reduce the (k+m) x k Vandermonde matrix so its top k rows become
    the identity; the bottom m rows are then the parity coefficients.  The
    resulting generator retains the MDS property because column operations
    preserve the invertibility of row-submatrices.
    """
    if k < 1 or m < 0:
        raise ValueError("require k >= 1 and m >= 0")
    if k + m > GF256.ORDER:
        raise ValueError("k + m must be <= 256 for GF(2^8) Vandermonde codes")
    v = vandermonde_matrix(k + m, k).a
    # Column elimination to turn the top k x k block into the identity.
    for col in range(k):
        # Find a column with nonzero entry in row `col` at/after position col.
        if v[col, col] == 0:
            for c2 in range(col + 1, k):
                if v[col, c2] != 0:
                    v[:, [col, c2]] = v[:, [c2, col]]
                    break
            else:  # pragma: no cover - Vandermonde never degenerates here
                raise np.linalg.LinAlgError("degenerate Vandermonde construction")
        inv_p = GF256.inv(int(v[col, col]))
        if inv_p != 1:
            v[:, col] = GF256.MUL[inv_p][v[:, col]]
        for c2 in range(k):
            if c2 != col and v[col, c2] != 0:
                c = int(v[col, c2])
                v[:, c2] ^= GF256.MUL[c][v[:, col]]
    return GFMatrix(v)


def cauchy_rs_matrix(k: int, m: int) -> GFMatrix:
    """Systematic (k+m) x k generator with a Cauchy parity block.

    Parity block C[i, j] = 1 / (x_i + y_j) with distinct x_i, y_j drawn from
    disjoint subsets of the field; every square submatrix of a Cauchy matrix
    is invertible, so the systematic generator is MDS by construction.
    """
    if k < 1 or m < 0:
        raise ValueError("require k >= 1 and m >= 0")
    if k + m > GF256.ORDER:
        raise ValueError("k + m must be <= 256")
    ys = list(range(k))          # y_j = 0..k-1
    xs = list(range(k, k + m))   # x_i = k..k+m-1, disjoint from ys
    parity = np.zeros((m, k), dtype=np.uint8)
    for i, x in enumerate(xs):
        for j, y in enumerate(ys):
            parity[i, j] = GF256.inv(x ^ y)
    return GFMatrix(np.concatenate([identity(k), parity], axis=0))
