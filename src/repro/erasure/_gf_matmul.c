/* GF(2^8) fused matrix kernel: nibble-table shuffle product.
 *
 * The same low/high-nibble factorization the numpy "nibble" kernel uses
 * (product c*x = LO[c][x & 15] ^ HI[c][x >> 4]), lowered to a 32-byte
 * PSHUFB on AVX2 hosts the way ISA-L's SIMD erasure kernels do: one
 * in-register shuffle performs 32 table lookups, so a full r x k stripe
 * product streams the data once while every table access stays in
 * registers.  A plain-C path covers tails and non-AVX2 hosts; both paths
 * are bit-exact with the Python reference kernel.
 *
 * Built at runtime by repro.erasure.native (gcc -O3 -shared); the AVX2
 * body compiles via a per-function target attribute so no ISA flags are
 * needed and the binary still loads on any x86-64, dispatching on
 * __builtin_cpu_supports at call time.
 */
#include <stddef.h>
#include <stdint.h>

#if defined(__x86_64__) || defined(__i386__)
#define GF_X86 1
#include <immintrin.h>
#endif

/* Scalar product over an arbitrary row range / column range / byte range:
 * out[i] ^= sum_j mat[i*k+j] * shards[j] for the given bounds. */
static void matmul_scalar(const uint8_t *mat, size_t r, size_t k,
                          const uint8_t *const *shard_ptrs,
                          uint8_t *const *out_ptrs,
                          size_t l0, size_t length,
                          const uint8_t *nib_lo, const uint8_t *nib_hi)
{
    for (size_t i = 0; i < r; i++) {
        uint8_t *o = out_ptrs[i];
        for (size_t j = 0; j < k; j++) {
            uint8_t c = mat[i * k + j];
            if (c == 0)
                continue;
            const uint8_t *lo = nib_lo + (size_t)c * 16;
            const uint8_t *hi = nib_hi + (size_t)c * 16;
            const uint8_t *s = shard_ptrs[j];
            for (size_t l = l0; l < length; l++) {
                uint8_t x = s[l];
                o[l] ^= lo[x & 15] ^ hi[x >> 4];
            }
        }
    }
}

#ifdef GF_X86
__attribute__((target("avx2")))
static size_t matmul_avx2(const uint8_t *mat, size_t r, size_t k,
                          const uint8_t *const *shard_ptrs,
                          uint8_t *const *out_ptrs, size_t length,
                          const uint8_t *nib_lo, const uint8_t *nib_hi)
{
    const __m256i mask = _mm256_set1_epi8(0x0f);
    size_t vlen = length & ~(size_t)31; /* 32-byte blocks */
    /* Rows in groups of <=4 (separate accumulator registers), columns in
     * groups of <=16 (hoisted table registers): every (row, column) pair
     * costs two shuffles and three XORs per 32 bytes. */
    for (size_t i0 = 0; i0 < r; i0 += 4) {
        size_t gr = (r - i0) < 4 ? (r - i0) : 4;
        for (size_t j0 = 0; j0 < k; j0 += 16) {
            size_t gk = (k - j0) < 16 ? (k - j0) : 16;
            __m256i tlo[4][16], thi[4][16];
            for (size_t i = 0; i < gr; i++) {
                for (size_t j = 0; j < gk; j++) {
                    uint8_t c = mat[(i0 + i) * k + (j0 + j)];
                    tlo[i][j] = _mm256_broadcastsi128_si256(
                        _mm_loadu_si128((const __m128i *)(nib_lo + (size_t)c * 16)));
                    thi[i][j] = _mm256_broadcastsi128_si256(
                        _mm_loadu_si128((const __m128i *)(nib_hi + (size_t)c * 16)));
                }
            }
            for (size_t l = 0; l < vlen; l += 32) {
                __m256i acc0 = _mm256_setzero_si256();
                __m256i acc1 = acc0, acc2 = acc0, acc3 = acc0;
                for (size_t j = 0; j < gk; j++) {
                    __m256i x = _mm256_loadu_si256(
                        (const __m256i *)(shard_ptrs[j0 + j] + l));
                    __m256i xlo = _mm256_and_si256(x, mask);
                    __m256i xhi = _mm256_and_si256(_mm256_srli_epi64(x, 4), mask);
                    acc0 = _mm256_xor_si256(acc0, _mm256_xor_si256(
                        _mm256_shuffle_epi8(tlo[0][j], xlo),
                        _mm256_shuffle_epi8(thi[0][j], xhi)));
                    if (gr > 1)
                        acc1 = _mm256_xor_si256(acc1, _mm256_xor_si256(
                            _mm256_shuffle_epi8(tlo[1][j], xlo),
                            _mm256_shuffle_epi8(thi[1][j], xhi)));
                    if (gr > 2)
                        acc2 = _mm256_xor_si256(acc2, _mm256_xor_si256(
                            _mm256_shuffle_epi8(tlo[2][j], xlo),
                            _mm256_shuffle_epi8(thi[2][j], xhi)));
                    if (gr > 3)
                        acc3 = _mm256_xor_si256(acc3, _mm256_xor_si256(
                            _mm256_shuffle_epi8(tlo[3][j], xlo),
                            _mm256_shuffle_epi8(thi[3][j], xhi)));
                }
                uint8_t *o = out_ptrs[i0] + l;
                _mm256_storeu_si256((__m256i *)o, _mm256_xor_si256(
                    _mm256_loadu_si256((const __m256i *)o), acc0));
                if (gr > 1) {
                    o = out_ptrs[i0 + 1] + l;
                    _mm256_storeu_si256((__m256i *)o, _mm256_xor_si256(
                        _mm256_loadu_si256((const __m256i *)o), acc1));
                }
                if (gr > 2) {
                    o = out_ptrs[i0 + 2] + l;
                    _mm256_storeu_si256((__m256i *)o, _mm256_xor_si256(
                        _mm256_loadu_si256((const __m256i *)o), acc2));
                }
                if (gr > 3) {
                    o = out_ptrs[i0 + 3] + l;
                    _mm256_storeu_si256((__m256i *)o, _mm256_xor_si256(
                        _mm256_loadu_si256((const __m256i *)o), acc3));
                }
            }
        }
    }
    return vlen;
}
#endif /* GF_X86 */

/* Entry point: XOR-accumulates the product into the out rows.  Shards and
 * output rows are passed as pointer arrays so callers can hand over
 * arbitrary (even non-adjacent) row buffers without stacking a matrix. */
void gf_matmul(const uint8_t *mat, size_t r, size_t k,
               const uint8_t *const *shard_ptrs,
               uint8_t *const *out_ptrs, size_t length,
               const uint8_t *nib_lo, const uint8_t *nib_hi)
{
    size_t l0 = 0;
    if (r == 0 || k == 0 || length == 0)
        return;
#ifdef GF_X86
    if (__builtin_cpu_supports("avx2"))
        l0 = matmul_avx2(mat, r, k, shard_ptrs, out_ptrs, length,
                         nib_lo, nib_hi);
#endif
    matmul_scalar(mat, r, k, shard_ptrs, out_ptrs, l0, length,
                  nib_lo, nib_hi);
}

/* 0 = plain C only, 2 = AVX2 dispatch active on this host. */
int gf_simd_level(void)
{
#ifdef GF_X86
    if (__builtin_cpu_supports("avx2"))
        return 2;
#endif
    return 0;
}
