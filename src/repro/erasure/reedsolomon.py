"""Systematic Reed-Solomon coding over GF(2^8).

``RSCode(k, m)`` encodes ``k`` equal-length data shards into ``m`` parity
shards; any ``k`` of the ``k+m`` stripe shards reconstruct the data (MDS).
This mirrors the paper's Jerasure usage, where a stripe of ``k`` staged data
objects plus ``m`` parities tolerates ``m`` concurrent staging-server
failures.

Beyond plain encode/decode, :meth:`RSCode.update_parity` implements the
delta-based parity update that makes *object updates* expensive for erasure
coded data — the cost asymmetry at the heart of CoREC's hot/cold split: an
update to one data shard requires touching **every** parity shard, whereas a
replicated object only rewrites its replicas.

:class:`StripeCodec` adapts the fixed-shard-size core to variable-size
payloads by padding, and carries shard-to-server bookkeeping for the staging
layer.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Callable, Iterable, Sequence

import numpy as np

from repro.erasure.gf256 import GF256
from repro.erasure.matrix import GFMatrix, cauchy_rs_matrix, vandermonde_rs_matrix
from repro.obs.registry import StatCounters

__all__ = ["RSCode", "StripeCodec", "Stripe"]


class RSCode:
    """A systematic ``RS(k, m)`` erasure code.

    Parameters
    ----------
    k:
        Number of data shards per stripe.
    m:
        Number of parity shards (failures tolerated).
    construction:
        ``"cauchy"`` (default) or ``"vandermonde"`` generator construction.
    decode_cache_capacity:
        Bound on the LRU cache of decode (and reconstruction-row) matrices.
    """

    def __init__(
        self,
        k: int,
        m: int,
        construction: str = "cauchy",
        decode_cache_capacity: int = 1024,
    ):
        if k < 1:
            raise ValueError("k must be >= 1")
        if m < 0:
            raise ValueError("m must be >= 0")
        if k + m > 256:
            raise ValueError("k + m must be <= 256 for GF(2^8)")
        self.k = k
        self.m = m
        self.n = k + m
        self.construction = construction
        if construction == "cauchy":
            self.generator = cauchy_rs_matrix(k, m)
        elif construction == "vandermonde":
            self.generator = vandermonde_rs_matrix(k, m)
        elif construction == "xor":
            # Single-parity XOR code (RAID-5-like): the m=1 special case
            # whose parity row is all ones, so encode/update degenerate to
            # pure XOR passes — the cheap end of the paper's cited
            # XOR-based code family.
            if m > 1:
                raise ValueError("the xor construction supports exactly one parity")
            from repro.erasure.matrix import GFMatrix, identity

            gen = np.concatenate([identity(k), np.ones((m, k), dtype=np.uint8)], axis=0)
            self.generator = GFMatrix(gen)
        else:
            raise ValueError(f"unknown construction {construction!r}")
        # Parity block rows (m x k): the non-identity part of the generator.
        self.parity_rows = self.generator.a[k:, :]
        # Decode matrices are pure functions of the surviving-row set; the
        # same erasure patterns recur constantly during recovery, so the
        # Gauss-Jordan inversions are kept in a bounded LRU (as production
        # RS codecs do).  Eviction is one-at-a-time from the cold end —
        # hot patterns survive a cache full of one-off cold ones.
        if decode_cache_capacity < 1:
            raise ValueError("decode_cache_capacity must be >= 1")
        self.decode_cache_capacity = decode_cache_capacity
        self._decode_cache: OrderedDict[tuple[int, ...], np.ndarray] = OrderedDict()
        # Single-shard reconstruction rows, keyed (survivor set, target).
        self._row_cache: OrderedDict[tuple[tuple[int, ...], int], np.ndarray] = OrderedDict()
        self.decode_cache_hits = 0
        self.decode_cache_misses = 0
        self.decode_cache_evictions = 0
        # The matrix caches (and their counters) are the only mutable
        # state a codec pass touches, so locking them is all it takes to
        # make every coding method safe from concurrent worker threads
        # (kernel scratch is thread-local; kernel table caches carry their
        # own lock).  RLock: _reconstruct_row nests into _decode_matrix.
        self._cache_lock = threading.RLock()
        # Optional fan-out hook for the payload-dimension kernel passes:
        # when set (the live backend installs its codec pool here), a
        # product over at least ``parallel_min_bytes`` of input is split
        # into ~``parallel_chunk_bytes`` column ranges and the resulting
        # thunks are handed to ``parallel_map`` to run concurrently.
        # Columns of a GF matrix product are independent, so any split is
        # byte-identical to the serial pass.  ``None`` = fully serial.
        self.parallel_map: Callable[[Sequence[Callable[[], Any]]], Any] | None = None
        self.parallel_min_bytes = 1 << 18
        self.parallel_chunk_bytes = 1 << 20
        self.parallel_max_tasks = 16
        # Thread-safe: pool workers and the loop thread both pass through
        # _run_tasks; reads keep the dict interface (stats["passes"]).
        self.parallel_stats = StatCounters(("passes", "tasks", "serial_passes"))

    def _decode_matrix(self, chosen: tuple[int, ...]) -> np.ndarray:
        with self._cache_lock:
            cached = self._decode_cache.get(chosen)
            if cached is not None:
                self.decode_cache_hits += 1
                self._decode_cache.move_to_end(chosen)
                return cached
            self.decode_cache_misses += 1
            inv = GFMatrix(self.generator.a[list(chosen)]).invert().a
            while len(self._decode_cache) >= self.decode_cache_capacity:
                self._decode_cache.popitem(last=False)
                self.decode_cache_evictions += 1
            self._decode_cache[chosen] = inv
            return inv

    def warm_decode_cache(self, patterns: Iterable[tuple[int, ...]]) -> int:
        """Precompute decode matrices for the given survivor sets.

        Bulk recovery knows every erasure pattern it is about to repair
        before the repairs run; building the Gauss-Jordan inversions in one
        pure-compute pass here turns the per-repair lookups into LRU hits.
        Returns the number of matrices actually built.
        """
        built = 0
        for pattern in patterns:
            chosen = tuple(sorted(pattern))[: self.k]
            if len(chosen) < self.k or chosen == tuple(range(self.k)):
                continue  # unrecoverable / fast path: nothing to invert
            if chosen not in self._decode_cache:
                self._decode_matrix(chosen)
                built += 1
        return built

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"RSCode(k={self.k}, m={self.m}, {self.construction})"

    # ------------------------------------------------------------------
    @staticmethod
    def _as_shard_matrix(shards: Sequence[np.ndarray]) -> np.ndarray:
        mats = [np.ascontiguousarray(s, dtype=np.uint8).ravel() for s in shards]
        lengths = {s.size for s in mats}
        if len(lengths) != 1:
            raise ValueError(f"shards must be equal length, got {sorted(lengths)}")
        return np.stack(mats, axis=0)

    @staticmethod
    def _as_rows(shards: Sequence[np.ndarray]) -> tuple[list[np.ndarray], int]:
        """Normalize shards to contiguous uint8 rows *without* stacking."""
        rows = [np.ascontiguousarray(s, dtype=np.uint8).ravel() for s in shards]
        lengths = {r.size for r in rows}
        if len(lengths) > 1:
            raise ValueError(f"shards must be equal length, got {sorted(lengths)}")
        return rows, (lengths.pop() if lengths else 0)

    # -- parallel product plumbing --------------------------------------
    def _n_tasks(self, work_bytes: int) -> int:
        if self.parallel_map is None or work_bytes < self.parallel_min_bytes:
            return 1
        return max(
            1, min(self.parallel_max_tasks, work_bytes // self.parallel_chunk_bytes)
        )

    @staticmethod
    def _bounds(length: int, n_tasks: int) -> list[tuple[int, int]]:
        # Contiguous column ranges, SIMD/cache-line aligned at 4 KiB.
        step = -(-length // n_tasks)
        step = (step + 4095) & ~4095
        return [(a, min(a + step, length)) for a in range(0, length, step)]

    def _product_tasks(
        self, mat: np.ndarray, rows: Sequence[np.ndarray], length: int
    ) -> tuple[list[Callable[[], None]], Callable[[], list[np.ndarray]]]:
        """Build the kernel thunks for ``mat . rows`` plus a result thunk.

        With the native kernel loaded, rows are passed by pointer and the
        parity rows come back as independent arrays — no (k, L) stacking
        copy ever happens.  The numpy fallback stacks once and splits the
        same way.  Either way the column split is byte-exact: each task
        writes a disjoint column range of the output.
        """
        r = mat.shape[0]
        n_tasks = self._n_tasks(len(rows) * length) if length else 1
        if GF256.native_kernel() is not None:
            outs = [np.empty(length, dtype=np.uint8) for _ in range(r)]
            if n_tasks <= 1:
                tasks = [lambda: GF256.matmul_rows(mat, rows, outs, length=length)]
            else:
                tasks = [
                    lambda a=a, b=b: GF256.matmul_rows(
                        mat, rows, outs, offset=a, length=b - a
                    )
                    for a, b in self._bounds(length, n_tasks)
                ]
            return tasks, lambda: outs
        stacked = (
            rows[0].reshape(1, -1) if len(rows) == 1 else np.stack(rows, axis=0)
        )
        out = np.empty((r, length), dtype=np.uint8)
        if n_tasks <= 1:
            tasks = [lambda: GF256.matmul_bytes(mat, stacked, out=out)]
        else:
            tasks = [
                lambda a=a, b=b: GF256.matmul_bytes(
                    mat, stacked[:, a:b], out=out[:, a:b]
                )
                for a, b in self._bounds(length, n_tasks)
            ]
        return tasks, lambda: [out[i] for i in range(r)]

    def _run_tasks(self, tasks: Sequence[Callable[[], None]]) -> None:
        pm = self.parallel_map
        if pm is not None and len(tasks) > 1:
            self.parallel_stats.inc("passes")
            self.parallel_stats.inc("tasks", len(tasks))
            pm(tasks)
            return
        if pm is not None:
            self.parallel_stats.inc("serial_passes")
        for task in tasks:
            task()

    def _product(
        self, mat: np.ndarray, rows: Sequence[np.ndarray], length: int
    ) -> list[np.ndarray]:
        tasks, result = self._product_tasks(mat, rows, length)
        self._run_tasks(tasks)
        return result()

    def encode(self, data_shards: Sequence[np.ndarray]) -> list[np.ndarray]:
        """Compute the ``m`` parity shards for ``k`` data shards."""
        rows, length = self._as_rows(data_shards)
        if len(rows) != self.k:
            raise ValueError(f"expected {self.k} data shards, got {len(rows)}")
        if self.m == 0:
            return []
        return self._product(self.parity_rows, rows, length)

    def encode_batch(
        self, stripes: Sequence[Sequence[np.ndarray]]
    ) -> list[list[np.ndarray]]:
        """Encode many stripes with one kernel pass per shard-length group.

        ``stripes`` is a sequence of S stripes, each ``k`` equal-length data
        shards.  Stripes of the same shard length are stacked into a single
        ``(k, S*L)`` matrix so the whole group is one fused matrix product —
        the batching that makes per-call overhead vanish for the small
        shards staging actually produces.  Results are byte-identical to
        calling :meth:`encode` per stripe, in input order.
        """
        mats: list[list[np.ndarray]] = []
        lengths: list[int] = []
        for shards in stripes:
            rows, length = self._as_rows(shards)
            if len(rows) != self.k:
                raise ValueError(f"expected {self.k} data shards, got {len(rows)}")
            mats.append(rows)
            lengths.append(length)
        if self.m == 0:
            return [[] for _ in mats]
        out: list[list[np.ndarray] | None] = [None] * len(mats)
        by_len: dict[int, list[int]] = {}
        for idx, length in enumerate(lengths):
            by_len.setdefault(length, []).append(idx)
        # One fused product per shard-length group, with every group's
        # column-split thunks gathered into a single parallel pass.
        tasks: list[Callable[[], None]] = []
        finishers: list[tuple[Callable[[], list[np.ndarray]], list[int], int]] = []
        for length, idxs in by_len.items():
            if len(idxs) == 1:
                rows = mats[idxs[0]]
                width = length
            else:
                rows = [
                    np.concatenate([mats[i][j] for i in idxs]) for j in range(self.k)
                ]
                width = length * len(idxs)
            group_tasks, result = self._product_tasks(self.parity_rows, rows, width)
            tasks.extend(group_tasks)
            finishers.append((result, idxs, length))
        self._run_tasks(tasks)
        for result, idxs, length in finishers:
            parity = result()
            for pos, idx in enumerate(idxs):
                out[idx] = [
                    np.ascontiguousarray(p[pos * length : (pos + 1) * length])
                    for p in parity
                ]
        return out  # type: ignore[return-value]

    def decode_batch(
        self, jobs: Sequence[dict[int, np.ndarray]]
    ) -> list[list[np.ndarray]]:
        """Decode many stripes, one kernel pass per (erasure pattern, length).

        Each job is a ``present`` mapping as accepted by :meth:`decode`.
        Jobs sharing a survivor set and shard length are stacked into one
        matrix product against the shared decode matrix.  Byte-identical to
        per-stripe :meth:`decode`, in input order.
        """
        plans: list[tuple[int, tuple[int, ...], np.ndarray] | tuple[int, None, list[np.ndarray]]] = []
        for idx, present in enumerate(jobs):
            if len(present) < self.k:
                raise ValueError(
                    f"unrecoverable: need {self.k} shards, only {len(present)} present"
                )
            for i in present:
                if not 0 <= i < self.n:
                    raise IndexError(f"shard index {i} out of range 0..{self.n - 1}")
            if all(i in present for i in range(self.k)):
                data = [
                    np.ascontiguousarray(present[i], dtype=np.uint8).ravel()
                    for i in range(self.k)
                ]
                plans.append((idx, None, data))
                continue
            chosen = tuple(sorted(present.keys())[: self.k])
            rows, length = self._as_rows([present[i] for i in chosen])
            plans.append((idx, chosen, (rows, length)))
        out: list[list[np.ndarray] | None] = [None] * len(jobs)
        groups: dict[
            tuple[tuple[int, ...], int], list[tuple[int, list[np.ndarray]]]
        ] = {}
        for idx, chosen, payload in plans:
            if chosen is None:
                out[idx] = payload  # all data shards survived; nothing to invert
            else:
                rows, length = payload
                groups.setdefault((chosen, length), []).append((idx, rows))
        tasks: list[Callable[[], None]] = []
        finishers: list[
            tuple[Callable[[], list[np.ndarray]], list[tuple[int, list[np.ndarray]]], int]
        ] = []
        for (chosen, length), members in groups.items():
            inv = self._decode_matrix(chosen)
            if len(members) == 1:
                rows = members[0][1]
                width = length
            else:
                rows = [
                    np.concatenate([mrows[j] for _, mrows in members])
                    for j in range(self.k)
                ]
                width = length * len(members)
            group_tasks, result = self._product_tasks(inv, rows, width)
            tasks.extend(group_tasks)
            finishers.append((result, members, length))
        self._run_tasks(tasks)
        for result, members, length in finishers:
            data = result()
            for pos, (idx, _) in enumerate(members):
                out[idx] = [
                    np.ascontiguousarray(d[pos * length : (pos + 1) * length])
                    for d in data
                ]
        return out  # type: ignore[return-value]

    def update_parity(
        self,
        parities: Sequence[np.ndarray],
        shard_index: int,
        old_shard: np.ndarray,
        new_shard: np.ndarray,
    ) -> list[np.ndarray]:
        """Delta-update all parities after one data shard changes.

        ``P_i' = P_i + G[k+i, j] * (old + new)`` — requires reading the old
        shard and rewriting every parity, which is exactly the update
        overhead the paper's Section II-A describes.
        """
        if not 0 <= shard_index < self.k:
            raise IndexError("shard_index out of range")
        if len(parities) != self.m:
            raise ValueError(f"expected {self.m} parities, got {len(parities)}")
        delta = np.bitwise_xor(
            np.ascontiguousarray(old_shard, dtype=np.uint8).ravel(),
            np.ascontiguousarray(new_shard, dtype=np.uint8).ravel(),
        )
        out = []
        for i in range(self.m):
            p = np.ascontiguousarray(parities[i], dtype=np.uint8).ravel().copy()
            GF256.addmul_bytes(p, int(self.parity_rows[i, shard_index]), delta)
            out.append(p)
        return out

    def decode(
        self,
        present: dict[int, np.ndarray],
        shard_len: int | None = None,
    ) -> list[np.ndarray]:
        """Reconstruct all ``k`` data shards from any ``k`` present shards.

        Parameters
        ----------
        present:
            Mapping of stripe index (0..n-1; data shards first, then
            parities) to the surviving shard bytes.  At least ``k`` entries
            are required.
        shard_len:
            Optional expected shard length (validated if provided).

        Returns
        -------
        The ``k`` data shards, in order.

        Raises
        ------
        ValueError
            If fewer than ``k`` shards are present (unrecoverable loss).
        """
        if len(present) < self.k:
            raise ValueError(
                f"unrecoverable: need {self.k} shards, only {len(present)} present"
            )
        for idx in present:
            if not 0 <= idx < self.n:
                raise IndexError(f"shard index {idx} out of range 0..{self.n - 1}")

        # Fast path: all data shards survived — nothing to invert.
        if all(i in present for i in range(self.k)):
            data = [np.ascontiguousarray(present[i], dtype=np.uint8).ravel() for i in range(self.k)]
            if shard_len is not None and any(d.size != shard_len for d in data):
                raise ValueError("shard length mismatch")
            return data

        # Choose k surviving rows, preferring data shards (cheaper rows).
        chosen = tuple(sorted(present.keys())[: self.k])
        inv = self._decode_matrix(chosen)
        rows, length = self._as_rows([present[i] for i in chosen])
        if shard_len is not None and length != shard_len:
            raise ValueError("shard length mismatch")
        return self._product(inv, rows, length)

    def _reconstruct_row(self, chosen: tuple[int, ...], target: int) -> np.ndarray:
        """The 1 x k row r with ``shard[target] = r . chosen_shards``.

        For a data target the row is one row of the decode matrix; for a
        parity target it is the parity generator row composed with the
        decode matrix (a k-element dot product per entry — matrix-dimension
        work, not payload-dimension).  Rows are LRU-cached alongside the
        decode matrices because recovery replays the same erasure patterns.
        """
        key = (chosen, target)
        with self._cache_lock:
            cached = self._row_cache.get(key)
            if cached is not None:
                self._row_cache.move_to_end(key)
                return cached
            if chosen == tuple(range(self.k)):
                # All data shards survive: a parity target is its generator row.
                row = self.parity_rows[target - self.k : target - self.k + 1].copy()
            else:
                inv = self._decode_matrix(chosen)
                if target < self.k:
                    row = inv[target : target + 1].copy()
                else:
                    prow = self.parity_rows[target - self.k]
                    acc = np.zeros(self.k, dtype=np.uint8)
                    for j in range(self.k):
                        GF256.addmul_bytes(acc, int(prow[j]), inv[j])
                    row = acc.reshape(1, self.k)
            while len(self._row_cache) >= self.decode_cache_capacity:
                self._row_cache.popitem(last=False)
            self._row_cache[key] = row
            return row

    def reconstruct_shard(self, present: dict[int, np.ndarray], target: int) -> np.ndarray:
        """Reconstruct one stripe shard (data *or* parity) by index.

        A single missing shard costs exactly one payload-sized kernel pass:
        the target is a linear combination of any k survivors, so the
        (cached) combination row is applied with one matrix-vector product
        instead of decoding all k data shards and re-encoding.
        """
        if not 0 <= target < self.n:
            raise IndexError("target out of range")
        if target in present:
            return np.ascontiguousarray(present[target], dtype=np.uint8).ravel().copy()
        if len(present) < self.k:
            raise ValueError(
                f"unrecoverable: need {self.k} shards, only {len(present)} present"
            )
        for idx in present:
            if not 0 <= idx < self.n:
                raise IndexError(f"shard index {idx} out of range 0..{self.n - 1}")
        chosen = tuple(sorted(present.keys())[: self.k])
        row = self._reconstruct_row(chosen, target)
        rows, length = self._as_rows([present[i] for i in chosen])
        return self._product(row, rows, length)[0]


@dataclass
class Stripe:
    """A coded stripe: shard payloads plus original object lengths.

    ``shards[i]`` for ``i < k`` are (padded) data shards; ``i >= k`` are
    parities.  ``lengths[i]`` records each original object's byte length so
    decode can strip the padding.
    """

    code: RSCode
    shards: list[np.ndarray]
    lengths: list[int]

    @property
    def shard_len(self) -> int:
        return int(self.shards[0].size) if self.shards else 0


class StripeCodec:
    """Variable-size object <-> fixed-size stripe adapter.

    The staging layer deals in objects of (slightly) varying byte size; the
    RS core wants equal-length shards.  The codec pads each object to the
    stripe's shard length (the max object length) before encoding and strips
    padding after decode.
    """

    def __init__(self, k: int, m: int, construction: str = "cauchy"):
        self.code = RSCode(k, m, construction)

    @property
    def k(self) -> int:
        return self.code.k

    @property
    def m(self) -> int:
        return self.code.m

    @staticmethod
    def _pad(buf: np.ndarray, length: int) -> np.ndarray:
        buf = np.ascontiguousarray(buf, dtype=np.uint8).ravel()
        if buf.size == length:
            return buf
        out = np.zeros(length, dtype=np.uint8)
        out[: buf.size] = buf
        return out

    def encode_objects(self, objects: Sequence[np.ndarray]) -> Stripe:
        """Encode ``k`` byte buffers (possibly unequal lengths) into a stripe."""
        if len(objects) != self.k:
            raise ValueError(f"expected {self.k} objects, got {len(objects)}")
        lengths = [int(np.asarray(o).size) for o in objects]
        shard_len = max(lengths) if lengths else 0
        if shard_len == 0:
            raise ValueError("cannot encode empty objects")
        data = [self._pad(o, shard_len) for o in objects]
        parity = self.code.encode(data)
        return Stripe(code=self.code, shards=data + parity, lengths=lengths)

    def encode_objects_batch(
        self, object_groups: Sequence[Sequence[np.ndarray]]
    ) -> list[Stripe]:
        """Encode many object groups into stripes with batched kernel passes.

        Each group independently determines its shard length (its longest
        object); groups that share a shard length are encoded in one fused
        kernel call via :meth:`RSCode.encode_batch`.  Byte-identical to
        mapping :meth:`encode_objects` over the groups.
        """
        all_lengths: list[list[int]] = []
        all_data: list[list[np.ndarray]] = []
        for objects in object_groups:
            if len(objects) != self.k:
                raise ValueError(f"expected {self.k} objects, got {len(objects)}")
            lengths = [int(np.asarray(o).size) for o in objects]
            shard_len = max(lengths) if lengths else 0
            if shard_len == 0:
                raise ValueError("cannot encode empty objects")
            all_lengths.append(lengths)
            all_data.append([self._pad(o, shard_len) for o in objects])
        parities = self.code.encode_batch(all_data)
        return [
            Stripe(code=self.code, shards=data + parity, lengths=lengths)
            for data, parity, lengths in zip(all_data, parities, all_lengths)
        ]

    def decode_objects(self, stripe_lengths: Sequence[int], present: dict[int, np.ndarray]) -> list[np.ndarray]:
        """Recover the original (unpadded) objects from surviving shards."""
        data = self.code.decode(present)
        if len(stripe_lengths) != self.k:
            raise ValueError("need one original length per data shard")
        return [data[i][: stripe_lengths[i]].copy() for i in range(self.k)]
