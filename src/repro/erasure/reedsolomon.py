"""Systematic Reed-Solomon coding over GF(2^8).

``RSCode(k, m)`` encodes ``k`` equal-length data shards into ``m`` parity
shards; any ``k`` of the ``k+m`` stripe shards reconstruct the data (MDS).
This mirrors the paper's Jerasure usage, where a stripe of ``k`` staged data
objects plus ``m`` parities tolerates ``m`` concurrent staging-server
failures.

Beyond plain encode/decode, :meth:`RSCode.update_parity` implements the
delta-based parity update that makes *object updates* expensive for erasure
coded data — the cost asymmetry at the heart of CoREC's hot/cold split: an
update to one data shard requires touching **every** parity shard, whereas a
replicated object only rewrites its replicas.

:class:`StripeCodec` adapts the fixed-shard-size core to variable-size
payloads by padding, and carries shard-to-server bookkeeping for the staging
layer.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.erasure.gf256 import GF256
from repro.erasure.matrix import GFMatrix, cauchy_rs_matrix, vandermonde_rs_matrix

__all__ = ["RSCode", "StripeCodec", "Stripe"]


class RSCode:
    """A systematic ``RS(k, m)`` erasure code.

    Parameters
    ----------
    k:
        Number of data shards per stripe.
    m:
        Number of parity shards (failures tolerated).
    construction:
        ``"cauchy"`` (default) or ``"vandermonde"`` generator construction.
    """

    def __init__(self, k: int, m: int, construction: str = "cauchy"):
        if k < 1:
            raise ValueError("k must be >= 1")
        if m < 0:
            raise ValueError("m must be >= 0")
        if k + m > 256:
            raise ValueError("k + m must be <= 256 for GF(2^8)")
        self.k = k
        self.m = m
        self.n = k + m
        self.construction = construction
        if construction == "cauchy":
            self.generator = cauchy_rs_matrix(k, m)
        elif construction == "vandermonde":
            self.generator = vandermonde_rs_matrix(k, m)
        elif construction == "xor":
            # Single-parity XOR code (RAID-5-like): the m=1 special case
            # whose parity row is all ones, so encode/update degenerate to
            # pure XOR passes — the cheap end of the paper's cited
            # XOR-based code family.
            if m > 1:
                raise ValueError("the xor construction supports exactly one parity")
            from repro.erasure.matrix import GFMatrix, identity

            gen = np.concatenate([identity(k), np.ones((m, k), dtype=np.uint8)], axis=0)
            self.generator = GFMatrix(gen)
        else:
            raise ValueError(f"unknown construction {construction!r}")
        # Parity block rows (m x k): the non-identity part of the generator.
        self.parity_rows = self.generator.a[k:, :]
        # Decode matrices are pure functions of the surviving-row set; the
        # same erasure patterns recur constantly during recovery, so the
        # Gauss-Jordan inversions are cached (as production RS codecs do).
        self._decode_cache: dict[tuple[int, ...], np.ndarray] = {}
        self.decode_cache_hits = 0
        self.decode_cache_misses = 0

    def _decode_matrix(self, chosen: tuple[int, ...]) -> np.ndarray:
        cached = self._decode_cache.get(chosen)
        if cached is not None:
            self.decode_cache_hits += 1
            return cached
        self.decode_cache_misses += 1
        inv = GFMatrix(self.generator.a[list(chosen)]).invert().a
        if len(self._decode_cache) >= 1024:  # bound the cache
            self._decode_cache.clear()
        self._decode_cache[chosen] = inv
        return inv

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"RSCode(k={self.k}, m={self.m}, {self.construction})"

    # ------------------------------------------------------------------
    @staticmethod
    def _as_shard_matrix(shards: Sequence[np.ndarray]) -> np.ndarray:
        mats = [np.ascontiguousarray(s, dtype=np.uint8).ravel() for s in shards]
        lengths = {s.size for s in mats}
        if len(lengths) != 1:
            raise ValueError(f"shards must be equal length, got {sorted(lengths)}")
        return np.stack(mats, axis=0)

    def encode(self, data_shards: Sequence[np.ndarray]) -> list[np.ndarray]:
        """Compute the ``m`` parity shards for ``k`` data shards."""
        d = self._as_shard_matrix(data_shards)
        if d.shape[0] != self.k:
            raise ValueError(f"expected {self.k} data shards, got {d.shape[0]}")
        parity = GF256.matmul_bytes(self.parity_rows, d)
        return [parity[i] for i in range(self.m)]

    def update_parity(
        self,
        parities: Sequence[np.ndarray],
        shard_index: int,
        old_shard: np.ndarray,
        new_shard: np.ndarray,
    ) -> list[np.ndarray]:
        """Delta-update all parities after one data shard changes.

        ``P_i' = P_i + G[k+i, j] * (old + new)`` — requires reading the old
        shard and rewriting every parity, which is exactly the update
        overhead the paper's Section II-A describes.
        """
        if not 0 <= shard_index < self.k:
            raise IndexError("shard_index out of range")
        if len(parities) != self.m:
            raise ValueError(f"expected {self.m} parities, got {len(parities)}")
        delta = np.bitwise_xor(
            np.ascontiguousarray(old_shard, dtype=np.uint8).ravel(),
            np.ascontiguousarray(new_shard, dtype=np.uint8).ravel(),
        )
        out = []
        for i in range(self.m):
            p = np.ascontiguousarray(parities[i], dtype=np.uint8).ravel().copy()
            GF256.addmul_bytes(p, int(self.parity_rows[i, shard_index]), delta)
            out.append(p)
        return out

    def decode(
        self,
        present: dict[int, np.ndarray],
        shard_len: int | None = None,
    ) -> list[np.ndarray]:
        """Reconstruct all ``k`` data shards from any ``k`` present shards.

        Parameters
        ----------
        present:
            Mapping of stripe index (0..n-1; data shards first, then
            parities) to the surviving shard bytes.  At least ``k`` entries
            are required.
        shard_len:
            Optional expected shard length (validated if provided).

        Returns
        -------
        The ``k`` data shards, in order.

        Raises
        ------
        ValueError
            If fewer than ``k`` shards are present (unrecoverable loss).
        """
        if len(present) < self.k:
            raise ValueError(
                f"unrecoverable: need {self.k} shards, only {len(present)} present"
            )
        for idx in present:
            if not 0 <= idx < self.n:
                raise IndexError(f"shard index {idx} out of range 0..{self.n - 1}")

        # Fast path: all data shards survived — nothing to invert.
        if all(i in present for i in range(self.k)):
            data = [np.ascontiguousarray(present[i], dtype=np.uint8).ravel() for i in range(self.k)]
            if shard_len is not None and any(d.size != shard_len for d in data):
                raise ValueError("shard length mismatch")
            return data

        # Choose k surviving rows, preferring data shards (cheaper rows).
        chosen = tuple(sorted(present.keys())[: self.k])
        inv = self._decode_matrix(chosen)
        shard_mat = self._as_shard_matrix([present[i] for i in chosen])
        if shard_len is not None and shard_mat.shape[1] != shard_len:
            raise ValueError("shard length mismatch")
        data = GF256.matmul_bytes(inv, shard_mat)
        return [data[i] for i in range(self.k)]

    def reconstruct_shard(self, present: dict[int, np.ndarray], target: int) -> np.ndarray:
        """Reconstruct one stripe shard (data *or* parity) by index."""
        if not 0 <= target < self.n:
            raise IndexError("target out of range")
        if target in present:
            return np.ascontiguousarray(present[target], dtype=np.uint8).ravel().copy()
        data = self.decode(present)
        if target < self.k:
            return data[target]
        parity = self.encode(data)
        return parity[target - self.k]


@dataclass
class Stripe:
    """A coded stripe: shard payloads plus original object lengths.

    ``shards[i]`` for ``i < k`` are (padded) data shards; ``i >= k`` are
    parities.  ``lengths[i]`` records each original object's byte length so
    decode can strip the padding.
    """

    code: RSCode
    shards: list[np.ndarray]
    lengths: list[int]

    @property
    def shard_len(self) -> int:
        return int(self.shards[0].size) if self.shards else 0


class StripeCodec:
    """Variable-size object <-> fixed-size stripe adapter.

    The staging layer deals in objects of (slightly) varying byte size; the
    RS core wants equal-length shards.  The codec pads each object to the
    stripe's shard length (the max object length) before encoding and strips
    padding after decode.
    """

    def __init__(self, k: int, m: int, construction: str = "cauchy"):
        self.code = RSCode(k, m, construction)

    @property
    def k(self) -> int:
        return self.code.k

    @property
    def m(self) -> int:
        return self.code.m

    @staticmethod
    def _pad(buf: np.ndarray, length: int) -> np.ndarray:
        buf = np.ascontiguousarray(buf, dtype=np.uint8).ravel()
        if buf.size == length:
            return buf
        out = np.zeros(length, dtype=np.uint8)
        out[: buf.size] = buf
        return out

    def encode_objects(self, objects: Sequence[np.ndarray]) -> Stripe:
        """Encode ``k`` byte buffers (possibly unequal lengths) into a stripe."""
        if len(objects) != self.k:
            raise ValueError(f"expected {self.k} objects, got {len(objects)}")
        lengths = [int(np.asarray(o).size) for o in objects]
        shard_len = max(lengths) if lengths else 0
        if shard_len == 0:
            raise ValueError("cannot encode empty objects")
        data = [self._pad(o, shard_len) for o in objects]
        parity = self.code.encode(data)
        return Stripe(code=self.code, shards=data + parity, lengths=lengths)

    def decode_objects(self, stripe_lengths: Sequence[int], present: dict[int, np.ndarray]) -> list[np.ndarray]:
        """Recover the original (unpadded) objects from surviving shards."""
        data = self.code.decode(present)
        if len(stripe_lengths) != self.k:
            raise ValueError("need one original length per data shard")
        return [data[i][: stripe_lengths[i]].copy() for i in range(self.k)]
