"""Hierarchical sim-time spans for the staging runtime.

A :class:`Span` is one named interval of *simulated* time with a parent
link, a category (matching the execution-breakdown categories where it
instruments a cost charge) and free-form attributes.  The :class:`Tracer`
assigns span ids in execution order, so a deterministic simulation run
produces a deterministic trace.

Parent attribution across interleaved simulator processes
---------------------------------------------------------
Simulator flows are generators that suspend at every ``yield``; a naive
"current span" global would leak spans between concurrently interleaved
processes.  :meth:`Tracer.traced` solves this by *driving* the wrapped
generator: the wrapped flow's span is installed as the current span only
while the flow's own code is executing, and restored at every suspension
point.  Nested ``traced`` wrappers therefore maintain a correct dynamic
span stack per logical flow, with zero simulator events added — traced
and untraced runs execute the identical event sequence.

Zero overhead by default
------------------------
Instrumentation points hold a tracer reference that defaults to
:data:`NULL_TRACER`.  Its ``traced`` returns the wrapped generator
unchanged (not even a generator frame is added), ``begin`` returns the
shared no-op :data:`NULL_SPAN`, and hot paths guard attribute-dict
construction with ``tracer.enabled``.
"""

from __future__ import annotations

from typing import Any, Callable, Generator, Iterator

__all__ = ["Span", "Tracer", "NullTracer", "NULL_TRACER", "NULL_SPAN"]


class Span:
    """One named interval of simulated time in the span tree."""

    __slots__ = ("span_id", "parent_id", "name", "category", "t0", "t1", "attrs")

    def __init__(
        self,
        span_id: int,
        parent_id: int | None,
        name: str,
        category: str,
        t0: float,
        attrs: dict[str, Any],
    ):
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        self.category = category
        self.t0 = t0
        self.t1: float | None = None  # None while the span is open
        self.attrs = attrs

    @property
    def duration(self) -> float:
        return (self.t1 if self.t1 is not None else self.t0) - self.t0

    def set(self, **attrs: Any) -> "Span":
        self.attrs.update(attrs)
        return self

    def to_dict(self) -> dict[str, Any]:
        return {
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "category": self.category,
            "t0": self.t0,
            "t1": self.t1 if self.t1 is not None else self.t0,
            "attrs": self.attrs,
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<Span {self.span_id} {self.name!r} [{self.t0:.6g}, "
            f"{self.t1 if self.t1 is not None else '...'}]>"
        )


class _NullSpan:
    """Shared do-nothing span handed out by the null tracer."""

    __slots__ = ()
    span_id = 0
    parent_id = None
    name = ""
    category = ""
    t0 = 0.0
    t1 = 0.0
    duration = 0.0
    attrs: dict[str, Any] = {}

    def set(self, **attrs: Any) -> "_NullSpan":
        return self

    def to_dict(self) -> dict[str, Any]:  # pragma: no cover - never exported
        return {}


NULL_SPAN = _NullSpan()


class Tracer:
    """Collects a span tree driven by an external (simulator) clock."""

    enabled = True

    def __init__(self, clock: Callable[[], float]):
        self._clock = clock
        self._next_id = 1
        self._current: Span | None = None
        self.spans: list[Span] = []  # in start order (== span_id order)

    # ------------------------------------------------------------------
    @property
    def current(self) -> Span | None:
        """The span whose flow is executing right now (None at top level)."""
        return self._current

    def begin(
        self,
        name: str,
        category: str = "",
        parent: Span | None = None,
        **attrs: Any,
    ) -> Span:
        """Open a span; parent defaults to the current dynamic scope."""
        if parent is None:
            parent = self._current
        span = Span(
            span_id=self._next_id,
            parent_id=parent.span_id if parent is not None else None,
            name=name,
            category=category,
            t0=self._clock(),
            attrs=attrs,
        )
        self._next_id += 1
        self.spans.append(span)
        return span

    def end(self, span: Span, **attrs: Any) -> Span:
        """Close a span at the current clock reading."""
        span.t1 = self._clock()
        if attrs:
            span.attrs.update(attrs)
        return span

    def instant(self, name: str, category: str = "", **attrs: Any) -> Span:
        """A zero-duration marker span (failure detection, batch flush...)."""
        span = self.begin(name, category=category, **attrs)
        span.t1 = span.t0
        return span

    def annotate(self, **attrs: Any) -> None:
        """Attach attributes to the current span (no-op at top level)."""
        if self._current is not None:
            self._current.attrs.update(attrs)

    # ------------------------------------------------------------------
    def traced(
        self,
        name: str,
        gen: Generator,
        category: str = "",
        parent: Span | None = None,
        **attrs: Any,
    ) -> Generator:
        """Wrap a simulator flow in a span, maintaining the dynamic scope.

        The wrapper drives ``gen`` and installs the span as the tracer's
        current span only while ``gen``'s own code runs, restoring the
        previous scope at every suspension — concurrent processes never
        observe each other's spans.  ``parent`` pins the parent span
        explicitly (needed when the flow is handed to ``sim.process`` and
        starts outside the creator's dynamic scope); by default the parent
        is the scope at first resume.  The span closes when the flow
        completes, errors, or is closed by the simulator.
        """
        span: Span | None = None
        try:
            to_send: Any = None
            to_throw: BaseException | None = None
            while True:
                prev = self._current
                if span is None:
                    span = self.begin(name, category=category, parent=parent, **attrs)
                self._current = span
                try:
                    if to_throw is not None:
                        exc, to_throw = to_throw, None
                        item = gen.throw(exc)
                    else:
                        item = gen.send(to_send)
                except StopIteration as stop:
                    return stop.value
                finally:
                    self._current = prev
                try:
                    to_send = yield item
                except BaseException as exc:  # forwarded into the flow
                    to_throw = exc
        finally:
            if span is not None and span.t1 is None:
                self.end(span)

    # ------------------------------------------------------------------
    def roots(self) -> list[Span]:
        return [s for s in self.spans if s.parent_id is None]

    def children(self, span: Span) -> list[Span]:
        return [s for s in self.spans if s.parent_id == span.span_id]

    def find(self, name: str) -> list[Span]:
        return [s for s in self.spans if s.name == name]

    def iter_tree(self, root: Span) -> Iterator[Span]:
        """Depth-first iteration over ``root`` and its descendants."""
        yield root
        for child in self.children(root):
            yield from self.iter_tree(child)

    def clear(self) -> None:
        self.spans.clear()
        self._current = None
        self._next_id = 1


class NullTracer:
    """Tracing disabled: every instrumentation point is a no-op.

    ``traced`` returns the wrapped generator *unchanged* — no wrapper
    frame, no span, no behaviour difference — so instrumented flows run
    exactly as they did before tracing existed.
    """

    enabled = False
    spans: list[Span] = []
    current: Span | None = None

    def begin(self, name: str, category: str = "", parent=None, **attrs: Any) -> _NullSpan:
        return NULL_SPAN

    def end(self, span, **attrs: Any):
        return span

    def instant(self, name: str, category: str = "", **attrs: Any) -> _NullSpan:
        return NULL_SPAN

    def annotate(self, **attrs: Any) -> None:
        return None

    def traced(self, name, gen: Generator, category: str = "", parent=None, **attrs) -> Generator:
        return gen

    def roots(self) -> list[Span]:
        return []

    def children(self, span) -> list[Span]:
        return []

    def find(self, name: str) -> list[Span]:
        return []

    def clear(self) -> None:
        return None


NULL_TRACER = NullTracer()
