"""Wall-clock spans for the live backend, sharing the sim tracer's schema.

:class:`WallClockTracer` is the :class:`~repro.obs.tracer.Tracer` of the
live data plane: same :class:`Span` tree, same exporters, but timestamps
come from ``time.monotonic_ns`` (as seconds since the tracer's epoch) and
the dynamic scope is tracked in a :mod:`contextvars` variable so parent
attribution stays correct across asyncio tasks *and* worker-pool threads
— the two places the sim tracer's single "current span" attribute would
leak scopes between concurrent requests.

Distributed traces
------------------
Every root span opens a new **trace**: a process-unique hex ``trace_id``
that all descendants inherit.  The live protocol carries
``trace_id``/``parent span_id`` in its frame headers, so a server can
open its dispatch span as a *local* root (``parent_id = None``) that
still links to the client's RPC span via ``attrs["remote_parent"]`` and
trace-id equality — one logical span tree crossing the process boundary
without pretending remote span ids resolve locally.

Per-request latency attribution
-------------------------------
:meth:`charge` adds a duration to the *attribution sink* installed for
the current request (:meth:`push_attribution`).  :meth:`traced` charges
every wait a flow performs, classified by what it yielded on
(``queue_wait`` for zero-delay scheduling, ``transfer`` for paced
timeouts, ``lock_wait`` for resource grants, ``codec``/``digest`` for
offloaded compute — events carry a ``charge`` tag where the default
classification is wrong).  Waits are charged exactly once even when
traced flows nest (the outermost wrapper claims the item for the
duration of the resume call-stack), so a request's charges are
non-overlapping segments of its wall time whenever its flows do not
fan out internally.

Thread discipline: ``begin``/``end``/``instant`` may be called from any
thread (span-id allocation and the span list are lock-protected; ids
stay in start order).  ``traced`` flows and ``charge`` run wherever the
engine executes them; the sink dict is only mutated on the event-loop
thread in practice.
"""

from __future__ import annotations

import contextvars
import itertools
import os
import threading
import time
from typing import Any, Callable, Generator

from repro.obs.tracer import Span, Tracer

__all__ = ["WallSpan", "WallClockTracer", "WAIT_CATEGORIES"]

#: Wait categories :meth:`WallClockTracer.traced` can charge, plus the
#: handler-level categories the live server adds around a dispatch
#: (documented in docs/OBSERVABILITY.md).
WAIT_CATEGORIES = (
    "queue_wait",   # zero-delay scheduling through the engine microqueue
    "transfer",     # paced (modeled) wire/storage time
    "lock_wait",    # entity/stripe/NIC resource grants
    "codec",        # offloaded GF(2^8) kernel passes
    "digest",       # offloaded payload hashing
    "offload",      # other worker-pool waits
    "fanout_wait",  # condition events (AllOf/AnyOf)
    "event_wait",   # any other event
)

_CURRENT: contextvars.ContextVar = contextvars.ContextVar("repro_wall_current")
_SINK: contextvars.ContextVar = contextvars.ContextVar("repro_wall_sink")


class WallSpan(Span):
    """A :class:`Span` stamped on the wall clock, tagged with its trace."""

    __slots__ = ("trace_id",)

    def __init__(self, span_id, parent_id, name, category, t0, attrs, trace_id):
        super().__init__(span_id, parent_id, name, category, t0, attrs)
        self.trace_id = trace_id

    def to_dict(self) -> dict[str, Any]:
        row = super().to_dict()
        row["trace_id"] = self.trace_id
        row["clock"] = "wall"
        return row


class WallClockTracer(Tracer):
    """Thread-safe, contextvar-scoped tracer on ``time.monotonic_ns``."""

    enabled = True

    def __init__(self, clock: Callable[[], float] | None = None):
        if clock is None:
            epoch = time.monotonic_ns()
            clock = lambda: (time.monotonic_ns() - epoch) / 1e9  # noqa: E731
        super().__init__(clock)
        self._lock = threading.Lock()
        # Process-unique trace-id prefix: bench clients are subprocesses
        # and their ids must not collide with the server's.
        self._trace_prefix = f"{os.getpid() & 0xFFFFFFFF:08x}"
        self._trace_counter = itertools.count(1)

    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """The tracer's clock reading (seconds since its epoch)."""
        return self._clock()

    @property
    def current(self) -> Span | None:
        return _CURRENT.get(None)

    def new_trace_id(self) -> str:
        return f"{self._trace_prefix}-{next(self._trace_counter):08x}"

    def activate(self, span: Span):
        """Install ``span`` as the current scope; returns a reset token."""
        return _CURRENT.set(span)

    def deactivate(self, token) -> None:
        _CURRENT.reset(token)

    # ------------------------------------------------------------------
    def begin(
        self,
        name: str,
        category: str = "",
        parent: Span | None = None,
        trace_id: str | None = None,
        t0: float | None = None,
        **attrs: Any,
    ) -> WallSpan:
        """Open a wall-clock span.

        ``trace_id`` pins the trace explicitly (propagated requests);
        otherwise the parent's trace is inherited, and a parentless span
        opens a fresh trace.  ``t0`` backdates the start (the live server
        stamps request arrival before it knows the operation name).
        """
        if parent is None:
            parent = _CURRENT.get(None)
        if trace_id is None:
            trace_id = (
                getattr(parent, "trace_id", None) if parent is not None else None
            ) or self.new_trace_id()
        start = self._clock() if t0 is None else t0
        with self._lock:
            span = WallSpan(
                span_id=self._next_id,
                parent_id=parent.span_id if parent is not None else None,
                name=name,
                category=category,
                t0=start,
                attrs=attrs,
                trace_id=trace_id,
            )
            self._next_id += 1
            self.spans.append(span)
        return span

    def annotate(self, **attrs: Any) -> None:
        span = _CURRENT.get(None)
        if span is not None:
            span.attrs.update(attrs)

    def clear(self) -> None:
        with self._lock:
            self.spans.clear()
            self._next_id = 1

    # ------------------------------------------------------------------
    # per-request attribution
    # ------------------------------------------------------------------
    def push_attribution(self, sink: dict[str, float]):
        """Install ``sink`` as the current request's charge accumulator."""
        return _SINK.set(sink)

    def pop_attribution(self, token) -> None:
        _SINK.reset(token)

    def charge(self, category: str, dt: float) -> None:
        """Add ``dt`` seconds of ``category`` to the active sink (if any)."""
        sink = _SINK.get(None)
        if sink is not None:
            sink[category] = sink.get(category, 0.0) + dt

    @staticmethod
    def wait_category(event: Any) -> str:
        """Classify what a flow waited on into an attribution category."""
        tag = getattr(event, "charge", None)
        if tag:
            return tag
        delay = getattr(event, "delay", None)
        if delay is not None:
            return "transfer" if delay > 0 else "queue_wait"
        if getattr(event, "events", None) is not None:  # condition events
            return "fanout_wait"
        return "event_wait"

    # ------------------------------------------------------------------
    def traced(
        self,
        name: str,
        gen: Generator,
        category: str = "",
        parent: Span | None = None,
        **attrs: Any,
    ) -> Generator:
        """Drive ``gen`` under a span, charging each wait it performs.

        Scope save/restore uses the contextvar, so interleaved flows on
        the loop thread and spans opened from worker threads both see the
        right parent.  Wait charging claims the yielded item for the
        duration of the resume call-stack, so nested ``traced`` wrappers
        (outer flow ``yield from`` an inner traced flow) charge each wait
        exactly once — the outermost wrapper wins.
        """
        span: Span | None = None
        waited_on: Any = None
        wait_t0 = 0.0
        try:
            to_send: Any = None
            to_throw: BaseException | None = None
            while True:
                if waited_on is not None and waited_on is not self._charge_claimed:
                    self.charge(self.wait_category(waited_on), self._clock() - wait_t0)
                if span is None:
                    span = self.begin(name, category=category, parent=parent, **attrs)
                token = _CURRENT.set(span)
                claim = self._charge_claimed
                self._charge_claimed = waited_on
                try:
                    if to_throw is not None:
                        exc, to_throw = to_throw, None
                        item = gen.throw(exc)
                    else:
                        item = gen.send(to_send)
                except StopIteration as stop:
                    return stop.value
                finally:
                    self._charge_claimed = claim
                    _CURRENT.reset(token)
                waited_on = item
                wait_t0 = self._clock()
                try:
                    to_send = yield item
                except BaseException as exc:  # forwarded into the flow
                    to_throw = exc
        finally:
            if span is not None and span.t1 is None:
                self.end(span)

    # The wait-claim: when an outer traced wrapper resumes, it charges
    # the wait and claims the item for the duration of the nested send()
    # call-stack, so an inner wrapper resuming on the same item skips the
    # (identical) charge.  Only touched on the thread driving the flow,
    # between yields, so no lock is needed.
    _charge_claimed: Any = None
