"""A unified registry of counters, gauges and fixed-bucket histograms.

Every metric the repro reports used to live in a scattered mix of
``collections.Counter`` dicts, plain ints on the codec, and ad-hoc
attributes.  The registry gives them one namespace, one snapshot call,
and — new — tail-percentile accounting via :class:`Histogram`, which is
what the paper's response-time figures actually need beyond means.

Metrics are created on first use (``registry.counter(name)`` is
get-or-create) and snapshots preserve creation order, so a deterministic
run produces a deterministic snapshot.
"""

from __future__ import annotations

import math
import threading
from bisect import bisect_right
from collections.abc import Mapping
from typing import Any, Callable, Iterable

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "StatCounters",
    "latency_edges",
]


class Counter:
    """A monotonically increasing integer metric."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def inc(self, n: int = 1) -> None:
        self.value += n

    def snapshot(self) -> int:
        return self.value


class Gauge:
    """A point-in-time value: either set directly or read via callback."""

    __slots__ = ("name", "_value", "_fn")

    def __init__(self, name: str, fn: Callable[[], Any] | None = None):
        self.name = name
        self._value: Any = 0
        self._fn = fn

    def set(self, value: Any) -> None:
        if self._fn is not None:
            raise RuntimeError(f"gauge {self.name!r} is callback-backed")
        self._value = value

    @property
    def value(self) -> Any:
        return self._fn() if self._fn is not None else self._value

    def snapshot(self) -> Any:
        return self.value


class StatCounters(Mapping):
    """A fixed family of counters safe to increment from any thread.

    Drop-in replacement for the plain-dict stat globals (`PROTO_STATS`,
    ``RSCode.parallel_stats``) whose ``d[k] += 1`` read-modify-write
    raced across client threads and codec-pool workers.  Reads keep the
    dict interface (``stats["passes"]``, ``dict(stats)``) so existing
    call sites and benchmarks work unchanged; all mutation goes through
    :meth:`inc` under a lock.
    """

    __slots__ = ("_lock", "_values")

    def __init__(self, names: Iterable[str] = ()):
        self._lock = threading.Lock()
        self._values: dict[str, int] = {name: 0 for name in names}

    def inc(self, name: str, n: int = 1) -> None:
        with self._lock:
            self._values[name] = self._values.get(name, 0) + n

    def snapshot(self) -> dict[str, int]:
        with self._lock:
            return dict(self._values)

    def register_gauges(self, registry: "MetricsRegistry", prefix: str) -> None:
        """Expose every counter as ``<prefix>.<name>`` callback gauges."""
        for name in self._values:
            registry.gauge(f"{prefix}.{name}", lambda n=name: self._values[n])

    # Mapping interface (reads are racy-but-atomic dict lookups, which is
    # fine for monotonically increasing ints).
    def __getitem__(self, name: str) -> int:
        return self._values[name]

    def __iter__(self):
        return iter(self._values)

    def __len__(self) -> int:
        return len(self._values)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"StatCounters({self._values!r})"


def latency_edges(lo: float = 1e-6, hi: float = 1e3, per_decade: int = 9) -> tuple[float, ...]:
    """Log-spaced bucket edges covering [lo, hi] (seconds by convention).

    ``per_decade`` buckets per power of ten gives ~±12% relative
    resolution at 9/decade — tight enough that a bucket-interpolated p99
    lands within one bucket of the exact sample percentile.
    """
    if not (0 < lo < hi):
        raise ValueError("need 0 < lo < hi")
    n_decades = math.log10(hi / lo)
    n = max(1, int(round(n_decades * per_decade)))
    ratio = (hi / lo) ** (1.0 / n)
    edges = [lo * ratio**i for i in range(n + 1)]
    edges[-1] = hi  # kill accumulated float drift at the top edge
    return tuple(edges)


class Histogram:
    """Fixed-bucket histogram with interpolated percentiles.

    Buckets are defined by ``edges``: bucket ``i`` covers
    ``[edges[i], edges[i+1])``, with one underflow bucket below
    ``edges[0]`` and one overflow bucket at/above ``edges[-1]``.
    Percentiles are estimated by linear interpolation inside the bucket
    containing the requested rank (exact min/max are tracked separately,
    so ``p0``/``p100`` are exact).  Memory is O(buckets), independent of
    sample count.
    """

    __slots__ = ("name", "edges", "counts", "n", "total", "min", "max")

    def __init__(self, name: str, edges: Iterable[float] | None = None):
        self.name = name
        self.edges = tuple(float(e) for e in (edges if edges is not None else latency_edges()))
        if len(self.edges) < 2:
            raise ValueError("histogram needs at least two bucket edges")
        if any(b <= a for a, b in zip(self.edges, self.edges[1:])):
            raise ValueError("bucket edges must be strictly increasing")
        # counts[0] = underflow, counts[-1] = overflow.
        self.counts = [0] * (len(self.edges) + 1)
        self.n = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf

    def observe(self, x: float) -> None:
        x = float(x)
        self.counts[bisect_right(self.edges, x)] += 1
        self.n += 1
        self.total += x
        if x < self.min:
            self.min = x
        if x > self.max:
            self.max = x

    @property
    def mean(self) -> float:
        return self.total / self.n if self.n else 0.0

    def quantile(self, q: float) -> float:
        """Interpolated quantile, ``q`` in [0, 1]; 0.0 on empty data."""
        if not 0.0 <= q <= 1.0:
            raise ValueError("q must be in [0, 1]")
        if self.n == 0:
            return 0.0
        if q == 0.0:
            return self.min
        if q == 1.0:
            return self.max
        rank = q * self.n
        seen = 0.0
        for i, c in enumerate(self.counts):
            if c == 0:
                continue
            if seen + c >= rank:
                frac = (rank - seen) / c
                # Bucket bounds, clamped to observed extremes for the
                # open-ended under/overflow buckets.
                lo = self.edges[i - 1] if i >= 1 else self.min
                hi = self.edges[i] if i < len(self.edges) else self.max
                lo = max(lo, self.min)
                hi = min(hi, self.max)
                return lo + frac * (hi - lo)
            seen += c
        return self.max  # pragma: no cover - rank <= n always hits a bucket

    def percentiles(self) -> dict[str, float]:
        return {
            "p50": self.quantile(0.50),
            "p95": self.quantile(0.95),
            "p99": self.quantile(0.99),
            "max": self.max if self.n else 0.0,
        }

    def snapshot(self) -> dict[str, Any]:
        out: dict[str, Any] = {
            "n": self.n,
            "mean": self.mean,
            "min": self.min if self.n else 0.0,
            "total": self.total,
        }
        out.update(self.percentiles())
        return out


class MetricsRegistry:
    """Namespace of metrics; get-or-create accessors, one flat snapshot."""

    def __init__(self):
        self._metrics: dict[str, Counter | Gauge | Histogram] = {}
        # Guards registry *structure* (creation, name iteration) against
        # concurrent access from the live backend's worker threads.  The
        # metrics themselves stay lock-free: counters/histograms are only
        # mutated from the owning (loop) thread, gauges read racy-but-
        # atomic values.
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    def _get_or_create(self, name: str, cls, factory):
        with self._lock:
            metric = self._metrics.get(name)
            if metric is None:
                metric = factory()
                self._metrics[name] = metric
        if not isinstance(metric, cls):
            raise TypeError(
                f"metric {name!r} already registered as {type(metric).__name__}"
            )
        return metric

    def counter(self, name: str) -> Counter:
        return self._get_or_create(name, Counter, lambda: Counter(name))

    def gauge(self, name: str, fn: Callable[[], Any] | None = None) -> Gauge:
        gauge = self._get_or_create(name, Gauge, lambda: Gauge(name, fn))
        if fn is not None and gauge._fn is None:
            gauge._fn = fn  # late-bound callback on a pre-registered gauge
        return gauge

    def histogram(self, name: str, edges: Iterable[float] | None = None) -> Histogram:
        return self._get_or_create(name, Histogram, lambda: Histogram(name, edges))

    # ------------------------------------------------------------------
    def get(self, name: str) -> Counter | Gauge | Histogram | None:
        return self._metrics.get(name)

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def __len__(self) -> int:
        return len(self._metrics)

    def names(self) -> list[str]:
        with self._lock:
            return list(self._metrics)

    def items(self):
        with self._lock:
            return list(self._metrics.items())

    def counters(self) -> dict[str, int]:
        """Creation-ordered ``{name: value}`` of the plain counters."""
        return {
            name: m.value for name, m in self.items() if isinstance(m, Counter)
        }

    def snapshot(self) -> dict[str, Any]:
        """Flat ``{name: value}`` dict; histograms expand to summary dicts.

        The metric list is copied under the lock, then each metric is
        snapshotted outside it (gauge callbacks may themselves take
        locks, e.g. :meth:`StatCounters.snapshot`).
        """
        return {name: m.snapshot() for name, m in self.items()}
