"""Trace and metrics exporters.

Three output shapes:

- **Chrome trace JSON** (:func:`chrome_trace` / :func:`write_chrome_trace`):
  the ``trace_event`` format that ``chrome://tracing`` and Perfetto load.
  Spans become complete (``"ph": "X"``) events with microsecond
  timestamps; zero-duration spans become instants (``"ph": "i"``).
  Because simulator flows overlap freely, spans are packed onto synthetic
  "threads" (tids) such that every tid holds a properly nested (laminar)
  family — Perfetto then renders each tid as a flame chart.  A child is
  placed on its parent's tid whenever it nests under everything open
  there, so request trees read top-down.
- **JSONL dumps** (:func:`write_spans_jsonl` / :func:`write_events_jsonl`):
  one JSON object per line, for ad-hoc ``jq``/pandas analysis and for the
  CI schema check.
- **Metrics snapshot** (:func:`write_metrics_json`): the flat registry
  snapshot plus the legacy ``Metrics.snapshot()`` dict.

All exporters sort nothing and randomize nothing: output order is span
id / event order, so deterministic runs export byte-identical artifacts.
"""

from __future__ import annotations

import json
import re
from typing import Any, Iterable, Sequence

from repro.obs.registry import Counter, Gauge, Histogram
from repro.obs.tracer import Span, Tracer

__all__ = [
    "chrome_trace",
    "prometheus_text",
    "span_rows",
    "span_summary",
    "spans_to_breakdown",
    "write_chrome_trace",
    "write_events_jsonl",
    "write_metrics_json",
    "write_prometheus_text",
    "write_spans_jsonl",
]

_US = 1e6  # trace_event timestamps are microseconds


def _assign_tids(spans: Sequence[Span]) -> dict[int, int]:
    """Pack spans onto tids so each tid's events nest properly.

    Spans arrive in start order.  Each tid keeps a stack of open
    intervals; a span may join a tid if every open interval on it fully
    contains the span (flame-chart nesting).  The parent's tid is tried
    first so trees stay together; overlapping siblings spill onto fresh
    tids.  Deterministic by construction.
    """
    tids: dict[int, int] = {}
    stacks: list[list[float]] = []  # per-tid stack of open-interval end times

    def fits(stack: list[float], t0: float, t1: float) -> bool:
        while stack and stack[-1] <= t0:
            stack.pop()
        return not stack or stack[-1] >= t1

    for span in spans:
        t0 = span.t0
        t1 = span.t1 if span.t1 is not None else span.t0
        order: list[int] = []
        if span.parent_id in tids:
            order.append(tids[span.parent_id])
        order.extend(i for i in range(len(stacks)) if i not in order)
        for tid in order:
            if fits(stacks[tid], t0, t1):
                stacks[tid].append(t1)
                tids[span.span_id] = tid
                break
        else:
            stacks.append([t1])
            tids[span.span_id] = len(stacks) - 1
    return tids


def chrome_trace(
    tracer: Tracer,
    process_name: str = "repro-staging",
    clock: str = "simulated seconds",
) -> dict[str, Any]:
    """Render the tracer's spans as a ``trace_event`` JSON object.

    ``clock`` labels the time domain in ``otherData`` (``"simulated
    seconds"`` for sim traces, ``"wall-clock seconds"`` for live ones) so
    a Perfetto reader knows what the microsecond timestamps mean.
    """
    spans = tracer.spans
    tids = _assign_tids(spans)
    events: list[dict[str, Any]] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": 1,
            "tid": 0,
            "args": {"name": process_name},
        }
    ]
    for span in spans:
        t1 = span.t1 if span.t1 is not None else span.t0
        args = {"span_id": span.span_id}
        if span.parent_id is not None:
            args["parent_id"] = span.parent_id
        args.update(span.attrs)
        common = {
            "name": span.name,
            "cat": span.category or "span",
            "pid": 1,
            "tid": tids[span.span_id],
            "ts": span.t0 * _US,
            "args": args,
        }
        if t1 > span.t0:
            events.append({**common, "ph": "X", "dur": (t1 - span.t0) * _US})
        else:
            events.append({**common, "ph": "i", "s": "t"})
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {"clock": clock, "spans": len(spans)},
    }


def span_rows(tracer: Tracer) -> list[dict[str, Any]]:
    """Spans as plain dicts, in span-id order (the JSONL payload)."""
    return [span.to_dict() for span in tracer.spans]


def spans_to_breakdown(spans: Iterable[Span]) -> dict[str, float]:
    """Sum the ``booked`` cost attribute of leaf spans per category.

    Leaf instrumentation (``transfer`` / ``busy`` / ``metadata_update``)
    stamps each span with the exact duration it charged to
    ``Metrics.breakdown``; summing those in span order reproduces the
    breakdown, which the integration tests use to prove the trace and the
    aggregate metrics agree.
    """
    out: dict[str, float] = {}
    for span in spans:
        booked = span.attrs.get("booked")
        if booked is None or not span.category:
            continue
        out[span.category] = out.get(span.category, 0.0) + booked
    return out


def span_summary(tracer: Tracer) -> list[dict[str, Any]]:
    """Per-span-name duration summary (count, total, p50/p95/p99/max)."""
    by_name: dict[str, Histogram] = {}
    for span in tracer.spans:
        hist = by_name.get(span.name)
        if hist is None:
            hist = by_name[span.name] = Histogram(span.name)
        hist.observe(span.duration)
    return [
        {"name": name, **hist.snapshot()} for name, hist in by_name.items()
    ]


# ---------------------------------------------------------------------------
# Prometheus text exposition
# ---------------------------------------------------------------------------

_PROM_BAD = re.compile(r"[^a-zA-Z0-9_:]")


def _prom_name(name: str) -> str:
    return _PROM_BAD.sub("_", name)


def prometheus_text(registry) -> str:
    """Render a :class:`MetricsRegistry` in Prometheus text exposition.

    Counters and numeric gauges map directly; histograms are rendered as
    summaries (``_count``/``_sum`` plus interpolated ``quantile`` series)
    since the registry tracks quantiles, not cumulative buckets.
    Non-numeric gauges (lists, strings) are skipped — Prometheus samples
    are floats.
    """
    lines: list[str] = []
    for name, metric in registry.items():
        pname = _prom_name(name)
        if isinstance(metric, Counter):
            lines.append(f"# TYPE {pname} counter")
            lines.append(f"{pname} {metric.value}")
        elif isinstance(metric, Gauge):
            value = metric.value
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                continue
            lines.append(f"# TYPE {pname} gauge")
            lines.append(f"{pname} {float(value)}")
        elif isinstance(metric, Histogram):
            lines.append(f"# TYPE {pname} summary")
            for q in (0.5, 0.95, 0.99):
                lines.append(f'{pname}{{quantile="{q}"}} {metric.quantile(q)}')
            lines.append(f"{pname}_sum {metric.total}")
            lines.append(f"{pname}_count {metric.n}")
    return "\n".join(lines) + "\n"


# ---------------------------------------------------------------------------
# file writers
# ---------------------------------------------------------------------------

def write_chrome_trace(
    path: str,
    tracer: Tracer,
    process_name: str = "repro-staging",
    clock: str = "simulated seconds",
) -> str:
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(chrome_trace(tracer, process_name, clock), fh, indent=1, default=float)
        fh.write("\n")
    return path


def write_prometheus_text(path: str, registry) -> str:
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(prometheus_text(registry))
    return path


def write_spans_jsonl(path: str, tracer: Tracer) -> str:
    with open(path, "w", encoding="utf-8") as fh:
        for row in span_rows(tracer):
            fh.write(json.dumps(row, default=float) + "\n")
    return path


def write_events_jsonl(path: str, log) -> str:
    """Dump an :class:`repro.util.eventlog.EventLog` as JSONL."""
    with open(path, "w", encoding="utf-8") as fh:
        for ev in log:
            fh.write(
                json.dumps(
                    {"t": ev.t, "kind": ev.kind, "source": ev.source, "data": ev.data},
                    default=float,
                )
                + "\n"
            )
    return path


def write_metrics_json(path: str, metrics) -> str:
    """Write ``Metrics.snapshot()`` + the registry snapshot to one file."""
    payload = {"summary": metrics.snapshot(), "registry": metrics.registry.snapshot()}
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2, default=float)
        fh.write("\n")
    return path
