"""Observability: sim-time + wall-clock tracing, unified metrics, exporters.

The staging runtime can explain *where time goes* per operation, not just
in aggregate:

- :mod:`repro.obs.tracer` — hierarchical spans (``put -> classify ->
  encode -> transport[shard] -> metadata``, ``get -> locate ->
  fetch/decode``, ``failure -> detect -> re-protect -> reconstruct``)
  driven by the simulator clock.  Tracing is off by default: the
  :data:`NULL_TRACER` singleton makes every instrumentation point a no-op
  so traced and untraced runs execute the identical simulation.
- :mod:`repro.obs.wallclock` — the same span model stamped on
  ``time.monotonic_ns`` for the live backend, with contextvar-based
  scoping (correct across asyncio tasks and worker threads), distributed
  trace ids carried through the live protocol, and per-request latency
  attribution (microqueue wait, codec, lock hold, socket I/O, ...).
- :mod:`repro.obs.registry` — one registry of counters, gauges and
  fixed-bucket histograms (p50/p95/p99/max) that the metrics layer, the
  storage accountant and the codec caches publish into; plus
  :class:`StatCounters` for stats incremented from worker threads.
- :mod:`repro.obs.export` — Chrome ``trace_event`` JSON (loadable in
  ``chrome://tracing`` / Perfetto), JSONL span/event dumps, flat metrics
  snapshots, and Prometheus text exposition.

See ``docs/OBSERVABILITY.md`` for the span taxonomy and how to read a
trace.
"""

from repro.obs.tracer import NULL_TRACER, NullTracer, Span, Tracer
from repro.obs.registry import Counter, Gauge, Histogram, MetricsRegistry, StatCounters
from repro.obs.wallclock import WAIT_CATEGORIES, WallClockTracer, WallSpan
from repro.obs.export import (
    chrome_trace,
    prometheus_text,
    span_rows,
    span_summary,
    spans_to_breakdown,
    write_chrome_trace,
    write_events_jsonl,
    write_metrics_json,
    write_prometheus_text,
    write_spans_jsonl,
)

__all__ = [
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "Span",
    "WallClockTracer",
    "WallSpan",
    "WAIT_CATEGORIES",
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "StatCounters",
    "chrome_trace",
    "prometheus_text",
    "span_rows",
    "span_summary",
    "spans_to_breakdown",
    "write_chrome_trace",
    "write_events_jsonl",
    "write_metrics_json",
    "write_prometheus_text",
    "write_spans_jsonl",
]
