"""A deterministic discrete-event simulation core.

Processes are Python generators that ``yield`` events; the simulator resumes
a process when its awaited event fires.  The design follows SimPy's
vocabulary (``Event`` / ``Timeout`` / ``Process`` / ``Interrupt`` / condition
events) but is implemented from scratch and kept small enough to reason
about: one binary heap, one sequence counter for total ordering, no wall
clock anywhere.

Determinism contract
--------------------
Given the same initial processes and the same RNG streams, every run
produces the identical event order: ties in time are broken by a
monotonically increasing sequence number, never by object identity or
insertion hashing.  Tests assert on this property.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Generator, Iterable

__all__ = [
    "Simulator",
    "Event",
    "Timeout",
    "Process",
    "Interrupt",
    "ConditionEvent",
    "AnyOf",
    "AllOf",
]

_PENDING = object()


class Interrupt(Exception):
    """Thrown into a process that another process interrupts.

    ``cause`` carries arbitrary context (e.g. the failure event that killed
    a staging server mid-request).
    """

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


class Event:
    """A one-shot occurrence processes can wait on.

    An event is *triggered* once (``succeed`` or ``fail``) and then has its
    callbacks run at the simulation time of triggering.  Waiting on an
    already-processed event resumes the waiter immediately (same timestamp,
    later sequence number).
    """

    #: Latency-attribution tag read by the wall-clock tracer: names the
    #: category a flow's wait on this event is charged to ("lock_wait",
    #: "transfer", "codec", ...).  None means "classify by event type".
    #: Class-level default so untagged events cost no per-instance slot.
    charge: str | None = None

    def __init__(self, sim: "Simulator"):
        self.sim = sim
        self.callbacks: list[Callable[["Event"], None]] | None = []
        self._value: Any = _PENDING
        self.ok: bool | None = None
        self._scheduled = False

    # ------------------------------------------------------------------
    @property
    def triggered(self) -> bool:
        return self._value is not _PENDING

    @property
    def processed(self) -> bool:
        return self.callbacks is None

    @property
    def value(self) -> Any:
        if self._value is _PENDING:
            raise RuntimeError("event value not yet available")
        return self._value

    # ------------------------------------------------------------------
    def succeed(self, value: Any = None) -> "Event":
        if self.triggered:
            raise RuntimeError("event already triggered")
        self.ok = True
        self._value = value
        self.sim._schedule_event(self)
        return self

    def fail(self, exception: BaseException) -> "Event":
        if self.triggered:
            raise RuntimeError("event already triggered")
        if not isinstance(exception, BaseException):
            raise TypeError("fail() requires an exception instance")
        self.ok = False
        self._value = exception
        self.sim._schedule_event(self)
        return self

    # ------------------------------------------------------------------
    def _add_callback(self, cb: Callable[["Event"], None]) -> None:
        if self.callbacks is None:
            # Already processed: schedule an immediate wake-up.
            self.sim._schedule_callback(lambda: cb(self))
        else:
            self.callbacks.append(cb)

    def _remove_callback(self, cb: Callable[["Event"], None]) -> None:
        if self.callbacks is not None and cb in self.callbacks:
            self.callbacks.remove(cb)

    def _process(self) -> None:
        callbacks, self.callbacks = self.callbacks, None
        if callbacks:
            for cb in callbacks:
                cb(self)


class Timeout(Event):
    """An event that fires ``delay`` simulated seconds after creation."""

    def __init__(self, sim: "Simulator", delay: float, value: Any = None):
        if delay < 0:
            raise ValueError(f"negative timeout delay {delay}")
        super().__init__(sim)
        self.delay = float(delay)
        self.ok = True
        self._value = value
        sim._schedule_event(self, delay=self.delay)


class Process(Event):
    """A running generator coroutine; also an event that fires on completion.

    Yield protocol inside the generator:

    - ``yield event`` — suspend until the event fires; the ``yield``
      expression evaluates to the event's value (or raises its exception).
    - ``return value`` — completes the process; waiters receive ``value``.

    ``interrupt(cause)`` throws :class:`Interrupt` into the generator at the
    current simulation time, detaching it from whatever it was waiting on.
    """

    def __init__(self, sim: "Simulator", gen: Generator, name: str = ""):
        super().__init__(sim)
        if not hasattr(gen, "send"):
            raise TypeError(f"process body must be a generator, got {type(gen)!r}")
        self.gen = gen
        self.name = name or getattr(gen, "__name__", "process")
        self._target: Event | None = None
        self.sim._schedule_callback(self._start)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "done" if self.triggered else "alive"
        return f"<Process {self.name} {state}>"

    @property
    def is_alive(self) -> bool:
        return not self.triggered

    # ------------------------------------------------------------------
    def _start(self) -> None:
        self._step(lambda: self.gen.send(None))

    def _resume(self, event: Event) -> None:
        self._target = None
        if event.ok:
            self._step(lambda: self.gen.send(event.value))
        else:
            exc = event.value
            self._step(lambda: self.gen.throw(exc))

    def _step(self, advance: Callable[[], Any]) -> None:
        try:
            target = advance()
        except StopIteration as stop:
            self.succeed(stop.value)
            return
        except Interrupt as intr:
            # An uncaught interrupt terminates the process "successfully
            # killed" — the normal fate of a failed staging server process.
            self.succeed(intr)
            return
        except BaseException as exc:  # propagate real errors to waiters
            if not self.callbacks and not self.triggered:
                # No one is waiting: surface the crash instead of hiding it.
                self.fail(exc)
                raise
            self.fail(exc)
            return
        if not isinstance(target, Event):
            raise TypeError(
                f"process {self.name!r} yielded {target!r}; processes may only yield Events"
            )
        self._target = target
        target._add_callback(self._resume)

    # ------------------------------------------------------------------
    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time."""
        if self.triggered:
            return  # interrupting a finished process is a no-op
        def do_interrupt() -> None:
            if self.triggered:
                return
            if self._target is not None:
                self._target._remove_callback(self._resume)
                self._target = None
            self._step(lambda: self.gen.throw(Interrupt(cause)))
        self.sim._schedule_callback(do_interrupt)


class ConditionEvent(Event):
    """Fires when ``count`` of the given events have succeeded.

    The value is a dict mapping each fired event to its value.  If any child
    fails, the condition fails with that exception.
    """

    def __init__(self, sim: "Simulator", events: Iterable[Event], count: int):
        super().__init__(sim)
        self.events = list(events)
        if count > len(self.events):
            raise ValueError("count exceeds number of events")
        self._needed = count
        self._fired: dict[Event, Any] = {}
        if count == 0:
            self.succeed({})
            return
        for ev in self.events:
            ev._add_callback(self._on_child)

    def _on_child(self, ev: Event) -> None:
        if self.triggered:
            return
        if not ev.ok:
            self.fail(ev.value)
            self._detach()
            return
        self._fired[ev] = ev.value
        if len(self._fired) >= self._needed:
            self.succeed(dict(self._fired))
            self._detach()

    def _detach(self) -> None:
        """Drop ``_on_child`` from every child once the condition settles.

        Without this, non-winning children (e.g. a long-lived event an
        ``AnyOf`` raced against a timeout) keep the dead callback forever:
        repeated waits accumulate unbounded callbacks that all run — as
        no-ops — when the event finally fires.
        """
        for ev in self.events:
            ev._remove_callback(self._on_child)


def AnyOf(sim: "Simulator", events: Iterable[Event]) -> ConditionEvent:
    """Condition that fires when any one of ``events`` succeeds."""
    evs = list(events)
    return ConditionEvent(sim, evs, count=min(1, len(evs)))


def AllOf(sim: "Simulator", events: Iterable[Event]) -> ConditionEvent:
    """Condition that fires when all of ``events`` have succeeded."""
    evs = list(events)
    return ConditionEvent(sim, evs, count=len(evs))


class Simulator:
    """The event loop: a time-ordered heap of (time, seq, action) entries."""

    def __init__(self):
        self.now = 0.0
        self._heap: list[tuple[float, int, Callable[[], None]]] = []
        self._seq = 0
        self._running = False

    # ------------------------------------------------------------------
    # scheduling primitives (internal)
    # ------------------------------------------------------------------
    def _push(self, delay: float, action: Callable[[], None]) -> None:
        self._seq += 1
        heapq.heappush(self._heap, (self.now + delay, self._seq, action))

    def _schedule_event(self, event: Event, delay: float = 0.0) -> None:
        # Each event is scheduled exactly once: Timeouts at construction,
        # all other events via succeed()/fail() (which reject re-triggering).
        if event._scheduled:
            raise RuntimeError("event scheduled twice")
        self._push(delay, event._process)
        event._scheduled = True

    def _schedule_callback(self, cb: Callable[[], None], delay: float = 0.0) -> None:
        self._push(delay, cb)

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    def event(self) -> Event:
        """A fresh untriggered event (manual trigger)."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """An event firing ``delay`` seconds from now."""
        return Timeout(self, delay, value)

    def process(self, gen: Generator, name: str = "") -> Process:
        """Start a generator as a process; returns its completion event."""
        return Process(self, gen, name=name)

    def run(self, until: float | Event | None = None, max_events: int | None = None) -> Any:
        """Run until the heap drains, time ``until``, or event ``until``.

        Returns the event's value when ``until`` is an event.
        ``max_events`` is a runaway guard: exceeding it raises
        RuntimeError instead of spinning forever on a livelocked model.
        """
        if self._running:
            raise RuntimeError("simulator is not reentrant")
        self._running = True
        executed = 0

        def bump() -> None:
            nonlocal executed
            executed += 1
            if max_events is not None and executed > max_events:
                raise RuntimeError(
                    f"simulation exceeded max_events={max_events}; "
                    "likely a livelock (zero-delay loop) in the model"
                )

        try:
            if isinstance(until, Event):
                stop_event = until
                while not stop_event.processed:
                    if not self._heap:
                        raise RuntimeError(
                            "simulation starved: awaited event can never fire"
                        )
                    bump()
                    self._step()
                if stop_event.ok:
                    return stop_event.value
                raise stop_event.value
            horizon = float("inf") if until is None else float(until)
            while self._heap and self._heap[0][0] <= horizon:
                bump()
                self._step()
            if until is not None and self.now < horizon:
                self.now = horizon
            return None
        finally:
            self._running = False

    def _step(self) -> None:
        t, _seq, action = heapq.heappop(self._heap)
        if t < self.now:  # pragma: no cover - guarded by Timeout validation
            raise RuntimeError("time went backwards")
        self.now = t
        action()

    def peek(self) -> float:
        """Time of the next scheduled action (inf if none)."""
        return self._heap[0][0] if self._heap else float("inf")
