"""Failure injection: scheduled kills, stochastic MTBF, replacements.

Two regimes, matching the paper's evaluation:

- **Scheduled** (Fig. 10): "the first failure occurs at time step 4, the
  second at time step 6; recovery starts at steps 8 and 12" — precise
  (time, server) pairs, reproducible run to run.
- **Stochastic**: exponential inter-failure times with a configurable MTBF,
  used by survivability tests and the lazy-recovery deadline (MTBF/4,
  Section III-D).

The injector is decoupled from the staging service through two callbacks
(``on_fail``, ``on_replace``) so it can drive any victim implementation.
Optionally it can fail whole cabinets to exercise correlated failures.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Generator

import numpy as np

from repro.sim.engine import Simulator
from repro.util.eventlog import EventLog

__all__ = ["FailureSchedule", "FailureInjector"]


@dataclass
class FailureSchedule:
    """A deterministic failure/replacement plan.

    ``failures`` and ``replacements`` are lists of ``(time, server_id)``.
    A replacement means a fresh server joins in place of the failed one,
    enabling lazy recovery to begin (paper Section III-D).
    """

    failures: list[tuple[float, int]] = field(default_factory=list)
    replacements: list[tuple[float, int]] = field(default_factory=list)

    def add_failure(self, t: float, server_id: int) -> "FailureSchedule":
        self.failures.append((float(t), int(server_id)))
        return self

    def add_replacement(self, t: float, server_id: int) -> "FailureSchedule":
        self.replacements.append((float(t), int(server_id)))
        return self

    def validate(self) -> None:
        """Check per-server event interleaving.

        Each server's merged (failure, replacement) stream must alternate
        fail -> replace -> fail -> ...: a failure requires the server to be
        up, a replacement requires it to be down.  Same-instant ordering is
        explicit and matches ``_run_schedule``: at equal times the failure
        is applied first, so ``fail@t`` followed by ``replace@t`` is valid
        while ``replace@t`` of a server that only fails at ``t`` later in a
        prior cycle is not.
        """
        events: dict[int, list[tuple[float, int]]] = {}
        for t, s in self.failures:
            events.setdefault(s, []).append((t, 0))  # 0 = fail
        for t, s in self.replacements:
            events.setdefault(s, []).append((t, 1))  # 1 = replace
        for s, evs in events.items():
            evs.sort()  # fails sort before replaces at equal t
            down = False
            for t, kind in evs:
                if kind == 0:
                    if down:
                        raise ValueError(
                            f"failure of server {s} at t={t} while already failed"
                        )
                    down = True
                else:
                    if not down:
                        raise ValueError(
                            f"replacement of server {s} at t={t} precedes its failure"
                        )
                    down = False


class FailureInjector:
    """Drives server failures and replacements against callback hooks."""

    def __init__(
        self,
        sim: Simulator,
        on_fail: Callable[[int], None],
        on_replace: Callable[[int], None] | None = None,
        schedule: FailureSchedule | None = None,
        mtbf_s: float | None = None,
        n_servers: int | None = None,
        rng: np.random.Generator | None = None,
        log: EventLog | None = None,
        repair_delay_s: float | None = None,
        repair_delay_dist: str = "fixed",
        max_concurrent_failures: int | None = None,
    ):
        if schedule is None and mtbf_s is None:
            raise ValueError("provide a schedule, an MTBF, or both")
        if mtbf_s is not None:
            if mtbf_s <= 0:
                raise ValueError("mtbf_s must be positive")
            if n_servers is None or n_servers < 1:
                raise ValueError("stochastic mode requires n_servers")
            if rng is None:
                raise ValueError("stochastic mode requires an rng stream")
        if repair_delay_s is not None:
            if mtbf_s is None:
                raise ValueError("repair_delay_s applies to stochastic mode only")
            if repair_delay_s < 0:
                raise ValueError("repair_delay_s must be non-negative")
            if repair_delay_dist not in ("fixed", "exponential", "uniform"):
                raise ValueError(f"unknown repair_delay_dist {repair_delay_dist!r}")
        self.sim = sim
        self.on_fail = on_fail
        self.on_replace = on_replace
        self.schedule = schedule
        self.mtbf_s = mtbf_s
        self.n_servers = n_servers
        self.rng = rng
        self.log = log
        self.repair_delay_s = repair_delay_s
        self.repair_delay_dist = repair_delay_dist
        self.max_concurrent_failures = max_concurrent_failures
        self.failed_servers: set[int] = set()
        self.fail_count = 0
        self.replace_count = 0
        self.fleet_dead = False
        self._repairs_pending = 0

    # ------------------------------------------------------------------
    def start(self) -> None:
        """Launch the injector processes on the simulator."""
        if self.schedule is not None:
            self.schedule.validate()
            self.sim.process(self._run_schedule(), name="failure-schedule")
        if self.mtbf_s is not None:
            self.sim.process(self._run_stochastic(), name="failure-mtbf")

    # ------------------------------------------------------------------
    def _fail(self, server_id: int) -> None:
        if server_id in self.failed_servers:
            return  # already down; double-kill is a no-op
        self.failed_servers.add(server_id)
        self.fail_count += 1
        if self.log is not None:
            self.log.emit(self.sim.now, "server_failed", source=f"server{server_id}", server=server_id)
        self.on_fail(server_id)

    def _replace(self, server_id: int) -> None:
        if server_id not in self.failed_servers:
            return
        self.failed_servers.discard(server_id)
        self.replace_count += 1
        self.fleet_dead = False
        if self.log is not None:
            self.log.emit(self.sim.now, "server_replaced", source=f"server{server_id}", server=server_id)
        if self.on_replace is not None:
            self.on_replace(server_id)

    def _run_schedule(self) -> Generator:
        actions = [(t, "fail", s) for t, s in self.schedule.failures]
        actions += [(t, "replace", s) for t, s in self.schedule.replacements]
        actions.sort(key=lambda a: (a[0], a[1] == "replace", a[2]))
        for t, what, server in actions:
            delay = t - self.sim.now
            if delay > 0:
                yield self.sim.timeout(delay)
            if what == "fail":
                self._fail(server)
            else:
                self._replace(server)

    def _run_stochastic(self) -> Generator:
        """Exponential inter-failure process over the whole fleet.

        The fleet-level failure rate is ``n_servers / mtbf_s`` (each server
        fails independently with the per-server MTBF).  Victims are chosen
        uniformly among currently-alive servers.

        When ``repair_delay_s`` is set, every stochastic failure arms a
        repair process that re-fires ``on_replace`` after a delay drawn
        from ``repair_delay_dist`` (fixed / exponential / uniform around
        the mean).  All draws come from the injector's own rng stream, so
        a fixed seed reproduces the exact (failure, repair) timeline.

        When the whole fleet is down a ``fleet_dead`` event is emitted;
        the process only exits if no repair can revive a server.
        """
        fleet_rate = self.n_servers / self.mtbf_s
        while True:
            gap = float(self.rng.exponential(1.0 / fleet_rate))
            yield self.sim.timeout(gap)
            alive = [s for s in range(self.n_servers) if s not in self.failed_servers]
            if not alive:
                if not self.fleet_dead:
                    self.fleet_dead = True
                    if self.log is not None:
                        self.log.emit(
                            self.sim.now,
                            "fleet_dead",
                            source="injector",
                            failed=sorted(self.failed_servers),
                            repairs_pending=self._repairs_pending,
                        )
                if self._repairs_pending == 0:
                    return
                continue  # a pending repair will revive someone; keep ticking
            if (
                self.max_concurrent_failures is not None
                and len(self.failed_servers) >= self.max_concurrent_failures
            ):
                continue  # gap already drawn: the rng stream stays aligned
            victim = int(self.rng.choice(alive))
            self._fail(victim)
            if self.repair_delay_s is not None:
                delay = self._draw_repair_delay()
                self._repairs_pending += 1
                self.sim.process(self._repair(victim, delay), name=f"repair-{victim}")

    def _draw_repair_delay(self) -> float:
        mean = self.repair_delay_s
        if self.repair_delay_dist == "exponential":
            return float(self.rng.exponential(mean))
        if self.repair_delay_dist == "uniform":
            return float(self.rng.uniform(0.5 * mean, 1.5 * mean))
        return float(mean)  # fixed

    def _repair(self, server_id: int, delay: float) -> Generator:
        yield self.sim.timeout(delay)
        self._repairs_pending -= 1
        self._replace(server_id)
