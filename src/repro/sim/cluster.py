"""Physical cluster topology: servers on nodes, nodes in cabinets.

The paper's grouped placement (Section III-A) depends on knowing which
staging servers share a failure domain: "a single event such as a power
failure or a physical disturbance will affect multiple devices".  The
cluster model records the server -> node -> cabinet mapping, and
:func:`topology_aware_ring` produces the logical server ring CoREC places
replication/coding groups on — reordered so that any ``n`` consecutive ring
positions fall in ``n`` distinct cabinets (when enough cabinets exist).
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["Node", "Cluster", "topology_aware_ring"]


@dataclass(frozen=True)
class Node:
    """A physical node hosting one or more staging servers."""

    node_id: int
    cabinet: int


@dataclass
class Cluster:
    """Server/node/cabinet layout.

    Parameters
    ----------
    n_servers:
        Total staging servers.
    servers_per_node:
        Staging server processes co-located per physical node.
    nodes_per_cabinet:
        Physical nodes per cabinet (the correlated-failure domain).
    """

    n_servers: int
    servers_per_node: int = 1
    nodes_per_cabinet: int = 4
    nodes: list[Node] = field(init=False)

    def __post_init__(self) -> None:
        if self.n_servers < 1:
            raise ValueError("need at least one server")
        if self.servers_per_node < 1 or self.nodes_per_cabinet < 1:
            raise ValueError("servers_per_node and nodes_per_cabinet must be >= 1")
        n_nodes = -(-self.n_servers // self.servers_per_node)  # ceil division
        self.nodes = [Node(node_id=i, cabinet=i // self.nodes_per_cabinet) for i in range(n_nodes)]

    # ------------------------------------------------------------------
    @property
    def n_nodes(self) -> int:
        return len(self.nodes)

    @property
    def n_cabinets(self) -> int:
        return self.nodes[-1].cabinet + 1

    def node_of(self, server_id: int) -> Node:
        self._check(server_id)
        return self.nodes[server_id // self.servers_per_node]

    def cabinet_of(self, server_id: int) -> int:
        return self.node_of(server_id).cabinet

    def servers_in_cabinet(self, cabinet: int) -> list[int]:
        return [s for s in range(self.n_servers) if self.cabinet_of(s) == cabinet]

    def _check(self, server_id: int) -> None:
        if not 0 <= server_id < self.n_servers:
            raise IndexError(f"server {server_id} out of range 0..{self.n_servers - 1}")


def topology_aware_ring(cluster: Cluster) -> list[int]:
    """Logical server ring with consecutive entries in distinct cabinets.

    Round-robins across cabinets: take one server from cabinet 0, one from
    cabinet 1, ..., wrapping until all servers are placed.  With ``c``
    cabinets, any window of ``min(c, n)`` consecutive ring entries spans
    that many distinct cabinets, so a replication or coding group of size
    <= c never has two members in the same failure domain.
    """
    by_cabinet: dict[int, list[int]] = {}
    for s in range(cluster.n_servers):
        by_cabinet.setdefault(cluster.cabinet_of(s), []).append(s)
    queues = [sorted(v) for _, v in sorted(by_cabinet.items())]
    ring: list[int] = []
    i = 0
    while len(ring) < cluster.n_servers:
        q = queues[i % len(queues)]
        if q:
            ring.append(q.pop(0))
        i += 1
        # Guard against an infinite loop once only one cabinet has servers
        # left: the modular scan still visits it every len(queues) steps.
        if i > cluster.n_servers * max(1, len(queues)) * 2:  # pragma: no cover
            raise RuntimeError("ring construction failed to terminate")
    return ring
