"""Discrete-event simulation engine and cluster/network/failure models.

This subpackage is the substitute for the paper's physical testbed (Titan
Cray XK7 with RDMA transport).  It provides:

- :mod:`repro.sim.engine` — a deterministic event-heap simulator with
  generator-coroutine processes, timeouts, interrupts and condition events
  (a minimal SimPy work-alike, built from scratch);
- :mod:`repro.sim.resources` — FIFO resources and stores for modelling
  request queues and NIC serialization;
- :mod:`repro.sim.network` — a latency + bandwidth point-to-point transfer
  model with per-endpoint contention;
- :mod:`repro.sim.cluster` — nodes, cabinets and the topology-aware logical
  ring used by CoREC's grouped placement (paper Section III-A);
- :mod:`repro.sim.failures` — scheduled and stochastic (MTBF) failure
  injection with replacement servers.
"""

from repro.sim.engine import Simulator, Process, Event, Timeout, Interrupt, AnyOf, AllOf
from repro.sim.resources import Resource, Store
from repro.sim.network import Network, NetworkConfig
from repro.sim.cluster import Cluster, Node, topology_aware_ring
from repro.sim.failures import FailureInjector, FailureSchedule

__all__ = [
    "Simulator",
    "Process",
    "Event",
    "Timeout",
    "Interrupt",
    "AnyOf",
    "AllOf",
    "Resource",
    "Store",
    "Network",
    "NetworkConfig",
    "Cluster",
    "Node",
    "topology_aware_ring",
    "FailureInjector",
    "FailureSchedule",
]
