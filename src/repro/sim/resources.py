"""FIFO resources and item stores for the simulator.

``Resource`` models a server's bounded concurrency (CPU slots, NIC
serialization): processes request a slot, hold it for some duration, and
release it; waiters queue FIFO.  ``Store`` is an unbounded (or bounded)
queue of items used for request mailboxes between clients and staging
servers.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Generator

from repro.sim.engine import Event, Simulator

__all__ = ["Resource", "Store"]


class Resource:
    """A counted FIFO resource (capacity >= 1).

    Usage inside a process::

        req = resource.request()
        yield req
        try:
            yield sim.timeout(service_time)
        finally:
            resource.release(req)
    """

    def __init__(self, sim: Simulator, capacity: int = 1):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.sim = sim
        self.capacity = capacity
        self.in_use = 0
        self._queue: deque[Event] = deque()

    @property
    def queued(self) -> int:
        """Number of requests waiting for a slot."""
        return len(self._queue)

    @property
    def utilization(self) -> float:
        return self.in_use / self.capacity

    def request(self) -> Event:
        """Return an event that fires when a slot is granted."""
        ev = self.sim.event()
        ev.charge = "lock_wait"  # wall-clock attribution for grant waits
        if self.in_use < self.capacity:
            self.in_use += 1
            ev.succeed(self)
        else:
            self._queue.append(ev)
        return ev

    def release(self, _request: Event | None = None) -> None:
        """Free a slot, waking the oldest waiter if any."""
        if self.in_use <= 0:
            raise RuntimeError("release without matching request")
        if self._queue:
            nxt = self._queue.popleft()
            nxt.succeed(self)  # slot transfers directly to the waiter
        else:
            self.in_use -= 1

    def acquire(self, hold_time: float) -> Generator:
        """Convenience process body: acquire, hold for ``hold_time``, release."""
        req = self.request()
        yield req
        try:
            yield self.sim.timeout(hold_time)
        finally:
            self.release(req)


class Store:
    """An item queue with blocking ``get`` and (optionally bounded) ``put``."""

    def __init__(self, sim: Simulator, capacity: int | None = None):
        if capacity is not None and capacity < 1:
            raise ValueError("capacity must be >= 1 or None")
        self.sim = sim
        self.capacity = capacity
        self._items: deque[Any] = deque()
        self._getters: deque[Event] = deque()
        self._putters: deque[tuple[Event, Any]] = deque()

    def __len__(self) -> int:
        return len(self._items)

    def put(self, item: Any) -> Event:
        """Deposit ``item``; fires immediately unless the store is full."""
        ev = self.sim.event()
        if self._getters:
            getter = self._getters.popleft()
            getter.succeed(item)
            ev.succeed(None)
        elif self.capacity is None or len(self._items) < self.capacity:
            self._items.append(item)
            ev.succeed(None)
        else:
            self._putters.append((ev, item))
        return ev

    def get(self) -> Event:
        """Return an event whose value is the next item (FIFO)."""
        ev = self.sim.event()
        if self._items:
            ev.succeed(self._items.popleft())
            if self._putters:
                put_ev, item = self._putters.popleft()
                self._items.append(item)
                put_ev.succeed(None)
        else:
            self._getters.append(ev)
        return ev

    def try_get(self) -> Any | None:
        """Non-blocking get: the next item or None if empty."""
        if not self._items:
            return None
        item = self._items.popleft()
        if self._putters:
            put_ev, queued = self._putters.popleft()
            self._items.append(queued)
            put_ev.succeed(None)
        return item
