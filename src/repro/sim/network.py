"""Point-to-point network transfer model.

Replaces the RDMA transport of the paper's testbed.  A transfer from server
``a`` to server ``b`` of ``nbytes`` costs::

    latency + nbytes / bandwidth

and while it is in flight it occupies the NIC of both endpoints, so
concurrent transfers through one server serialize — this is what creates
the queueing effects that make load-balanced encoding (paper Section III-B)
matter.

Deadlock freedom: a transfer always acquires the two endpoint NICs in
ascending endpoint order, so the wait-for graph is acyclic.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Generator

from repro.sim.engine import Simulator
from repro.sim.resources import Resource

__all__ = ["NetworkConfig", "Network"]


@dataclass
class NetworkConfig:
    """Tunable parameters of the transfer cost model.

    Defaults approximate a Gemini-class interconnect: microsecond latency,
    multiple GB/s per NIC.  ``metadata_bytes`` is the size charged for a
    metadata-update message (object index/version propagation).
    """

    latency_s: float = 10e-6
    bandwidth_bps: float = 5.0e9  # bytes per second per NIC
    metadata_bytes: int = 512
    nic_capacity: int = 1
    local_copy_bandwidth_bps: float = 40.0e9  # memcpy within a server


@dataclass
class TransferStats:
    """Aggregate transfer accounting, split data vs metadata."""

    messages: int = 0
    bytes: int = 0
    busy_time: float = 0.0
    metadata_messages: int = 0
    metadata_bytes: int = 0
    per_endpoint_bytes: dict[str, int] = field(default_factory=dict)

    def record(self, src: str, dst: str, nbytes: int, duration: float, metadata: bool) -> None:
        self.messages += 1
        self.bytes += nbytes
        self.busy_time += duration
        if metadata:
            self.metadata_messages += 1
            self.metadata_bytes += nbytes
        for ep in (src, dst):
            self.per_endpoint_bytes[ep] = self.per_endpoint_bytes.get(ep, 0) + nbytes


class Network:
    """The transfer fabric connecting staging servers and clients."""

    def __init__(self, sim: Simulator, config: NetworkConfig | None = None):
        self.sim = sim
        self.config = config or NetworkConfig()
        self._nics: dict[str, Resource] = {}
        self.stats = TransferStats()

    def nic(self, endpoint: str) -> Resource:
        """The NIC resource of ``endpoint`` (created on first use)."""
        res = self._nics.get(endpoint)
        if res is None:
            res = Resource(self.sim, capacity=self.config.nic_capacity)
            self._nics[endpoint] = res
        return res

    # ------------------------------------------------------------------
    def transfer_time(self, nbytes: int) -> float:
        """Uncontended wire time of an ``nbytes`` message."""
        return self.config.latency_s + nbytes / self.config.bandwidth_bps

    def transfer(self, src: str, dst: str, nbytes: int, metadata: bool = False) -> Generator:
        """Process body: move ``nbytes`` from ``src`` to ``dst``.

        Yields until the transfer completes; returns the in-fabric duration
        (including NIC queueing) so callers can attribute transport time.
        """
        nbytes = int(nbytes)
        if nbytes < 0:
            raise ValueError("negative transfer size")
        start = self.sim.now
        if src == dst:
            # Local memcpy: no NIC involvement, higher bandwidth.
            dt = nbytes / self.config.local_copy_bandwidth_bps
            if dt > 0:
                yield self.sim.timeout(dt)
            duration = self.sim.now - start
            self.stats.record(src, dst, nbytes, duration, metadata)
            return duration

        wire = self.transfer_time(nbytes)
        first, second = sorted((src, dst))
        req_a = self.nic(first).request()
        yield req_a
        req_b = self.nic(second).request()
        yield req_b
        try:
            yield self.sim.timeout(wire)
        finally:
            self.nic(second).release(req_b)
            self.nic(first).release(req_a)
        duration = self.sim.now - start
        self.stats.record(src, dst, nbytes, duration, metadata)
        return duration

    def send_metadata(self, src: str, dst: str) -> Generator:
        """Process body: one metadata-update message."""
        result = yield from self.transfer(src, dst, self.config.metadata_bytes, metadata=True)
        return result
