"""``python -m repro`` — the experiment-runner CLI."""

from repro.cli import main

raise SystemExit(main())
