"""Post-processing and reporting helpers for experiment results.

The benchmark harness writes raw series to ``benchmarks/results/*.json``;
this module turns them (or live :class:`~repro.core.metrics.Metrics`
objects) into comparisons and terminal-friendly plots:

- :func:`load_results` / :func:`list_results` — read the result store;
- :func:`speedup_table` — pairwise response-time ratios between policies;
- :func:`ascii_series` — a Figure-10-style per-timestep line plot;
- :func:`ascii_bars` — a Figure-8-style bar chart;
- :func:`breakdown_shares` — normalized Figure-9-style stacked shares.

Everything is pure stdlib + numpy, so reports render anywhere (including
the CI logs the bench suite runs in).
"""

from __future__ import annotations

import json
import os
from typing import Iterable, Mapping, Sequence

import numpy as np

__all__ = [
    "load_results",
    "list_results",
    "speedup_table",
    "ascii_series",
    "ascii_bars",
    "breakdown_shares",
]

DEFAULT_RESULTS_DIR = os.path.join(
    os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__)))),
    "benchmarks",
    "results",
)


def list_results(results_dir: str | None = None) -> list[str]:
    """Names of stored experiment results (without the .json suffix)."""
    d = results_dir or DEFAULT_RESULTS_DIR
    if not os.path.isdir(d):
        return []
    return sorted(f[:-5] for f in os.listdir(d) if f.endswith(".json"))


def load_results(name: str, results_dir: str | None = None):
    """Load one experiment's stored payload."""
    d = results_dir or DEFAULT_RESULTS_DIR
    path = os.path.join(d, f"{name}.json")
    with open(path, "r", encoding="utf-8") as fh:
        return json.load(fh)


# ---------------------------------------------------------------------------
# comparisons
# ---------------------------------------------------------------------------

def speedup_table(rows: Iterable[Mapping], key: str, base: str) -> dict[str, float]:
    """Per-policy ratio of ``key`` against policy ``base``.

    A value of 1.30 means that policy is 30% *slower* (larger) than the
    base on the chosen metric.
    """
    rows = list(rows)
    base_value = next(r[key] for r in rows if r["policy"] == base)
    if base_value == 0:
        raise ValueError(f"base policy {base!r} has zero {key!r}")
    return {r["policy"]: r[key] / base_value for r in rows}


def breakdown_shares(breakdown: Mapping[str, float]) -> dict[str, float]:
    """Normalize a Figure-9 breakdown to fractional shares."""
    total = sum(breakdown.values())
    if total <= 0:
        return {k: 0.0 for k in breakdown}
    return {k: v / total for k, v in breakdown.items()}


# ---------------------------------------------------------------------------
# terminal plots
# ---------------------------------------------------------------------------

def ascii_series(
    series: Mapping[str, Sequence[float]],
    height: int = 12,
    width: int | None = None,
    title: str = "",
) -> str:
    """Render one or more per-timestep series as an ASCII line plot.

    Each series gets a marker character; points at the same cell show the
    later series' marker. The x axis is the sample index (timestep).
    """
    markers = "*o+x#@%&"
    names = list(series)
    data = [np.asarray(series[n], dtype=float) for n in names]
    n_points = max(len(d) for d in data)
    width = width or n_points
    lo = min(float(np.nanmin(d)) for d in data)
    hi = max(float(np.nanmax(d)) for d in data)
    if hi <= lo:
        hi = lo + 1.0
    grid = [[" "] * n_points for _ in range(height)]
    for si, d in enumerate(data):
        for x, v in enumerate(d):
            if np.isnan(v):
                continue
            y = int(round((v - lo) / (hi - lo) * (height - 1)))
            grid[height - 1 - y][x] = markers[si % len(markers)]
    lines = []
    if title:
        lines.append(title)
    for i, row in enumerate(grid):
        label = hi if i == 0 else (lo if i == height - 1 else None)
        prefix = f"{label:10.4g} |" if label is not None else " " * 10 + " |"
        lines.append(prefix + "".join(row))
    lines.append(" " * 11 + "-" * n_points)
    legend = "  ".join(f"{markers[i % len(markers)]}={n}" for i, n in enumerate(names))
    lines.append(" " * 11 + legend)
    return "\n".join(lines)


def ascii_bars(
    values: Mapping[str, float],
    width: int = 50,
    title: str = "",
    fmt: str = "{:.3f}",
) -> str:
    """Render labeled values as horizontal ASCII bars."""
    if not values:
        return title
    longest = max(len(k) for k in values)
    peak = max(values.values()) or 1.0
    lines = [title] if title else []
    for name, value in values.items():
        bar = "#" * max(1, int(round(value / peak * width)))
        lines.append(f"{name.ljust(longest)} | {bar} {fmt.format(value)}")
    return "\n".join(lines)
