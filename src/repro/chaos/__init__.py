"""Chaos engineering for the staging stack (see docs/FAULT_INJECTION.md).

Randomized fault campaigns drive the full service — puts, gets, encodes,
recoveries — while the :mod:`repro.chaos.invariants` checkers audit the
system after every injected failure/replacement and again at quiescence.
Campaigns are seed-reproducible; a failing campaign shrinks its failure
schedule to a minimal reproducer and dumps trace artifacts.
"""

from repro.chaos.campaign import CampaignResult, ChaosConfig, FailureUnit, run_campaign
from repro.chaos.dataloss import DataLossConfig, run_dataloss_campaign
from repro.chaos.invariants import INVARIANTS, ONLINE, QUIESCENT, Violation, run_invariants

__all__ = [
    "CampaignResult",
    "ChaosConfig",
    "DataLossConfig",
    "FailureUnit",
    "run_campaign",
    "run_dataloss_campaign",
    "INVARIANTS",
    "ONLINE",
    "QUIESCENT",
    "Violation",
    "run_invariants",
]
