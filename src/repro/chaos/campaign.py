"""Seed-reproducible fault campaigns against the full staging stack.

A campaign builds one :class:`~repro.staging.service.StagingService`,
drives a deterministic write/read workload on it, and injects a failure
schedule while the workload is in flight.  After *every* injected event
the online invariant suite runs; once the workload completes and the
simulator drains, the strict quiescent suite runs (lock leaks, accounting
conservation, placement anti-affinity, parity recompute, byte-exact
digest audit).

All three scenario modes reduce to one replayable artifact — a list of
:class:`FailureUnit` (fail time, server, optional replace time) — which
makes reproduction and shrinking uniform:

- ``scheduled``: units drawn in serialized slots across a calibrated
  workload horizon, so each repair finishes before the next failure;
- ``stochastic``: a :class:`~repro.sim.failures.FailureInjector` in MTBF
  mode (with the repair-delay re-arm) is pre-run on a scratch simulator
  and its event stream recorded, then replayed as a schedule;
- ``cabinet``: correlated failures — every server of one cabinet dies at
  the same instant (the topology-aware layout must keep this survivable).

On violation the failure list is shrunk ddmin-style to a minimal failing
schedule, and the minimal schedule is re-run with tracing enabled to dump
``trace.json`` / ``spans.jsonl`` / ``events.jsonl`` / ``metrics.json``
plus ``schedule.json`` and ``violations.json``.
"""

from __future__ import annotations

import hashlib
import json
import math
import os
from dataclasses import dataclass, field, replace
from typing import Generator

import numpy as np

from repro.chaos.invariants import ONLINE, QUIESCENT, Violation, run_invariants
from repro.core.runtime import DataLossError
from repro.sim.failures import FailureInjector, FailureSchedule
from repro.sim.engine import Simulator

__all__ = ["ChaosConfig", "FailureUnit", "CampaignResult", "run_campaign", "shrink_units"]

_POLICIES = ("replicate", "erasure", "hybrid", "corec")
_MODES = ("scheduled", "stochastic", "cabinet")


@dataclass(frozen=True)
class FailureUnit:
    """One fail→replace cycle of one server (``t_replace=None``: never)."""

    t_fail: float
    server: int
    t_replace: float | None

    def as_dict(self) -> dict:
        return {"t_fail": self.t_fail, "server": self.server, "t_replace": self.t_replace}


@dataclass
class ChaosConfig:
    """One campaign: deployment geometry, workload shape, failure regime."""

    mode: str = "scheduled"
    policy: str = "corec"
    seed: int = 0
    n_servers: int = 8
    nodes_per_cabinet: int = 2
    domain_shape: tuple = (32, 32, 32)
    object_bytes: int = 4096
    n_variables: int = 2
    timesteps: int = 4
    read_stride: int = 4          # read every Nth block back each step
    n_failures: int = 3
    placement_mode: str = "grouped"
    max_coding_sets: int = 2
    storage_bound: float = 0.67
    # Fraction of the calibrated horizon the recovery sweep deadline gets.
    # Kept small so repairs land between failure slots — chaos verifies
    # correctness of the machinery, not the paper's deadline tradeoff.
    deadline_frac: float = 0.04
    # Minimum spacing (fraction of horizon) between one unit's replacement
    # and the next unit's failure: the repair sweep must be able to finish,
    # otherwise back-to-back failures exceed the code's tolerance by
    # construction and every durability report would be noise.
    repair_guard_frac: float = 0.08
    shrink: bool = True
    max_shrink_runs: int = 40
    out_dir: str | None = None
    invariants: tuple | None = None  # None = the full suite

    def __post_init__(self) -> None:
        if self.mode not in _MODES:
            raise ValueError(f"unknown chaos mode {self.mode!r} (pick from {_MODES})")
        if self.policy not in _POLICIES:
            raise ValueError(f"unknown policy {self.policy!r} (pick from {_POLICIES})")
        if self.timesteps < 1 or self.n_variables < 1:
            raise ValueError("need at least one timestep and one variable")
        if self.n_failures < 1:
            raise ValueError("a chaos campaign needs at least one failure")


@dataclass
class CampaignResult:
    """Everything needed to report, reproduce, and shrink one campaign."""

    mode: str
    seed: int
    units: list[FailureUnit]
    events: list[tuple[float, str, int]]
    violations: list[Violation]
    checks_run: int
    read_errors: int
    fingerprint: str
    waived_losses: int = 0
    horizon: float = 0.0
    minimal_units: list[FailureUnit] | None = None
    shrink_runs: int = 0
    artifacts: dict | None = None

    @property
    def passed(self) -> bool:
        return not self.violations

    def summary(self) -> dict:
        out = {
            "mode": self.mode,
            "seed": self.seed,
            "passed": self.passed,
            "failures_injected": len(self.units),
            "events": len(self.events),
            "checks_run": self.checks_run,
            "violations": [str(v) for v in self.violations],
            "read_errors": self.read_errors,
            "waived_losses": self.waived_losses,
            "fingerprint": self.fingerprint,
            "horizon_s": self.horizon,
        }
        if self.minimal_units is not None:
            out["minimal_schedule"] = [u.as_dict() for u in self.minimal_units]
            out["shrink_runs"] = self.shrink_runs
        if self.artifacts:
            out["artifacts"] = self.artifacts
        return out


# ----------------------------------------------------------------------
# service / workload assembly
# ----------------------------------------------------------------------
def _make_policy(cfg: ChaosConfig, horizon: float | None):
    from repro import (
        CoRECConfig,
        CoRECPolicy,
        ErasurePolicy,
        ReplicationPolicy,
        SimpleHybridPolicy,
    )
    from repro.core.recovery import RecoveryConfig

    recovery = None
    if horizon is not None:
        # Lazy recovery whose sweep deadline fits inside a failure slot.
        recovery = RecoveryConfig(
            mode="lazy", mtbf_s=4.0 * cfg.deadline_frac * horizon, deadline_fraction=0.25
        )
    if cfg.policy == "replicate":
        return ReplicationPolicy(recovery=recovery)
    if cfg.policy == "erasure":
        return ErasurePolicy(recovery=recovery)
    if cfg.policy == "hybrid":
        return SimpleHybridPolicy(
            storage_bound=cfg.storage_bound,
            rng=np.random.default_rng(cfg.seed),
            recovery=recovery,
        )
    corec_cfg = CoRECConfig(storage_bound=cfg.storage_bound)
    if recovery is not None:
        corec_cfg = replace(corec_cfg, recovery=recovery)
    return CoRECPolicy(corec_cfg)


def _build_service(cfg: ChaosConfig, horizon: float | None, tracing: bool = False):
    from repro import StagingConfig, StagingService

    return StagingService(
        StagingConfig(
            n_servers=cfg.n_servers,
            nodes_per_cabinet=cfg.nodes_per_cabinet,
            domain_shape=tuple(cfg.domain_shape),
            object_max_bytes=cfg.object_bytes,
            placement_mode=cfg.placement_mode,
            max_coding_sets=cfg.max_coding_sets,
            tracing=tracing,
            seed=cfg.seed,
        ),
        _make_policy(cfg, horizon),
    )


def _workload(svc, cfg: ChaosConfig, losses: list) -> Generator:
    """Deterministic writer/reader mix; read losses recorded, not raised.

    Every put/get that raises :class:`DataLossError` is a durability breach
    under a survivable schedule, so it lands in ``losses`` for the campaign
    to convert into violations — but the workload keeps going, because the
    interesting bugs are often *after* the first loss.
    """
    names = [f"v{i}" for i in range(cfg.n_variables)]
    blocks = list(range(svc.domain.n_blocks))
    stride = max(1, cfg.read_stride)
    for step in range(cfg.timesteps):
        for name in names:
            for b in blocks:
                try:
                    yield from svc.put(f"w{step}", name, svc.domain.block_bbox(b))
                except DataLossError as exc:
                    losses.append((svc.sim.now, f"put {name}/{b}: {exc}"))
        for name in names:
            for b in blocks[::stride]:
                try:
                    yield from svc.get(f"r{step}", name, svc.domain.block_bbox(b))
                except DataLossError as exc:
                    losses.append((svc.sim.now, f"get {name}/{b}: {exc}"))
        try:
            yield from svc.end_step()
        except DataLossError as exc:
            losses.append((svc.sim.now, f"end_step {step}: {exc}"))
    try:
        yield from svc.flush()
    except DataLossError as exc:
        losses.append((svc.sim.now, f"flush: {exc}"))


def calibrate_horizon(cfg: ChaosConfig) -> float:
    """Simulated duration of the workload with no failures (deterministic)."""
    svc = _build_service(cfg, horizon=None)
    losses: list = []
    svc.run_workflow(_workload(svc, cfg, losses))
    svc.run()
    return svc.sim.now


# ----------------------------------------------------------------------
# scenario generation (all modes produce a FailureUnit list)
# ----------------------------------------------------------------------
def generate_units(cfg: ChaosConfig, horizon: float) -> list[FailureUnit]:
    rng = np.random.default_rng(cfg.seed)
    if cfg.mode == "scheduled":
        return _scheduled_units(cfg, horizon, rng)
    if cfg.mode == "stochastic":
        return _stochastic_units(cfg, horizon, rng)
    return _cabinet_units(cfg, horizon, rng)


def _scheduled_units(cfg: ChaosConfig, horizon: float, rng) -> list[FailureUnit]:
    """Serialized fail→replace slots across the active part of the run."""
    lo, hi = 0.15 * horizon, 0.85 * horizon
    slot = (hi - lo) / cfg.n_failures
    units = []
    for i in range(cfg.n_failures):
        start = lo + i * slot
        t_fail = start + float(rng.uniform(0.0, 0.3)) * slot
        t_replace = t_fail + float(rng.uniform(0.1, 0.3)) * slot
        victim = int(rng.integers(cfg.n_servers))
        units.append(FailureUnit(t_fail, victim, t_replace))
    return units


def _stochastic_units(cfg: ChaosConfig, horizon: float, rng) -> list[FailureUnit]:
    """Record an MTBF-mode injector run on a scratch simulator, then replay.

    Pre-recording (rather than coupling the stochastic injector to the live
    service) keeps the event stream identical between the campaign run, the
    bit-identical reproduction run, and every shrink replay.
    """
    cutoff = 0.85 * horizon
    # Fleet failure rate n/mtbf over the window ≈ n_failures expected.
    mtbf = cfg.n_servers * cutoff / cfg.n_failures
    sim = Simulator()
    events: list[tuple[float, str, int]] = []
    inj = FailureInjector(
        sim,
        on_fail=lambda s: events.append((sim.now, "fail", s)),
        on_replace=lambda s: events.append((sim.now, "replace", s)),
        mtbf_s=mtbf,
        n_servers=cfg.n_servers,
        rng=rng,
        repair_delay_s=0.05 * horizon,
        repair_delay_dist="uniform",
        max_concurrent_failures=1,
    )
    inj.start()
    sim.run(until=cutoff)
    units = []
    open_fail: dict[int, float] = {}
    for t, kind, sid in events:
        if kind == "fail":
            open_fail[sid] = t
        else:
            units.append(FailureUnit(open_fail.pop(sid), sid, t))
    for sid, t in sorted(open_fail.items()):
        units.append(FailureUnit(t, sid, None))  # replacement past the cutoff
    units.sort(key=lambda u: u.t_fail)
    return _enforce_guard(units, cfg.repair_guard_frac * horizon)


def _enforce_guard(units: list[FailureUnit], guard: float) -> list[FailureUnit]:
    """Drop units that start before the previous repair could finish."""
    kept: list[FailureUnit] = []
    for u in units:
        prev = kept[-1] if kept else None
        if prev is not None:
            prev_end = prev.t_replace if prev.t_replace is not None else math.inf
            if u.t_fail < prev_end + guard:
                continue
        kept.append(u)
    return kept


def _cabinet_units(cfg: ChaosConfig, horizon: float, rng) -> list[FailureUnit]:
    """Correlated rounds: a whole cabinet dies at one instant per round."""
    from repro.sim.cluster import Cluster

    cluster = Cluster(n_servers=cfg.n_servers, nodes_per_cabinet=cfg.nodes_per_cabinet)
    n_rounds = max(1, min(2, cfg.n_failures // max(1, cfg.nodes_per_cabinet)))
    lo, hi = 0.2 * horizon, 0.8 * horizon
    slot = (hi - lo) / n_rounds
    units = []
    for r in range(n_rounds):
        cabinet = int(rng.integers(cluster.n_cabinets))
        t_fail = lo + r * slot + float(rng.uniform(0.0, 0.2)) * slot
        t_replace = t_fail + float(rng.uniform(0.1, 0.25)) * slot
        for sid in cluster.servers_in_cabinet(cabinet):
            units.append(FailureUnit(t_fail, sid, t_replace))
    return units


# ----------------------------------------------------------------------
# execution
# ----------------------------------------------------------------------
def _units_to_schedule(units: list[FailureUnit]) -> FailureSchedule:
    sched = FailureSchedule()
    for u in units:
        sched.add_failure(u.t_fail, u.server)
        if u.t_replace is not None:
            sched.add_replacement(u.t_replace, u.server)
    sched.validate()
    return sched


def _fingerprint(payload: dict) -> str:
    blob = json.dumps(payload, sort_keys=True, default=str).encode()
    return hashlib.blake2b(blob, digest_size=16).hexdigest()


def execute_units(
    cfg: ChaosConfig, units: list[FailureUnit], horizon: float, tracing: bool = False
):
    """Run one campaign against a fixed failure-unit list.

    Returns ``(CampaignResult, service)``; the service is still live so a
    caller can export its tracer/log (the dump path does).
    """
    svc = _build_service(cfg, horizon, tracing=tracing)
    violations: list[Violation] = []
    events: list[tuple[float, str, int]] = []
    checks = 0

    def _checked(kind: str, sid: int) -> None:
        nonlocal checks
        if kind == "fail":
            svc.fail_server(sid)
        else:
            svc.replace_server(sid)
        events.append((svc.sim.now, kind, sid))
        checks += 1
        found = run_invariants(svc, tier=ONLINE, names=cfg.invariants)
        for v in found:
            svc.log.emit(svc.sim.now, "invariant_violated", source="chaos",
                         invariant=v.invariant, detail=v.detail)
            svc.tracer.instant(
                "chaos.violation", category="failure",
                invariant=v.invariant, detail=v.detail,
            )
        violations.extend(found)

    if units:
        inj = FailureInjector(
            svc.sim,
            on_fail=lambda s: _checked("fail", s),
            on_replace=lambda s: _checked("replace", s),
            schedule=_units_to_schedule(units),
        )
        inj.start()
    losses: list = []
    svc.run_workflow(_workload(svc, cfg, losses))
    svc.run()  # drain background protection / recovery / injector tail
    waived = 0
    for t, detail in losses:
        if (
            cfg.policy in ("erasure", "hybrid")
            and "primary copy unavailable and no replica to restore from" in detail
        ):
            # The documented unprotected window of the non-replicating
            # baselines: an entity queued for encoding has only its primary
            # copy until the stripe forms (exactly the gap CoREC's
            # replicate-first scheme closes, Section III of the paper).
            # Waived — losing it is those baselines' specified behaviour —
            # but counted so campaigns still surface how often it happens.
            waived += 1
            continue
        violations.append(Violation("workload_loss", detail, t))
    checks += 1
    violations.extend(run_invariants(svc, tier=QUIESCENT, names=cfg.invariants))
    snap = svc.state_snapshot()
    fp = _fingerprint(
        {
            "events": events,
            "state": snap,
            "units": [u.as_dict() for u in units],
        }
    )
    result = CampaignResult(
        mode=cfg.mode,
        seed=cfg.seed,
        units=list(units),
        events=events,
        violations=violations,
        checks_run=checks,
        read_errors=svc.read_errors,
        fingerprint=fp,
        waived_losses=waived,
        horizon=horizon,
    )
    return result, svc


# ----------------------------------------------------------------------
# shrinking (ddmin over the failure-unit list)
# ----------------------------------------------------------------------
def shrink_units(
    cfg: ChaosConfig, units: list[FailureUnit], horizon: float, max_runs: int = 40
) -> tuple[list[FailureUnit], int]:
    """Minimize ``units`` while the campaign still fails.

    Classic delta-debugging over the unit list: try dropping chunks,
    halving the chunk size on a full pass without progress.  Unit times
    stay absolute, so the minimal schedule replays the original timeline.
    Returns ``(minimal_units, replays_used)``.
    """

    runs = 0

    def fails(candidate: list[FailureUnit]) -> bool:
        nonlocal runs
        runs += 1
        result, _ = execute_units(cfg, candidate, horizon)
        return not result.passed

    if fails([]):
        # Fails with no injected failures at all: the bug is failure-
        # independent and the empty schedule is the minimal reproducer.
        return [], runs
    current = list(units)
    n = 2
    while len(current) >= 2 and runs < max_runs:
        chunk = max(1, math.ceil(len(current) / n))
        reduced = False
        for i in range(0, len(current), chunk):
            candidate = current[:i] + current[i + chunk:]
            if not candidate or runs >= max_runs:
                continue
            if fails(candidate):
                current = candidate
                n = max(2, n - 1)
                reduced = True
                break
        if not reduced:
            if chunk == 1:
                break
            n = min(len(current), 2 * n)
    return current, runs


# ----------------------------------------------------------------------
# artifact dump
# ----------------------------------------------------------------------
def dump_artifacts(
    cfg: ChaosConfig, units: list[FailureUnit], result: CampaignResult, out_dir: str
) -> dict:
    """Re-run the (minimal) schedule traced and export every artifact.

    Tracing is byte-identical to the untraced run, so the traced replay
    reproduces the same violations while capturing the full span tree
    around them.
    """
    from repro.obs.export import (
        write_chrome_trace,
        write_events_jsonl,
        write_metrics_json,
        write_spans_jsonl,
    )

    os.makedirs(out_dir, exist_ok=True)
    traced_result, svc = execute_units(cfg, units, result.horizon, tracing=True)
    artifacts = {
        "chrome_trace": write_chrome_trace(
            os.path.join(out_dir, "trace.json"), svc.tracer,
            process_name=f"chaos-{cfg.mode}-seed{cfg.seed}",
        ),
        "spans": write_spans_jsonl(os.path.join(out_dir, "spans.jsonl"), svc.tracer),
        "events": write_events_jsonl(os.path.join(out_dir, "events.jsonl"), svc.log),
        "metrics": write_metrics_json(os.path.join(out_dir, "metrics.json"), svc.metrics),
    }
    schedule_path = os.path.join(out_dir, "schedule.json")
    with open(schedule_path, "w", encoding="utf-8") as fh:
        json.dump(
            {
                "mode": cfg.mode,
                "seed": cfg.seed,
                "policy": cfg.policy,
                "horizon_s": result.horizon,
                "units": [u.as_dict() for u in units],
            },
            fh,
            indent=2,
        )
    artifacts["schedule"] = schedule_path
    violations_path = os.path.join(out_dir, "violations.json")
    with open(violations_path, "w", encoding="utf-8") as fh:
        json.dump(
            [
                {"invariant": v.invariant, "detail": v.detail, "t": v.t}
                for v in traced_result.violations
            ],
            fh,
            indent=2,
        )
    artifacts["violations"] = violations_path
    return artifacts


# ----------------------------------------------------------------------
# top-level entry point
# ----------------------------------------------------------------------
def run_campaign(cfg: ChaosConfig) -> CampaignResult:
    """Calibrate, generate, execute — and on violation, shrink and dump."""
    horizon = calibrate_horizon(cfg)
    units = generate_units(cfg, horizon)
    result, _ = execute_units(cfg, units, horizon)
    if not result.passed and cfg.shrink:
        minimal, runs = shrink_units(cfg, units, horizon, max_runs=cfg.max_shrink_runs)
        result.minimal_units = minimal
        result.shrink_runs = runs
        if cfg.out_dir:
            result.artifacts = dump_artifacts(cfg, minimal, result, cfg.out_dir)
    return result
