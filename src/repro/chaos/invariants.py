"""Invariant checkers over a live :class:`~repro.staging.service.StagingService`.

Each checker inspects service state *without* scheduling simulator events
and returns a list of human-readable problem strings (empty = invariant
holds).  Checkers come in two tiers:

- **ONLINE** — valid at any instant between simulator events, even with
  puts/gets/encodes/recoveries in flight.  Entities (or stripes) whose
  lock is currently held are exempt: a held lock means a flow is mutating
  that object and its intermediate states are not required to satisfy the
  invariant.
- **QUIESCENT** — valid only when the simulator is fully drained
  (``sim.peek() == inf``): no process can be mid-flight, so the strict
  versions of the consistency properties must hold exactly.

The quiescent tier includes the online tier.  :func:`run_invariants` is
the single entry point used by chaos campaigns (`repro.chaos.campaign`)
and by tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable

import numpy as np

from repro.core.runtime import primary_key, replica_key
from repro.staging.objects import ResilienceState

__all__ = [
    "ONLINE",
    "QUIESCENT",
    "Violation",
    "Invariant",
    "INVARIANTS",
    "run_invariants",
    "audit_violations",
]

ONLINE = "online"
QUIESCENT = "quiescent"


@dataclass(frozen=True)
class Violation:
    """One invariant breach: which invariant, what exactly, and when."""

    invariant: str
    detail: str
    t: float = 0.0

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"[{self.invariant} @ t={self.t:.6f}] {self.detail}"


# ----------------------------------------------------------------------
# lock-state helpers (the online-tier exemptions)
# ----------------------------------------------------------------------
def _entity_busy(svc, key) -> bool:
    lock = svc.runtime._entity_locks.get(key)
    return lock is not None and (lock.in_use > 0 or lock.queued > 0)


def _stripe_busy(svc, stripe_id: int) -> bool:
    lock = svc.runtime._stripe_locks.get(stripe_id)
    return lock is not None and (lock.in_use > 0 or lock.queued > 0)


# ----------------------------------------------------------------------
# ONLINE checkers
# ----------------------------------------------------------------------
def check_durability(svc) -> list[str]:
    """Every live entity has at least one servable source.

    A source is the primary copy, any replica copy, or a decodable stripe
    (at least ``k`` of ``k+m`` shards present).  Unprotected entities
    (``NONE`` state) are exempt — losing them on failure is the documented
    behaviour of running without a resilience policy — as are entities
    under an active lock (mutation in flight).
    """
    problems = []
    rt = svc.runtime
    for ent in svc.directory.entities.values():
        if ent.version < 0 or ent.state == ResilienceState.NONE:
            continue
        if _entity_busy(svc, ent.key):
            continue
        if ent.state == ResilienceState.PENDING_STRIPE and not ent.replicas:
            # Unprotected window of the erasure/hybrid baselines: a new
            # entity queued for encoding has only its primary copy until
            # the stripe forms (CoREC replicates new objects first, which
            # is exactly the gap the paper's hybrid scheme closes).
            continue
        stripe = ent.stripe
        if stripe is not None and _stripe_busy(svc, stripe.stripe_id):
            continue
        if svc.servers[ent.primary].has(primary_key(ent)):
            continue
        if any(svc.servers[r].has(replica_key(ent)) for r in ent.replicas):
            continue
        if (
            ent.state == ResilienceState.ENCODED
            and stripe is not None
            and ent.key in stripe.members
            and len(rt._available_shards(stripe)) >= stripe.k
        ):
            continue
        problems.append(
            f"{ent.name}/{ent.block_id}@v{ent.version} ({ent.state.value}) "
            f"has no primary, replica, or decodable stripe"
        )
    return problems


def check_bytes_conservation(svc) -> list[str]:
    """Per-server byte accounting matches the store; accountant is sane.

    ``bytes_stored`` is an incrementally-maintained counter; any drift from
    the actual store contents means a store/delete path skipped its
    bookkeeping.  Failed servers must be empty, and the storage accountant
    can never go negative.
    """
    problems = []
    for srv in svc.servers:
        actual = sum(int(v.size) for v in srv.store.values())
        if srv.bytes_stored != actual:
            problems.append(
                f"{srv.name}: bytes_stored={srv.bytes_stored} but store holds {actual}"
            )
        if srv.failed and (srv.store or srv.bytes_stored):
            problems.append(f"{srv.name}: failed but still holds objects")
    acct = svc.metrics.storage
    for field in ("original", "replica", "parity"):
        if getattr(acct, field) < 0:
            problems.append(f"storage accountant {field}={getattr(acct, field)} < 0")
    return problems


# ----------------------------------------------------------------------
# QUIESCENT checkers
# ----------------------------------------------------------------------
def check_lock_leaks(svc) -> list[str]:
    """At quiescence no entity/stripe lock may be held or queued."""
    problems = []
    for key, lock in svc.runtime._entity_locks.items():
        if lock.in_use or lock.queued:
            problems.append(
                f"entity lock {key} leaked (in_use={lock.in_use}, queued={lock.queued})"
            )
    for sid, lock in svc.runtime._stripe_locks.items():
        if lock.in_use or lock.queued:
            problems.append(
                f"stripe lock {sid} leaked (in_use={lock.in_use}, queued={lock.queued})"
            )
    return problems


def check_accounting(svc) -> list[str]:
    """The storage accountant equals the directory's logical breakdown."""
    logical = svc.directory.storage_breakdown()
    acct = svc.metrics.storage
    pairs = (
        ("original", acct.original, logical["original"]),
        ("replica", acct.replica, logical["replica_overhead"]),
        ("parity", acct.parity, logical["parity_overhead"]),
    )
    return [
        f"accountant {name}={accounted} but directory says {expected}"
        for name, accounted, expected in pairs
        if accounted != expected
    ]


def check_anti_affinity(svc) -> list[str]:
    """No two shards of a stripe share a server once rebalance had a chance.

    Failure-window rehoming may legitimately double shards when *every*
    alive group member already holds one; the violation is a doubling that
    persists while an alive, shard-free server in the coding group could
    host the shard (the recovery rebalance should have moved it there).
    """
    problems = []
    for stripe in svc.directory.stripes.values():
        holders: list[tuple[int, int]] = []
        for i in range(stripe.k):
            mk = stripe.members[i]
            if mk is None:
                continue
            holders.append((i, svc.directory.entities[mk].primary))
        for j in range(stripe.k, stripe.k + stripe.m):
            holders.append((j, stripe.shard_servers[j]))
        by_server: dict[int, list[int]] = {}
        for slot, server in holders:
            by_server.setdefault(server, []).append(slot)
        doubled = {s: slots for s, slots in by_server.items() if len(slots) > 1}
        if not doubled:
            continue
        group: set[int] = set()
        for _, server in holders:
            group.update(svc.layout.coding_group(server))
        free_alive = sorted(
            s for s in group if not svc.servers[s].failed and s not in by_server
        )
        if free_alive:
            problems.append(
                f"stripe {stripe.stripe_id}: slots {doubled} doubled while "
                f"servers {free_alive} are alive and shard-free"
            )
    return problems


def check_coding_sets(svc) -> list[str]:
    """Every stripe's server set stays within its group's allowed sets.

    The placement mode defines, per coding group, the universe of servers
    its stripes may span (`GroupLayout.allowed_stripe_servers`): the group
    members under ``grouped``, members plus the bounded cabinet-disjoint
    parity menu under ``coding_sets``, the whole cluster under ``spread``.
    A shard parked outside that universe is exempt only while rebalance
    could not have fixed it yet — i.e. it is a violation when an alive,
    shard-free server inside the universe exists.  Under ``coding_sets``
    the number of distinct parity servers in use per group must also stay
    within the menu bound (the whole point of CodingSets: a correlated
    failure intersects at most ``max_coding_sets`` extra servers per
    group).
    """
    problems = []
    layout = svc.layout
    parity_in_use: dict[int, set[int]] = {}
    for stripe in svc.directory.stripes.values():
        allowed = layout.allowed_stripe_servers(stripe.group_id)
        occupied = stripe.occupied_servers()
        holders: list[tuple[int, int]] = []
        for i in range(stripe.k):
            if stripe.members[i] is not None:
                holders.append((i, svc.directory.entities[stripe.members[i]].primary))
        for j in range(stripe.k, stripe.k + stripe.m):
            sid = stripe.shard_servers[j]
            holders.append((j, sid))
            parity_in_use.setdefault(stripe.group_id, set()).add(sid)
        strays = [(slot, s) for slot, s in holders if s not in allowed]
        if not strays:
            continue
        free_allowed = sorted(
            s for s in allowed if not svc.servers[s].failed and s not in occupied
        )
        if free_allowed:
            problems.append(
                f"stripe {stripe.stripe_id} (group {stripe.group_id}): shards "
                f"{strays} outside the allowed server set while {free_allowed} "
                f"are alive and shard-free inside it"
            )
    if layout.placement_mode == "coding_sets":
        for gid, servers in sorted(parity_in_use.items()):
            menu = set(layout.coding_sets_menu(gid))
            members = set(layout.coding_group_members(gid))
            # Group members are always legitimate fallback hosts; the bound
            # applies to the off-group parity choices the menu controls.
            distinct = servers - members
            bound = max(layout.m, len(menu))
            if menu and len(distinct) > bound:
                problems.append(
                    f"group {gid}: {len(distinct)} distinct off-group parity "
                    f"servers {sorted(distinct)} exceed the coding-sets menu "
                    f"bound {bound}"
                )
    return problems


def check_store_consistency(svc) -> list[str]:
    """Every stored object is one the directory placed on that server.

    Orphan bytes (keys the metadata does not know about, or copies the
    directory places elsewhere) indicate a flow that moved or dropped an
    object without cleaning up — they silently eat staging memory and can
    serve stale data through direct-key reads.
    """
    problems = []
    for srv in svc.servers:
        if srv.failed:
            continue
        sid = srv.server_id
        for key in srv.store:
            if key.startswith("stripe"):
                sid_str, sep, shard_str = key[len("stripe"):].partition("/shard")
                stripe = (
                    svc.directory.stripes.get(int(sid_str))
                    if sep and sid_str.isdigit() and shard_str.isdigit()
                    else None
                )
                if stripe is None:
                    problems.append(f"{srv.name}: orphan shard {key!r} (no such stripe)")
                elif stripe.shard_servers[int(shard_str)] != sid:
                    problems.append(
                        f"{srv.name}: stale shard {key!r} (directory places it on "
                        f"s{stripe.shard_servers[int(shard_str)]})"
                    )
            elif key.startswith("R/"):
                name, _, block_str = key[2:].rpartition("/")
                ent = svc.directory.get(name, int(block_str)) if block_str.isdigit() else None
                if ent is None:
                    problems.append(f"{srv.name}: orphan replica {key!r}")
                elif sid not in ent.replicas:
                    problems.append(
                        f"{srv.name}: replica {key!r} not in the entity's replica set "
                        f"{ent.replicas}"
                    )
            elif key.startswith("P/"):
                name, _, block_str = key[2:].rpartition("/")
                ent = svc.directory.get(name, int(block_str)) if block_str.isdigit() else None
                if ent is None:
                    problems.append(f"{srv.name}: orphan primary {key!r}")
                elif ent.primary != sid:
                    problems.append(
                        f"{srv.name}: primary copy {key!r} but the directory points "
                        f"at s{ent.primary}"
                    )
            else:
                problems.append(f"{srv.name}: unrecognized store key {key!r}")
    return problems


def check_parity_integrity(svc) -> list[str]:
    """Stored parity shards equal a re-encode of the current data shards.

    Uses the runtime's shard-payload resolution, which substitutes the
    stripe's baseline for members whose newer version has not been folded
    into the parity yet (the async-protection window), so a drifted member
    is not a false positive.
    """
    problems = []
    rt = svc.runtime
    for stripe in svc.directory.stripes.values():
        avail = rt._available_shards(stripe)
        if any(
            stripe.members[i] is not None and i not in avail for i in range(stripe.k)
        ):
            # A degraded stripe (lost data shard not yet repaired) is the
            # durability checker's case; re-encoding would need a decode.
            continue
        data = [rt._shard_payload(stripe, i) for i in range(stripe.k)]
        expected = svc.codec.code.encode(data)
        for j in range(stripe.m):
            idx = stripe.k + j
            srv = svc.servers[stripe.shard_servers[idx]]
            if not srv.has(stripe.shard_key(idx)):
                continue  # a *lost* parity is the durability checker's case
            got = srv.store[stripe.shard_key(idx)]
            if not np.array_equal(got, expected[j]):
                problems.append(
                    f"stripe {stripe.stripe_id}: parity shard {idx} on {srv.name} "
                    f"does not match a re-encode of its members"
                )
    return problems


def check_reverse_indexes(svc) -> list[str]:
    """Every directory reverse index exactly mirrors the forward maps.

    Rebuilds each index from scratch out of the entities/stripes dicts and
    diffs it against the incrementally-maintained one — any divergence
    means some mutation path bypassed the index-update hooks.  Also
    cross-checks the spatial index's cached per-server load against its
    brute-force scan.
    """
    problems = []
    d = svc.directory

    def diff(label: str, maintained: dict, expected: dict) -> None:
        for k in sorted(set(maintained) | set(expected), key=str):
            got = maintained.get(k, set())
            want = expected.get(k, set())
            if got != want:
                problems.append(
                    f"{label}[{k}]: maintained {sorted(got, key=str)} != "
                    f"rebuilt {sorted(want, key=str)}"
                )

    exp_primary: dict[int, set] = {}
    exp_state: dict[ResilienceState, set] = {s: set() for s in ResilienceState}
    exp_replicas: dict[int, set] = {}
    for key, ent in d.entities.items():
        exp_primary.setdefault(ent.primary, set()).add(key)
        exp_state[ent.state].add(key)
        for r in ent.replicas:
            exp_replicas.setdefault(r, set()).add(key)
    # Drop empty sets on both sides: an index legitimately keeps an empty
    # set for a server whose last entity moved away.
    diff(
        "entities_by_primary",
        {k: v for k, v in d.entities_by_primary.items() if v},
        exp_primary,
    )
    diff(
        "entities_by_state",
        {k: v for k, v in d.entities_by_state.items() if v},
        {k: v for k, v in exp_state.items() if v},
    )
    diff(
        "replicas_by_server",
        {k: v for k, v in d.replicas_by_server.items() if v},
        exp_replicas,
    )

    exp_stripes: dict[int, set[int]] = {}
    exp_vacant: dict[int, set[int]] = {}
    for sid, stripe in d.stripes.items():
        for srv in set(stripe.shard_servers):
            exp_stripes.setdefault(srv, set()).add(sid)
        if stripe.vacant_slots():
            exp_vacant.setdefault(stripe.group_id, set()).add(sid)
        if stripe._dir is not d:
            problems.append(f"stripe {sid}: directory back-reference not set")
    diff(
        "stripes_by_server",
        {k: v for k, v in d.stripes_by_server.items() if v},
        exp_stripes,
    )
    diff(
        "vacant_by_group",
        {k: v for k, v in d.vacant_by_group.items() if v},
        exp_vacant,
    )

    for key, ent in d.entities.items():
        if ent._dir is not d:
            problems.append(f"entity {key}: directory back-reference not set")
        if ent.seq < 0:
            problems.append(f"entity {key}: no insertion sequence assigned")

    for name in sorted({e.name for e in d.entities.values()}):
        if svc.index.blocks_per_server(name) != svc.index.scan_blocks_per_server(name):
            problems.append(
                f"spatial index: cached blocks_per_server({name!r}) diverges "
                f"from the brute-force scan"
            )
    return problems


def audit_violations(svc, audit) -> list[str]:
    """Fold a ``verify_all`` audit result into violation strings.

    Shared by :func:`check_digest_audit` (sim) and the live server's
    ``invariants`` wire op (which must run the audit through its own
    async read paths): known unprotected-window losses are exempt, every
    other unrecoverable entity is a durability violation.
    """
    problems = []
    for name, block in audit["unrecoverable"]:
        ent = svc.directory.get(name, block)
        if (
            ent is not None
            and ent.state in (ResilienceState.NONE, ResilienceState.PENDING_STRIPE)
            and not ent.replicas
            and not svc.servers[ent.primary].has(primary_key(ent))
        ):
            # Known unprotected-window loss (see check_durability): the
            # entity died before any resilience scheme covered it.
            continue
        problems.append(f"entity {name}/{block} unrecoverable")
    return problems


def check_digest_audit(svc) -> list[str]:
    """Full byte-exact audit through the real read paths.

    The only checker that *runs* the simulator (degraded decodes cost
    simulated time), which is why it must come last and only at
    quiescence.
    """
    return audit_violations(svc, svc.verify_all())


# ----------------------------------------------------------------------
# registry / entry point
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Invariant:
    name: str
    tier: str
    fn: Callable


#: Ordered registry.  Quiescent checks that only inspect state run before
#: ``digest_audit``, which advances simulated time.
INVARIANTS: tuple[Invariant, ...] = (
    Invariant("durability", ONLINE, check_durability),
    Invariant("bytes_conservation", ONLINE, check_bytes_conservation),
    Invariant("lock_leaks", QUIESCENT, check_lock_leaks),
    Invariant("accounting", QUIESCENT, check_accounting),
    Invariant("anti_affinity", QUIESCENT, check_anti_affinity),
    Invariant("coding_sets", QUIESCENT, check_coding_sets),
    Invariant("store_consistency", QUIESCENT, check_store_consistency),
    Invariant("parity_integrity", QUIESCENT, check_parity_integrity),
    Invariant("reverse_indexes", QUIESCENT, check_reverse_indexes),
    Invariant("digest_audit", QUIESCENT, check_digest_audit),
)


def run_invariants(
    svc, tier: str = ONLINE, names: Iterable[str] | None = None
) -> list[Violation]:
    """Run the checker suite; quiescent tier includes the online tier.

    ``names`` restricts to a subset (still tier-filtered).  Requesting the
    quiescent tier on a non-drained simulator is a usage error — the
    strict checks would report phantom violations for in-flight work.
    """
    if tier not in (ONLINE, QUIESCENT):
        raise ValueError(f"unknown invariant tier {tier!r}")
    if tier == QUIESCENT and svc.sim.peek() != float("inf"):
        raise RuntimeError("quiescent invariants require a drained simulator")
    wanted = None if names is None else set(names)
    out: list[Violation] = []
    for inv in INVARIANTS:
        if tier == ONLINE and inv.tier != ONLINE:
            continue
        if wanted is not None and inv.name not in wanted:
            continue
        t = svc.sim.now
        out.extend(Violation(inv.name, detail, t) for detail in inv.fn(svc))
    return out
