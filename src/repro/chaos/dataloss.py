"""Correlated-failure data-loss campaign: unconstrained vs CodingSets placement.

The headline measurement of the tiering-v2 / CodingSets work (ROADMAP item
3, grounded in Hydra): under a correlated cabinet failure, how many
stripes lose more shards than the code tolerates?  The campaign stages a
deterministic workload twice — once under ``spread`` placement (parity
scattered cluster-wide, cabinet-oblivious: the unconstrained layout large
deployments drift into) and once under ``coding_sets`` (parity bounded to
a small cabinet-disjoint menu per group) — then measures blast radius two
ways:

1. **Exhaustive sweep** (static, metadata-only): for *every* cabinet,
   count the stripes that would lose more than ``m`` shards if that whole
   cabinet died.  Summing over all cabinets gives the total stripe-kill
   exposure of the placement — a pure function of the seed, so the
   numbers are exactly reproducible and CI can gate on them verbatim.
2. **Injected verification** (dynamic, ground truth): actually kill the
   worst cabinet through the real failure paths and audit every entity
   through the real read paths (`verify_all`), confirming the static
   count: every unrecoverable entity belongs to a predicted-killed
   stripe, and a placement predicted loss-free verifies loss-free.

Everything is deterministic per seed; the result carries a fingerprint so
regression tests can assert bit-identical reproduction.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field

from repro.core.recovery import RecoveryConfig
from repro.staging.objects import ResilienceState

__all__ = ["DataLossConfig", "run_dataloss_campaign"]


@dataclass
class DataLossConfig:
    """One comparison run: deployment geometry and the placements to pit."""

    seed: int = 0
    n_servers: int = 16
    nodes_per_cabinet: int = 2
    domain_shape: tuple = (32, 64, 64)
    object_bytes: int = 4096
    n_variables: int = 3
    max_coding_sets: int = 2
    placements: tuple = ("spread", "coding_sets")
    # Kill the worst cabinet for real and audit through the read paths.
    inject: bool = True

    def __post_init__(self) -> None:
        if self.n_servers < 8:
            raise ValueError("the campaign needs at least 8 servers")
        if not self.placements:
            raise ValueError("need at least one placement mode to measure")


def _build_service(cfg: DataLossConfig, placement: str):
    from repro import ErasurePolicy, StagingConfig, StagingService

    return StagingService(
        StagingConfig(
            n_servers=cfg.n_servers,
            nodes_per_cabinet=cfg.nodes_per_cabinet,
            domain_shape=tuple(cfg.domain_shape),
            object_max_bytes=cfg.object_bytes,
            placement_mode=placement,
            max_coding_sets=cfg.max_coding_sets,
            seed=cfg.seed,
        ),
        # No repair: the campaign measures placement exposure, so the
        # post-failure state must stay exactly what the failure left.
        ErasurePolicy(recovery=RecoveryConfig(mode="none", repair_on_access=False)),
    )


def _stage_workload(svc, cfg: DataLossConfig) -> None:
    """Write every block of every variable once and force full encoding."""

    def flow():
        for v in range(cfg.n_variables):
            for b in range(svc.domain.n_blocks):
                yield from svc.put(f"w{v}", f"v{v}", svc.domain.block_bbox(b))
        yield from svc.end_step()
        yield from svc.flush()

    svc.run_workflow(flow())
    svc.run()


def _stripe_holders(svc, stripe) -> list[int]:
    """Servers holding a *real* shard of the stripe (data via primaries)."""
    holders = []
    for i in range(stripe.k):
        if stripe.members[i] is not None:
            holders.append(svc.directory.entities[stripe.members[i]].primary)
    for j in range(stripe.k, stripe.k + stripe.m):
        holders.append(stripe.shard_servers[j])
    return holders


def _stripes_killed_by(svc, dead: set[int]) -> list[int]:
    """Stripe ids that lose more than ``m`` real shards to ``dead``."""
    killed = []
    for sid, stripe in sorted(svc.directory.stripes.items()):
        lost = sum(1 for s in _stripe_holders(svc, stripe) if s in dead)
        if lost > stripe.m:
            killed.append(sid)
    return killed


def _entities_on_killed_stripes(svc, killed: list[int]) -> set:
    out = set()
    for sid in killed:
        stripe = svc.directory.stripes[sid]
        for mk in stripe.members:
            if mk is not None:
                out.add(mk)
    return out


def _distinct_sets_per_group(svc) -> dict[int, int]:
    """How many distinct server sets the stripes of each group span."""
    sets_by_group: dict[int, set] = {}
    for stripe in svc.directory.stripes.values():
        sets_by_group.setdefault(stripe.group_id, set()).add(
            frozenset(_stripe_holders(svc, stripe))
        )
    return {gid: len(s) for gid, s in sorted(sets_by_group.items())}


def _measure_placement(cfg: DataLossConfig, placement: str) -> dict:
    svc = _build_service(cfg, placement)
    _stage_workload(svc, cfg)
    cluster = svc.cluster
    kills_by_cabinet = {}
    for cab in range(cluster.n_cabinets):
        dead = set(cluster.servers_in_cabinet(cab))
        kills_by_cabinet[cab] = len(_stripes_killed_by(svc, dead))
    total_kills = sum(kills_by_cabinet.values())
    result = {
        "placement": placement,
        "stripes_total": len(svc.directory.stripes),
        "cabinets": cluster.n_cabinets,
        "kills_by_cabinet": kills_by_cabinet,
        "stripe_kill_events": total_kills,
        "kill_probability": (
            total_kills / (cluster.n_cabinets * len(svc.directory.stripes))
            if svc.directory.stripes
            else 0.0
        ),
        "distinct_sets_per_group": _distinct_sets_per_group(svc),
    }
    if cfg.inject:
        result["injected"] = _inject_and_audit(svc, cfg, kills_by_cabinet)
    return result


def _inject_and_audit(svc, cfg: DataLossConfig, kills_by_cabinet: dict) -> dict:
    """Kill the worst cabinet for real; audit losses through the read paths."""
    cabinet = max(kills_by_cabinet, key=lambda c: (kills_by_cabinet[c], -c))
    dead = set(svc.cluster.servers_in_cabinet(cabinet))
    predicted_killed = _stripes_killed_by(svc, dead)
    predicted_lost = _entities_on_killed_stripes(svc, predicted_killed)
    # Predicted losses are stripe members whose data shard actually died or
    # whose stripe can no longer decode; survivors of a killed stripe that
    # kept their primary copy still read fine.  The audit below is ground
    # truth — here we only record the static expectation.
    for sid in sorted(dead):
        svc.fail_server(sid)
    audit = svc.verify_all()
    unrecoverable = set(audit["unrecoverable"])
    # Entities not protected by any stripe member role (e.g. still pending)
    # are not the placement comparison's subject.
    unexplained = sorted(
        key for key in unrecoverable
        if key not in predicted_lost
        and svc.directory.entities[key].state == ResilienceState.ENCODED
    )
    return {
        "cabinet": cabinet,
        "servers_killed": sorted(dead),
        "predicted_killed_stripes": predicted_killed,
        "verified": audit["verified"],
        "unrecoverable": sorted(f"{n}/{b}" for n, b in unrecoverable),
        "unexplained_losses": [f"{n}/{b}" for n, b in unexplained],
    }


def run_dataloss_campaign(cfg: DataLossConfig) -> dict:
    """Measure every placement and compare the first against the others.

    Returns a JSON-ready payload: per-placement exposure, the loss ratio
    of the first placement vs each alternative (``inf``-free: a loss-free
    alternative reports the raw event counts and a ratio against 1), and
    a fingerprint of the whole payload for bit-identical regression gates.
    """
    placements = {p: _measure_placement(cfg, p) for p in cfg.placements}
    payload = {
        "seed": cfg.seed,
        "n_servers": cfg.n_servers,
        "nodes_per_cabinet": cfg.nodes_per_cabinet,
        "max_coding_sets": cfg.max_coding_sets,
        "placements": placements,
    }
    base = cfg.placements[0]
    base_kills = placements[base]["stripe_kill_events"]
    comparisons = {}
    for other in cfg.placements[1:]:
        other_kills = placements[other]["stripe_kill_events"]
        comparisons[f"{base}_vs_{other}"] = {
            f"{base}_kill_events": base_kills,
            f"{other}_kill_events": other_kills,
            "loss_ratio": base_kills / max(1, other_kills),
        }
    payload["comparisons"] = comparisons
    blob = json.dumps(payload, sort_keys=True, default=str).encode()
    payload["fingerprint"] = hashlib.blake2b(blob, digest_size=16).hexdigest()
    return payload
