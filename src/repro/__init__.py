"""CoREC: Scalable Data Resilience for In-Memory Data Staging.

A from-scratch Python reproduction of the IPDPS 2018 paper's system:
a resilient in-memory staging service that combines dynamic replication
with erasure coding based on online hot/cold data classification, plus the
substrates it needs (a Reed-Solomon codec over GF(2^8), a discrete-event
cluster simulator standing in for the Titan testbed, and a DataSpaces-like
staging layer).

Quickstart::

    from repro import StagingConfig, StagingService, CoRECPolicy
    from repro.workloads import SyntheticWorkload, SyntheticWorkloadConfig

    service = StagingService(StagingConfig(n_servers=8), CoRECPolicy())
    wl = SyntheticWorkload(service, SyntheticWorkloadConfig(case="case1",
                                                            n_writers=8,
                                                            timesteps=5))
    service.run_workflow(wl.run())
    print(service.metrics.snapshot())
"""

__version__ = "1.0.0"

from repro.staging.service import StagingConfig, StagingService
from repro.core.policies import (
    NoResilience,
    ReplicationPolicy,
    ErasurePolicy,
    DataLossError,
)
from repro.core.hybrid import SimpleHybridPolicy
from repro.core.corec import CoRECPolicy, CoRECConfig
from repro.core.recovery import RecoveryConfig
from repro.core.tiering import TieringConfig, TieringCosts
from repro.core.model import CoRECModel, ModelParams
from repro.staging.domain import BBox, Domain
from repro.staging.tiers import StorageTier, TieredStore, default_tiers
from repro.core.durability import DurabilityParams, group_mttdl, annual_loss_probability
from repro.obs import MetricsRegistry, Tracer

__all__ = [
    "__version__",
    "StagingConfig",
    "StagingService",
    "NoResilience",
    "ReplicationPolicy",
    "ErasurePolicy",
    "SimpleHybridPolicy",
    "CoRECPolicy",
    "CoRECConfig",
    "RecoveryConfig",
    "TieringConfig",
    "TieringCosts",
    "CoRECModel",
    "ModelParams",
    "BBox",
    "Domain",
    "DataLossError",
    "StorageTier",
    "TieredStore",
    "default_tiers",
    "DurabilityParams",
    "group_mttdl",
    "annual_loss_probability",
    "MetricsRegistry",
    "Tracer",
]
