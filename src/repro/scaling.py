"""Deterministic weak-scaling harness for the failure paths.

Extends the Table II shrink sweep (``repro.workloads.s3d``) past its three
paper columns: the deployment is scaled from 4 to 64 staging servers while
the *per-server* share stays fixed (the paper keeps the same 16:1
simulation:staging ratio as the machine grows), and each scale injects one
fail/replace cycle against a quiesced service.

Instead of wall-clock time — flaky under CI noise — the harness asserts
*operation counts*: the directory's ``op_stats`` touch counters record how
many entity/stripe records every failure-handling path visited.  With the
reverse indexes in place, touches per failure are proportional to the data
on the failed server (constant across a weak-scaling sweep); a regression
to any whole-directory walk makes them grow with the total object count
and trips the bound.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.chaos.invariants import QUIESCENT, run_invariants
from repro.core.corec import CoRECConfig, CoRECPolicy
from repro.core.recovery import RecoveryConfig

__all__ = ["ScalingConfig", "run_scale", "run_sweep", "check_bounds"]

#: Server counts of the full sweep (each divisible by the k+m=4 coding
#: group and the size-2 replication group).
SWEEP_SERVERS = (4, 8, 16, 32, 64)

#: Block edge in cells (element_bytes=1 -> bytes per object).
_BLOCK_CELLS = 256


@dataclass
class ScalingConfig:
    """One weak-scaling sweep: fixed per-server load, growing server count."""

    servers: tuple[int, ...] = SWEEP_SERVERS
    blocks_per_server: int = 8   # primaries per server per variable
    timesteps: int = 3
    seed: int = 1
    victim: int = 1              # server failed at each scale
    recovery_mode: str = "lazy"
    # Touches per failure may exceed the affected-record count by a small
    # constant factor (each repair reads and rewrites its record, and the
    # rebalance scans its coding group's stripes); what must NOT happen is
    # growth with deployment size.
    max_touch_ratio: float = 16.0
    # The per-scale ratio must stay flat: the largest scale may exceed the
    # smallest by at most this factor (a whole-directory walk grows it by
    # ~n_servers, 16x across the sweep).
    max_ratio_growth: float = 2.0

    def __post_init__(self) -> None:
        for n in self.servers:
            if n % 4 or n % 2:
                raise ValueError(f"{n} servers cannot host the 4-wide coding groups")
        if self.victim < 0 or any(self.victim >= n for n in self.servers):
            raise ValueError("victim server out of range for the sweep")


def _build_service(cfg: ScalingConfig, n_servers: int):
    from repro.staging.service import StagingConfig, StagingService

    n_blocks = cfg.blocks_per_server * n_servers
    config = StagingConfig(
        n_servers=n_servers,
        domain_shape=(n_blocks * _BLOCK_CELLS,),
        element_bytes=1,
        object_max_bytes=_BLOCK_CELLS,
        seed=cfg.seed,
    )
    policy = CoRECPolicy(
        CoRECConfig(recovery=RecoveryConfig(mode=cfg.recovery_mode))
    )
    return StagingService(config, policy)


def _populate(svc, cfg: ScalingConfig):
    """Write a hot and a cold variable over every block, then quiesce."""

    def wf():
        for step in range(cfg.timesteps):
            names = ("hot", "cold") if step == 0 else ("hot",)
            for name in names:
                for b in range(svc.domain.n_blocks):
                    yield from svc.put(f"w{b % 16}", name, svc.domain.block_bbox(b))
            yield from svc.end_step()
        yield from svc.flush()

    svc.run_workflow(wf())
    svc.run()


def run_scale(cfg: ScalingConfig, n_servers: int) -> dict:
    """Populate one deployment, fail/replace one server, count touches."""
    svc = _build_service(cfg, n_servers)
    _populate(svc, cfg)
    d = svc.directory
    victim = cfg.victim

    group = set(svc.layout.coding_group(victim))
    affected = {
        "primaries": len(d.entities_by_primary.get(victim, ())),
        "replicas": len(d.replicas_by_server.get(victim, ())),
        "stripes": len(d.stripes_by_server.get(victim, ())),
        # The post-replacement rebalance legitimately inspects every stripe
        # of the victim's coding group; group size is constant, so this is
        # still O(per-server share).
        "group_stripes": len(
            set().union(*(d.stripes_by_server.get(s, set()) for s in group))
        ),
    }
    before = dict(d.op_stats)

    svc.fail_server(victim)
    svc.run()
    svc.replace_server(victim)
    svc.run()

    after = dict(d.op_stats)
    touches = (
        after["entity_touches"] - before["entity_touches"]
        + after["stripe_touches"] - before["stripe_touches"]
    )
    affected_total = sum(affected.values())
    row = {
        "n_servers": n_servers,
        "total_entities": len(d.entities),
        "total_stripes": len(d.stripes),
        "affected": affected,
        "affected_total": affected_total,
        "touches": touches,
        "touch_ratio": touches / max(1, affected_total),
        "full_scans_during_failure": after["full_scans"] - before["full_scans"],
        "invariant_violations": [
            str(v) for v in run_invariants(svc, tier=QUIESCENT)
        ],
    }
    return row


def run_sweep(cfg: ScalingConfig | None = None) -> list[dict]:
    cfg = cfg or ScalingConfig()
    return [run_scale(cfg, n) for n in cfg.servers]


def check_bounds(rows: list[dict], cfg: ScalingConfig | None = None) -> list[str]:
    """Complexity-bound assertions over a sweep; returns problem strings."""
    cfg = cfg or ScalingConfig()
    problems = []
    for row in rows:
        n = row["n_servers"]
        if row["invariant_violations"]:
            problems.append(
                f"n={n}: quiescent invariants failed: {row['invariant_violations']}"
            )
        if row["full_scans_during_failure"]:
            problems.append(
                f"n={n}: {row['full_scans_during_failure']} full directory "
                f"scans during the failure window (expected 0)"
            )
        if row["touch_ratio"] > cfg.max_touch_ratio:
            problems.append(
                f"n={n}: {row['touches']} directory touches for "
                f"{row['affected_total']} affected records "
                f"(ratio {row['touch_ratio']:.1f} > {cfg.max_touch_ratio})"
            )
    if len(rows) >= 2:
        first, last = rows[0], rows[-1]
        growth = last["touch_ratio"] / max(1e-9, first["touch_ratio"])
        if growth > cfg.max_ratio_growth:
            problems.append(
                f"touch ratio grew {growth:.2f}x from {first['n_servers']} to "
                f"{last['n_servers']} servers (> {cfg.max_ratio_growth}x): "
                f"failure cost is scaling with directory size"
            )
    return problems
