"""The five synthetic access-pattern cases of the paper's Section IV.

Each case writes/reads a 3-D global domain over ``timesteps`` iterations
through a grid of parallel writer clients (and reader clients for the read
case), mirroring Table I's setup:

- **case1** — write the entire data domain in each time step;
- **case2** — the domain is divided into ``subdomain_groups`` subdomains,
  one written per time step (the whole domain every N steps);
- **case3** — a hot subset is written at high frequency, everything else
  written once (hot spots);
- **case4** — random subsets of the domain written each step;
- **case5** — populate once, then read the entire domain every time step.

A *failure plan* maps timestep -> [(action, server)] so benchmarks can
reproduce the paper's Figure 10 schedule ("first failure at time step 4,
second at 6; recoveries start at 8 and 12").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Generator

import numpy as np

from repro.sim.engine import AllOf
from repro.staging.domain import BBox, Domain
from repro.util.stats import TimeSeries

__all__ = ["SyntheticWorkloadConfig", "SyntheticWorkload", "writer_regions", "reader_regions"]

CASES = ("case1", "case2", "case3", "case4", "case5")


def _grid_factor(n: int, ndim: int) -> tuple[int, ...]:
    """Factor ``n`` into a near-cubic ndim grid (largest factors first)."""
    dims = [1] * ndim
    remaining = n
    # Greedy: repeatedly split off the smallest prime factor onto the
    # currently-smallest dimension, yielding a balanced decomposition.
    f = 2
    factors = []
    while remaining > 1:
        while remaining % f == 0:
            factors.append(f)
            remaining //= f
        f += 1 if f == 2 else 2
        if f * f > remaining and remaining > 1:
            factors.append(remaining)
            break
    for p in sorted(factors, reverse=True):
        dims[int(np.argmin(dims))] *= p
    return tuple(sorted(dims, reverse=True))


def _split_extent(extent: int, parts: int) -> list[tuple[int, int]]:
    """Split [0, extent) into ``parts`` contiguous near-equal intervals."""
    edges = np.linspace(0, extent, parts + 1).astype(int)
    return [(int(edges[i]), int(edges[i + 1])) for i in range(parts)]


def _tile_domain(domain: Domain, grid: tuple[int, ...]) -> list[BBox]:
    per_dim = [_split_extent(s, g) for s, g in zip(domain.shape, grid)]
    boxes = []
    import itertools

    for idx in itertools.product(*(range(g) for g in grid)):
        lb = tuple(per_dim[d][idx[d]][0] for d in range(len(grid)))
        ub = tuple(per_dim[d][idx[d]][1] for d in range(len(grid)))
        boxes.append(BBox(lb, ub))
    return boxes


def writer_regions(domain: Domain, n_writers: int) -> list[BBox]:
    """Disjoint per-writer subdomains covering the whole domain."""
    grid = _grid_factor(n_writers, domain.ndim)
    return _tile_domain(domain, grid)


def reader_regions(domain: Domain, n_readers: int) -> list[BBox]:
    """Disjoint per-reader subdomains covering the whole domain."""
    return writer_regions(domain, n_readers)


@dataclass
class SyntheticWorkloadConfig:
    case: str = "case1"
    n_writers: int = 64
    n_readers: int = 32
    timesteps: int = 20
    var: str = "field"
    subdomain_groups: int = 4          # case2: rotating subdomain count
    hot_fraction: float = 0.125        # case3: hot share of the domain
    write_probability: float = 0.3     # case4: per-writer write chance
    seed: int = 7
    read_in_write_cases: bool = False  # optional read phase after writes
    compute_time_s: float = 0.0        # per-step simulation compute phase
    # Read-phase pattern (case 5 and read_in_write_cases). The paper ran
    # "various cases of reads" mirroring the write patterns; results
    # "show similar patterns as case 5":
    #   "all"    — every reader reads its share of the whole domain;
    #   "subset" — only a fixed subset of the domain is read each step;
    #   "random" — a random subset of reader regions per step;
    #   "hot"    — a small hot region is read at high frequency, the rest
    #              once.
    read_pattern: str = "all"
    read_fraction: float = 0.25        # share read by "subset"/"hot"/"random"
    failure_plan: dict[int, list[tuple[str, int]]] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.case not in CASES:
            raise ValueError(f"unknown case {self.case!r}; pick one of {CASES}")
        if self.timesteps < 1 or self.n_writers < 1:
            raise ValueError("need at least one timestep and one writer")
        if not 0 < self.hot_fraction <= 1:
            raise ValueError("hot_fraction must be in (0, 1]")
        if self.read_pattern not in ("all", "subset", "random", "hot"):
            raise ValueError(f"unknown read pattern {self.read_pattern!r}")
        if not 0 < self.read_fraction <= 1:
            raise ValueError("read_fraction must be in (0, 1]")


class SyntheticWorkload:
    """Drives one synthetic case against a staging service."""

    def __init__(self, service, config: SyntheticWorkloadConfig):
        self.service = service
        self.config = config
        self.domain: Domain = service.domain
        self.writer_boxes = writer_regions(self.domain, config.n_writers)
        self.reader_boxes = reader_regions(self.domain, max(1, config.n_readers))
        self.rng = np.random.default_rng(config.seed)
        self.step_put = TimeSeries("step_put_mean")
        self.step_get = TimeSeries("step_get_mean")

    # ------------------------------------------------------------------
    def run(self) -> Generator:
        """The whole workflow as one simulator process body."""
        cfg = self.config
        if cfg.case == "case5":
            yield from self._populate()
            yield from self.service.end_step()
        for step in range(cfg.timesteps):
            self._apply_failure_plan(self.service.step)
            if cfg.compute_time_s > 0:
                # The simulation computes before staging its results; this
                # is what makes resilience overhead a *fraction* of the
                # workflow rather than the whole of it.
                yield self.service.sim.timeout(cfg.compute_time_s)
            if cfg.case == "case5":
                yield from self._read_phase()
            else:
                yield from self._write_phase(step)
                if cfg.read_in_write_cases:
                    yield from self._read_phase()
            yield from self.service.end_step()
        yield from self.service.flush()

    # ------------------------------------------------------------------
    def _apply_failure_plan(self, step: int) -> None:
        for action, sid in self.config.failure_plan.get(step, []):
            if action == "fail":
                self.service.fail_server(sid)
            elif action == "replace":
                self.service.replace_server(sid)
            else:
                raise ValueError(f"unknown failure action {action!r}")

    def _writers_for_step(self, step: int) -> list[int]:
        cfg = self.config
        n = len(self.writer_boxes)
        if cfg.case == "case1":
            return list(range(n))
        if cfg.case == "case2":
            group = step % cfg.subdomain_groups
            lo = n * group // cfg.subdomain_groups
            hi = n * (group + 1) // cfg.subdomain_groups
            return list(range(lo, hi))
        if cfg.case == "case3":
            n_hot = max(1, int(round(n * cfg.hot_fraction)))
            hot = list(range(n_hot))
            if step == 0:
                return list(range(n))  # cold part written exactly once
            return hot
        if cfg.case == "case4":
            mask = self.rng.random(n) < cfg.write_probability
            chosen = [i for i in range(n) if mask[i]]
            return chosen or [int(self.rng.integers(0, n))]
        raise AssertionError(f"no write phase for {cfg.case}")

    def _write_phase(self, step: int) -> Generator:
        sim = self.service.sim
        t0 = sim.now
        before = self.service.metrics.put_stat.n
        procs = [
            sim.process(
                self.service.put(f"w{i}", self.config.var, self.writer_boxes[i]),
                name=f"w{i}-s{step}",
            )
            for i in self._writers_for_step(step)
        ]
        yield AllOf(sim, procs)
        n_new = self.service.metrics.put_stat.n - before
        if n_new:
            recent = self.service.metrics.put_series.values[-n_new:]
            self.step_put.add(self.service.step, float(np.mean(recent)))
        del t0

    def _populate(self) -> Generator:
        """Initial write of the whole domain (case 5 setup)."""
        sim = self.service.sim
        procs = [
            sim.process(self.service.put(f"w{i}", self.config.var, box), name=f"pop-w{i}")
            for i, box in enumerate(self.writer_boxes)
        ]
        yield AllOf(sim, procs)

    def _readers_for_step(self) -> list[int]:
        cfg = self.config
        n = min(cfg.n_readers, len(self.reader_boxes))
        if cfg.read_pattern == "all":
            return list(range(n))
        n_part = max(1, int(round(n * cfg.read_fraction)))
        if cfg.read_pattern == "subset":
            return list(range(n_part))
        if cfg.read_pattern == "random":
            chosen = self.rng.random(n) < cfg.read_fraction
            out = [i for i in range(n) if chosen[i]]
            return out or [int(self.rng.integers(0, n))]
        # "hot": the hot readers read every step; the rest only on step 0.
        if self.service.step <= 1:
            return list(range(n))
        return list(range(n_part))

    def _read_phase(self) -> Generator:
        sim = self.service.sim
        before = self.service.metrics.get_stat.n
        procs = [
            sim.process(
                self.service.get(f"r{i}", self.config.var, self.reader_boxes[i]),
                name=f"r{i}-s{self.service.step}",
            )
            for i in self._readers_for_step()
        ]
        yield AllOf(sim, procs)
        n_new = self.service.metrics.get_stat.n - before
        if n_new:
            recent = self.service.metrics.get_series.values[-n_new:]
            self.step_get.add(self.service.step, float(np.mean(recent)))
