"""Open-loop load generation and tape replay for the live backends.

Two drivers share this module:

- :func:`replay_tape` re-emits a :class:`~repro.workloads.capture.Tape`
  against *any* backend exposing the blocking client surface — a
  :class:`~repro.live.protocol.LiveClient`, a sharded
  :class:`~repro.live.router.ClusterClient`, or the simulator via
  :class:`SimTarget` — with time compression (``speedup``), selective
  flow amplification, and byte-digest equivalence checks against what
  the recording actually read.
- :func:`run_load` drives N concurrent flow clients from a seeded
  open-loop schedule (:func:`build_schedule`): operations are issued at
  their scheduled arrival times regardless of completion of earlier ones
  on *other* flows (each flow's own connection is serial, so per-flow
  streams stay ordered — the locust/k6 model).  Per-op latencies feed a
  :class:`~repro.obs.registry.MetricsRegistry`, and :class:`SLO`
  evaluates p99 put/get ceilings and an error-rate ceiling the way
  ``check_regression.py`` gates the codec.

Arrival processes (all seeded, all deterministic given the spec):

``constant``
    evenly spaced arrivals at ``rate`` ops/s.
``poisson``
    homogeneous Poisson process at ``rate``.
``hotspot``
    Poisson at ``rate`` with a ``burst_factor``× window covering the
    middle ``burst_span`` fraction of the run.
``diurnal``
    nonhomogeneous Poisson, sinusoidal rate between ``rate`` and
    ``rate * peak_factor`` over ``cycles`` full periods.
``flash-crowd``
    Poisson at ``rate`` until ``spike_at`` (fraction of duration), then a
    ``spike_factor``× spike decaying exponentially back to base.

Determinism note for replay equivalence: a digest-checked replay issues
ops sequentially on one connection (recorded order = issue order); the
multi-flow open-loop driver is for throughput/latency work, where byte
equivalence is checked per-op, not cross-run.
"""

from __future__ import annotations

import math
import time
import threading
from dataclasses import dataclass, field
from typing import Any, Callable

import numpy as np

from repro.obs.registry import MetricsRegistry, latency_edges
from repro.workloads.capture import Tape, TapeOp, block_digests, projection_sha256

__all__ = [
    "ARRIVAL_PROCESSES",
    "arrival_times",
    "LoadSpec",
    "OpSpec",
    "build_schedule",
    "LoadReport",
    "run_load",
    "SLO",
    "SimTarget",
    "ReplayReport",
    "replay_tape",
]

ARRIVAL_PROCESSES = ("constant", "poisson", "hotspot", "diurnal", "flash-crowd")


# ---------------------------------------------------------------------------
# arrival processes
# ---------------------------------------------------------------------------
def _thinned_poisson(
    rng: np.random.Generator,
    duration: float,
    rate_fn: Callable[[float], float],
    rate_max: float,
) -> list[float]:
    """Nonhomogeneous Poisson arrivals on [0, duration) by thinning."""
    times: list[float] = []
    t = 0.0
    while True:
        t += float(rng.exponential(1.0 / rate_max))
        if t >= duration:
            return times
        if rng.random() < rate_fn(t) / rate_max:
            times.append(t)


def arrival_times(
    process: str,
    rate: float,
    duration: float,
    seed: int,
    burst_factor: float = 4.0,
    burst_span: float = 0.25,
    peak_factor: float = 3.0,
    cycles: float = 2.0,
    spike_at: float = 0.5,
    spike_factor: float = 8.0,
    spike_decay: float = 0.1,
) -> list[float]:
    """Seeded arrival offsets (seconds) for one run of ``process``."""
    if rate <= 0 or duration <= 0:
        raise ValueError("rate and duration must be positive")
    rng = np.random.default_rng(seed)
    if process == "constant":
        gap = 1.0 / rate
        return [i * gap for i in range(int(rate * duration))]
    if process == "poisson":
        return _thinned_poisson(rng, duration, lambda t: rate, rate)
    if process == "hotspot":
        lo = duration * (0.5 - burst_span / 2)
        hi = duration * (0.5 + burst_span / 2)

        def rate_hot(t: float) -> float:
            return rate * burst_factor if lo <= t < hi else rate

        return _thinned_poisson(rng, duration, rate_hot, rate * burst_factor)
    if process == "diurnal":
        amp = rate * (peak_factor - 1.0) / 2.0
        mid = rate + amp

        def rate_diurnal(t: float) -> float:
            return mid + amp * math.sin(2 * math.pi * cycles * t / duration)

        return _thinned_poisson(rng, duration, rate_diurnal, mid + amp)
    if process == "flash-crowd":
        t_spike = duration * spike_at
        tau = duration * spike_decay

        def rate_flash(t: float) -> float:
            if t < t_spike:
                return rate
            return rate * (1.0 + (spike_factor - 1.0) * math.exp(-(t - t_spike) / tau))

        return _thinned_poisson(rng, duration, rate_flash, rate * spike_factor)
    raise ValueError(f"unknown arrival process {process!r} "
                     f"(choose from {ARRIVAL_PROCESSES})")


# ---------------------------------------------------------------------------
# schedule
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class OpSpec:
    """One scheduled operation of an open-loop run."""

    t: float
    flow: str
    op: str  # "put" | "get"
    var: str
    block: int
    verify: bool | None = None


@dataclass(frozen=True)
class LoadSpec:
    """Seeded open-loop workload description."""

    process: str = "poisson"
    rate: float = 50.0  # aggregate ops/s across all flows
    duration: float = 5.0  # seconds of scheduled arrivals
    flows: int = 2  # concurrent clients
    n_vars: int = 2
    n_blocks: int = 12  # first N blocks of the grid are the working set
    read_fraction: float = 0.4
    verify_fraction: float = 0.0  # fraction of gets issued with verify=True
    seed: int = 7
    process_kwargs: dict[str, Any] = field(default_factory=dict)

    def flow_names(self) -> list[str]:
        return [f"flow{i}" for i in range(self.flows)]


def build_schedule(spec: LoadSpec) -> list[OpSpec]:
    """Deterministic op schedule: arrivals + op mix, seeded by the spec.

    Ops target single blocks (data-less puts; the servers synthesize
    payloads deterministically).  Gets only ever target blocks already
    written *earlier in the schedule*, so every scheduled read is
    servable.  Flows are assigned round-robin in arrival order.
    """
    times = arrival_times(
        spec.process, spec.rate, spec.duration, spec.seed, **spec.process_kwargs
    )
    rng = np.random.default_rng(spec.seed + 1)
    flows = spec.flow_names()
    variables = [f"var{v}" for v in range(spec.n_vars)]
    written: list[tuple[str, int]] = []
    schedule: list[OpSpec] = []
    for i, t in enumerate(times):
        flow = flows[i % len(flows)]
        if written and rng.random() < spec.read_fraction:
            var, block = written[int(rng.integers(len(written)))]
            verify = True if rng.random() < spec.verify_fraction else None
            schedule.append(OpSpec(t, flow, "get", var, block, verify))
        else:
            var = variables[int(rng.integers(len(variables)))]
            block = int(rng.integers(spec.n_blocks))
            schedule.append(OpSpec(t, flow, "put", var, block))
            if (var, block) not in written:
                written.append((var, block))
    return schedule


# ---------------------------------------------------------------------------
# SLO gate
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class SLO:
    """Latency/error objectives an open-loop run must meet.

    ``None`` disables a clause.  Evaluation returns the violated clauses
    so CI output names exactly what failed, mirroring
    ``check_regression.py``.
    """

    put_p99_ms: float | None = None
    get_p99_ms: float | None = None
    max_error_rate: float = 0.01

    def evaluate(self, report: "LoadReport") -> list[str]:
        violations: list[str] = []
        if self.put_p99_ms is not None and report.puts:
            got = report.put_percentiles_ms.get("p99", 0.0)
            if got > self.put_p99_ms:
                violations.append(
                    f"put p99 {got:.2f} ms > SLO {self.put_p99_ms:.2f} ms"
                )
        if self.get_p99_ms is not None and report.gets:
            got = report.get_percentiles_ms.get("p99", 0.0)
            if got > self.get_p99_ms:
                violations.append(
                    f"get p99 {got:.2f} ms > SLO {self.get_p99_ms:.2f} ms"
                )
        if self.max_error_rate is not None and report.ops:
            rate = report.errors / report.ops
            if rate > self.max_error_rate:
                violations.append(
                    f"error rate {rate:.4f} > SLO {self.max_error_rate:.4f}"
                )
        return violations


@dataclass
class LoadReport:
    """Outcome of one open-loop run (JSON-serializable via ``to_json``)."""

    ops: int = 0
    puts: int = 0
    gets: int = 0
    errors: int = 0
    wall_s: float = 0.0
    achieved_rate: float = 0.0
    put_percentiles_ms: dict[str, float] = field(default_factory=dict)
    get_percentiles_ms: dict[str, float] = field(default_factory=dict)
    lateness_p99_ms: float = 0.0
    slo_violations: list[str] = field(default_factory=list)
    slo_gate: str = "not-evaluated"

    def to_json(self) -> dict[str, Any]:
        return {
            "ops": self.ops,
            "puts": self.puts,
            "gets": self.gets,
            "errors": self.errors,
            "wall_s": round(self.wall_s, 4),
            "achieved_rate": round(self.achieved_rate, 2),
            "put_percentiles_ms": {
                k: round(v, 3) for k, v in self.put_percentiles_ms.items()
            },
            "get_percentiles_ms": {
                k: round(v, 3) for k, v in self.get_percentiles_ms.items()
            },
            "lateness_p99_ms": round(self.lateness_p99_ms, 3),
            "slo_violations": self.slo_violations,
            "slo_gate": self.slo_gate,
        }


def _percentiles_ms(hist) -> dict[str, float]:
    return {k: v * 1000.0 for k, v in hist.percentiles().items()}


def run_load(
    client_factory: Callable[[str], Any],
    spec: LoadSpec,
    domain: Any = None,
    registry: MetricsRegistry | None = None,
    slo: SLO | None = None,
    enforce_slo: bool = True,
    capture_tape: Tape | None = None,
) -> LoadReport:
    """Drive an open-loop schedule through N concurrent flow clients.

    ``client_factory(flow_name)`` must return a fresh client (own
    connection) per flow; each is closed when its flow drains.
    ``domain`` maps block ids to regions (defaults to the client's own
    ``.domain`` when it has one — routed clients do).  Latencies
    land in ``registry`` histograms ``load_put_seconds`` /
    ``load_get_seconds`` (client-observed wall time) plus
    ``load_lateness_seconds`` (issue time minus scheduled time — the
    open-loop health signal: a saturated backend shows up as lateness
    before it shows up as latency).  With ``capture_tape``, every flow
    client is wrapped in a :class:`CaptureRecorder` writing to that tape.
    """
    from repro.workloads.capture import CaptureRecorder

    registry = registry if registry is not None else MetricsRegistry()
    put_hist = registry.histogram("load_put_seconds", latency_edges())
    get_hist = registry.histogram("load_get_seconds", latency_edges())
    late_hist = registry.histogram("load_lateness_seconds", latency_edges())
    ops_total = registry.counter("load_ops_total")
    err_total = registry.counter("load_errors_total")

    schedule = build_schedule(spec)
    per_flow: dict[str, list[OpSpec]] = {name: [] for name in spec.flow_names()}
    for op in schedule:
        per_flow[op.flow].append(op)

    errors: list[str] = []
    fatal: list[BaseException] = []
    err_lock = threading.Lock()
    start = time.monotonic()

    def drive(flow: str, ops: list[OpSpec]) -> None:
        try:
            _drive(flow, ops)
        except BaseException as exc:  # setup failures must reach the caller
            with err_lock:
                fatal.append(exc)

    def _drive(flow: str, ops: list[OpSpec]) -> None:
        client = client_factory(flow)
        recorder = (
            CaptureRecorder(client, tape=capture_tape, flow=flow)
            if capture_tape is not None
            else None
        )
        try:
            grid = domain if domain is not None else getattr(client, "domain", None)
            if grid is None:
                raise TypeError(
                    "run_load needs a block domain: pass domain= or use a "
                    "client exposing .domain"
                )
            for op in ops:
                deadline = start + op.t
                delay = deadline - time.monotonic()
                if delay > 0:
                    time.sleep(delay)
                late_hist.observe(max(0.0, time.monotonic() - deadline))
                t0 = time.monotonic()
                try:
                    # Inside the per-op try: a block id beyond the grid must
                    # count as an op error, not silently kill the flow thread.
                    box = grid.block_bbox(op.block)
                    if op.op == "put":
                        client.put(op.var, box.lb, box.ub)
                    else:
                        client.get(op.var, box.lb, box.ub, op.verify)
                except Exception as exc:
                    err_total.inc()
                    with err_lock:
                        errors.append(f"{flow} {op.op} {op.var}/{op.block}: {exc}")
                    continue
                finally:
                    ops_total.inc()
                (put_hist if op.op == "put" else get_hist).observe(
                    time.monotonic() - t0
                )
        finally:
            if recorder is not None:
                recorder.detach()
            client.close()

    threads = [
        threading.Thread(target=drive, args=(flow, ops), name=f"load-{flow}")
        for flow, ops in per_flow.items()
        if ops
    ]
    for th in threads:
        th.start()
    for th in threads:
        th.join()
    if fatal:
        raise fatal[0]
    wall = time.monotonic() - start

    report = LoadReport(
        ops=len(schedule),
        puts=sum(1 for o in schedule if o.op == "put"),
        gets=sum(1 for o in schedule if o.op == "get"),
        errors=len(errors),
        wall_s=wall,
        achieved_rate=(len(schedule) / wall) if wall > 0 else 0.0,
        put_percentiles_ms=_percentiles_ms(put_hist),
        get_percentiles_ms=_percentiles_ms(get_hist),
        lateness_p99_ms=late_hist.quantile(0.99) * 1000.0,
    )
    if slo is not None:
        report.slo_violations = slo.evaluate(report)
        if not report.slo_violations:
            report.slo_gate = "pass"
        else:
            # "fail" is the CI-gating verdict; "report-only" records the
            # violation honestly without gating (constrained hosts).
            report.slo_gate = "fail" if enforce_slo else "report-only"
    return report


# ---------------------------------------------------------------------------
# sim backend target
# ---------------------------------------------------------------------------
class SimTarget:
    """Adapt a sim :class:`StagingService` to the blocking client surface.

    Every op drains the simulator before returning (the same quiescent
    discipline as the conformance runners), so a tape replayed here walks
    the exact state sequence the differential harness compares.
    """

    def __init__(self, service, name: str = "replay"):
        self.service = service
        self.name = name
        self.domain = service.domain

    def put(self, var, lb, ub, data=None):
        from repro.staging.domain import BBox

        arr = None if data is None else np.ascontiguousarray(data)
        self.service.run_workflow(
            self.service.put(self.name, var, BBox(tuple(lb), tuple(ub)), arr)
        )
        self.service.run()
        return 0.0

    def get(self, var, lb, ub, verify=None):
        from repro.staging.domain import BBox

        box: list = []

        def flow():
            result = yield from self.service.get(
                self.name, var, BBox(tuple(lb), tuple(ub)), verify
            )
            box.append(result)

        self.service.run_workflow(flow())
        self.service.run()
        duration, payloads = box[0]
        return duration, payloads

    def step(self):
        self.service.run_workflow(self.service.end_step())
        self.service.run()
        return self.service.step

    def flush(self):
        self.service.run_workflow(self.service.flush())
        self.service.run()

    def quiesce(self):
        self.service.run()

    def projection(self):
        from repro.live.conformance import conformance_projection

        return conformance_projection(self.service)

    def close(self):
        self.service.run()


# ---------------------------------------------------------------------------
# replay
# ---------------------------------------------------------------------------
@dataclass
class ReplayReport:
    """Outcome of one tape replay (JSON-serializable via ``to_json``)."""

    ops: int = 0
    amplified_ops: int = 0
    wall_s: float = 0.0
    speedup: float | None = None
    digest_checks: int = 0
    mismatches: list[str] = field(default_factory=list)
    unfaithful_puts: int = 0  # elided payloads replayed data-less
    projection_check: str = "not-checked"  # "match" | "MISMATCH" | reason
    put_percentiles_ms: dict[str, float] = field(default_factory=dict)
    get_percentiles_ms: dict[str, float] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return not self.mismatches and self.projection_check != "MISMATCH"

    def to_json(self) -> dict[str, Any]:
        return {
            "ops": self.ops,
            "amplified_ops": self.amplified_ops,
            "wall_s": round(self.wall_s, 4),
            "speedup": self.speedup,
            "digest_checks": self.digest_checks,
            "mismatches": self.mismatches,
            "unfaithful_puts": self.unfaithful_puts,
            "projection_check": self.projection_check,
            "put_percentiles_ms": {
                k: round(v, 3) for k, v in self.put_percentiles_ms.items()
            },
            "get_percentiles_ms": {
                k: round(v, 3) for k, v in self.get_percentiles_ms.items()
            },
            "ok": self.ok,
        }


def _amplified(op: TapeOp, copy: int) -> TapeOp:
    """Clone of ``op`` for amplification round ``copy`` (≥1).

    Cloned *puts* write shadow variables (``var~ampN``) so the original
    flow's read digests stay valid; cloned *gets* re-read the original
    variable (extra read load on the same hot data — a block another flow
    wrote has no shadow twin to read).  Clones are never digest-checked.
    """
    import dataclasses

    return dataclasses.replace(
        op,
        var=f"{op.var}~amp{copy}" if op.op == "put" else op.var,
        flow=f"{op.flow}~amp{copy}",
        digests={},
    )


def replay_tape(
    tape: Tape,
    target: Any,
    speedup: float | None = None,
    amplify: dict[str, int] | None = None,
    check_digests: bool = True,
    check_projection: bool = True,
    registry: MetricsRegistry | None = None,
) -> ReplayReport:
    """Re-emit ``tape`` against ``target`` and check byte equivalence.

    ``target`` is any blocking client surface (``LiveClient``,
    ``ClusterClient``, :class:`SimTarget`).  Ops are issued sequentially
    in recorded order — the property that makes digest comparison exact.

    ``speedup`` compresses recorded inter-op gaps (2.0 = twice as fast);
    ``None`` replays as fast as the backend accepts (no pacing).
    ``amplify`` maps flow name → total copies (``{"w": 3}`` issues each
    of w's data ops three times; copies touch shadow variables and are
    never digest-checked).  Get digests and, when the tape carries a
    ``projection_sha256``, the final quiescent projection are compared
    against the recording; mismatches are collected, not raised — the
    caller decides (CI asserts ``report.ok``).
    """
    registry = registry if registry is not None else MetricsRegistry()
    put_hist = registry.histogram("replay_put_seconds", latency_edges())
    get_hist = registry.histogram("replay_get_seconds", latency_edges())
    amplify = amplify or {}
    report = ReplayReport(speedup=speedup)

    start = time.monotonic()
    for op in tape.ops:
        if speedup is not None and speedup > 0:
            deadline = start + op.t / speedup
            delay = deadline - time.monotonic()
            if delay > 0:
                time.sleep(delay)
        copies = [op]
        if op.op in ("put", "get"):
            for i in range(1, amplify.get(op.flow, 1)):
                copies.append(_amplified(op, i))
        for emitted in copies:
            original = emitted is op
            if original:
                report.ops += 1
            else:
                report.amplified_ops += 1
            if emitted.op == "put":
                if emitted.payload == "elided":
                    report.unfaithful_puts += 1
                t0 = time.monotonic()
                target.put(emitted.var, emitted.lb, emitted.ub,
                           emitted.decode_payload())
                put_hist.observe(time.monotonic() - t0)
            elif emitted.op == "get":
                t0 = time.monotonic()
                _, payloads = target.get(
                    emitted.var, emitted.lb, emitted.ub, emitted.verify
                )
                get_hist.observe(time.monotonic() - t0)
                if original and check_digests and emitted.digests:
                    got = block_digests(payloads)
                    report.digest_checks += len(emitted.digests)
                    if got != emitted.digests:
                        report.mismatches.append(
                            f"op {emitted.seq} get {emitted.var}"
                            f"[{emitted.lb}:{emitted.ub}]: "
                            f"recorded {emitted.digests} != replayed {got}"
                        )
            elif emitted.op == "step":
                target.step()
            elif emitted.op == "flush":
                target.flush()
            elif emitted.op == "quiesce":
                target.quiesce()
            else:  # pragma: no cover - tape corruption
                raise ValueError(f"unknown tape op {emitted.op!r}")
    report.wall_s = time.monotonic() - start

    recorded_sha = tape.meta.get("projection_sha256")
    if check_projection and recorded_sha:
        if amplify:
            # Shadow variables change the final state by construction.
            report.projection_check = "skipped-amplified"
        elif report.unfaithful_puts:
            report.projection_check = "skipped-elided-payloads"
        elif not hasattr(target, "projection"):
            report.projection_check = "skipped-no-projection"
        else:
            target.quiesce()
            got_sha = projection_sha256(target.projection())
            if got_sha == recorded_sha:
                report.projection_check = "match"
            else:
                report.projection_check = "MISMATCH"
                report.mismatches.append(
                    f"projection sha256 {got_sha} != recorded {recorded_sha}"
                )
    report.put_percentiles_ms = _percentiles_ms(put_hist)
    report.get_percentiles_ms = _percentiles_ms(get_hist)
    return report
