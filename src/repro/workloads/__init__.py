"""Workload generators for the evaluation.

- :mod:`repro.workloads.synthetic` — the five Section IV test cases
  (write-everything, rotating subdomains, hot subsets, random subsets,
  read-everything) with failure-plan hooks;
- :mod:`repro.workloads.s3d` — the S3D-like combustion workflow at the
  paper's Table II weak-scaling configurations (proportionally reduced);
- :mod:`repro.workloads.trace` — access-trace recording and replay.
"""

from repro.workloads.synthetic import (
    SyntheticWorkload,
    SyntheticWorkloadConfig,
    writer_regions,
    reader_regions,
)
from repro.workloads.s3d import S3DWorkload, S3DConfig, TABLE_II
from repro.workloads.trace import AccessTrace, TraceOp, TraceRecorder

__all__ = [
    "SyntheticWorkload",
    "SyntheticWorkloadConfig",
    "writer_regions",
    "reader_regions",
    "S3DWorkload",
    "S3DConfig",
    "TABLE_II",
    "AccessTrace",
    "TraceOp",
    "TraceRecorder",
]
