"""Workload generators for the evaluation.

- :mod:`repro.workloads.synthetic` — the five Section IV test cases
  (write-everything, rotating subdomains, hot subsets, random subsets,
  read-everything) with failure-plan hooks;
- :mod:`repro.workloads.s3d` — the S3D-like combustion workflow at the
  paper's Table II weak-scaling configurations (proportionally reduced);
- :mod:`repro.workloads.trace` — sim access-trace recording and replay;
- :mod:`repro.workloads.capture` — live-side tape capture (JSONL tapes
  with wall-clock issue times, verify flags and payload digests);
- :mod:`repro.workloads.load` — tape replay against any backend plus the
  seeded open-loop load generator and SLO gate.
"""

from repro.workloads.synthetic import (
    SyntheticWorkload,
    SyntheticWorkloadConfig,
    writer_regions,
    reader_regions,
)
from repro.workloads.s3d import S3DWorkload, S3DConfig, TABLE_II
from repro.workloads.trace import AccessTrace, TraceOp, TraceRecorder
from repro.workloads.capture import CaptureRecorder, Tape, TapeOp
from repro.workloads.load import (
    LoadSpec,
    LoadReport,
    OpSpec,
    ReplayReport,
    SLO,
    SimTarget,
    arrival_times,
    build_schedule,
    replay_tape,
    run_load,
)

__all__ = [
    "SyntheticWorkload",
    "SyntheticWorkloadConfig",
    "writer_regions",
    "reader_regions",
    "S3DWorkload",
    "S3DConfig",
    "TABLE_II",
    "AccessTrace",
    "TraceOp",
    "TraceRecorder",
    "CaptureRecorder",
    "Tape",
    "TapeOp",
    "LoadSpec",
    "LoadReport",
    "OpSpec",
    "ReplayReport",
    "SLO",
    "SimTarget",
    "arrival_times",
    "build_schedule",
    "replay_tape",
    "run_load",
]
