"""Access-trace recording and replay.

Captures the (step, op, variable, region, client) tuples a workload issues
so experiments can be replayed bit-identically against a different policy,
or exported for offline analysis of access patterns (e.g. to validate the
classifier against ground truth).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, asdict
from typing import Generator, Iterable

from repro.sim.engine import AllOf
from repro.staging.domain import BBox

__all__ = ["TraceOp", "AccessTrace", "TraceRecorder"]


class TraceRecorder:
    """Instrument a staging service so client ops are recorded as a trace.

    Wraps the service's ``put``/``get`` entry points; the recorded trace
    can be replayed bit-identically against another deployment or policy::

        recorder = TraceRecorder(service)
        ... run a workload ...
        recorder.trace.save("run.trace.json")

    Only client-visible operations are recorded (not the resilience
    traffic), which is exactly what a replay needs.
    """

    def __init__(self, service):
        self.service = service
        self.trace = AccessTrace()
        self._orig_put = service.put
        self._orig_get = service.get
        service.put = self._put
        service.get = self._get

    def _put(self, client_name, name, region, data=None):
        self.trace.record(self.service.step, "put", client_name, name, region)
        return self._orig_put(client_name, name, region, data)

    def _get(self, client_name, name, region, verify=None):
        self.trace.record(self.service.step, "get", client_name, name, region)
        return self._orig_get(client_name, name, region, verify)

    def detach(self) -> "AccessTrace":
        """Restore the service's methods; returns the recorded trace."""
        for attr in ("put", "get"):
            self.service.__dict__.pop(attr, None)  # restore class lookup
        return self.trace


@dataclass(frozen=True)
class TraceOp:
    """One recorded client operation."""

    step: int
    op: str          # "put" | "get"
    client: str
    var: str
    lb: tuple[int, ...]
    ub: tuple[int, ...]

    @property
    def bbox(self) -> BBox:
        return BBox(self.lb, self.ub)


class AccessTrace:
    """An ordered list of operations grouped by timestep."""

    def __init__(self, ops: Iterable[TraceOp] = ()):
        self.ops: list[TraceOp] = list(ops)

    def record(self, step: int, op: str, client: str, var: str, box: BBox) -> None:
        if op not in ("put", "get"):
            raise ValueError(f"unknown op {op!r}")
        self.ops.append(TraceOp(step, op, client, var, tuple(box.lb), tuple(box.ub)))

    def __len__(self) -> int:
        return len(self.ops)

    def steps(self) -> list[int]:
        return sorted({o.step for o in self.ops})

    def ops_for_step(self, step: int) -> list[TraceOp]:
        return [o for o in self.ops if o.step == step]

    # ------------------------------------------------------------------
    def replay(self, service) -> Generator:
        """Process body: replay the trace against a staging service.

        Operations within one step run concurrently; steps are barriers
        (matching how the synthetic workloads drive the service).
        """
        sim = service.sim
        for step in self.steps():
            procs = []
            for o in self.ops_for_step(step):
                if o.op == "put":
                    procs.append(sim.process(service.put(o.client, o.var, o.bbox)))
                else:
                    procs.append(sim.process(service.get(o.client, o.var, o.bbox)))
            if procs:
                yield AllOf(sim, procs)
            yield from service.end_step()
        yield from service.flush()

    # ------------------------------------------------------------------
    def to_json(self) -> str:
        return json.dumps([asdict(o) for o in self.ops])

    @classmethod
    def from_json(cls, text: str) -> "AccessTrace":
        raw = json.loads(text)
        return cls(
            TraceOp(
                step=int(o["step"]),
                op=o["op"],
                client=o["client"],
                var=o["var"],
                lb=tuple(o["lb"]),
                ub=tuple(o["ub"]),
            )
            for o in raw
        )

    def save(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(self.to_json())

    @classmethod
    def load(cls, path: str) -> "AccessTrace":
        with open(path, "r", encoding="utf-8") as fh:
            return cls.from_json(fh.read())
