"""Access-trace recording and replay.

Captures the (step, op, variable, region, client, verify) tuples a
workload issues so experiments can be replayed bit-identically against a
different policy, or exported for offline analysis of access patterns
(e.g. to validate the classifier against ground truth).

Format versioning
-----------------
``to_json`` emits a versioned envelope (``{"format": "repro-access-trace",
"version": 2, "ops": [...]}``).  Version 2 added the per-op ``verify``
flag; version 1 tapes (a bare JSON list of ops, as written before the
flag existed) still load — their ops get ``verify=None``, which replays
as "service default", exactly what a v1 recording meant.

For wall-clock tapes captured from the *live* client side (issue times,
payload digests, JSONL), see :mod:`repro.workloads.capture` — that format
is a superset of this one and converts via :meth:`AccessTrace.record`.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, asdict
from typing import Generator, Iterable

from repro.sim.engine import AllOf
from repro.staging.domain import BBox

__all__ = ["TraceOp", "AccessTrace", "TraceRecorder", "TRACE_FORMAT", "TRACE_VERSION"]

TRACE_FORMAT = "repro-access-trace"
TRACE_VERSION = 2

_MISSING = object()  # sentinel: "attribute was not in the instance dict"


class TraceRecorder:
    """Instrument a staging service so client ops are recorded as a trace.

    Wraps the service's ``put``/``get`` entry points; the recorded trace
    can be replayed bit-identically against another deployment or policy::

        recorder = TraceRecorder(service)
        ... run a workload ...
        recorder.trace.save("run.trace.json")

    Only client-visible operations are recorded (not the resilience
    traffic), which is exactly what a replay needs.

    Recorders nest: attaching a second recorder wraps the first one's
    wrappers, and detaching restores *exactly* what attach saw — including
    a pre-existing instance-level wrapper (a nested recorder, an
    instrumented service) — not just the class lookup.  Detach in reverse
    attach order (LIFO); attaching twice without a detach raises.
    """

    def __init__(self, service, attach: bool = True):
        self.service = service
        self.trace = AccessTrace()
        self._saved: dict[str, object] | None = None
        self._orig_put = None
        self._orig_get = None
        if attach:
            self.attach()

    @property
    def attached(self) -> bool:
        return self._saved is not None

    def attach(self) -> "TraceRecorder":
        """Install the recording wrappers (idempotence is an error)."""
        if self.attached:
            raise RuntimeError("TraceRecorder is already attached")
        service = self.service
        # Save the exact instance-dict state so detach can restore a
        # pre-existing wrapper instead of silently discarding it.
        self._saved = {
            attr: service.__dict__.get(attr, _MISSING) for attr in ("put", "get")
        }
        self._orig_put = service.put  # bound method OR a prior wrapper
        self._orig_get = service.get
        service.put = self._put
        service.get = self._get
        return self

    def _put(self, client_name, name, region, data=None):
        self.trace.record(self.service.step, "put", client_name, name, region)
        return self._orig_put(client_name, name, region, data)

    def _get(self, client_name, name, region, verify=None):
        self.trace.record(
            self.service.step, "get", client_name, name, region, verify=verify
        )
        return self._orig_get(client_name, name, region, verify)

    def detach(self) -> "AccessTrace":
        """Restore whatever ``attach`` displaced; returns the recorded trace.

        A plain service gets its class lookup back; a service that already
        carried an instance-level wrapper (nested recorder, instrumented
        entry point) gets *that wrapper* back.
        """
        if not self.attached:
            raise RuntimeError("TraceRecorder is not attached")
        for attr, saved in self._saved.items():
            if saved is _MISSING:
                self.service.__dict__.pop(attr, None)  # restore class lookup
            else:
                setattr(self.service, attr, saved)
        self._saved = None
        self._orig_put = None
        self._orig_get = None
        return self.trace


@dataclass(frozen=True)
class TraceOp:
    """One recorded client operation."""

    step: int
    op: str          # "put" | "get"
    client: str
    var: str
    lb: tuple[int, ...]
    ub: tuple[int, ...]
    # Read-verification flag as issued (None = service default).  Puts
    # always carry None.  Recorded since format version 2; replay passes
    # it through so a verified-read workload replays faithfully.
    verify: bool | None = None

    @property
    def bbox(self) -> BBox:
        return BBox(self.lb, self.ub)


class AccessTrace:
    """An ordered list of operations grouped by timestep."""

    def __init__(self, ops: Iterable[TraceOp] = ()):
        self.ops: list[TraceOp] = list(ops)

    def record(
        self,
        step: int,
        op: str,
        client: str,
        var: str,
        box: BBox,
        verify: bool | None = None,
    ) -> None:
        if op not in ("put", "get"):
            raise ValueError(f"unknown op {op!r}")
        self.ops.append(
            TraceOp(step, op, client, var, tuple(box.lb), tuple(box.ub), verify)
        )

    def __len__(self) -> int:
        return len(self.ops)

    def steps(self) -> list[int]:
        return sorted({o.step for o in self.ops})

    def ops_for_step(self, step: int) -> list[TraceOp]:
        return [o for o in self.ops if o.step == step]

    def ops_by_step(self) -> dict[int, list[TraceOp]]:
        """``{step: ops in recorded order}``, steps ascending — one pass."""
        grouped: dict[int, list[TraceOp]] = {}
        for o in self.ops:
            grouped.setdefault(o.step, []).append(o)
        return {step: grouped[step] for step in sorted(grouped)}

    # ------------------------------------------------------------------
    def replay(self, service) -> Generator:
        """Process body: replay the trace against a staging service.

        Operations within one step run concurrently; steps are barriers
        (matching how the synthetic workloads drive the service).  Ops are
        issued in recorded order within each step and carry their recorded
        ``verify`` flag.  Grouping is a single pass over the tape (the old
        per-step ``ops_for_step`` rescan made replay O(n * steps)).
        """
        sim = service.sim
        for ops in self.ops_by_step().values():
            procs = []
            for o in ops:
                if o.op == "put":
                    procs.append(sim.process(service.put(o.client, o.var, o.bbox)))
                else:
                    procs.append(
                        sim.process(service.get(o.client, o.var, o.bbox, o.verify))
                    )
            if procs:
                yield AllOf(sim, procs)
            yield from service.end_step()
        yield from service.flush()

    # ------------------------------------------------------------------
    def to_json(self) -> str:
        return json.dumps(
            {
                "format": TRACE_FORMAT,
                "version": TRACE_VERSION,
                "ops": [asdict(o) for o in self.ops],
            }
        )

    @classmethod
    def from_json(cls, text: str) -> "AccessTrace":
        raw = json.loads(text)
        if isinstance(raw, list):
            ops = raw  # version 1: bare op list, no verify flags
        elif isinstance(raw, dict):
            if raw.get("format") != TRACE_FORMAT:
                raise ValueError(f"not an access trace: format={raw.get('format')!r}")
            version = raw.get("version")
            if not isinstance(version, int) or version < 1 or version > TRACE_VERSION:
                raise ValueError(
                    f"unsupported access-trace version {version!r} "
                    f"(this build reads 1..{TRACE_VERSION})"
                )
            ops = raw["ops"]
        else:
            raise ValueError("access trace must be a JSON list or envelope object")
        return cls(
            TraceOp(
                step=int(o["step"]),
                op=o["op"],
                client=o["client"],
                var=o["var"],
                lb=tuple(o["lb"]),
                ub=tuple(o["ub"]),
                verify=o.get("verify"),
            )
            for o in ops
        )

    def save(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(self.to_json())

    @classmethod
    def load(cls, path: str) -> "AccessTrace":
        with open(path, "r", encoding="utf-8") as fh:
            return cls.from_json(fh.read())
