"""S3D-like combustion workflow at the paper's Table II scales.

The paper couples the S3D lifted-hydrogen simulation with an analysis
application through DataSpaces on Titan at 4480 / 8960 / 17920 cores.  What
the staging evaluation depends on is the *I/O pattern*, not the chemistry:

- every simulation core owns a 64x64x64 spatial subdomain and writes it
  each time step;
- analysis cores read the full domain at a (lower) analysis frequency;
- core counts keep fixed ratios (16 simulation : 1 staging : 0.5 analysis);
- weak scaling: the domain grows with the core count.

``TABLE_II`` records the paper's exact configurations; :class:`S3DConfig`
derives a proportionally reduced configuration (divide each writer-grid
dimension by ``shrink``) that preserves every ratio, which — per the
Section II-D model — is what determines the relative behaviour of the
resilience schemes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Generator

import numpy as np

from repro.sim.engine import AllOf
from repro.staging.domain import BBox
from repro.util.stats import TimeSeries

__all__ = ["TABLE_II", "S3DConfig", "S3DWorkload"]

# The paper's Table II, verbatim.
TABLE_II = (
    {
        "total_cores": 4480,
        "sim_grid": (16, 16, 16),
        "sim_cores": 4096,
        "staging_cores": 256,
        "analysis_cores": 128,
        "volume": (1024, 1024, 1024),
        "data_gb": 160,
    },
    {
        "total_cores": 8960,
        "sim_grid": (32, 16, 16),
        "sim_cores": 8448,
        "staging_cores": 512,
        "analysis_cores": 256,
        "volume": (2048, 1024, 1024),
        "data_gb": 320,
    },
    {
        "total_cores": 17920,
        "sim_grid": (32, 32, 16),
        "sim_cores": 16896,
        "staging_cores": 1024,
        "analysis_cores": 512,
        "volume": (2048, 2048, 1024),
        "data_gb": 640,
    },
)


@dataclass
class S3DConfig:
    """A Table II scale reduced by ``shrink`` in each grid dimension.

    With the default ``shrink=4``: 64/128/256 writers, 4/8/16 staging
    servers, 2/4/8 analysis readers and a 256^3 (then 512*256^2, 512^2*256)
    domain — exactly the paper's ratios.
    """

    scale_index: int = 0
    shrink: int = 4
    per_core_subdomain: int = 64   # S3D assigns 64^3 per core
    element_bytes: int = 1
    timesteps: int = 20
    analysis_every: int = 2        # analyses run at lower temporal frequency
    var: str = "species"
    # S3D stages several field variables per step (temperature, pressure,
    # the species mass fractions, ...). Variables share the domain and the
    # per-step cadence; analyses read all of them.
    n_variables: int = 1
    failure_plan: dict[int, list[tuple[str, int]]] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not 0 <= self.scale_index < len(TABLE_II):
            raise ValueError("scale_index must select a Table II column")
        if self.n_variables < 1:
            raise ValueError("n_variables must be >= 1")
        if self.shrink < 1:
            raise ValueError("shrink must be >= 1")
        base = TABLE_II[self.scale_index]
        if any(g % self.shrink for g in base["sim_grid"]):
            raise ValueError(f"shrink {self.shrink} does not divide grid {base['sim_grid']}")

    # ------------------------------------------------------------------
    @property
    def table_entry(self) -> dict:
        return TABLE_II[self.scale_index]

    @property
    def writer_grid(self) -> tuple[int, ...]:
        return tuple(g // self.shrink for g in self.table_entry["sim_grid"])

    @property
    def n_writers(self) -> int:
        n = 1
        for g in self.writer_grid:
            n *= g
        return n

    @property
    def n_staging(self) -> int:
        # Keep the paper's 16:1 simulation:staging core ratio.
        return max(4, self.n_writers // 16)

    @property
    def n_analysis(self) -> int:
        return max(1, self.n_writers // 32)

    @property
    def domain_shape(self) -> tuple[int, ...]:
        return tuple(g * self.per_core_subdomain for g in self.writer_grid)

    @property
    def per_step_bytes(self) -> int:
        v = 1
        for s in self.domain_shape:
            v *= s
        return v * self.element_bytes * self.n_variables

    def variables(self) -> list[str]:
        if self.n_variables == 1:
            return [self.var]
        return [f"{self.var}{i}" for i in range(self.n_variables)]


class S3DWorkload:
    """The coupled simulation + analysis workflow as a simulator process."""

    def __init__(self, service, config: S3DConfig):
        self.service = service
        self.config = config
        shape = service.domain.shape
        if tuple(shape) != tuple(config.domain_shape):
            raise ValueError(
                f"service domain {shape} does not match S3D config {config.domain_shape}"
            )
        self.writer_boxes = self._writer_boxes()
        self.analysis_boxes = self._analysis_boxes()
        self.step_put = TimeSeries("s3d_step_put")
        self.step_get = TimeSeries("s3d_step_get")
        self.cumulative_write_s = 0.0
        self.cumulative_read_s = 0.0

    def _writer_boxes(self) -> list[BBox]:
        import itertools

        c = self.config.per_core_subdomain
        grid = self.config.writer_grid
        boxes = []
        for idx in itertools.product(*(range(g) for g in grid)):
            lb = tuple(i * c for i in idx)
            ub = tuple((i + 1) * c for i in idx)
            boxes.append(BBox(lb, ub))
        return boxes

    def _analysis_boxes(self) -> list[BBox]:
        from repro.workloads.synthetic import reader_regions

        return reader_regions(self.service.domain, self.config.n_analysis)

    # ------------------------------------------------------------------
    def run(self) -> Generator:
        cfg = self.config
        sim = self.service.sim
        for step in range(cfg.timesteps):
            for action, sid in cfg.failure_plan.get(step, []):
                if action == "fail":
                    self.service.fail_server(sid)
                else:
                    self.service.replace_server(sid)
            # Analysis reads the *previous* step's staged data first — the
            # coupled pipeline overlaps analysis with the next simulation
            # phase, so a failure at a step boundary hits the read path.
            if step > 0 and step % cfg.analysis_every == 0:
                before_n = self.service.metrics.get_stat.n
                before_total = self.service.metrics.get_stat.total
                procs = [
                    sim.process(self.service.get(f"an{i}", var, box), name=f"an{i}-{var}")
                    for i, box in enumerate(self.analysis_boxes)
                    for var in cfg.variables()
                ]
                yield AllOf(sim, procs)
                n_new = self.service.metrics.get_stat.n - before_n
                if n_new:
                    step_mean = (self.service.metrics.get_stat.total - before_total) / n_new
                    self.step_get.add(step, step_mean)
                    # Cumulative *response* time: the per-step mean summed
                    # over steps (client-observed; concurrent clients are
                    # not double-counted).
                    self.cumulative_read_s += step_mean
            # Simulation writes its per-core subdomains.
            before_n = self.service.metrics.put_stat.n
            before_total = self.service.metrics.put_stat.total
            procs = [
                sim.process(self.service.put(f"sim{i}", var, box), name=f"sim{i}-{var}")
                for i, box in enumerate(self.writer_boxes)
                for var in cfg.variables()
            ]
            yield AllOf(sim, procs)
            n_new = self.service.metrics.put_stat.n - before_n
            if n_new:
                step_mean = (self.service.metrics.put_stat.total - before_total) / n_new
                self.step_put.add(step, step_mean)
                self.cumulative_write_s += step_mean
            yield from self.service.end_step()
        yield from self.service.flush()
