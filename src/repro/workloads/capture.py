"""Live-side workload capture: record client traffic onto a JSONL tape.

:class:`CaptureRecorder` taps a live client — a single-server
:class:`~repro.live.protocol.LiveClient` or a sharded
:class:`~repro.live.router.ClusterClient`; anything with that surface —
and records every ``put``/``get``/``step``/``flush``/``quiesce`` the
application issues: region geometry, the read-verification flag *as
issued*, payload byte digests, and wall-clock issue times.  The result is
a :class:`Tape` that :mod:`repro.workloads.load` can replay against any
backend (sim service, single-process live, sharded cluster) with
byte-digest equivalence checks, time compression and flow amplification.

Tape format (version 1)
-----------------------
JSONL.  The first line is a meta record::

    {"format": "repro-live-tape", "version": 1,
     "config": {...simple StagingConfig fields...},
     "policy": ["corec", {...}],
     "flows": ["w", ...],
     "projection_sha256": "..."}        # optional, set by finalize()

``config`` carries only the scalar/tuple :class:`StagingConfig` fields —
enough to rebuild an equivalent deployment with default network/cost
models (replay compares *state*, not timing, so modelled costs are
irrelevant).  Every following line is one operation::

    {"seq": 0, "t": 0.00012, "op": "put", "flow": "w", "var": "var0",
     "lb": [0,0,0], "ub": [16,16,16], "verify": null, "nbytes": 0,
     "digests": {"4": "ab12..."}, "payload_b64": "...", "dtype": "uint8"}

- ``t`` is seconds since capture start (monotonic clock) — the replay
  pacing signal.
- ``digests`` on a ``get`` maps block-id → blake2b digest of the bytes
  the recorded run actually read; on a ``put`` with inline data it holds
  the written payload's digest under ``"data"``.
- ``payload_b64`` appears only on puts that carried explicit data small
  enough to inline (``inline_limit``); data-less puts replay as data-less
  puts (the staging service synthesizes payloads deterministically, which
  is what makes cross-backend digest equality possible).  Oversized
  payloads record ``"payload": "elided"`` and replay data-less — flagged,
  because that replay is *not* byte-faithful.

Like :class:`~repro.workloads.trace.TraceRecorder`, capture recorders
save and restore the exact instance attributes they displace, so they
nest and never discard a pre-existing wrapper.
"""

from __future__ import annotations

import base64
import hashlib
import json
import os
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Iterable

import numpy as np

from repro.staging.objects import payload_digest

__all__ = [
    "TapeOp",
    "Tape",
    "CaptureRecorder",
    "TAPE_FORMAT",
    "TAPE_VERSION",
    "SIMPLE_CONFIG_FIELDS",
    "config_meta",
    "config_from_meta",
    "projection_sha256",
    "block_digests",
]

TAPE_FORMAT = "repro-live-tape"
TAPE_VERSION = 1

# StagingConfig fields a tape records: scalars and tuples only.  The
# nested network/cost models shape simulated timing, never state, so a
# replayed deployment uses defaults for them.
SIMPLE_CONFIG_FIELDS = (
    "n_servers",
    "servers_per_node",
    "nodes_per_cabinet",
    "domain_shape",
    "element_bytes",
    "object_max_bytes",
    "n_level",
    "k",
    "rs_construction",
    "index_scheme",
    "topology_aware",
    "verify_reads",
    "async_protection",
    "tracing",
    "seed",
)

_MISSING = object()
_TAPPED = ("put", "get", "step", "flush", "quiesce")


def config_meta(config) -> dict[str, Any]:
    """The simple-field projection of a :class:`StagingConfig` for a tape."""
    return {name: getattr(config, name) for name in SIMPLE_CONFIG_FIELDS}


def config_from_meta(meta: dict[str, Any]):
    """Rebuild a :class:`StagingConfig` from a tape's ``config`` record."""
    from repro.staging.service import StagingConfig

    kwargs = dict(meta)
    for key in ("domain_shape",):
        if key in kwargs:
            kwargs[key] = tuple(kwargs[key])
    return StagingConfig(**kwargs)


def projection_sha256(projection: dict) -> str:
    """Stable digest of a timing-free conformance projection."""
    from repro.live.conformance import normalize_projection

    canon = json.dumps(normalize_projection(projection), sort_keys=True)
    return hashlib.sha256(canon.encode("utf-8")).hexdigest()


def block_digests(payloads: dict[int, Any]) -> dict[str, str]:
    """Per-block payload digests, accepting ndarrays or raw buffers."""
    out: dict[str, str] = {}
    for bid in sorted(payloads):
        data = payloads[bid]
        if not isinstance(data, np.ndarray):
            data = np.frombuffer(data, dtype=np.uint8)
        out[str(bid)] = payload_digest(data)
    return out


@dataclass(frozen=True)
class TapeOp:
    """One captured client operation."""

    seq: int
    t: float  # seconds since capture start
    op: str  # "put" | "get" | "step" | "flush" | "quiesce"
    flow: str = "client"
    var: str | None = None
    lb: tuple[int, ...] | None = None
    ub: tuple[int, ...] | None = None
    verify: bool | None = None
    nbytes: int = 0
    digests: dict[str, str] = field(default_factory=dict)
    payload_b64: str | None = None
    payload: str | None = None  # "elided" when data was too large to inline
    dtype: str | None = None

    def to_json(self) -> dict[str, Any]:
        row: dict[str, Any] = {"seq": self.seq, "t": self.t, "op": self.op,
                               "flow": self.flow}
        if self.var is not None:
            row["var"] = self.var
            row["lb"] = list(self.lb)
            row["ub"] = list(self.ub)
        if self.op == "get":
            row["verify"] = self.verify
        if self.nbytes:
            row["nbytes"] = self.nbytes
        if self.digests:
            row["digests"] = self.digests
        if self.payload_b64 is not None:
            row["payload_b64"] = self.payload_b64
            row["dtype"] = self.dtype
        if self.payload is not None:
            row["payload"] = self.payload
        return row

    @classmethod
    def from_json(cls, row: dict[str, Any]) -> "TapeOp":
        return cls(
            seq=int(row["seq"]),
            t=float(row["t"]),
            op=row["op"],
            flow=row.get("flow", "client"),
            var=row.get("var"),
            lb=None if row.get("lb") is None else tuple(row["lb"]),
            ub=None if row.get("ub") is None else tuple(row["ub"]),
            verify=row.get("verify"),
            nbytes=int(row.get("nbytes", 0)),
            digests=row.get("digests", {}),
            payload_b64=row.get("payload_b64"),
            payload=row.get("payload"),
            dtype=row.get("dtype"),
        )

    def decode_payload(self) -> np.ndarray | None:
        """The inlined put payload as a uint8 array, or ``None``."""
        if self.payload_b64 is None:
            return None
        return np.frombuffer(base64.b64decode(self.payload_b64), dtype=np.uint8)


class Tape:
    """A captured workload: meta record + ordered operation list.

    Thread-safe recording (multiple flow clients can share one tape); the
    op order on disk is the global issue order across all flows.
    """

    def __init__(self, meta: dict[str, Any] | None = None,
                 ops: Iterable[TapeOp] = ()):
        self.meta: dict[str, Any] = {
            "format": TAPE_FORMAT,
            "version": TAPE_VERSION,
        }
        if meta:
            self.meta.update(meta)
        self.ops: list[TapeOp] = list(ops)
        self._lock = threading.Lock()

    def __len__(self) -> int:
        return len(self.ops)

    def record(self, t: float, op: str, flow: str, **fields: Any) -> TapeOp:
        with self._lock:
            row = TapeOp(seq=len(self.ops), t=t, op=op, flow=flow, **fields)
            self.ops.append(row)
            flows = self.meta.setdefault("flows", [])
            if flow not in flows:
                flows.append(flow)
            return row

    def flows(self) -> list[str]:
        return list(self.meta.get("flows", []))

    def data_ops(self) -> list[TapeOp]:
        return [o for o in self.ops if o.op in ("put", "get")]

    def recorded_get_digests(self) -> list[str]:
        """All read digests in op/block order (the equivalence reference)."""
        out: list[str] = []
        for o in self.ops:
            if o.op == "get":
                out.extend(o.digests[k] for k in sorted(o.digests, key=int))
        return out

    # ------------------------------------------------------------------
    def to_access_trace(self):
        """Project the tape onto the sim :class:`AccessTrace` format.

        Steps are derived from the ``step`` markers (the sim trace has no
        wall clock); flush/quiesce markers and payload bytes drop out —
        the sim format carries geometry and ``verify`` only.
        """
        from repro.staging.domain import BBox
        from repro.workloads.trace import AccessTrace

        trace = AccessTrace()
        step = 0
        for o in self.ops:
            if o.op == "step":
                step += 1
            elif o.op in ("put", "get"):
                trace.record(step, o.op, o.flow, o.var, BBox(o.lb, o.ub),
                             verify=o.verify if o.op == "get" else None)
        return trace

    # ------------------------------------------------------------------
    def dumps(self) -> str:
        # Leading-underscore meta keys are capture-session scratch
        # (e.g. the monotonic t=0 pin), never part of the format.
        meta = {k: v for k, v in self.meta.items() if not k.startswith("_")}
        lines = [json.dumps(meta, sort_keys=True)]
        lines.extend(json.dumps(o.to_json(), sort_keys=True) for o in self.ops)
        return "\n".join(lines) + "\n"

    @classmethod
    def loads(cls, text: str) -> "Tape":
        lines = [ln for ln in text.splitlines() if ln.strip()]
        if not lines:
            raise ValueError("empty tape")
        meta = json.loads(lines[0])
        if not isinstance(meta, dict) or meta.get("format") != TAPE_FORMAT:
            raise ValueError(f"not a live tape: format={meta.get('format')!r}"
                             if isinstance(meta, dict) else "not a live tape")
        version = meta.get("version")
        if not isinstance(version, int) or version < 1 or version > TAPE_VERSION:
            raise ValueError(
                f"unsupported tape version {version!r} "
                f"(this build reads 1..{TAPE_VERSION})"
            )
        ops = [TapeOp.from_json(json.loads(ln)) for ln in lines[1:]]
        return cls(meta=meta, ops=ops)

    def save(self, path: str) -> None:
        parent = os.path.dirname(path)
        if parent:
            os.makedirs(parent, exist_ok=True)
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(self.dumps())

    @classmethod
    def load(cls, path: str) -> "Tape":
        with open(path, "r", encoding="utf-8") as fh:
            return cls.loads(fh.read())


class CaptureRecorder:
    """Tap a live client's data/control plane onto a :class:`Tape`.

    ``client`` needs the blocking client surface (``put``, ``get``,
    ``step``, ``flush``, ``quiesce``); both :class:`LiveClient` and
    :class:`ClusterClient` qualify.  Several recorders may share one
    ``tape`` (one per flow client) — pass the same instance and a
    distinct ``flow`` name; issue order is serialized by the tape lock.

    Wall-clock zero is the first recorder's attach on a shared tape.
    """

    def __init__(
        self,
        client,
        tape: Tape | None = None,
        flow: str | None = None,
        inline_limit: int = 1 << 20,
        attach: bool = True,
    ):
        self.client = client
        self.tape = tape if tape is not None else Tape()
        self.flow = flow or getattr(client, "name", "client")
        self.inline_limit = inline_limit
        self._saved: dict[str, object] | None = None
        self._orig: dict[str, Any] = {}
        if attach:
            self.attach()

    @property
    def attached(self) -> bool:
        return self._saved is not None

    def _now(self) -> float:
        # Shared-tape recorders agree on t=0 (stored on the tape itself).
        t0 = self.tape.meta.get("_t0")
        if t0 is None:
            t0 = time.monotonic()
            self.tape.meta["_t0"] = t0
        return time.monotonic() - t0

    def attach(self) -> "CaptureRecorder":
        if self.attached:
            raise RuntimeError("CaptureRecorder is already attached")
        cli = self.client
        self._saved = {a: cli.__dict__.get(a, _MISSING) for a in _TAPPED}
        self._orig = {a: getattr(cli, a) for a in _TAPPED}
        self._now()  # pin t=0 at attach
        cli.put = self._put
        cli.get = self._get
        cli.step = self._step
        cli.flush = self._flush
        cli.quiesce = self._quiesce
        return self

    def detach(self) -> Tape:
        """Restore exactly what attach displaced; returns the tape."""
        if not self.attached:
            raise RuntimeError("CaptureRecorder is not attached")
        for attr, saved in self._saved.items():
            if saved is _MISSING:
                self.client.__dict__.pop(attr, None)
            else:
                setattr(self.client, attr, saved)
        self._saved = None
        self._orig = {}
        return self.tape

    # -- wrappers ------------------------------------------------------
    def _put(self, var, lb, ub, data=None):
        t = self._now()
        result = self._orig["put"](var, lb, ub, data)
        fields: dict[str, Any] = {
            "var": var, "lb": tuple(lb), "ub": tuple(ub),
        }
        if data is not None:
            arr = np.ascontiguousarray(data)
            raw = arr.view(np.uint8).ravel()
            fields["nbytes"] = int(raw.nbytes)
            fields["digests"] = {"data": payload_digest(raw)}
            if raw.nbytes <= self.inline_limit:
                fields["payload_b64"] = base64.b64encode(raw.tobytes()).decode()
                fields["dtype"] = "uint8"
            else:
                fields["payload"] = "elided"
        self.tape.record(t, "put", self.flow, **fields)
        return result

    def _get(self, var, lb, ub, verify=None):
        t = self._now()
        duration, payloads = self._orig["get"](var, lb, ub, verify)
        self.tape.record(
            t, "get", self.flow,
            var=var, lb=tuple(lb), ub=tuple(ub), verify=verify,
            digests=block_digests(payloads),
        )
        return duration, payloads

    def _step(self):
        t = self._now()
        result = self._orig["step"]()
        self.tape.record(t, "step", self.flow)
        return result

    def _flush(self):
        t = self._now()
        result = self._orig["flush"]()
        self.tape.record(t, "flush", self.flow)
        return result

    def _quiesce(self):
        t = self._now()
        result = self._orig["quiesce"]()
        self.tape.record(t, "quiesce", self.flow)
        return result

    # -- finalization --------------------------------------------------
    def finalize(self, config=None, policy_spec=None,
                 projection: dict | None = None) -> Tape:
        """Stamp deployment meta (and the quiescent-state digest) and detach.

        ``projection`` should come from ``client.projection()`` after a
        quiesce; its digest lets a replay assert *state* equivalence, not
        just read-digest equivalence.
        """
        if config is not None:
            self.tape.meta["config"] = config_meta(config)
        if policy_spec is not None:
            name, opts = policy_spec
            self.tape.meta["policy"] = [name, dict(opts)]
        if projection is not None:
            self.tape.meta["projection_sha256"] = projection_sha256(projection)
        self.tape.meta.pop("_t0", None)  # capture-session scratch, not format
        if self.attached:
            self.detach()
        return self.tape
