#!/usr/bin/env python
"""Quickstart: stage data resiliently with CoREC and survive a failure.

Builds an 8-server staging deployment, writes a 3-D field for a few
timesteps under the CoREC policy, kills a staging server, and reads the
whole domain back — byte-exact — while the failure is still outstanding.

Run:  python examples/quickstart.py
"""

from repro import BBox, CoRECConfig, CoRECPolicy, StagingConfig, StagingService
from repro.util.units import fmt_bytes, fmt_time


def main() -> None:
    # 1. A staging deployment: 8 servers, RS(3+1) + 1 replica, CoREC with
    # the paper's 67% storage-efficiency bound.
    config = StagingConfig(
        n_servers=8,
        domain_shape=(64, 64, 64),
        element_bytes=1,
        object_max_bytes=4096,
        seed=42,
    )
    service = StagingService(config, CoRECPolicy(CoRECConfig(storage_bound=0.67)))
    print(f"staging {fmt_bytes(service.domain.total_bytes())} over "
          f"{config.n_servers} servers, {service.domain.n_blocks} objects")

    # 2. A simple workflow: write the full domain for 5 timesteps, then
    # fail a server and read everything back.
    def workflow():
        domain = service.domain.bbox
        for step in range(5):
            duration = yield from service.put("writer0", "temperature", domain)
            print(f"  step {step}: wrote domain in {fmt_time(duration)}")
            yield from service.end_step()
        yield from service.flush()

        print("\nkilling staging server 2 ...")
        service.fail_server(2)

        duration, payloads = yield from service.get("reader0", "temperature", domain)
        print(f"read the full domain ({len(payloads)} objects) in "
              f"{fmt_time(duration)} despite the failure")

        # Bring a replacement in; lazy recovery repairs in the background.
        service.replace_server(2)
        duration, _ = yield from service.get("reader0", "temperature", domain)
        print(f"read again after replacement in {fmt_time(duration)}")

    service.run_workflow(workflow())
    service.run()  # drain background repair

    # 3. What did resilience cost?
    m = service.metrics
    print(f"\nwrite response (mean): {fmt_time(m.put_stat.mean)}")
    print(f"storage efficiency:    {m.storage.efficiency():.2f} "
          f"(bound {service.policy.config.storage_bound})")
    print(f"objects recovered:     {m.counters.get('recovered_objects', 0)}")
    print(f"degraded reads:        {m.counters.get('degraded_reads', 0)}")
    print(f"read errors:           {service.read_errors} (byte-exact verification)")
    assert service.read_errors == 0


if __name__ == "__main__":
    main()
