#!/usr/bin/env python
"""The paper's motivating workload: an S3D-like combustion workflow.

Reproduces the coupled simulation + analysis pipeline of Section IV-2 at a
reduced Table II scale: simulation ranks stage their per-core subdomains
every timestep, analysis ranks read the full domain at a lower frequency,
and CoREC provides the resilience. A failure is injected mid-run and the
workflow continues through degraded reads and lazy recovery.

Run:  python examples/s3d_workflow.py [scale_index 0|1|2]
"""

import sys

from repro import CoRECConfig, CoRECPolicy, StagingConfig, StagingService
from repro.util.units import fmt_bytes, fmt_time
from repro.workloads.s3d import S3DConfig, S3DWorkload, TABLE_II


def main(scale_index: int = 0) -> None:
    paper = TABLE_II[scale_index]
    cfg = S3DConfig(
        scale_index=scale_index,
        shrink=8,                 # /8 per grid dimension, ratios preserved
        per_core_subdomain=16,
        timesteps=20,
        analysis_every=2,
        failure_plan={6: [("fail", 0)], 10: [("replace", 0)]},
    )
    print(f"paper scale: {paper['total_cores']} cores, volume {paper['volume']}")
    print(f"reproduction: {cfg.n_writers} writers, {cfg.n_staging} staging, "
          f"{cfg.n_analysis} analysis ranks, domain {cfg.domain_shape} "
          f"({fmt_bytes(cfg.per_step_bytes)}/step)")

    service = StagingService(
        StagingConfig(
            n_servers=max(4, cfg.n_staging),
            domain_shape=cfg.domain_shape,
            element_bytes=1,
            object_max_bytes=2048,
            nodes_per_cabinet=1,
            seed=7,
        ),
        CoRECPolicy(CoRECConfig(storage_bound=0.67)),
    )
    workload = S3DWorkload(service, cfg)
    service.run_workflow(workload.run())
    service.run()

    print(f"\ncumulative write response: {fmt_time(workload.cumulative_write_s)}")
    print(f"cumulative read response:  {fmt_time(workload.cumulative_read_s)}")
    print(f"storage efficiency:        {service.metrics.storage.efficiency():.2f}")
    print(f"objects recovered:         {service.metrics.counters.get('recovered_objects', 0)}")
    print(f"read errors:               {service.read_errors}")
    print("\nper-step write response (ms):")
    for step, value in zip(workload.step_put.times, workload.step_put.values):
        marker = "  <- failure" if step == 6 else ("  <- replacement" if step == 10 else "")
        print(f"  TS {int(step):2d}: {value * 1e3:7.3f}{marker}")
    assert service.read_errors == 0


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 0)
