#!/usr/bin/env python
"""Durability analysis: is the MTBF/4 lazy-recovery deadline safe?

Section III-D argues that "too long of a time-limit constraint results in
an unacceptably high risk of permanently losing the data" and sets the
recovery deadline to a quarter of the *overall system* MTBF. This example
quantifies the trade-off with the Markov durability model for a
Titan-scale staging fleet: the deadline bounds the repair time of
untouched objects, while repair-on-access fixes actively-used data within
minutes.

Run:  python examples/durability_analysis.py
"""

from repro.core.durability import (
    DurabilityParams,
    annual_loss_probability,
    group_mttdl,
)
from repro.util.units import fmt_time

SERVER_MTBF_S = 400 * 3600           # ~17 days per staging server
N_SERVERS = 256                      # a Titan-scale staging fleet
SYSTEM_MTBF_S = SERVER_MTBF_S / N_SERVERS  # a failure somewhere every ~5.6 h
ACCESS_REPAIR_S = 10 * 60            # repair-on-access fixes hot data fast


def report(label: str, mttr_s: float, group_size: int, tolerance: int) -> None:
    p = DurabilityParams(
        mtbf_s=SERVER_MTBF_S, mttr_s=mttr_s, group_size=group_size, tolerance=tolerance
    )
    groups = N_SERVERS // group_size
    print(
        f"  {label:34s} MTTR {fmt_time(mttr_s):>10}: "
        f"group MTTDL {fmt_time(group_mttdl(p)):>14}, "
        f"fleet annual loss prob {annual_loss_probability(p, groups):.2e}"
    )


def main() -> None:
    print(f"per-server MTBF {fmt_time(SERVER_MTBF_S)}; fleet of {N_SERVERS} servers")
    print(f"system MTBF (a failure somewhere): {fmt_time(SYSTEM_MTBF_S)}")
    deadline = SYSTEM_MTBF_S / 4
    print(f"paper's lazy deadline = system MTBF / 4 = {fmt_time(deadline)}\n")

    print("RS(3+1) coding groups (tolerance 1):")
    report("aggressive (repair immediately)", ACCESS_REPAIR_S, 4, 1)
    report("lazy, repair-on-access typical", ACCESS_REPAIR_S + deadline / 10, 4, 1)
    report("lazy, deadline-bound worst case", ACCESS_REPAIR_S + deadline, 4, 1)
    report("no deadline (MTBF-long exposure)", SERVER_MTBF_S, 4, 1)

    print("\nreplication pairs (tolerance 1):")
    report("lazy, deadline-bound worst case", ACCESS_REPAIR_S + deadline, 2, 1)

    print("\nRS(6+2) coding groups (tolerance 2):")
    report("lazy, deadline-bound worst case", ACCESS_REPAIR_S + deadline, 8, 2)

    print("\nreading the table:")
    print(" - the deadline-bound lazy regime stays orders of magnitude from the")
    print("   no-deadline exposure, which is the paper's 'unacceptably high risk';")
    print(" - doubling the tolerance (RS(6+2)) buys far more durability than")
    print("   faster repair — the motivation for tuning N_level, not MTTR.")


if __name__ == "__main__":
    main()
