#!/usr/bin/env python
"""Future-work extension: multi-tier staging (DRAM + NVRAM + SSD).

The paper's conclusion proposes extending CoREC "to support multiple
storage layers, for example, using NVRAM and SSD" with utility-based data
placement. This example runs CoREC over a tiered staging fleet with a
tight DRAM budget and shows where live data, replicas and parity end up —
redundancy (written on every update, read only during recovery) sinks to
the capacity tiers, freeing DRAM for the live working set.

Run:  python examples/tiered_staging.py
"""

from repro import CoRECConfig, CoRECPolicy, StagingConfig, StagingService
from repro.staging.tiers import default_tiers
from repro.util.units import fmt_bytes


def run(dram_budget: int):
    service = StagingService(
        StagingConfig(
            n_servers=8,
            domain_shape=(64, 64, 64),
            element_bytes=1,
            object_max_bytes=4096,
            tiers=tuple(default_tiers(dram_bytes=dram_budget, nvram_bytes=4 * dram_budget)),
            seed=11,
        ),
        CoRECPolicy(CoRECConfig(storage_bound=0.67)),
    )

    def workflow():
        for _ in range(6):
            yield from service.put("w0", "field", service.domain.bbox)
            yield from service.end_step()
        yield from service.flush()
        service.fail_server(3)
        yield from service.get("r0", "field", service.domain.bbox)

    service.run_workflow(workflow())
    service.run()
    assert service.read_errors == 0
    return service


def main() -> None:
    for dram in (256 * 1024, 16 * 1024):
        service = run(dram)
        print(f"\nDRAM budget per server: {fmt_bytes(dram)}")
        total = {"dram": 0, "nvram": 0, "ssd": 0}
        kinds: dict[tuple[str, str], int] = {}
        migrations = 0
        for srv in service.servers:
            stats = srv.tiered.stats()
            for name, occ in stats["occupancy"].items():
                total[name] += occ
            migrations += stats["migrations_down"] + stats["migrations_up"]
            for key in srv.tiered.keys():
                kind = {"P": "primary", "R": "replica"}.get(key[0], "parity")
                tier = srv.tiered.tier_of(key)
                kinds[(kind, tier)] = kinds.get((kind, tier), 0) + 1
        print("  fleet occupancy: " + ", ".join(f"{k}={fmt_bytes(v)}" for k, v in total.items()))
        print(f"  migrations: {migrations}")
        print("  placement (objects):")
        for (kind, tier), count in sorted(kinds.items()):
            print(f"    {kind:8s} -> {tier:6s}: {count}")
        print(f"  tier access time accumulated: "
              f"{sum(s.tier_busy_s for s in service.servers) * 1e3:.2f} ms")


if __name__ == "__main__":
    main()
