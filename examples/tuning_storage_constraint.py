#!/usr/bin/env python
"""Tuning CoREC's storage-efficiency constraint S.

Sweeps the storage bound on a hot-spot workload (case 3) and reports the
latency/storage trade-off each setting buys, next to the analytic model's
prediction of the replicable fraction P_r* (Section II-D).  This is the
knob a deployment turns to trade staging-memory headroom for write
latency.

Run:  python examples/tuning_storage_constraint.py
"""

import numpy as np

from repro import CoRECConfig, CoRECPolicy, CoRECModel, ModelParams, StagingConfig, StagingService
from repro.workloads.synthetic import SyntheticWorkload, SyntheticWorkloadConfig

BOUNDS = [0.50, 0.60, 0.67, 0.72]


def run_bound(bound: float) -> dict:
    service = StagingService(
        StagingConfig(
            n_servers=8,
            domain_shape=(64, 64, 64),
            element_bytes=1,
            object_max_bytes=4096,
            seed=5,
        ),
        CoRECPolicy(CoRECConfig(storage_bound=bound)),
    )
    workload = SyntheticWorkload(
        service,
        SyntheticWorkloadConfig(case="case3", n_writers=64, n_readers=8, timesteps=20),
    )
    service.run_workflow(workload.run())
    service.run()
    steady = float(np.mean(workload.step_put.values[-5:]))
    return {
        "bound": bound,
        "efficiency": service.metrics.storage.efficiency(),
        "write_ms": service.metrics.put_stat.mean * 1e3,
        "steady_ms": steady * 1e3,
        "miss_ratio": service.policy.miss_ratio(),
    }


def main() -> None:
    model = CoRECModel(ModelParams(n_level=1, n_node=3))
    print(f"{'S':>5} {'P_r* (model)':>13} {'measured eff':>13} "
          f"{'write ms':>9} {'steady ms':>10} {'miss':>6}")
    for bound in BOUNDS:
        row = run_bound(bound)
        p_r_star = model.p_r_at_constraint(bound)
        print(f"{bound:>5.2f} {p_r_star:>13.3f} {row['efficiency']:>13.3f} "
              f"{row['write_ms']:>9.3f} {row['steady_ms']:>10.3f} {row['miss_ratio']:>6.3f}")
    print("\nlower S  -> more replication headroom -> faster writes, more memory;")
    print("higher S -> tighter memory -> more erasure coding -> slower writes.")


if __name__ == "__main__":
    main()
