#!/usr/bin/env python
"""Watch the hot/cold classifier track the paper's Figure 3 patterns.

Renders the classifier's per-block decision as an ASCII heat map over a
2-D domain while two access patterns play out:

1. a hot region that appears, persists, and goes cold (temporal
   locality + spatial neighbourhood promotion — Figure 3a);
2. rotating subdomains with a fixed period (the multi-timestep lookahead
   converting blocks to hot *before* their writes — Figure 3b).

Legend: ``#`` written this step, ``+`` classified hot (not written),
``.`` cold.

Run:  python examples/classifier_visualization.py
"""

from repro.core.classifier import ClassifierConfig, HotColdClassifier
from repro.staging.domain import BBox, Domain

GRID = (8, 8)          # 8x8 blocks
DOMAIN = Domain((32, 32), (4, 4))


def render(domain, clf, written, step) -> str:
    rows = []
    for y in range(domain.blocks_per_dim[0]):
        cells = []
        for x in range(domain.blocks_per_dim[1]):
            bid = domain.block_id((y, x))
            if bid in written:
                cells.append("#")
            elif clf.is_hot(("v", bid), step):
                cells.append("+")
            else:
                cells.append(".")
        rows.append(" ".join(cells))
    return "\n".join(rows)


def play(title, writes_for_step, steps, config) -> None:
    print(f"\n=== {title} ===")
    clf = HotColdClassifier(DOMAIN, config)
    for step in range(steps):
        written = set(writes_for_step(step))
        for bid in written:
            clf.record_write(("v", bid), step)
        clf.advance(step)
        print(f"\nstep {step}:")
        print(render(DOMAIN, clf, written, step))


def hot_region_writes(step):
    """Figure 3a: a region gets hot at step 1, grows, then goes cold."""
    if step == 0:
        return [DOMAIN.block_id((y, x)) for y in range(8) for x in range(8)]
    if 1 <= step <= 3:
        # region {(2,2)..(4,4)} written repeatedly
        return [DOMAIN.block_id((y, x)) for y in range(2, 5) for x in range(2, 5)]
    if step == 4:
        return [DOMAIN.block_id((2, 2))]  # a corner revisit
    return []  # everything cools down


def rotating_writes(step):
    """Figure 3b: four vertical slabs written in rotation (period 4)."""
    slab = step % 4
    return [
        DOMAIN.block_id((y, x))
        for y in range(8)
        for x in range(slab * 2, slab * 2 + 2)
    ]


def main() -> None:
    play(
        "Figure 3a: spatial + temporal locality of a hot region",
        hot_region_writes,
        steps=7,
        config=ClassifierConfig(hot_window_steps=2, spatial_radius=1, spatial_ttl_steps=1),
    )
    play(
        "Figure 3b: rotating subdomains and the periodic lookahead",
        rotating_writes,
        steps=15,
        config=ClassifierConfig(
            hot_window_steps=1, spatial_radius=0, temporal_lookahead=True, lookahead_steps=1
        ),
    )
    print("\nIn 3b, from step ~11 the *next* slab lights up '+' one step before")
    print("its writes arrive: the lookahead has learned the period-4 rotation.")


if __name__ == "__main__":
    main()
