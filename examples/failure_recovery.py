#!/usr/bin/env python
"""Recovery-mode comparison: degraded vs lazy vs aggressive (Figure 10).

Runs the same read-heavy workload under three recovery strategies, with a
server failure at timestep 4 and (where applicable) a replacement at
timestep 8, and prints the per-timestep read response so the recovery
dynamics are visible — the degraded plateau, the repair bump, and the
return to baseline.

Run:  python examples/failure_recovery.py
"""

from repro import CoRECConfig, CoRECPolicy, ErasurePolicy, StagingConfig, StagingService
from repro.core.recovery import RecoveryConfig
from repro.workloads.synthetic import SyntheticWorkload, SyntheticWorkloadConfig

TIMESTEPS = 16


def run(label: str, policy, failure_plan):
    service = StagingService(
        StagingConfig(
            n_servers=8,
            domain_shape=(64, 64, 64),
            element_bytes=1,
            object_max_bytes=4096,
            seed=9,
        ),
        policy,
    )
    workload = SyntheticWorkload(
        service,
        SyntheticWorkloadConfig(
            case="case5",
            n_writers=64,
            n_readers=32,
            timesteps=TIMESTEPS,
            failure_plan=failure_plan,
        ),
    )
    service.run_workflow(workload.run())
    service.run()
    assert service.read_errors == 0
    return workload.step_get.values, service


def main() -> None:
    plans = {
        "degraded (no replacement)": (
            CoRECPolicy(CoRECConfig(recovery=RecoveryConfig(mode="none", repair_on_access=False))),
            {4: [("fail", 0)]},
        ),
        "lazy recovery (CoREC)": (
            CoRECPolicy(CoRECConfig()),
            {4: [("fail", 0)], 8: [("replace", 0)]},
        ),
        "aggressive recovery (erasure)": (
            ErasurePolicy(recovery=RecoveryConfig(mode="aggressive")),
            {4: [("fail", 0)], 8: [("replace", 0)]},
        ),
    }
    series = {}
    stats = {}
    for label, (policy, plan) in plans.items():
        series[label], svc = run(label, policy, plan)
        stats[label] = svc.metrics.counters

    print(f"{'TS':>3} " + "  ".join(f"{label[:26]:>28}" for label in series))
    for i in range(TIMESTEPS):
        row = f"{i + 1:>3} "
        for label in series:
            value = series[label][i] * 1e3 if i < len(series[label]) else float("nan")
            note = ""
            if i + 1 == 4:
                note = " F"  # failure
            elif i + 1 == 8:
                note = " R"  # replacement
            row += f"  {value:>26.3f}{note}"
        print(row)

    print("\ncounters:")
    for label, counters in stats.items():
        print(f"  {label}: degraded_reads={counters.get('degraded_reads', 0)}, "
              f"recovered={counters.get('recovered_objects', 0)}")


if __name__ == "__main__":
    main()
