"""Stochastic MTBF failure injection driven end-to-end.

Uses the exponential failure injector against a running workflow with
automatic replacement after a repair delay, asserting the survivability
contract: whenever concurrent failures never exceed the code's tolerance,
no byte is lost.
"""

import numpy as np
import pytest

from repro.sim.failures import FailureInjector
from repro.workloads.synthetic import SyntheticWorkload, SyntheticWorkloadConfig

from tests.conftest import make_service, stripes_consistent


def run_stochastic(policy_name: str, seed: int, mtbf_s: float = 0.05, repair_delay: float = 0.004):
    """Run case1 under random failures; auto-replace after a fixed delay.

    The injector only ever has one server down at a time (it re-arms after
    replacement), so the m=1 tolerance is never exceeded.
    """
    svc = make_service(policy_name)
    down: list[int] = []

    def on_fail(sid: int) -> None:
        if down:
            # Keep within tolerance: ignore overlapping kills.
            inj.failed_servers.discard(sid)
            return
        down.append(sid)
        svc.fail_server(sid)

        def repair():
            yield svc.sim.timeout(repair_delay)
            svc.replace_server(sid)
            # The tolerance contract is about *unrecovered* servers: only
            # admit the next failure once this one is fully repaired (the
            # policy's deadline sweep is far away, so run one now).
            yield from svc.policy.recovery._repair_all_missing(sid)
            inj.failed_servers.discard(sid)
            down.remove(sid)

        svc.sim.process(repair())

    inj = FailureInjector(
        svc.sim,
        on_fail=on_fail,
        mtbf_s=mtbf_s,
        n_servers=svc.config.n_servers,
        rng=np.random.default_rng(seed),
        log=svc.log,
    )
    inj.start()
    wl = SyntheticWorkload(
        svc,
        SyntheticWorkloadConfig(
            case="case1", n_writers=8, n_readers=4, timesteps=8,
            read_in_write_cases=True,
        ),
    )
    svc.run_workflow(wl.run())
    # Drain any outstanding repair, then stop counting failures.
    svc.run(until=svc.sim.now + 10 * repair_delay)
    return svc, inj


@pytest.mark.parametrize("seed", [0, 1, 2, 3])
def test_corec_survives_random_single_failures(seed):
    svc, inj = run_stochastic("corec", seed)
    assert svc.read_errors == 0
    # Final read of everything must still be byte-exact.
    def wf():
        _, payloads = yield from svc.get("r0", "field", svc.domain.bbox)
        assert len(payloads) == svc.domain.n_blocks
    svc.run_workflow(wf())
    assert svc.read_errors == 0


@pytest.mark.parametrize("policy", ["replication", "erasure"])
def test_baselines_survive_random_single_failures(policy):
    svc, inj = run_stochastic(policy, seed=5)
    def wf():
        yield from svc.get("r0", "field", svc.domain.bbox)
    svc.run_workflow(wf())
    assert svc.read_errors == 0


def test_failures_actually_happened():
    svc, inj = run_stochastic("corec", seed=1, mtbf_s=0.02)
    assert inj.fail_count >= 1
    assert svc.log.count("server_failed") >= 1


def test_deterministic_under_same_seed():
    a_svc, a_inj = run_stochastic("corec", seed=7)
    b_svc, b_inj = run_stochastic("corec", seed=7)
    assert a_inj.fail_count == b_inj.fail_count
    assert a_svc.metrics.put_stat.mean == b_svc.metrics.put_stat.mean
    assert dict(a_svc.metrics.counters) == dict(b_svc.metrics.counters)
